//! Workload driver: runs a [`WorkloadSpec`] against a [`SimIndex`] inside
//! the simulator and reports the paper's metrics (operation throughput,
//! DRAM reads per operation).
//!
//! The driver spawns one logical host thread per workload thread plus the
//! structure's NMP service daemons, executes a warm-up phase, resets the
//! memory-system counters at a barrier, and measures the timed phase.
//! With `inflight == 1` every NMP call blocks (§3.3/3.4); with
//! `inflight > 1` each host thread keeps up to that many non-blocking NMP
//! calls outstanding (§3.5, e.g. *hybrid-nonblocking4*).

// xtask: allow(atomic-ordering) — the measurement barrier and the result
// counters below coordinate *simulation worker threads*, not simulated
// memory; they are harness state outside the modeled machine.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use nmp_sim::{Machine, StatsSnapshot, ThreadCtx, ThreadKind};
use serde::Serialize;
use workloads::{KeySpace, Op, WorkloadSpec};

#[cfg(feature = "analysis")]
use nmp_sim::analysis::{HistEvent, HistOp, HistoryRecorder};
#[cfg(feature = "trace")]
use nmp_sim::trace::{kind_label, LatencyHist, OP_KINDS};

use crate::api::{Issued, OpResult, PollOutcome, SimIndex};
use crate::offload::policy::LaneGovernor;

/// Per-thread view of a history recorder: the recorder plus the recording
/// thread's id. `None` disables recording (the normal benchmarking path).
#[cfg(feature = "analysis")]
pub type RecorderHandle<'a> = Option<(&'a HistoryRecorder, usize)>;
/// Stub when the `analysis` feature is off; only `None` is constructible.
#[cfg(not(feature = "analysis"))]
pub type RecorderHandle<'a> = Option<&'a std::convert::Infallible>;

#[cfg(feature = "analysis")]
type RecorderArc = Option<Arc<HistoryRecorder>>;
#[cfg(not(feature = "analysis"))]
type RecorderArc = Option<Arc<std::convert::Infallible>>;

/// Record one completed point operation. Scans are skipped: their
/// multi-key footprint is outside the per-key linearizability model.
#[cfg(feature = "analysis")]
fn record_completion(rec: RecorderHandle<'_>, op: Op, r: OpResult, inv: u64, resp: u64) {
    let Some((rec, thread)) = rec else { return };
    let (hop, key, value) = match op {
        Op::Read(k) => (HistOp::Read, k, r.value),
        Op::Insert(k, v) => (HistOp::Insert, k, v),
        Op::Remove(k) => (HistOp::Remove, k, 0),
        Op::Update(k, v) => (HistOp::Update, k, v),
        Op::Scan(..) | Op::ExtractMin => return,
    };
    rec.record(HistEvent { thread, op: hop, key, ok: r.ok, value, inv, resp });
}

#[cfg(not(feature = "analysis"))]
fn record_completion(_rec: RecorderHandle<'_>, _op: Op, _r: OpResult, _inv: u64, _resp: u64) {}

/// Per-thread latency sink: one histogram per op kind, filled during the
/// measured phase only. `None` (always, when `trace` is off) disables it.
#[cfg(feature = "trace")]
type LatSink<'a> = Option<&'a mut [LatencyHist; OP_KINDS]>;
/// Stub when the `trace` feature is off; only `None` is constructible.
#[cfg(not(feature = "trace"))]
type LatSink<'a> = Option<&'a mut std::convert::Infallible>;

#[cfg(feature = "trace")]
fn note_latency(lat: &mut LatSink<'_>, op: Op, inv: u64, resp: u64) {
    if let Some(h) = lat.as_deref_mut() {
        h[crate::offload::op_kind(op) as usize].record(resp.saturating_sub(inv));
    }
}

#[cfg(not(feature = "trace"))]
fn note_latency(_lat: &mut LatSink<'_>, _op: Op, _inv: u64, _resp: u64) {}

/// One experiment's execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Measured workload (threads, ops/thread, mix, distributions, seed).
    pub workload: WorkloadSpec,
    /// Per-thread warm-up operations executed before the measured window
    /// (drawn from the same distribution under a derived seed).
    pub warmup_per_thread: u32,
    /// Maximum in-flight NMP calls per host thread (1 = blocking).
    pub inflight: usize,
    /// Cache lines of *application* data each host thread touches around
    /// every index operation (0 = pure index microbenchmark). In the
    /// paper's full-system OLTP setting, transactions read row data and
    /// run driver code between index operations, polluting the host
    /// caches; this knob models that traffic. The touched lines come from
    /// a private 2 MiB per-thread region and are excluded from the
    /// reported DRAM-reads-per-op metric.
    pub app_footprint_lines: u32,
}

impl RunSpec {
    /// Spec with the given workload, warm-up, and lane depth; no app footprint.
    pub fn new(workload: WorkloadSpec, warmup_per_thread: u32, inflight: usize) -> Self {
        RunSpec { workload, warmup_per_thread, inflight, app_footprint_lines: 0 }
    }

    /// Set [`RunSpec::app_footprint_lines`].
    pub fn with_footprint(mut self, lines: u32) -> Self {
        self.app_footprint_lines = lines;
        self
    }
}

/// Per-thread application-data region touched by the footprint model.
const FOOTPRINT_REGION_BYTES: u32 = 2 * 1024 * 1024;

/// Measured results of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Host threads that executed the workload.
    pub threads: u32,
    /// Operations completed in the measured window.
    pub measured_ops: u64,
    /// Operations whose success bit was set.
    pub succeeded_ops: u64,
    /// Simulated cycles of the measured window (max end − min start).
    pub cycles: u64,
    /// Throughput in million operations per second of simulated time.
    pub mops: f64,
    /// DRAM read bursts per operation (the Fig. 5b/6b/9 metric).
    pub dram_reads_per_op: f64,
    /// [`RunResult::dram_reads_per_op`] issued by host cores.
    pub host_dram_reads_per_op: f64,
    /// [`RunResult::dram_reads_per_op`] issued by NMP cores.
    pub nmp_dram_reads_per_op: f64,
    /// MMIO transactions per operation (offload traffic).
    pub mmio_per_op: f64,
    /// Modeled energy per operation (nJ).
    pub energy_nj_per_op: f64,
    /// Host wall-clock milliseconds spent inside `sim.run()` (warm-up and
    /// measured phases): the real cost of simulating this experiment.
    pub wall_ms: f64,
    /// Simulated cycles advanced per wall-clock second — the simulator's
    /// effective speed for this run (makespan / wall time).
    pub sim_cycles_per_sec: f64,
    /// Offload requests posted to publication lists in the measured window.
    pub offload_posted: u64,
    /// NMP-side retries (stale `begin`, parked-slot conflicts) in the window.
    pub offload_retries: u64,
    /// Lock-path falls (hybrid B+ tree splits reaching host levels).
    pub offload_lock_path: u64,
    /// Mean requests combined per non-idle combiner pass (>1 means the
    /// flat-combining batching is actually coalescing concurrent posts).
    pub offload_mean_batch: f64,
    /// Requests served by replicating a coalesced sibling's response
    /// instead of their own NMP descent (`Policy::Adaptive` key-range
    /// coalescing; always 0 under `Policy::Fixed`).
    pub offload_coalesced: u64,
    /// End-to-end operation latency percentiles over the measured window,
    /// in simulated cycles across all op kinds. Zero when the `trace`
    /// feature is disabled (collection lives behind it).
    pub lat_p50_cycles: f64,
    /// 95th-percentile latency; see [`RunResult::lat_p50_cycles`].
    pub lat_p95_cycles: f64,
    /// 99th-percentile latency; see [`RunResult::lat_p50_cycles`].
    pub lat_p99_cycles: f64,
    /// Per-op-kind latency breakdown (empty when `trace` is disabled).
    pub op_latency: Vec<OpLatency>,
    /// Full counter snapshot of the measured window.
    pub stats: StatsSnapshot,
}

/// Measured-window latency summary for one op kind (Read, Insert, ...).
#[derive(Debug, Clone, Serialize)]
pub struct OpLatency {
    /// Op-kind label (`read`, `insert`, `remove`, `update`, `scan`,
    /// `extract_min`).
    pub kind: String,
    /// Completed operations of this kind in the measured window.
    pub count: u64,
    /// Mean end-to-end latency in simulated cycles.
    pub mean_cycles: f64,
    /// Median latency in simulated cycles.
    pub p50_cycles: f64,
    /// 95th-percentile latency in simulated cycles.
    pub p95_cycles: f64,
    /// 99th-percentile latency in simulated cycles.
    pub p99_cycles: f64,
}

struct Shared {
    arrived: AtomicU32,
    released: AtomicU32,
    starts: Vec<AtomicU64>,
    ends: Vec<AtomicU64>,
    succeeded: AtomicU64,
}

/// Run `spec` against `index` on `machine`. The structure must already be
/// populated with the key space's initial keys.
pub fn run_index<S: SimIndex>(
    machine: &Arc<Machine>,
    index: &Arc<S>,
    ks: &KeySpace,
    spec: &RunSpec,
) -> RunResult {
    run_index_inner(machine, index, ks, spec, None)
}

/// As [`run_index`], but every completed point operation (warm-up
/// included; scans excluded) is recorded into `recorder`, ready for
/// [`HistoryRecorder::check_linearizable`] against the structure's
/// *pre-simulation* contents.
#[cfg(feature = "analysis")]
pub fn run_index_recorded<S: SimIndex>(
    machine: &Arc<Machine>,
    index: &Arc<S>,
    ks: &KeySpace,
    spec: &RunSpec,
    recorder: &Arc<HistoryRecorder>,
) -> RunResult {
    run_index_inner(machine, index, ks, spec, Some(Arc::clone(recorder)))
}

fn run_index_inner<S: SimIndex>(
    machine: &Arc<Machine>,
    index: &Arc<S>,
    ks: &KeySpace,
    spec: &RunSpec,
    recorder: RecorderArc,
) -> RunResult {
    let threads = spec.workload.threads;
    assert!(threads as usize <= machine.config().host_cores, "more threads than host cores");
    assert!(spec.inflight >= 1 && spec.inflight <= index.max_inflight());

    let warmup_spec = WorkloadSpec {
        seed: workloads::mix64(spec.workload.seed ^ 0x57A2_4D11),
        ops_per_thread: spec.warmup_per_thread,
        ..spec.workload
    };
    let warmup_streams = warmup_spec.generate(ks);
    let measured_streams = spec.workload.generate(ks);

    let shared = Arc::new(Shared {
        arrived: AtomicU32::new(0),
        released: AtomicU32::new(0),
        starts: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        ends: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        succeeded: AtomicU64::new(0),
    });
    #[cfg(feature = "trace")]
    let lat_shared: Arc<parking_lot::Mutex<Vec<[LatencyHist; OP_KINDS]>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));

    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    for t in 0..threads as usize {
        let index = Arc::clone(index);
        let machine = Arc::clone(machine);
        let shared = Arc::clone(&shared);
        let warm = warmup_streams[t].clone();
        let meas = measured_streams[t].clone();
        let inflight = spec.inflight;
        let footprint = (spec.app_footprint_lines > 0).then(|| {
            // Cap the per-thread region so small test machines still fit.
            let budget = machine.host_arena().remaining_bytes() / (2 * threads);
            let region = FOOTPRINT_REGION_BYTES.min(budget / 128 * 128).max(4096);
            Footprint {
                base: machine.host_arena().alloc_aligned(region, 128),
                region_bytes: region,
                lines: spec.app_footprint_lines,
                rng: workloads::Rng::new(spec.workload.seed ^ (t as u64) ^ 0xF007),
            }
        });
        let recorder = recorder.clone();
        #[cfg(feature = "trace")]
        let lat_shared = Arc::clone(&lat_shared);
        sim.spawn(format!("host-{t}"), ThreadKind::Host { core: t }, move |ctx| {
            let mut footprint = footprint;
            #[cfg(feature = "analysis")]
            let rec: RecorderHandle<'_> = recorder.as_deref().map(|r| (r, t));
            #[cfg(not(feature = "analysis"))]
            let rec: RecorderHandle<'_> = recorder.as_deref();
            run_stream(ctx, &*index, &warm, inflight, footprint.as_mut(), rec, None);
            // Barrier: wait for everyone's warm-up to finish, then the last
            // arriver resets the counters (cache state stays warm).
            let n = shared.arrived.fetch_add(1, Ordering::Relaxed) + 1;
            if n == threads {
                machine.mem().reset_stats();
                shared.released.store(1, Ordering::Release);
            } else {
                let idle = machine.config().host_pipeline_idle_cycles;
                while shared.released.load(Ordering::Acquire) == 0 {
                    ctx.idle(idle);
                }
            }
            #[cfg(feature = "trace")]
            let mut lat: [LatencyHist; OP_KINDS] = std::array::from_fn(|_| LatencyHist::new());
            #[cfg(feature = "trace")]
            let sink: LatSink<'_> = Some(&mut lat);
            #[cfg(not(feature = "trace"))]
            let sink: LatSink<'_> = None;
            shared.starts[t].store(ctx.now(), Ordering::Relaxed);
            let ok = run_stream(ctx, &*index, &meas, inflight, footprint.as_mut(), rec, sink);
            shared.ends[t].store(ctx.now(), Ordering::Relaxed);
            shared.succeeded.fetch_add(ok, Ordering::Relaxed);
            #[cfg(feature = "trace")]
            lat_shared.lock().push(lat);
        });
    }
    let t0 = std::time::Instant::now();
    let outcome = sim.run();
    let wall = t0.elapsed().as_secs_f64();

    let start = shared.starts.iter().map(|a| a.load(Ordering::Relaxed)).min().unwrap_or(0);
    let end = shared.ends.iter().map(|a| a.load(Ordering::Relaxed)).max().unwrap_or(0);
    let cycles = end.saturating_sub(start).max(1);
    let measured_ops = threads as u64 * spec.workload.ops_per_thread as u64;
    let stats = machine.mem().snapshot();
    let ghz = machine.config().clock_ghz;
    // Footprint lines come from a region far larger than the caches, so
    // virtually every touch is a DRAM read; exclude them from the index's
    // per-op metric.
    let fp = spec.app_footprint_lines as f64;
    #[cfg(feature = "trace")]
    let (lat_all, op_latency) = {
        let per_thread = lat_shared.lock();
        let mut merged: [LatencyHist; OP_KINDS] = std::array::from_fn(|_| LatencyHist::new());
        let mut all = LatencyHist::new();
        for hists in per_thread.iter() {
            for (k, h) in hists.iter().enumerate() {
                merged[k].merge(h);
                all.merge(h);
            }
        }
        let op_latency: Vec<OpLatency> = merged
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| OpLatency {
                kind: kind_label(k as u8).to_string(),
                count: h.count(),
                mean_cycles: h.mean(),
                p50_cycles: h.percentile(0.50),
                p95_cycles: h.percentile(0.95),
                p99_cycles: h.percentile(0.99),
            })
            .collect();
        (all, op_latency)
    };
    RunResult {
        threads,
        measured_ops,
        succeeded_ops: shared.succeeded.load(Ordering::Relaxed),
        cycles,
        mops: measured_ops as f64 / cycles as f64 * ghz * 1e3,
        dram_reads_per_op: (stats.dram_reads() as f64 / measured_ops as f64 - fp).max(0.0),
        host_dram_reads_per_op: (stats.host_dram_reads() as f64 / measured_ops as f64 - fp)
            .max(0.0),
        nmp_dram_reads_per_op: stats.nmp_dram_reads() as f64 / measured_ops as f64,
        mmio_per_op: (stats.mmio_reads + stats.mmio_writes) as f64 / measured_ops as f64,
        energy_nj_per_op: stats.energy_nj() / measured_ops as f64,
        wall_ms: wall * 1e3,
        sim_cycles_per_sec: if wall > 0.0 { outcome.makespan() as f64 / wall } else { 0.0 },
        offload_posted: stats.offload.posted_total(),
        offload_retries: stats.offload.retries_total(),
        offload_lock_path: stats.offload.lock_path_total(),
        offload_mean_batch: stats.offload.mean_batch(),
        offload_coalesced: stats.offload.coalesced_total(),
        #[cfg(feature = "trace")]
        lat_p50_cycles: lat_all.percentile(0.50),
        #[cfg(feature = "trace")]
        lat_p95_cycles: lat_all.percentile(0.95),
        #[cfg(feature = "trace")]
        lat_p99_cycles: lat_all.percentile(0.99),
        #[cfg(feature = "trace")]
        op_latency,
        #[cfg(not(feature = "trace"))]
        lat_p50_cycles: 0.0,
        #[cfg(not(feature = "trace"))]
        lat_p95_cycles: 0.0,
        #[cfg(not(feature = "trace"))]
        lat_p99_cycles: 0.0,
        #[cfg(not(feature = "trace"))]
        op_latency: Vec::new(),
        stats,
    }
}

/// Application-data pollution source (see [`RunSpec::app_footprint_lines`]).
struct Footprint {
    base: nmp_sim::Addr,
    region_bytes: u32,
    lines: u32,
    rng: workloads::Rng,
}

impl Footprint {
    /// Touch `lines` random cache lines of this thread's application data.
    fn touch(&mut self, ctx: &mut ThreadCtx) {
        let region_lines = (self.region_bytes / 128) as u64;
        for _ in 0..self.lines {
            let line = self.rng.below(region_lines) as u32;
            let _ = ctx.read_u64(self.base + line * 128);
        }
    }
}

/// Execute a stream of operations; returns how many reported success.
/// `inflight == 1` uses blocking calls; otherwise a lane-based pipeline of
/// non-blocking NMP calls (Fig. 4b).
fn run_stream<S: SimIndex>(
    ctx: &mut ThreadCtx,
    index: &S,
    ops: &[Op],
    inflight: usize,
    mut footprint: Option<&mut Footprint>,
    rec: RecorderHandle<'_>,
    mut lat: LatSink<'_>,
) -> u64 {
    let mut ok = 0u64;
    if inflight <= 1 {
        for &op in ops {
            let inv = ctx.now();
            let r = index.execute(ctx, op);
            record_completion(rec, op, r, inv, ctx.now());
            note_latency(&mut lat, op, inv, ctx.now());
            ok += r.ok as u64;
            if let Some(f) = footprint.as_deref_mut() {
                f.touch(ctx);
            }
        }
        return ok;
    }
    let policy = ctx.mem().config().policy;
    let base_idle = ctx.mem().config().host_pipeline_idle_cycles;
    let core = crate::api::host_core(ctx);
    // Fixed: constant depth (= inflight) and constant stall idle, exactly
    // the pre-policy pipeline. Adaptive: the governor tunes both online
    // from this thread's own completions and the combiner's in-band
    // ctrl-word occupancy feedback.
    let mut gov = LaneGovernor::new(policy, base_idle, inflight);
    let mut lanes: Vec<Option<S::Pending>> = (0..inflight).map(|_| None).collect();
    // Invocation metadata per lane, kept for the completion record.
    let mut issued: Vec<(Op, u64)> = vec![(Op::Read(0), 0); inflight];
    let mut next = 0usize;
    let mut done = 0usize;
    while done < ops.len() {
        let mut progressed = false;
        let depth = gov.depth();
        for lane in 0..inflight {
            match lanes[lane].take() {
                // Lanes at or above the governed depth stop taking new
                // work (they still drain below).
                None if lane < depth && next < ops.len() => {
                    let op = ops[next];
                    next += 1;
                    progressed = true;
                    let inv = ctx.now();
                    match index.issue(ctx, lane, op) {
                        Issued::Done(r) => {
                            done += 1;
                            ok += r.ok as u64;
                            gov.note_completion(index.occupancy_feedback(core), ctx.now());
                            record_completion(rec, op, r, inv, ctx.now());
                            note_latency(&mut lat, op, inv, ctx.now());
                            if let Some(f) = footprint.as_deref_mut() {
                                f.touch(ctx);
                            }
                        }
                        Issued::Pending(p) => {
                            lanes[lane] = Some(p);
                            issued[lane] = (op, inv);
                        }
                    }
                }
                None => {}
                Some(mut p) => match index.poll(ctx, &mut p) {
                    PollOutcome::Done(r) => {
                        done += 1;
                        ok += r.ok as u64;
                        progressed = true;
                        gov.note_completion(index.occupancy_feedback(core), ctx.now());
                        let (op, inv) = issued[lane];
                        record_completion(rec, op, r, inv, ctx.now());
                        note_latency(&mut lat, op, inv, ctx.now());
                        if let Some(f) = footprint.as_deref_mut() {
                            f.touch(ctx);
                        }
                    }
                    PollOutcome::Pending => lanes[lane] = Some(p),
                },
            }
        }
        if progressed {
            gov.note_progress();
        } else {
            ctx.idle(gov.idle_on_stall());
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::HostBTree;
    use crate::skiplist::{HybridSkipList, NmpSkipList};
    use nmp_sim::Config;
    use workloads::{InsertDist, KeyDist, Mix};

    fn ks() -> KeySpace {
        KeySpace::new(512, 2, 128)
    }

    fn wl(threads: u32, ops: u32, mix: Mix) -> WorkloadSpec {
        WorkloadSpec {
            seed: 99,
            threads,
            ops_per_thread: ops,
            mix,
            read_dist: KeyDist::Uniform,
            insert_dist: InsertDist::UniformGap,
        }
    }

    #[test]
    fn driver_measures_host_btree() {
        let m = Machine::new(Config::tiny());
        let ks = ks();
        let pairs: Vec<(u32, u32)> =
            (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
        let t = HostBTree::new(Arc::clone(&m), &pairs, 0.5);
        let r = run_index(
            &m,
            &t,
            &ks,
            &RunSpec {
                workload: wl(2, 50, Mix::ycsb_c()),
                warmup_per_thread: 10,
                inflight: 1,
                app_footprint_lines: 0,
            },
        );
        assert_eq!(r.measured_ops, 100);
        assert_eq!(r.succeeded_ops, 100, "all reads hit initial keys");
        assert!(r.cycles > 0);
        assert!(r.mops > 0.0);
    }

    #[test]
    fn driver_blocking_vs_nonblocking_hybrid_skiplist() {
        let m = Machine::new(Config::tiny());
        let ks = ks();
        let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 7, 4);
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
        let spec = |inflight| RunSpec {
            workload: wl(4, 40, Mix::ycsb_c()),
            warmup_per_thread: 10,
            inflight,
            app_footprint_lines: 0,
        };
        let blocking = run_index(&m, &sl, &ks, &spec(1));
        // Fresh machine for a fair second run.
        let m2 = Machine::new(Config::tiny());
        let sl2 = HybridSkipList::new(Arc::clone(&m2), ks, 10, 4, 7, 4);
        sl2.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
        let nonblocking = run_index(&m2, &sl2, &ks, &spec(4));
        assert!(
            nonblocking.mops > blocking.mops,
            "non-blocking ({:.3}) should beat blocking ({:.3})",
            nonblocking.mops,
            blocking.mops
        );
        sl.check_invariants();
        sl2.check_invariants();
    }

    #[test]
    fn driver_mixed_workload_counts_successes() {
        let m = Machine::new(Config::tiny());
        let ks = ks();
        let sl = NmpSkipList::new(Arc::clone(&m), ks, 8, 3, 2);
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
        let r = run_index(
            &m,
            &sl,
            &ks,
            &RunSpec {
                workload: wl(2, 100, Mix::read_insert_remove(50, 25, 25)),
                warmup_per_thread: 5,
                inflight: 1,
                app_footprint_lines: 0,
            },
        );
        assert_eq!(r.measured_ops, 200);
        assert!(r.succeeded_ops > 0 && r.succeeded_ops <= 200);
        sl.check_invariants();
    }

    #[test]
    fn driver_deterministic() {
        let go = || {
            let m = Machine::new(Config::tiny());
            let ks = ks();
            let sl = NmpSkipList::new(Arc::clone(&m), ks, 8, 3, 1);
            sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
            let r = run_index(
                &m,
                &sl,
                &ks,
                &RunSpec {
                    workload: wl(3, 30, Mix::read_insert_remove(70, 15, 15)),
                    warmup_per_thread: 5,
                    inflight: 1,
                    app_footprint_lines: 0,
                },
            );
            (r.cycles, r.succeeded_ops, r.stats.dram_reads())
        };
        assert_eq!(go(), go());
    }

    #[cfg(feature = "analysis")]
    #[test]
    fn recorded_history_linearizes() {
        let m = Machine::new(Config::tiny());
        let ks = ks();
        let sl = NmpSkipList::new(Arc::clone(&m), ks, 8, 3, 2);
        let pairs: Vec<(u32, u32)> =
            (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
        sl.populate(pairs.iter().copied());
        let initial: std::collections::HashMap<u32, u32> = pairs.into_iter().collect();
        let rec = Arc::new(HistoryRecorder::new());
        let r = run_index_recorded(
            &m,
            &sl,
            &ks,
            &RunSpec {
                workload: wl(2, 60, Mix::read_insert_remove(40, 30, 30)),
                warmup_per_thread: 10,
                inflight: 1,
                app_footprint_lines: 0,
            },
            &rec,
        );
        // Warm-up (2 * 10) + measured (2 * 60) point ops, no scans in the mix.
        assert_eq!(rec.len() as u64, r.measured_ops + 20);
        rec.check_linearizable(|k| initial.get(&k).copied()).expect("history must linearize");
        sl.check_invariants();
    }

    #[test]
    fn warmup_reduces_measured_dram_reads() {
        let ks = ks();
        let run_with = |warmup: u32| {
            let m = Machine::new(Config::tiny());
            let pairs: Vec<(u32, u32)> =
                (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
            let t = HostBTree::new(Arc::clone(&m), &pairs, 0.5);
            run_index(
                &m,
                &t,
                &ks,
                &RunSpec {
                    workload: wl(1, 60, Mix::ycsb_c()),
                    warmup_per_thread: warmup,
                    inflight: 1,
                    app_footprint_lines: 0,
                },
            )
            .dram_reads_per_op
        };
        assert!(run_with(200) < run_with(0), "warm caches -> fewer measured DRAM reads");
    }
}
