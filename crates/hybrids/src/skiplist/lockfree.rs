//! Lock-free skiplist (Fraser / Herlihy–Lev–Shavit), running on simulated
//! host memory.
//!
//! This is both the paper's non-NMP baseline (*lock-free* in Fig. 5) and
//! the host-managed portion of the hybrid skiplist (§3.3). Deletion marks
//! live in the low bit of each next pointer; `find` physically snips marked
//! nodes while traversing; `read` is a wait-free traversal that skips
//! marked nodes without helping.
//!
//! Unlinked nodes are never reclaimed (no safe memory reclamation is
//! modeled — the paper does not address reclamation either), which also
//! guarantees that stale pointers remain readable for staleness checks.

use std::sync::Arc;

use nmp_sim::{Addr, Machine, ThreadCtx, NULL};
use workloads::{Key, Value};

use super::node;

/// Traversal result: predecessors and successors at every level, plus the
/// node holding the target key if present (Listing 1's `find`).
pub struct LfFind {
    /// Predecessor node per level.
    pub preds: Vec<Addr>,
    /// Successor node per level.
    pub succs: Vec<Addr>,
    /// Node holding the target key, if present and unmarked.
    pub found: Option<Addr>,
}

/// Physical node layout of a lock-free skiplist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLayout {
    /// Variable-height nodes, one per 128-byte cache block, block-aligned —
    /// the cache-conscious layout the hybrid design uses for its
    /// host-managed portion.
    CacheAligned,
    /// Conventional layout: every node carries a full-height next-pointer
    /// array and is allocated at word (8-byte) alignment, as in standard
    /// lock-free skiplist implementations (Fraser '04 / Herlihy-Lev-Shavit)
    /// — the *lock-free* baseline the paper benchmarks against. Nodes
    /// straddle cache blocks and occupy more of them.
    Packed,
}

/// A lock-free skiplist whose nodes live in the host arena.
pub struct LockFreeSkipList {
    machine: Arc<Machine>,
    head: Addr,
    levels: u32,
    seed: u64,
    layout: NodeLayout,
}

impl LockFreeSkipList {
    /// Create an empty list with `levels` levels and the cache-aligned
    /// layout. `seed` drives the deterministic per-key height distribution.
    pub fn new(machine: Arc<Machine>, levels: u32, seed: u64) -> Self {
        Self::with_layout(machine, levels, seed, NodeLayout::CacheAligned)
    }

    /// Create an empty list with an explicit node layout.
    pub fn with_layout(machine: Arc<Machine>, levels: u32, seed: u64, layout: NodeLayout) -> Self {
        assert!((1..=255).contains(&levels));
        let head = node::alloc_node(machine.host_arena(), levels);
        node::raw_init(machine.ram(), head, 0, 0, levels, levels, NULL);
        LockFreeSkipList { machine, head, levels, seed, layout }
    }

    /// Bytes one node of `height` occupies under this list's layout.
    fn alloc_bytes(&self, height: u32) -> u32 {
        match self.layout {
            NodeLayout::CacheAligned => node::node_bytes(height),
            // Full-height array regardless of the node's height.
            NodeLayout::Packed => node::HDR_BYTES + 8 * self.levels,
        }
    }

    fn alloc(&self, height: u32) -> Addr {
        match self.layout {
            NodeLayout::CacheAligned => node::alloc_node(self.machine.host_arena(), height),
            NodeLayout::Packed => self.machine.host_arena().alloc(self.alloc_bytes(height)),
        }
    }

    fn dealloc(&self, n: Addr, height: u32) {
        match self.layout {
            NodeLayout::CacheAligned => node::free_node(self.machine.host_arena(), n, height),
            NodeLayout::Packed => self.machine.host_arena().free(n, self.alloc_bytes(height), 8),
        }
    }

    /// Head sentinel address.
    pub fn head(&self) -> Addr {
        self.head
    }

    /// Maximum levels (head height).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Height-derivation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The machine the list lives on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Height the structure will use for `key` (deterministic).
    pub fn height_of(&self, key: Key) -> u32 {
        node::height_for_key(key, self.seed, self.levels)
    }

    /// Untimed bulk population from ascending `(key, value)` pairs, for the
    /// initialization phase. Node heights use the same distribution as
    /// timed inserts.
    pub fn populate(&self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        let ram = self.machine.ram();
        let arena = self.machine.host_arena();
        let mut last = vec![self.head; self.levels as usize];
        let mut prev_key = 0;
        for (key, value) in pairs {
            assert!(key > prev_key, "populate requires ascending unique keys");
            prev_key = key;
            let h = self.height_of(key);
            let n = match self.layout {
                NodeLayout::CacheAligned => node::alloc_node(arena, h),
                NodeLayout::Packed => arena.alloc(self.alloc_bytes(h)),
            };
            node::raw_init(ram, n, key, value, h, h, NULL);
            for l in 0..h {
                node::raw_set_next(ram, last[l as usize], l, n, false);
                last[l as usize] = n;
            }
        }
    }

    /// Lock-free `find`: locates `key`, snipping out marked (logically
    /// deleted) nodes along the way.
    pub fn find(&self, ctx: &mut ThreadCtx, key: Key) -> LfFind {
        'retry: loop {
            let n = self.levels as usize;
            let mut preds = vec![self.head; n];
            let mut succs = vec![NULL; n];
            let mut pred = self.head;
            for l in (0..self.levels).rev() {
                let (mut curr, _) = node::read_next(ctx, pred, l);
                loop {
                    if curr == NULL {
                        break;
                    }
                    let (mut succ, mut marked) = node::read_next(ctx, curr, l);
                    while marked {
                        // curr is logically deleted: snip it.
                        if !node::cas_next(ctx, pred, l, (curr, false), (succ, false)) {
                            continue 'retry;
                        }
                        curr = succ;
                        if curr == NULL {
                            break;
                        }
                        let (s, m) = node::read_next(ctx, curr, l);
                        succ = s;
                        marked = m;
                    }
                    if curr == NULL {
                        break;
                    }
                    let hdr = node::read_header(ctx, curr);
                    ctx.step();
                    if hdr.key < key {
                        pred = curr;
                        curr = succ;
                    } else {
                        break;
                    }
                }
                preds[l as usize] = pred;
                succs[l as usize] = curr;
            }
            let found = match succs[0] {
                NULL => None,
                c => {
                    let hdr = node::read_header(ctx, c);
                    (hdr.key == key).then_some(c)
                }
            };
            return LfFind { preds, succs, found };
        }
    }

    /// Insert `key -> value`; `false` on duplicate.
    pub fn insert(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> bool {
        let height = self.height_of(key);
        let n = self.alloc(height);
        node::init_node(ctx, n, key, value, height, height, NULL);
        if self.link_node(ctx, n, height, key) {
            true
        } else {
            self.dealloc(n, height);
            false
        }
    }

    /// Link a pre-initialized node (its header/cross words already written)
    /// carrying `stored` levels, under `key`. Returns `false` if the key is
    /// already present (node is left unlinked; caller may free it).
    ///
    /// Used directly by the hybrid skiplist to link the host-side
    /// counterpart of a tall node after the NMP side committed (Listing 1,
    /// lines 26–28).
    pub fn link_node(&self, ctx: &mut ThreadCtx, n: Addr, stored: u32, key: Key) -> bool {
        debug_assert!(stored >= 1 && stored <= self.levels);
        loop {
            let f = self.find(ctx, key);
            if f.found.is_some() {
                return false;
            }
            // Node is unreachable: plain-write its next pointers.
            for l in 0..stored {
                node::write_next(ctx, n, l, f.succs[l as usize], false);
            }
            if !node::cas_next(ctx, f.preds[0], 0, (f.succs[0], false), (n, false)) {
                continue; // bottom-level race: retry from find
            }
            // Linearized. Link upper levels.
            for l in 1..stored {
                loop {
                    let (cur, marked) = node::read_next(ctx, n, l);
                    if marked {
                        return true; // concurrently removed; stop linking
                    }
                    let f2 = self.find(ctx, key);
                    if f2.found != Some(n) {
                        return true; // removed and snipped
                    }
                    if cur != f2.succs[l as usize]
                        && !node::cas_next(ctx, n, l, (cur, false), (f2.succs[l as usize], false))
                    {
                        continue; // next pointer changed under us (mark?)
                    }
                    if node::cas_next(
                        ctx,
                        f2.preds[l as usize],
                        l,
                        (f2.succs[l as usize], false),
                        (n, false),
                    ) {
                        break;
                    }
                }
            }
            return true;
        }
    }

    /// Remove `key`; `false` if absent or lost to a concurrent remover.
    pub fn remove(&self, ctx: &mut ThreadCtx, key: Key) -> bool {
        let f = self.find(ctx, key);
        let Some(n) = f.found else {
            return false;
        };
        let stored = ((ctx.read_u64(n + 16) >> 32) & 0xFF) as u32;
        // Mark top-down (upper levels best-effort, bottom level decides).
        for l in (1..stored).rev() {
            loop {
                let (succ, marked) = node::read_next(ctx, n, l);
                if marked || node::cas_next(ctx, n, l, (succ, false), (succ, true)) {
                    break;
                }
            }
        }
        loop {
            let (succ, marked) = node::read_next(ctx, n, 0);
            if marked {
                return false; // another remover linearized first
            }
            if node::cas_next(ctx, n, 0, (succ, false), (succ, true)) {
                let _ = self.find(ctx, key); // physically snip
                return true;
            }
        }
    }

    /// Wait-free read that also returns the bottom-level predecessor —
    /// the node whose `nmp_ptr` becomes the begin-NMP-traversal shortcut in
    /// the hybrid skiplist (Listing 1, line 15).
    pub fn read_with_pred(&self, ctx: &mut ThreadCtx, key: Key) -> (Addr, Option<(Addr, Value)>) {
        let mut pred = self.head;
        let mut candidate = NULL;
        for l in (0..self.levels).rev() {
            let (mut curr, _) = node::read_next(ctx, pred, l);
            loop {
                if curr == NULL {
                    break;
                }
                let (succ, marked) = node::read_next(ctx, curr, l);
                if marked {
                    curr = succ; // skip deleted node without helping
                    continue;
                }
                let hdr = node::read_header(ctx, curr);
                ctx.step();
                if hdr.key < key {
                    pred = curr;
                    curr = succ;
                } else {
                    if l == 0 && hdr.key == key {
                        candidate = curr;
                    }
                    break;
                }
            }
        }
        if candidate == NULL {
            return (pred, None);
        }
        let v = node::read_value(ctx, candidate);
        (pred, Some((candidate, v)))
    }

    /// Wait-free read: returns `(node, value)` if `key` is present and not
    /// logically deleted.
    pub fn read(&self, ctx: &mut ThreadCtx, key: Key) -> Option<(Addr, Value)> {
        self.read_with_pred(ctx, key).1
    }

    /// Range scan: read up to `len` live pairs with keys `>= key`, walking
    /// the bottom level and skipping logically deleted nodes. Not a
    /// snapshot: concurrent modifications may or may not be observed.
    pub fn scan(&self, ctx: &mut ThreadCtx, key: Key, len: u32) -> u32 {
        let (pred, _) = self.read_with_pred(ctx, key);
        let (mut cur, _) = node::read_next(ctx, pred, 0);
        let mut count = 0;
        while cur != NULL && count < len {
            let (succ, marked) = node::read_next(ctx, cur, 0);
            if !marked {
                let hdr = node::read_header(ctx, cur);
                ctx.step();
                if hdr.key >= key {
                    let _ = node::read_value(ctx, cur);
                    count += 1;
                }
            }
            cur = succ;
        }
        count
    }

    /// Update the value of an existing key; `false` if absent.
    pub fn update(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> bool {
        match self.read(ctx, key) {
            Some((n, _)) => {
                node::write_value(ctx, n, value);
                true
            }
            None => false,
        }
    }

    // ---- untimed inspection (tests / invariants) ----

    /// All live (unmarked) `(key, value)` pairs in order.
    pub fn collect(&self) -> Vec<(Key, Value)> {
        let ram = self.machine.ram();
        let mut out = Vec::new();
        let (mut cur, _) = node::raw_next(ram, self.head, 0);
        while cur != NULL {
            let (succ, marked) = node::raw_next(ram, cur, 0);
            if !marked {
                out.push((node::raw_header(ram, cur).key, node::raw_value(ram, cur)));
            }
            cur = succ;
        }
        out
    }

    /// Check the skiplist property (every level-`l` list is a sorted
    /// subsequence of level `l-1`, over unmarked nodes). Panics on
    /// violation; call after quiescence.
    pub fn check_invariants(&self) {
        let ram = self.machine.ram();
        let level_keys = |l: u32| -> Vec<Key> {
            let mut keys = Vec::new();
            let (mut cur, _) = node::raw_next(ram, self.head, l);
            while cur != NULL {
                let (succ, marked) = node::raw_next(ram, cur, l);
                if !marked {
                    keys.push(node::raw_header(ram, cur).key);
                }
                cur = succ;
            }
            keys
        };
        let mut below = level_keys(0);
        assert!(below.windows(2).all(|w| w[0] < w[1]), "level 0 not sorted/unique");
        for l in 1..self.levels {
            let this = level_keys(l);
            assert!(this.windows(2).all(|w| w[0] < w[1]), "level {l} not sorted/unique");
            let below_set: std::collections::HashSet<_> = below.iter().copied().collect();
            for k in &this {
                assert!(below_set.contains(k), "key {k} at level {l} missing from level {}", l - 1);
            }
            below = this;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, ThreadKind};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn setup(levels: u32) -> (Arc<Machine>, Arc<LockFreeSkipList>) {
        let m = Machine::new(Config::tiny());
        let sl = Arc::new(LockFreeSkipList::new(Arc::clone(&m), levels, 42));
        (m, sl)
    }

    fn run_single(
        sl: &Arc<LockFreeSkipList>,
        f: impl FnOnce(&mut ThreadCtx, &LockFreeSkipList) + Send + 'static,
    ) {
        let mut sim = sl.machine().simulation();
        let sl2 = Arc::clone(sl);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| f(ctx, &sl2));
        sim.run();
    }

    #[test]
    fn insert_read_remove_roundtrip() {
        let (_m, sl) = setup(8);
        run_single(&sl, |ctx, sl| {
            assert!(sl.insert(ctx, 10, 100));
            assert!(sl.insert(ctx, 20, 200));
            assert!(!sl.insert(ctx, 10, 999), "duplicate");
            assert_eq!(sl.read(ctx, 10).map(|p| p.1), Some(100));
            assert_eq!(sl.read(ctx, 15), None);
            assert!(sl.remove(ctx, 10));
            assert!(!sl.remove(ctx, 10));
            assert_eq!(sl.read(ctx, 10), None);
            assert_eq!(sl.read(ctx, 20).map(|p| p.1), Some(200));
        });
        sl.check_invariants();
        assert_eq!(sl.collect(), vec![(20, 200)]);
    }

    #[test]
    fn update_changes_value() {
        let (_m, sl) = setup(8);
        run_single(&sl, |ctx, sl| {
            assert!(sl.insert(ctx, 5, 1));
            assert!(sl.update(ctx, 5, 2));
            assert_eq!(sl.read(ctx, 5).map(|p| p.1), Some(2));
            assert!(!sl.update(ctx, 6, 9));
        });
    }

    #[test]
    fn populate_matches_inserts() {
        let (_m, sl) = setup(10);
        sl.populate((1..=100u32).map(|k| (k * 8, k)));
        sl.check_invariants();
        assert_eq!(sl.collect().len(), 100);
        run_single(&sl, |ctx, sl| {
            assert_eq!(sl.read(ctx, 400).map(|p| p.1), Some(50));
            assert!(sl.insert(ctx, 401, 9));
            assert!(!sl.insert(ctx, 400, 9));
            assert!(sl.remove(ctx, 408));
        });
        sl.check_invariants();
    }

    #[test]
    fn concurrent_disjoint_inserts_all_present() {
        let (m, sl) = setup(10);
        let mut sim = m.simulation();
        for core in 0..4usize {
            let sl = Arc::clone(&sl);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                for i in 0..50u32 {
                    let key = (i * 4 + core as u32 + 1) * 8;
                    assert!(sl.insert(ctx, key, key));
                }
            });
        }
        sim.run();
        sl.check_invariants();
        assert_eq!(sl.collect().len(), 200);
    }

    #[test]
    fn concurrent_same_key_insert_exactly_one_wins() {
        let (m, sl) = setup(8);
        let wins = Arc::new(AtomicUsize::new(0));
        let mut sim = m.simulation();
        for core in 0..4usize {
            let sl = Arc::clone(&sl);
            let wins = Arc::clone(&wins);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                if sl.insert(ctx, 64, core as u32) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        sim.run();
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        assert_eq!(sl.collect().len(), 1);
    }

    #[test]
    fn concurrent_remove_exactly_one_wins() {
        let (m, sl) = setup(8);
        sl.populate([(64, 1)]);
        let wins = Arc::new(AtomicUsize::new(0));
        let mut sim = m.simulation();
        for core in 0..4usize {
            let sl = Arc::clone(&sl);
            let wins = Arc::clone(&wins);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                if sl.remove(ctx, 64) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        sim.run();
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        assert!(sl.collect().is_empty());
        sl.check_invariants();
    }

    #[test]
    fn concurrent_mixed_ops_match_sequential_model_on_disjoint_keys() {
        let (m, sl) = setup(10);
        sl.populate((1..=128u32).map(|k| (k * 8, 0)));
        let mut sim = m.simulation();
        for core in 0..4usize {
            let sl = Arc::clone(&sl);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                // Each thread owns keys  k*8 with k % 4 == core.
                for k in 1..=128u32 {
                    if k as usize % 4 != core {
                        continue;
                    }
                    let key = k * 8;
                    if k % 3 == 0 {
                        assert!(sl.remove(ctx, key));
                    } else {
                        assert!(sl.update(ctx, key, k));
                    }
                }
            });
        }
        sim.run();
        sl.check_invariants();
        let mut model = BTreeMap::new();
        for k in 1..=128u32 {
            if k % 3 != 0 {
                model.insert(k * 8, k);
            }
        }
        let got: BTreeMap<_, _> = sl.collect().into_iter().collect();
        assert_eq!(got, model);
    }

    #[test]
    fn read_skips_marked_nodes() {
        let (_m, sl) = setup(8);
        sl.populate([(8, 1), (16, 2), (24, 3)]);
        // Manually mark node 16 as deleted (simulate a half-done remove).
        run_single(&sl, |ctx, sl| {
            let f = sl.find(ctx, 16);
            let n = f.found.unwrap();
            let (succ, _) = node::read_next(ctx, n, 0);
            assert!(node::cas_next(ctx, n, 0, (succ, false), (succ, true)));
            assert_eq!(sl.read(ctx, 16), None, "marked node invisible to reads");
            assert_eq!(sl.read(ctx, 24).map(|p| p.1), Some(3));
            // find() snips it.
            let f2 = sl.find(ctx, 16);
            assert!(f2.found.is_none());
        });
        sl.check_invariants();
    }

    #[test]
    fn deterministic_concurrent_execution() {
        let final_state = || {
            let (m, sl) = setup(8);
            sl.populate((1..=64u32).map(|k| (k * 8, 0)));
            let mut sim = m.simulation();
            for core in 0..4usize {
                let sl = Arc::clone(&sl);
                sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..40u32 {
                        let key = ((i * 13 + core as u32 * 7) % 80 + 1) * 8;
                        match i % 3 {
                            0 => {
                                sl.insert(ctx, key, i);
                            }
                            1 => {
                                sl.remove(ctx, key);
                            }
                            _ => {
                                sl.read(ctx, key);
                            }
                        }
                    }
                });
            }
            let out = sim.run();
            (out.makespan(), sl.collect())
        };
        assert_eq!(final_state(), final_state());
    }
}
