//! Hybrid skiplist (§3.3): the paper's cache-conscious NMP skiplist.
//!
//! The skiplist is split at level `nmp_height`:
//!
//! * **Host-managed portion** — every node whose height exceeds
//!   `nmp_height` has a host-side counterpart storing its upper levels,
//!   organized as a lock-free skiplist ([`LockFreeSkipList`]). This portion
//!   is sized to fit the last-level cache, effectively pinning it there.
//! * **NMP-managed portion** — *all* keys have a node in the NMP partition
//!   owning their key range, storing levels `0..nmp_height`, maintained
//!   single-threadedly by the partition's NMP core via flat combining.
//!
//! A host-side traversal ends at the bottom host level; its predecessor's
//! `nmp_ptr` becomes the *begin-NMP-traversal node* — a shortcut deep into
//! the NMP-managed lower levels (Listing 1). The NMP core detects stale
//! shortcuts through the logical-deletion flag (Listing 2) and asks the
//! host to retry.
//!
//! Ordering rules for coherence across the split (§3.3): insertions apply
//! NMP-side first, then link the host side; removals apply host-side first,
//! then NMP-side. An insertion/removal linearizes when the NMP portion
//! changes; reads of keys resident in the host portion linearize at the
//! host-side value read.

use std::sync::Arc;

use nmp_sim::analysis::RegionClass;
use nmp_sim::{Addr, EffectSpec, Machine, Simulation, ThreadCtx, NULL};
use workloads::{Key, KeySpace, Op, Value};

use crate::api::{Issued, OpResult, PollOutcome, SimIndex};
use crate::effects::{protocol_op, AccessDecl};
use crate::offload::{OffloadClient, OffloadRuntime, PendingOp, Step};
use crate::publist::{NmpExec, OpCode, Request, Response};

use super::nmp_based::SkiplistExec;
use super::{node, seq, LockFreeSkipList};

/// Hybrid skiplist handle.
pub struct HybridSkipList {
    machine: Arc<Machine>,
    runtime: OffloadRuntime,
    exec: Arc<SkiplistExec>,
    host: LockFreeSkipList,
    nmp_heads: Vec<Addr>,
    nmp_height: u32,
    total_levels: u32,
    ks: KeySpace,
    seed: u64,
}

/// Choose `(total_levels, nmp_height)` for `n` initial keys and an LLC of
/// `llc_bytes`, following §3.3: the host-managed portion holds the top
/// levels whose cumulative size (≈ `(n >> nmp_height) * 128` bytes,
/// using the paper's 128 B/node estimate) fits the last-level cache.
pub fn split_for(n: u64, llc_bytes: u64) -> (u32, u32) {
    let total = (64 - (n - 1).leading_zeros()).max(4); // ceil(log2 n)
    let mut nh = 1;
    while nh < total - 2 && (n >> nh) * 128 > llc_bytes {
        nh += 1;
    }
    (total, nh)
}

impl HybridSkipList {
    /// Build an empty hybrid skiplist: keys of height `> total_levels -
    /// nmp_height` get a host portion; every key gets an NMP node in the
    /// partition `ks` maps it to.
    pub fn new(
        machine: Arc<Machine>,
        ks: KeySpace,
        total_levels: u32,
        nmp_height: u32,
        seed: u64,
        max_inflight: usize,
    ) -> Arc<Self> {
        assert!(nmp_height >= 1 && nmp_height < total_levels);
        assert_eq!(machine.partitions() as u32, ks.parts);
        let host = LockFreeSkipList::new(Arc::clone(&machine), total_levels - nmp_height, seed);
        let nmp_heads: Vec<Addr> = (0..machine.partitions())
            .map(|p| seq::make_sentinel(machine.part_arena(p), machine.ram(), nmp_height))
            .collect();
        let runtime = OffloadRuntime::new(Arc::clone(&machine), max_inflight);
        let exec = Arc::new(SkiplistExec::new(Arc::clone(&machine), nmp_heads.clone(), nmp_height));
        Arc::new(HybridSkipList {
            machine,
            runtime,
            exec,
            host,
            nmp_heads,
            nmp_height,
            total_levels,
            ks,
            seed,
        })
    }

    /// Levels managed by the NMP side (the paper's split point).
    pub fn nmp_height(&self) -> u32 {
        self.nmp_height
    }

    /// Total levels across both portions.
    pub fn total_levels(&self) -> u32 {
        self.total_levels
    }

    /// Levels managed by the host side (`total - nmp_height`).
    pub fn host_levels(&self) -> u32 {
        self.total_levels - self.nmp_height
    }

    /// Full (global) height drawn for `key`.
    pub fn height_of(&self, key: Key) -> u32 {
        node::height_for_key(key, self.seed, self.total_levels)
    }

    /// Bytes of host-managed nodes currently allocated (for checking the
    /// host portion against the LLC size).
    pub fn host_bytes(&self) -> u64 {
        self.machine.host_arena().live_bytes()
    }

    /// Untimed bulk population from ascending `(key, value)` pairs.
    pub fn populate(&self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        let ram = self.machine.ram();
        let nh = self.nmp_height;
        let mut nmp_last: Vec<Vec<Addr>> =
            self.nmp_heads.iter().map(|&h| vec![h; nh as usize]).collect();
        let mut host_last = vec![self.host.head(); self.host_levels() as usize];
        for (key, value) in pairs {
            let part = self.ks.partition_of(key) as usize;
            let h = self.height_of(key);
            let stored = h.min(nh);
            let n = node::alloc_node(self.machine.part_arena(part), stored);
            node::raw_init(ram, n, key, value, h, stored, NULL);
            for l in 0..stored {
                node::raw_set_next(ram, nmp_last[part][l as usize], l, n, false);
                nmp_last[part][l as usize] = n;
            }
            if h > nh {
                let hl = h - nh;
                let hn = node::alloc_node(self.machine.host_arena(), hl);
                node::raw_init(ram, hn, key, value, h, hl, n);
                for l in 0..hl {
                    node::raw_set_next(ram, host_last[l as usize], l, hn, false);
                    host_last[l as usize] = hn;
                }
                node::raw_set_cross(ram, n, hn);
            }
        }
    }

    /// Begin-NMP-traversal pointer for an operation on `key` whose
    /// bottom-host-level predecessor is `pred0` (Listing 1, lines 14-15):
    /// usable only when the predecessor lives in the same partition.
    fn begin_for(&self, ctx: &mut ThreadCtx, pred0: Addr, key: Key) -> Addr {
        if pred0 == self.host.head() {
            return NULL;
        }
        let hdr = node::read_header(ctx, pred0);
        ctx.step();
        if self.ks.partition_of(hdr.key) == self.ks.partition_of(key) {
            node::read_cross(ctx, pred0)
        } else {
            NULL
        }
    }

    /// Host phase of an operation: traverse the host portion, apply any
    /// host-first effects, and either finish host-side or build the request
    /// to offload. Returns `Err(result)` when completed host-side.
    fn host_phase(
        &self,
        ctx: &mut ThreadCtx,
        op: Op,
        host_node: &mut Addr,
    ) -> Result<(usize, Request), OpResult> {
        match op {
            Op::Read(key) => {
                let (pred0, found) = self.host.read_with_pred(ctx, key);
                if let Some((_, v)) = found {
                    // Served entirely from the (cache-resident) host portion.
                    return Err(OpResult::ok(v));
                }
                let begin = self.begin_for(ctx, pred0, key);
                let mut req = Request::new(OpCode::Read, key, 0);
                req.begin = begin;
                Ok((self.ks.partition_of(key) as usize, req))
            }
            Op::Update(key, value) => {
                let (pred0, _) = self.host.read_with_pred(ctx, key);
                let begin = self.begin_for(ctx, pred0, key);
                let mut req = Request::new(OpCode::Update, key, value);
                req.begin = begin;
                Ok((self.ks.partition_of(key) as usize, req))
            }
            Op::Insert(key, value) => {
                let f = self.host.find(ctx, key);
                if f.found.is_some() {
                    self.release_host_node(ctx, host_node, key);
                    return Err(OpResult::fail()); // duplicate visible host-side
                }
                let h = self.height_of(key);
                if h > self.nmp_height && *host_node == NULL {
                    let stored = h - self.nmp_height;
                    *host_node = node::alloc_node(self.machine.host_arena(), stored);
                    node::init_node(ctx, *host_node, key, value, h, stored, NULL);
                }
                let begin = self.begin_for(ctx, f.preds[0], key);
                let mut req = Request::new(OpCode::Insert, key, value);
                req.begin = begin;
                req.host_ptr = *host_node;
                req.aux = h;
                Ok((self.ks.partition_of(key) as usize, req))
            }
            Op::Remove(key) => {
                let f = self.host.find(ctx, key);
                if f.found.is_some() {
                    // Removals are applied host-side first (§3.3).
                    self.host.remove(ctx, key);
                }
                let begin = self.begin_for(ctx, f.preds[0], key);
                let mut req = Request::new(OpCode::Remove, key, 0);
                req.begin = begin;
                Ok((self.ks.partition_of(key) as usize, req))
            }
            Op::Scan(..) => unreachable!("scans are driven by the scan cursor in advance"),
            // Not a search-tree operation (priority queues only).
            Op::ExtractMin => Err(OpResult::fail()),
        }
    }

    /// Next partition-local request of a multi-partition range scan over the
    /// NMP-managed bottom level (the authoritative key sequence), using a
    /// begin-node shortcut where the host portion provides one. Re-invoked
    /// by the runtime on retry (stale begin node), which naturally redoes
    /// the host traversal for the current partition.
    fn scan_step(&self, ctx: &mut ThreadCtx, st: &HyOpState) -> Step {
        if st.remaining == 0 || st.part >= self.ks.parts as usize {
            return Step::Done(OpResult { ok: st.count > 0, value: st.count });
        }
        let (pred0, _) = self.host.read_with_pred(ctx, st.from);
        let begin = self.begin_for(ctx, pred0, st.from);
        let mut req = Request::new(OpCode::Scan, st.from, 0);
        req.begin = begin;
        req.aux = st.remaining;
        Step::Post { part: st.part, req }
    }

    fn release_host_node(&self, _ctx: &mut ThreadCtx, host_node: &mut Addr, key: Key) {
        if *host_node != NULL {
            let stored = self.height_of(key) - self.nmp_height;
            node::free_node(self.machine.host_arena(), *host_node, stored);
            *host_node = NULL;
        }
    }

    /// Host-side completion after the NMP response (Listing 1, lines 20-29).
    fn finish(
        &self,
        ctx: &mut ThreadCtx,
        op: Op,
        resp: &Response,
        host_node: &mut Addr,
    ) -> OpResult {
        match op {
            Op::Read(_) => OpResult { ok: resp.ok, value: resp.value },
            Op::Update(key, value) => {
                if resp.ok && resp.value != NULL {
                    // Propagate the new value into the host-side node so
                    // future host-served reads observe it (§3.3).
                    node::write_value(ctx, resp.value, value);
                    let _ = key;
                }
                OpResult { ok: resp.ok, value: 0 }
            }
            Op::Scan(..) | Op::ExtractMin => unreachable!("never offloaded, never reach finish()"),
            Op::Insert(key, _) => {
                if !resp.ok {
                    self.release_host_node(ctx, host_node, key);
                    return OpResult::fail();
                }
                if *host_node != NULL {
                    node::write_cross(ctx, *host_node, resp.new_ptr);
                    let stored = self.height_of(key) - self.nmp_height;
                    self.host.link_node(ctx, *host_node, stored, key);
                    *host_node = NULL;
                }
                OpResult { ok: true, value: 0 }
            }
            Op::Remove(_) => OpResult { ok: resp.ok, value: 0 },
        }
    }

    // ---- untimed inspection ----

    /// Live `(key, value)` pairs (the NMP-managed portion is the source of
    /// truth), ascending.
    pub fn collect(&self) -> Vec<(Key, Value)> {
        let ram = self.machine.ram();
        let mut out = Vec::new();
        for &head in &self.nmp_heads {
            let (mut cur, _) = node::raw_next(ram, head, 0);
            while cur != NULL {
                let hdr = node::raw_header(ram, cur);
                if !hdr.deleted {
                    out.push((hdr.key, node::raw_value(ram, cur)));
                }
                let (nxt, _) = node::raw_next(ram, cur, 0);
                cur = nxt;
            }
        }
        out
    }

    /// Structural invariants at quiescence:
    /// * skiplist property in the host portion and in each partition,
    /// * partition containment of NMP keys,
    /// * host↔NMP cross-pointer agreement (every live host node points to a
    ///   live NMP node with the same key, which points back),
    /// * the host portion holds exactly the live keys taller than
    ///   `nmp_height`.
    pub fn check_invariants(&self) {
        let ram = self.machine.ram();
        self.host.check_invariants();
        let mut tall_live = Vec::new();
        for (p, &head) in self.nmp_heads.iter().enumerate() {
            let mut prev = 0;
            let (mut cur, _) = node::raw_next(ram, head, 0);
            while cur != NULL {
                let hdr = node::raw_header(ram, cur);
                assert!(!hdr.deleted, "deleted node still linked in partition {p}");
                assert!(hdr.key > prev, "partition {p} unsorted");
                prev = hdr.key;
                assert_eq!(self.ks.partition_of(hdr.key) as usize, p, "key in wrong partition");
                if hdr.height > self.nmp_height {
                    tall_live.push((hdr.key, cur, node::raw_cross(ram, cur)));
                }
                let (nxt, _) = node::raw_next(ram, cur, 0);
                cur = nxt;
            }
        }
        // Host portion = exactly the live tall keys, with matching pointers.
        let host_pairs = self.host.collect();
        let host_keys: Vec<Key> = host_pairs.iter().map(|&(k, _)| k).collect();
        let tall_keys: Vec<Key> = tall_live.iter().map(|&(k, _, _)| k).collect();
        assert_eq!(host_keys, tall_keys, "host portion diverges from tall live keys");
        for &(key, nmp_node, host_ptr) in &tall_live {
            assert_ne!(host_ptr, NULL, "tall NMP node {key} lacks host back-pointer");
            let hh = node::raw_header(ram, host_ptr);
            assert_eq!(hh.key, key, "host counterpart key mismatch");
            assert_eq!(node::raw_cross(ram, host_ptr), nmp_node, "host nmp_ptr mismatch");
        }
    }
}

/// Per-operation offload state: the host-side node held across an insert
/// offload (NULL when none) plus the partition-hopping scan cursor.
#[derive(Default)]
pub struct HyOpState {
    host_node: Addr,
    started: bool,
    part: usize,
    from: Key,
    remaining: u32,
    count: u32,
}

impl OffloadClient for HybridSkipList {
    type OpState = HyOpState;

    fn advance(&self, ctx: &mut ThreadCtx, op: Op, st: &mut HyOpState) -> Step {
        if let Op::Scan(k, len) = op {
            if !st.started {
                st.started = true;
                st.part = self.ks.partition_of(k) as usize;
                st.from = k;
                st.remaining = len as u32;
            }
            return self.scan_step(ctx, st);
        }
        match self.host_phase(ctx, op, &mut st.host_node) {
            Err(done) => Step::Done(done),
            Ok((part, req)) => Step::Post { part, req },
        }
    }

    fn complete(&self, ctx: &mut ThreadCtx, op: Op, resp: &Response, st: &mut HyOpState) -> Step {
        if matches!(op, Op::Scan(..)) {
            st.count += resp.value;
            st.remaining = st.remaining.saturating_sub(resp.value);
            st.part += 1;
            if st.part < self.ks.parts as usize {
                st.from = self.ks.part_base(st.part as u32);
            }
            return self.scan_step(ctx, st);
        }
        Step::Done(self.finish(ctx, op, resp, &mut st.host_node))
    }

    fn effect_spec(&self) -> EffectSpec {
        // Host half: every op traverses the lock-free host portion, whose
        // find may help-unlink marked nodes with a CAS; inserts build and
        // link the host counterpart; updates release-store its value word
        // (observed by the CAS-carrying traversals, hence untagged pairing).
        let walk =
            [AccessDecl::read(RegionClass::Host), AccessDecl::write(RegionClass::Host).cas()];
        let link = [
            AccessDecl::read(RegionClass::Host),
            AccessDecl::write(RegionClass::Host),
            AccessDecl::write(RegionClass::Host).cas(),
        ];
        let publish = [
            AccessDecl::read(RegionClass::Host),
            AccessDecl::write(RegionClass::Host).cas(),
            AccessDecl::write(RegionClass::Host).release(),
        ];
        EffectSpec::new("hybrid-skiplist")
            .op(protocol_op(OpCode::Read, "Read").host_all(&walk))
            .op(protocol_op(OpCode::Scan, "Scan").host_all(&walk))
            .op(protocol_op(OpCode::Update, "Update").host_all(&publish))
            .op(protocol_op(OpCode::Insert, "Insert").host_all(&link))
            .op(protocol_op(OpCode::Remove, "Remove").host_all(&walk))
    }
}

impl SimIndex for HybridSkipList {
    type Pending = PendingOp<HyOpState>;

    fn execute(&self, ctx: &mut ThreadCtx, op: Op) -> OpResult {
        self.runtime.execute(ctx, self, op)
    }

    fn issue(&self, ctx: &mut ThreadCtx, lane: usize, op: Op) -> Issued<Self::Pending> {
        self.runtime.issue(ctx, self, lane, op)
    }

    fn poll(&self, ctx: &mut ThreadCtx, pending: &mut Self::Pending) -> PollOutcome {
        self.runtime.poll(ctx, self, pending)
    }

    fn effect_spec(&self) -> EffectSpec {
        OffloadClient::effect_spec(self).merged(NmpExec::effect_spec(&*self.exec))
    }

    fn spawn_services(self: &Arc<Self>, sim: &mut Simulation) {
        self.runtime.register_spec(&SimIndex::effect_spec(&**self));
        self.runtime.spawn_combiners(sim, Arc::clone(&self.exec));
    }

    fn max_inflight(&self) -> usize {
        self.runtime.max_inflight()
    }

    fn occupancy_feedback(&self, core: usize) -> u32 {
        self.runtime.occupancy_feedback(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, ThreadKind};
    use std::collections::BTreeMap;

    const TOTAL: u32 = 10;
    const NH: u32 = 4;

    fn setup() -> (Arc<Machine>, Arc<HybridSkipList>, KeySpace) {
        let m = Machine::new(Config::tiny());
        let ks = KeySpace::new(256, 2, 64);
        let sl = HybridSkipList::new(Arc::clone(&m), ks, TOTAL, NH, 42, 2);
        (m, sl, ks)
    }

    fn run_hosts(
        m: &Arc<Machine>,
        sl: &Arc<HybridSkipList>,
        threads: usize,
        f: impl Fn(&mut ThreadCtx, &HybridSkipList, usize) + Send + Sync + 'static,
    ) {
        let mut sim = m.simulation();
        sl.spawn_services(&mut sim);
        let f = Arc::new(f);
        for core in 0..threads {
            let sl = Arc::clone(sl);
            let f = Arc::clone(&f);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| f(ctx, &sl, core));
        }
        sim.run();
    }

    /// Find an initial key with height > NH (tall) and one with height <=
    /// NH (short) under the test seed.
    fn tall_and_short(sl: &HybridSkipList, ks: &KeySpace) -> (Key, Key) {
        let mut tall = None;
        let mut short = None;
        for i in 0..ks.total_initial() {
            let k = ks.initial_key(i);
            if sl.height_of(k) > NH {
                tall.get_or_insert(k);
            } else {
                short.get_or_insert(k);
            }
        }
        (tall.expect("no tall key"), short.expect("no short key"))
    }

    #[test]
    fn split_for_matches_paper_scale() {
        // 2^22 keys, 1 MB LLC -> 22 levels total, top 13 host-managed.
        let (total, nh) = split_for(1 << 22, 1 << 20);
        assert_eq!(total, 22);
        assert_eq!(total - nh, 13);
    }

    #[test]
    fn populate_splits_by_height() {
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
        sl.check_invariants();
        assert_eq!(sl.collect().len(), ks.total_initial() as usize);
        let (tall, _short) = tall_and_short(&sl, &ks);
        // Tall key visible in the host portion.
        assert!(sl.host.collect().iter().any(|&(k, _)| k == tall));
        let _ = m;
    }

    #[test]
    fn read_tall_key_is_host_served() {
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i + 1)));
        let (tall, short) = tall_and_short(&sl, &ks);
        run_hosts(&m, &sl, 1, move |ctx, sl, _| {
            let before = ctx.mem().snapshot().mmio_writes;
            let r = sl.execute(ctx, Op::Read(tall));
            assert!(r.ok);
            let after_tall = ctx.mem().snapshot().mmio_writes;
            assert_eq!(before, after_tall, "tall read must not offload");
            let r = sl.execute(ctx, Op::Read(short));
            assert!(r.ok);
            let after_short = ctx.mem().snapshot().mmio_writes;
            assert!(after_short > after_tall, "short read must offload");
        });
    }

    #[test]
    fn insert_read_remove_roundtrip_tall_and_short() {
        let (m, sl, ks) = setup();
        sl.populate((0..64).map(|i| (ks.initial_key(i), 0)));
        run_hosts(&m, &sl, 1, move |ctx, sl, _| {
            // Find gap keys of both classes.
            let mut tall = None;
            let mut short = None;
            for i in 0..64u32 {
                let k = ks.initial_key(i) + 1;
                if sl.height_of(k) > NH {
                    tall.get_or_insert(k);
                } else {
                    short.get_or_insert(k);
                }
            }
            for key in [tall.unwrap(), short.unwrap()] {
                assert!(sl.execute(ctx, Op::Insert(key, key)).ok, "insert {key}");
                assert!(!sl.execute(ctx, Op::Insert(key, 0)).ok, "dup {key}");
                assert_eq!(sl.execute(ctx, Op::Read(key)), OpResult::ok(key));
                assert!(sl.execute(ctx, Op::Update(key, key + 1)).ok);
                assert_eq!(sl.execute(ctx, Op::Read(key)), OpResult::ok(key + 1));
                assert!(sl.execute(ctx, Op::Remove(key)).ok);
                assert!(!sl.execute(ctx, Op::Remove(key)).ok);
                assert!(!sl.execute(ctx, Op::Read(key)).ok);
            }
        });
        sl.check_invariants();
    }

    #[test]
    fn update_propagates_to_host_copy() {
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 5)));
        let (tall, _) = tall_and_short(&sl, &ks);
        run_hosts(&m, &sl, 1, move |ctx, sl, _| {
            assert!(sl.execute(ctx, Op::Update(tall, 99)).ok);
            // Host-served read must observe the updated value.
            let before = ctx.mem().snapshot().mmio_writes;
            assert_eq!(sl.execute(ctx, Op::Read(tall)), OpResult::ok(99));
            assert_eq!(ctx.mem().snapshot().mmio_writes, before);
        });
        sl.check_invariants();
    }

    #[test]
    fn stale_begin_node_triggers_retry() {
        use crate::publist::NmpExec;
        // Drive the executor directly: a request whose begin node is
        // logically deleted must come back with the retry flag.
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 0)));
        let (tall, _) = tall_and_short(&sl, &ks);
        let part = ks.partition_of(tall) as usize;
        // Locate the tall key's NMP node and mark it deleted.
        let ram = m.ram();
        let (mut cur, _) = node::raw_next(ram, sl.nmp_heads[part], 0);
        let mut target = NULL;
        while cur != NULL {
            if node::raw_header(ram, cur).key == tall {
                target = cur;
                break;
            }
            cur = node::raw_next(ram, cur, 0).0;
        }
        assert_ne!(target, NULL);
        ram.write_u64(target, ram.read_u64(target) | (1 << 40)); // deleted flag
        let exec = Arc::clone(&sl.exec);
        let mut sim = m.simulation();
        sim.spawn("nmp", ThreadKind::Nmp { part }, move |ctx| {
            let mut req = Request::new(OpCode::Read, tall + 2, 0);
            req.begin = target;
            let resp = exec.exec(ctx, part, &req, &mut ());
            assert!(resp.retry, "stale begin node must request a retry");
        });
        sim.run();
    }

    #[test]
    fn concurrent_disjoint_ops_match_model() {
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 0)));
        run_hosts(&m, &sl, 4, move |ctx, sl, core| {
            for i in 0..ks.total_initial() {
                if i as usize % 4 != core {
                    continue;
                }
                let key = ks.initial_key(i);
                match i % 4 {
                    0 => assert!(sl.execute(ctx, Op::Remove(key)).ok),
                    1 => assert!(sl.execute(ctx, Op::Update(key, i)).ok),
                    2 => assert!(sl.execute(ctx, Op::Insert(key + 1, i)).ok),
                    _ => assert!(sl.execute(ctx, Op::Read(key)).ok),
                }
            }
        });
        sl.check_invariants();
        let mut model = BTreeMap::new();
        for i in 0..ks.total_initial() {
            match i % 4 {
                0 => {}
                1 => {
                    model.insert(ks.initial_key(i), i);
                }
                2 => {
                    model.insert(ks.initial_key(i), 0);
                    model.insert(ks.initial_key(i) + 1, i);
                }
                _ => {
                    model.insert(ks.initial_key(i), 0);
                }
            }
        }
        let got: BTreeMap<_, _> = sl.collect().into_iter().collect();
        assert_eq!(got, model);
    }

    #[test]
    fn concurrent_same_key_insert_one_winner() {
        let (m, sl, ks) = setup();
        let key = ks.initial_key(10);
        let wins = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut sim = m.simulation();
        sl.spawn_services(&mut sim);
        for core in 0..4usize {
            let sl = Arc::clone(&sl);
            let wins = Arc::clone(&wins);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                if sl.execute(ctx, Op::Insert(key, core as u32)).ok {
                    wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        sim.run();
        assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(sl.collect().len(), 1);
        sl.check_invariants();
    }

    #[test]
    fn nonblocking_pipeline_mixed_ops() {
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 1)));
        run_hosts(&m, &sl, 2, move |ctx, sl, core| {
            let mut lanes: Vec<Option<PendingOp<HyOpState>>> = vec![None, None];
            let mut issued = 0u32;
            let mut done = 0u32;
            let total = 40u32;
            while done < total {
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    match slot.take() {
                        None if issued < total => {
                            let i = issued * 2 + core as u32;
                            let key = ks.initial_key(i % ks.total_initial());
                            let op = match issued % 3 {
                                0 => Op::Read(key),
                                1 => Op::Update(key, issued),
                                _ => Op::Insert(key + 3 + core as u32, issued),
                            };
                            issued += 1;
                            match sl.issue(ctx, lane, op) {
                                Issued::Done(_) => done += 1,
                                Issued::Pending(p) => *slot = Some(p),
                            }
                        }
                        None => {}
                        Some(mut p) => match sl.poll(ctx, &mut p) {
                            PollOutcome::Done(_) => done += 1,
                            PollOutcome::Pending => *slot = Some(p),
                        },
                    }
                }
                ctx.idle(20);
            }
        });
        sl.check_invariants();
    }

    #[test]
    fn deterministic_replay() {
        let world = || {
            let (m, sl, ks) = setup();
            sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 0)));
            let mut sim = m.simulation();
            sl.spawn_services(&mut sim);
            for core in 0..3usize {
                let sl = Arc::clone(&sl);
                sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..25u32 {
                        let key = ks.initial_key((i * 11 + core as u32 * 5) % ks.total_initial());
                        match i % 3 {
                            0 => drop(sl.execute(ctx, Op::Remove(key))),
                            1 => drop(sl.execute(ctx, Op::Insert(key, i))),
                            _ => drop(sl.execute(ctx, Op::Read(key))),
                        }
                    }
                });
            }
            let out = sim.run();
            (out.makespan(), sl.collect())
        };
        assert_eq!(world(), world());
    }

    #[test]
    fn hybrid_reads_fewer_dram_reads_than_nmp_traversal() {
        // Sanity of the core claim at unit scale: with the host portion
        // warm, a host-served read touches no DRAM at all.
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 1)));
        let (tall, _) = tall_and_short(&sl, &ks);
        run_hosts(&m, &sl, 1, move |ctx, sl, _| {
            let _ = sl.execute(ctx, Op::Read(tall)); // warm
            let before = ctx.mem().snapshot().dram_reads();
            let _ = sl.execute(ctx, Op::Read(tall));
            let after = ctx.mem().snapshot().dram_reads();
            assert_eq!(before, after, "warm host-served read hits caches only");
        });
    }
}
