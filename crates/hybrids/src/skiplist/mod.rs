//! Skiplist family: lock-free baseline, NMP-based flat-combining baseline,
//! and the hybrid skiplist of §3.3.

pub mod hybrid;
pub mod lockfree;
pub mod nmp_based;
pub mod node;
pub mod seq;

pub use hybrid::HybridSkipList;
pub use lockfree::LockFreeSkipList;
pub use nmp_based::NmpSkipList;
