//! Single-threaded skiplist operations, as executed by an NMP core on the
//! portion of a skiplist stored in its partition (§3.2–3.3).
//!
//! Each NMP core has exclusive access to its partition, so these routines
//! use plain (uncontended) reads and writes — but every access is timed
//! through the NMP core's node buffer + vault model via [`ThreadCtx`].
//!
//! Traversals may start either at the partition's full-height sentinel or
//! at a *begin-NMP-traversal node* supplied by the host (which, in the
//! hybrid skiplist, is always the full-height NMP counterpart of a
//! host-managed node).

use nmp_sim::{Addr, Arena, ThreadCtx, NULL};
use workloads::{Key, Value};

use super::node;

/// Result of a single-threaded traversal.
pub struct SeqFound {
    /// Predecessor at each level `0..levels` (nodes with `key < target`).
    pub preds: Vec<Addr>,
    /// Node with exactly the target key, if present.
    pub found: Option<Addr>,
}

/// Allocate and zero a partition sentinel with `levels` next pointers.
pub fn make_sentinel(arena: &Arena, ram: &dyn nmp_sim::MemBackend, levels: u32) -> Addr {
    let head = node::alloc_node(arena, levels);
    node::raw_init(ram, head, 0, 0, levels, levels, NULL);
    head
}

/// Top-down traversal from `start` (a full-height node whose key is `<=`
/// every key reachable below it). Fills predecessors at every level.
pub fn find(ctx: &mut ThreadCtx, start: Addr, levels: u32, key: Key) -> SeqFound {
    let mut preds = vec![start; levels as usize];
    let mut curr = start;
    for l in (0..levels).rev() {
        loop {
            let (nxt, _) = node::read_next(ctx, curr, l);
            if nxt == NULL {
                break;
            }
            let h = node::read_header(ctx, nxt);
            ctx.step();
            if h.key < key {
                curr = nxt;
            } else {
                break;
            }
        }
        preds[l as usize] = curr;
    }
    let (cand, _) = node::read_next(ctx, curr, 0);
    let found =
        if cand != NULL && node::read_header(ctx, cand).key == key { Some(cand) } else { None };
    SeqFound { preds, found }
}

/// Insert `key` if absent. `height` is the key's full height; the stored
/// level count is capped at `levels` (Listing 2, lines 18–21). Returns the
/// new node's address, or `None` on duplicate.
#[allow(clippy::too_many_arguments)]
pub fn insert(
    ctx: &mut ThreadCtx,
    arena: &Arena,
    start: Addr,
    levels: u32,
    key: Key,
    value: Value,
    height: u32,
    host_ptr: Addr,
) -> Option<Addr> {
    let f = find(ctx, start, levels, key);
    if f.found.is_some() {
        return None;
    }
    let stored = height.min(levels);
    let n = node::alloc_node(arena, stored);
    node::init_node(ctx, n, key, value, height, stored, host_ptr);
    for l in 0..stored {
        let (succ, _) = node::read_next(ctx, f.preds[l as usize], l);
        node::write_next(ctx, n, l, succ, false);
        node::write_next(ctx, f.preds[l as usize], l, n, false);
    }
    Some(n)
}

/// Remove `key` if present: first mark the node logically deleted, then
/// physically unlink it (§3.3 — the logical mark lets a concurrent
/// operation detect that its begin-NMP-traversal node is stale).
pub fn remove(ctx: &mut ThreadCtx, start: Addr, levels: u32, key: Key) -> bool {
    let f = find(ctx, start, levels, key);
    let Some(n) = f.found else {
        return false;
    };
    node::mark_deleted(ctx, n);
    let stored = ((ctx.read_u64(n + 16) >> 32) & 0xFF) as u32;
    for l in (0..stored).rev() {
        let (succ, _) = node::read_next(ctx, n, l);
        let (pn, _) = node::read_next(ctx, f.preds[l as usize], l);
        if pn == n {
            node::write_next(ctx, f.preds[l as usize], l, succ, false);
        }
    }
    true
}

/// Read the value for `key`.
pub fn read(ctx: &mut ThreadCtx, start: Addr, levels: u32, key: Key) -> Option<Value> {
    find(ctx, start, levels, key).found.map(|n| node::read_value(ctx, n))
}

/// Update the value of `key`; returns the node's host-side counterpart
/// pointer (NULL if none) so the host can propagate the new value (§3.3).
pub fn update(
    ctx: &mut ThreadCtx,
    start: Addr,
    levels: u32,
    key: Key,
    value: Value,
) -> Option<Addr> {
    let n = find(ctx, start, levels, key).found?;
    node::write_value(ctx, n, value);
    Some(node::read_cross(ctx, n))
}

/// Range scan: walk level 0 from the first key `>= key`, reading up to
/// `len` live pairs (the chain is partition-local, so the walk naturally
/// stops at the partition boundary). Returns the number of pairs read.
pub fn scan(ctx: &mut ThreadCtx, start: Addr, levels: u32, key: Key, len: u32) -> u32 {
    let f = find(ctx, start, levels, key);
    let (mut cur, _) = node::read_next(ctx, f.preds[0], 0);
    let mut count = 0;
    while cur != NULL && count < len {
        let _value = node::read_value(ctx, cur);
        count += 1;
        let (nxt, _) = node::read_next(ctx, cur, 0);
        cur = nxt;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, Machine, ThreadKind};
    use std::sync::Arc;

    const LV: u32 = 6;

    /// Run a closure on NMP core 0 with a fresh sentinel; returns results
    /// via the closure's captured state.
    fn on_nmp(f: impl FnOnce(&mut ThreadCtx, &Arena, Addr) + Send + 'static) {
        let m = Machine::new(Config::tiny());
        let head = make_sentinel(m.part_arena(0), m.ram(), LV);
        let mut sim = m.simulation();
        let m2 = Arc::clone(&m);
        sim.spawn("nmp0", ThreadKind::Nmp { part: 0 }, move |ctx| {
            f(ctx, m2.part_arena(0), head);
        });
        sim.run();
    }

    #[test]
    fn insert_then_read() {
        on_nmp(|ctx, arena, head| {
            assert!(insert(ctx, arena, head, LV, 100, 7, 3, NULL).is_some());
            assert_eq!(read(ctx, head, LV, 100), Some(7));
            assert_eq!(read(ctx, head, LV, 101), None);
        });
    }

    #[test]
    fn duplicate_insert_rejected() {
        on_nmp(|ctx, arena, head| {
            assert!(insert(ctx, arena, head, LV, 5, 1, 2, NULL).is_some());
            assert!(insert(ctx, arena, head, LV, 5, 2, 2, NULL).is_none());
            assert_eq!(read(ctx, head, LV, 5), Some(1));
        });
    }

    #[test]
    fn remove_marks_deleted_before_unlink() {
        on_nmp(|ctx, arena, head| {
            let n = insert(ctx, arena, head, LV, 9, 9, 1, NULL).unwrap();
            assert!(remove(ctx, head, LV, 9));
            assert_eq!(read(ctx, head, LV, 9), None);
            // Logical deletion flag survives physical unlink.
            assert!(node::read_header(ctx, n).deleted);
            assert!(!remove(ctx, head, LV, 9), "double remove fails");
        });
    }

    #[test]
    fn ordered_iteration_after_mixed_inserts() {
        on_nmp(|ctx, arena, head| {
            for &k in &[50u32, 10, 30, 20, 40] {
                insert(ctx, arena, head, LV, k, k, (k % 5) + 1, NULL);
            }
            // Walk level 0 and check sorted order.
            let mut prev = 0;
            let (mut cur, _) = node::read_next(ctx, head, 0);
            let mut count = 0;
            while cur != NULL {
                let h = node::read_header(ctx, cur);
                assert!(h.key > prev);
                prev = h.key;
                let (nxt, _) = node::read_next(ctx, cur, 0);
                cur = nxt;
                count += 1;
            }
            assert_eq!(count, 5);
        });
    }

    #[test]
    fn height_capped_at_partition_levels() {
        on_nmp(|ctx, arena, head| {
            let n = insert(ctx, arena, head, LV, 7, 7, 31, NULL).unwrap();
            let stored = ((ctx.read_u64(n + 16) >> 32) & 0xFF) as u32;
            assert_eq!(stored, LV);
            let hdr = node::read_header(ctx, n);
            assert_eq!(hdr.height, 31, "full height preserved in header");
        });
    }

    #[test]
    fn begin_node_shortcut_traversal() {
        on_nmp(|ctx, arena, head| {
            for k in 1..=20u32 {
                insert(ctx, arena, head, LV, k * 10, k, LV, NULL);
            }
            // Start from the node with key 100 (full height) and find 150.
            let begin = find(ctx, head, LV, 100).found.unwrap();
            let f = find(ctx, begin, LV, 150);
            assert!(f.found.is_some());
            assert_eq!(node::read_header(ctx, f.found.unwrap()).key, 150);
        });
    }

    #[test]
    fn scan_reads_consecutive_pairs() {
        on_nmp(|ctx, arena, head| {
            for k in 1..=30u32 {
                insert(ctx, arena, head, LV, k * 10, k, 2, NULL);
            }
            assert_eq!(scan(ctx, head, LV, 95, 5), 5, "100..140");
            assert_eq!(scan(ctx, head, LV, 295, 100), 1, "only 300 left");
            assert_eq!(scan(ctx, head, LV, 301, 10), 0, "past the end");
            assert_eq!(scan(ctx, head, LV, 0, 1000), 30, "whole partition");
        });
    }

    #[test]
    fn update_returns_host_ptr() {
        on_nmp(|ctx, arena, head| {
            insert(ctx, arena, head, LV, 11, 1, 2, 0xAB0).unwrap();
            let hp = update(ctx, head, LV, 11, 99);
            assert_eq!(hp, Some(0xAB0));
            assert_eq!(read(ctx, head, LV, 11), Some(99));
            assert_eq!(update(ctx, head, LV, 12, 1), None);
        });
    }
}
