//! Skiplist node layout in simulated memory.
//!
//! ```text
//! w0  key (lo u32) | height (bits 32..40) | deleted flag (bit 40)
//! w1  value (lo u32)
//! w2  cross pointer (lo u32) | stored levels (bits 32..40)
//! w3+ next pointer per stored level: addr (lo u32) with mark in bit 0
//! ```
//!
//! * `height` is the node's full height drawn from the geometric
//!   distribution (shared between the host and NMP portions of a hybrid
//!   node so both sides agree on how the key was classified).
//! * `cross` is the host node's `nmp_ptr` / the NMP node's `host_ptr`.
//! * The *deleted flag* is the NMP-side logical-deletion mark (§3.3): a
//!   single-threaded NMP core sets it before physically unlinking, so a
//!   stale begin-NMP-traversal pointer is detectable.
//! * Mark bits on next pointers are the lock-free (host-side) deletion
//!   marks of the Herlihy–Lev–Shavit algorithm.

// xtask: accessor-module — all raw (untimed) skiplist memory access lives
// here; everything else must go through these typed helpers.

use nmp_sim::{Addr, MemBackend, ThreadCtx};
use workloads::{mix64, Key, Value};

/// Byte offset of the first next-pointer word.
pub const HDR_BYTES: u32 = 24;

/// Total bytes of a node storing `levels` next pointers, rounded up to a
/// whole number of 128-byte blocks. Nodes are block-aligned so one node
/// occupies exactly one cache block / NMP node-buffer block (up to 13
/// levels) — the cache-conscious layout the paper's 128 B/node sizing
/// assumes, and what makes the NMP core's single node-size register buffer
/// effective (§2).
pub fn node_bytes(levels: u32) -> u32 {
    (HDR_BYTES + 8 * levels).div_ceil(128) * 128
}

/// Alignment of every skiplist node.
pub const NODE_ALIGN: u32 = 128;

/// Allocate one block-aligned node with `levels` next pointers.
pub fn alloc_node(arena: &nmp_sim::Arena, levels: u32) -> nmp_sim::Addr {
    arena.alloc_aligned(node_bytes(levels), NODE_ALIGN)
}

/// Return a node to its arena.
pub fn free_node(arena: &nmp_sim::Arena, node: nmp_sim::Addr, levels: u32) {
    arena.free(node, node_bytes(levels), NODE_ALIGN);
}

/// Byte offset of the level-`l` next pointer.
#[inline]
pub fn next_off(l: u32) -> u32 {
    HDR_BYTES + 8 * l
}

const DELETED_BIT: u64 = 1 << 40;

#[inline]
fn pack_w0(key: Key, height: u32) -> u64 {
    key as u64 | ((height as u64 & 0xFF) << 32)
}

#[inline]
fn pack_w2(cross: Addr, levels: u32) -> u64 {
    cross as u64 | ((levels as u64 & 0xFF) << 32)
}

/// Decoded header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// The node's key.
    pub key: Key,
    /// Full geometric height (shared across a hybrid node's two halves).
    pub height: u32,
    /// NMP-side logical-deletion flag (§3.3).
    pub deleted: bool,
}

#[inline]
fn unpack_w0(w: u64) -> Header {
    Header { key: w as u32, height: ((w >> 32) & 0xFF) as u32, deleted: w & DELETED_BIT != 0 }
}

/// Decoded next pointer: `(successor, mark)`.
#[inline]
pub fn unpack_next(w: u64) -> (Addr, bool) {
    ((w as u32) & !1, w & 1 != 0)
}

/// Encode a next pointer (mark in bit 0; inverse of [`unpack_next`]).
#[inline]
pub fn pack_next(ptr: Addr, mark: bool) -> u64 {
    debug_assert_eq!(ptr & 1, 0);
    (ptr | mark as u32) as u64
}

/// Deterministic node height for `key` under `seed`: geometric p = 1/2,
/// in `[1, max]`. Deriving the height from the key keeps whole simulations
/// reproducible and keeps the host/NMP split classification of a key stable
/// across structures being compared.
pub fn height_for_key(key: Key, seed: u64, max: u32) -> u32 {
    let bits = mix64(seed ^ ((key as u64) << 1) ^ 0x5EED_0001);
    (bits.trailing_ones() + 1).min(max)
}

// ---- untimed (population / invariant checking) ----

/// Untimed node initialization: header, value, cross word, null nexts.
pub fn raw_init(
    ram: &dyn MemBackend,
    node: Addr,
    key: Key,
    value: Value,
    height: u32,
    levels: u32,
    cross: Addr,
) {
    ram.write_u64(node, pack_w0(key, height));
    ram.write_u64(node + 8, value as u64);
    ram.write_u64(node + 16, pack_w2(cross, levels));
    for l in 0..levels {
        ram.write_u64(node + next_off(l), pack_next(nmp_sim::NULL, false));
    }
}

/// Untimed read of the header word.
pub fn raw_header(ram: &dyn MemBackend, node: Addr) -> Header {
    unpack_w0(ram.read_u64(node))
}

/// Untimed read of the value word.
pub fn raw_value(ram: &dyn MemBackend, node: Addr) -> Value {
    ram.read_u64(node + 8) as u32
}

/// Untimed read of the stored-levels count (this portion's level count,
/// not the full height).
pub fn raw_levels(ram: &dyn MemBackend, node: Addr) -> u32 {
    ((ram.read_u64(node + 16) >> 32) & 0xFF) as u32
}

/// Untimed read of the cross pointer (host `nmp_ptr` / NMP `host_ptr`).
pub fn raw_cross(ram: &dyn MemBackend, node: Addr) -> Addr {
    ram.read_u64(node + 16) as u32
}

/// Untimed write of the cross pointer (preserves the levels field).
pub fn raw_set_cross(ram: &dyn MemBackend, node: Addr, cross: Addr) {
    let levels = raw_levels(ram, node);
    ram.write_u64(node + 16, pack_w2(cross, levels));
}

/// Untimed read of the level-`l` next pointer.
pub fn raw_next(ram: &dyn MemBackend, node: Addr, l: u32) -> (Addr, bool) {
    unpack_next(ram.read_u64(node + next_off(l)))
}

/// Untimed write of the level-`l` next pointer.
pub fn raw_set_next(ram: &dyn MemBackend, node: Addr, l: u32, ptr: Addr, mark: bool) {
    ram.write_u64(node + next_off(l), pack_next(ptr, mark));
}

// ---- timed (operation execution) ----

/// Timed read of the header word.
pub fn read_header(ctx: &mut ThreadCtx, node: Addr) -> Header {
    unpack_w0(ctx.read_u64(node))
}

/// Set the logical-deletion flag (NMP-side removals, §3.3).
pub fn mark_deleted(ctx: &mut ThreadCtx, node: Addr) {
    let w = ctx.read_u64(node);
    ctx.write_u64(node, w | DELETED_BIT);
}

/// Timed read of the value word.
pub fn read_value(ctx: &mut ThreadCtx, node: Addr) -> Value {
    ctx.read_u64(node + 8) as u32
}

/// Timed in-place value update (release).
pub fn write_value(ctx: &mut ThreadCtx, node: Addr, value: Value) {
    // Release: in-place updates publish the new value to unsynchronized
    // concurrent readers (reads of the value word are plain and race-free
    // because the word itself becomes a sync cell).
    ctx.write_u64_release(node + 8, value as u64);
}

/// Timed read of the cross pointer.
pub fn read_cross(ctx: &mut ThreadCtx, node: Addr) -> Addr {
    ctx.read_u64(node + 16) as u32
}

/// Timed write of the cross pointer (preserves the levels field).
pub fn write_cross(ctx: &mut ThreadCtx, node: Addr, cross: Addr) {
    let levels = ((ctx.read_u64(node + 16) >> 32) & 0xFF) as u32;
    ctx.write_u64(node + 16, pack_w2(cross, levels));
}

/// Timed read of the level-`l` next pointer.
pub fn read_next(ctx: &mut ThreadCtx, node: Addr, l: u32) -> (Addr, bool) {
    unpack_next(ctx.read_u64(node + next_off(l)))
}

/// Timed write of the level-`l` next pointer (single-owner paths only;
/// contended updates go through [`cas_next`]).
pub fn write_next(ctx: &mut ThreadCtx, node: Addr, l: u32, ptr: Addr, mark: bool) {
    ctx.write_u64(node + next_off(l), pack_next(ptr, mark));
}

/// CAS a next pointer from `(old_ptr, old_mark)` to `(new_ptr, new_mark)`.
pub fn cas_next(
    ctx: &mut ThreadCtx,
    node: Addr,
    l: u32,
    old: (Addr, bool),
    new: (Addr, bool),
) -> bool {
    ctx.cas_u64(node + next_off(l), pack_next(old.0, old.1), pack_next(new.0, new.1)).is_ok()
}

/// Timed initialization of a freshly allocated node (the writes a real CPU
/// would perform to construct it).
#[allow(clippy::too_many_arguments)]
pub fn init_node(
    ctx: &mut ThreadCtx,
    node: Addr,
    key: Key,
    value: Value,
    height: u32,
    levels: u32,
    cross: Addr,
) {
    ctx.write_u64(node, pack_w0(key, height));
    ctx.write_u64(node + 8, value as u64);
    ctx.write_u64(node + 16, pack_w2(cross, levels));
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::SimRam;

    #[test]
    fn header_roundtrip() {
        let ram = SimRam::new(4096);
        raw_init(&ram, 64, 0xBEEF, 7, 5, 3, 0x100);
        let h = raw_header(&ram, 64);
        assert_eq!(h.key, 0xBEEF);
        assert_eq!(h.height, 5);
        assert!(!h.deleted);
        assert_eq!(raw_value(&ram, 64), 7);
        assert_eq!(raw_levels(&ram, 64), 3);
        assert_eq!(raw_cross(&ram, 64), 0x100);
    }

    #[test]
    fn next_pack_mark() {
        let (p, m) = unpack_next(pack_next(0x1238, true));
        assert_eq!(p, 0x1238);
        assert!(m);
        let (p, m) = unpack_next(pack_next(0x1238, false));
        assert_eq!(p, 0x1238);
        assert!(!m);
    }

    #[test]
    fn heights_deterministic_and_geometric() {
        let h1 = height_for_key(12345, 9, 32);
        let h2 = height_for_key(12345, 9, 32);
        assert_eq!(h1, h2);
        let n = 100_000u32;
        let ones = (0..n).filter(|k| height_for_key(k * 8, 1, 32) == 1).count();
        assert!((45_000..55_000).contains(&ones), "P(h=1) should be ~1/2, got {ones}");
    }

    #[test]
    fn heights_capped() {
        for k in 0..10_000u32 {
            assert!(height_for_key(k, 2, 4) <= 4);
        }
    }

    #[test]
    fn node_bytes_block_rounded() {
        assert_eq!(node_bytes(1), 128);
        assert_eq!(node_bytes(13), 128, "up to 13 levels fit one block");
        assert_eq!(node_bytes(14), 256);
        assert_eq!(next_off(0), 24);
        assert_eq!(next_off(3), 48);
    }

    #[test]
    fn raw_set_next_roundtrip() {
        let ram = SimRam::new(4096);
        raw_init(&ram, 64, 1, 1, 2, 2, 0);
        raw_set_next(&ram, 64, 1, 0x200, true);
        assert_eq!(raw_next(&ram, 64, 1), (0x200, true));
        assert_eq!(raw_next(&ram, 64, 0), (nmp_sim::NULL, false));
    }

    #[test]
    fn cross_update_preserves_levels() {
        let ram = SimRam::new(4096);
        raw_init(&ram, 64, 1, 1, 6, 4, 0);
        raw_set_cross(&ram, 64, 0xABC0);
        assert_eq!(raw_cross(&ram, 64), 0xABC0);
        assert_eq!(raw_levels(&ram, 64), 4);
    }
}
