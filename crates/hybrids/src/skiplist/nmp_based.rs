//! NMP-based flat-combining skiplist — the prior-work baseline
//! (Liu et al. SPAA '17 \[44\], Choe et al. SPAA '19 \[16\]).
//!
//! The entire skiplist lives in NMP memory, range-partitioned across the
//! NMP vaults. Host threads do **no** traversal at all: they post each
//! operation to the target partition's publication list and the partition's
//! NMP core (the combiner) executes it against its partition-local,
//! single-threaded skiplist. All traversals start at the partition
//! sentinel — the begin-NMP-traversal shortcut of the hybrid design does
//! not exist here.

use std::sync::Arc;

use nmp_sim::analysis::RegionClass;
use nmp_sim::{Addr, EffectSpec, Machine, Simulation, ThreadCtx, NULL};
use workloads::{Key, KeySpace, Op, Value};

use crate::api::{Issued, OpResult, PollOutcome, SimIndex};
use crate::effects::{protocol_op, AccessDecl};
use crate::offload::{OffloadClient, OffloadRuntime, PendingOp, Step};
use crate::publist::{NmpExec, OpCode, Request, Response};

use super::{node, seq};

/// Shared NMP-side executor for skiplist portions (used by both the
/// NMP-based baseline and the NMP-managed portion of the hybrid skiplist).
pub struct SkiplistExec {
    machine: Arc<Machine>,
    heads: Vec<Addr>,
    levels: u32,
}

impl SkiplistExec {
    /// Executor over the per-partition head sentinels in `heads`.
    pub fn new(machine: Arc<Machine>, heads: Vec<Addr>, levels: u32) -> Self {
        SkiplistExec { machine, heads, levels }
    }
}

impl NmpExec for SkiplistExec {
    type SlotState = ();

    // Reads are a pure tower descent (`seq::read`); the begin-node
    // deleted check only turns into a retry response, never a partition
    // write — safe to key-range coalesce.
    fn coalescible_ops(&self) -> &'static [OpCode] {
        &[OpCode::Read]
    }

    fn exec(&self, ctx: &mut ThreadCtx, part: usize, req: &Request, _s: &mut ()) -> Response {
        // Resolve the traversal start: the begin-NMP-traversal node if the
        // host supplied one (and it is still alive), else the sentinel.
        let start = if req.begin != NULL {
            let hdr = node::read_header(ctx, req.begin);
            if hdr.deleted {
                // Stale shortcut: removed by an operation processed earlier
                // in this combiner (Listing 2, lines 7-10).
                return Response::retry();
            }
            req.begin
        } else {
            self.heads[part]
        };
        match req.op {
            OpCode::Read => match seq::read(ctx, start, self.levels, req.key) {
                Some(v) => Response::ok_value(v),
                None => Response::fail(),
            },
            OpCode::Update => {
                match seq::update(ctx, start, self.levels, req.key, req.value) {
                    // Return the host-side counterpart so the host can
                    // propagate the new value (§3.3).
                    Some(host_ptr) => Response { ok: true, value: host_ptr, ..Default::default() },
                    None => Response::fail(),
                }
            }
            OpCode::Insert => {
                let arena = self.machine.part_arena(part);
                match seq::insert(
                    ctx,
                    arena,
                    start,
                    self.levels,
                    req.key,
                    req.value,
                    req.aux, // full height
                    req.host_ptr,
                ) {
                    Some(n) => Response { ok: true, new_ptr: n, ..Default::default() },
                    None => Response::fail(), // duplicate
                }
            }
            OpCode::Remove => {
                if seq::remove(ctx, start, self.levels, req.key) {
                    Response { ok: true, ..Default::default() }
                } else {
                    Response::fail()
                }
            }
            OpCode::Scan => {
                // req.aux = remaining length; the level-0 chain is
                // partition-local, so the walk stops at the boundary.
                let count = seq::scan(ctx, start, self.levels, req.key, req.aux);
                Response { ok: true, value: count, ..Default::default() }
            }
            op => panic!("skiplist executor received B+ tree opcode {op:?}"),
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        // NMP half, shared by the baseline and the hybrid's bottom portion:
        // every op walks the partition-local run; insert/remove splice it,
        // update release-stores the value word (paired host-side in the
        // hybrid, partition-exempt here).
        let walk = [AccessDecl::read(RegionClass::Part)];
        let splice = [AccessDecl::read(RegionClass::Part), AccessDecl::write(RegionClass::Part)];
        let publish =
            [AccessDecl::read(RegionClass::Part), AccessDecl::write(RegionClass::Part).release()];
        EffectSpec::new("skiplist-exec")
            .op(protocol_op(OpCode::Read, "Read").nmp_all(&walk))
            .op(protocol_op(OpCode::Scan, "Scan").nmp_all(&walk))
            .op(protocol_op(OpCode::Update, "Update").nmp_all(&publish))
            .op(protocol_op(OpCode::Insert, "Insert").nmp_all(&splice))
            .op(protocol_op(OpCode::Remove, "Remove").nmp_all(&splice))
    }
}

/// Per-operation offload state: only scans carry state (their
/// partition-hopping cursor); point operations are single requests.
#[derive(Default)]
pub struct NmpOpState {
    started: bool,
    part: usize,
    from: Key,
    remaining: u32,
    count: u32,
}

/// The NMP-based skiplist baseline.
pub struct NmpSkipList {
    machine: Arc<Machine>,
    runtime: OffloadRuntime,
    exec: Arc<SkiplistExec>,
    heads: Vec<Addr>,
    levels: u32,
    ks: KeySpace,
    seed: u64,
}

impl NmpSkipList {
    /// `levels` is the per-partition level count (≈ log2(N / partitions)).
    pub fn new(
        machine: Arc<Machine>,
        ks: KeySpace,
        levels: u32,
        seed: u64,
        max_inflight: usize,
    ) -> Arc<Self> {
        assert_eq!(machine.partitions() as u32, ks.parts, "partition counts must agree");
        let heads: Vec<Addr> = (0..machine.partitions())
            .map(|p| seq::make_sentinel(machine.part_arena(p), machine.ram(), levels))
            .collect();
        let runtime = OffloadRuntime::new(Arc::clone(&machine), max_inflight);
        let exec = Arc::new(SkiplistExec::new(Arc::clone(&machine), heads.clone(), levels));
        Arc::new(NmpSkipList { machine, runtime, exec, heads, levels, ks, seed })
    }

    /// Levels of every per-partition skiplist.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Untimed bulk population from ascending `(key, value)` pairs.
    pub fn populate(&self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        let ram = self.machine.ram();
        let mut last: Vec<Vec<Addr>> =
            self.heads.iter().map(|&h| vec![h; self.levels as usize]).collect();
        for (key, value) in pairs {
            let part = self.ks.partition_of(key) as usize;
            let h = node::height_for_key(key, self.seed, self.levels);
            let n = node::alloc_node(self.machine.part_arena(part), h);
            node::raw_init(ram, n, key, value, h, h, NULL);
            for l in 0..h {
                node::raw_set_next(ram, last[part][l as usize], l, n, false);
                last[part][l as usize] = n;
            }
        }
    }

    fn request_for(&self, op: Op) -> (usize, Request) {
        let part = self.ks.partition_of(op.key()) as usize;
        let req = match op {
            Op::Read(k) => Request::new(OpCode::Read, k, 0),
            Op::Update(k, v) => Request::new(OpCode::Update, k, v),
            Op::Remove(k) => Request::new(OpCode::Remove, k, 0),
            Op::Insert(k, v) => {
                let mut r = Request::new(OpCode::Insert, k, v);
                r.aux = node::height_for_key(k, self.seed, self.levels);
                r
            }
            Op::Scan(..) => unreachable!("scans are driven by the scan cursor in advance"),
            Op::ExtractMin => unreachable!("extract-min never reaches the offload path"),
        };
        (part, req)
    }

    /// Next partition-local scan request of a multi-partition range scan
    /// (offloaded left to right until the length or key space is exhausted).
    fn scan_step(&self, st: &NmpOpState) -> Step {
        if st.remaining == 0 || st.part >= self.ks.parts as usize {
            return Step::Done(OpResult { ok: st.count > 0, value: st.count });
        }
        let mut req = Request::new(OpCode::Scan, st.from, 0);
        req.aux = st.remaining;
        Step::Post { part: st.part, req }
    }

    fn to_result(op: Op, resp: &Response) -> OpResult {
        match op {
            Op::Read(_) => OpResult { ok: resp.ok, value: resp.value },
            _ => OpResult { ok: resp.ok, value: 0 },
        }
    }

    /// Live `(key, value)` pairs across all partitions, in key order.
    pub fn collect(&self) -> Vec<(Key, Value)> {
        let ram = self.machine.ram();
        let mut out = Vec::new();
        for &head in &self.heads {
            let (mut cur, _) = node::raw_next(ram, head, 0);
            while cur != NULL {
                let hdr = node::raw_header(ram, cur);
                if !hdr.deleted {
                    out.push((hdr.key, node::raw_value(ram, cur)));
                }
                let (nxt, _) = node::raw_next(ram, cur, 0);
                cur = nxt;
            }
        }
        out
    }

    /// Per-partition skiplist property check (call at quiescence).
    pub fn check_invariants(&self) {
        let ram = self.machine.ram();
        for (p, &head) in self.heads.iter().enumerate() {
            let level_keys = |l: u32| {
                let mut keys = Vec::new();
                let (mut cur, _) = node::raw_next(ram, head, l);
                while cur != NULL {
                    keys.push(node::raw_header(ram, cur).key);
                    let (nxt, _) = node::raw_next(ram, cur, l);
                    cur = nxt;
                }
                keys
            };
            let mut below = level_keys(0);
            assert!(below.windows(2).all(|w| w[0] < w[1]), "partition {p} level 0 unsorted");
            for k in &below {
                assert_eq!(self.ks.partition_of(*k) as usize, p, "key {k} in wrong partition");
            }
            for l in 1..self.levels {
                let this = level_keys(l);
                let set: std::collections::HashSet<_> = below.iter().copied().collect();
                for k in &this {
                    assert!(set.contains(k), "partition {p}: level {l} key {k} not below");
                }
                below = this;
            }
        }
    }
}

impl OffloadClient for NmpSkipList {
    type OpState = NmpOpState;

    fn advance(&self, _ctx: &mut ThreadCtx, op: Op, st: &mut NmpOpState) -> Step {
        if let Op::Scan(k, len) = op {
            if !st.started {
                st.started = true;
                st.part = self.ks.partition_of(k) as usize;
                st.from = k;
                st.remaining = len as u32;
            }
            return self.scan_step(st);
        }
        if matches!(op, Op::ExtractMin) {
            // Not a search-tree operation (priority queues only).
            return Step::Done(OpResult::fail());
        }
        let (part, req) = self.request_for(op);
        Step::Post { part, req }
    }

    fn complete(&self, _ctx: &mut ThreadCtx, op: Op, resp: &Response, st: &mut NmpOpState) -> Step {
        if matches!(op, Op::Scan(..)) {
            st.count += resp.value;
            st.remaining = st.remaining.saturating_sub(resp.value);
            st.part += 1;
            if st.part < self.ks.parts as usize {
                st.from = self.ks.part_base(st.part as u32);
            }
            return self.scan_step(st);
        }
        Step::Done(Self::to_result(op, resp))
    }

    fn effect_spec(&self) -> EffectSpec {
        // Host half: the baseline does no host-side traversal at all — the
        // host phase is exactly the publication-list protocol round trip.
        EffectSpec::new("nmp-skiplist")
            .op(protocol_op(OpCode::Read, "Read"))
            .op(protocol_op(OpCode::Scan, "Scan"))
            .op(protocol_op(OpCode::Update, "Update"))
            .op(protocol_op(OpCode::Insert, "Insert"))
            .op(protocol_op(OpCode::Remove, "Remove"))
    }
}

impl SimIndex for NmpSkipList {
    type Pending = PendingOp<NmpOpState>;

    fn execute(&self, ctx: &mut ThreadCtx, op: Op) -> OpResult {
        self.runtime.execute(ctx, self, op)
    }

    fn issue(&self, ctx: &mut ThreadCtx, lane: usize, op: Op) -> Issued<Self::Pending> {
        self.runtime.issue(ctx, self, lane, op)
    }

    fn poll(&self, ctx: &mut ThreadCtx, pending: &mut Self::Pending) -> PollOutcome {
        self.runtime.poll(ctx, self, pending)
    }

    fn effect_spec(&self) -> EffectSpec {
        OffloadClient::effect_spec(self).merged(self.exec.effect_spec())
    }

    fn spawn_services(self: &Arc<Self>, sim: &mut Simulation) {
        self.runtime.register_spec(&SimIndex::effect_spec(&**self));
        self.runtime.spawn_combiners(sim, Arc::clone(&self.exec));
    }

    fn max_inflight(&self) -> usize {
        self.runtime.max_inflight()
    }

    fn occupancy_feedback(&self, core: usize) -> u32 {
        self.runtime.occupancy_feedback(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, ThreadKind};
    use std::collections::BTreeMap;

    fn setup() -> (Arc<Machine>, Arc<NmpSkipList>, KeySpace) {
        let m = Machine::new(Config::tiny());
        let ks = KeySpace::new(256, 2, 64);
        let sl = NmpSkipList::new(Arc::clone(&m), ks, 7, 42, 2);
        (m, sl, ks)
    }

    fn run_hosts(
        m: &Arc<Machine>,
        sl: &Arc<NmpSkipList>,
        threads: usize,
        f: impl Fn(&mut ThreadCtx, &NmpSkipList, usize) + Send + Sync + 'static,
    ) {
        let mut sim = m.simulation();
        sl.spawn_services(&mut sim);
        let f = Arc::new(f);
        for core in 0..threads {
            let sl = Arc::clone(sl);
            let f = Arc::clone(&f);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| f(ctx, &sl, core));
        }
        sim.run();
    }

    #[test]
    fn blocking_ops_roundtrip() {
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
        run_hosts(&m, &sl, 1, |ctx, sl, _| {
            let k0 = 8; // first initial key
            assert_eq!(sl.execute(ctx, Op::Read(k0)), OpResult::ok(0));
            assert!(sl.execute(ctx, Op::Insert(k0 + 1, 7)).ok);
            assert!(!sl.execute(ctx, Op::Insert(k0 + 1, 8)).ok, "duplicate");
            assert_eq!(sl.execute(ctx, Op::Read(k0 + 1)), OpResult::ok(7));
            assert!(sl.execute(ctx, Op::Update(k0 + 1, 9)).ok);
            assert_eq!(sl.execute(ctx, Op::Read(k0 + 1)), OpResult::ok(9));
            assert!(sl.execute(ctx, Op::Remove(k0 + 1)).ok);
            assert!(!sl.execute(ctx, Op::Read(k0 + 1)).ok);
        });
        sl.check_invariants();
    }

    #[test]
    fn keys_route_to_correct_partition() {
        let (m, sl, ks) = setup();
        let hi_key = ks.initial_key(ks.total_initial() - 1); // partition 1
        let lo_key = ks.initial_key(0); // partition 0
        run_hosts(&m, &sl, 1, move |ctx, sl, _| {
            assert!(sl.execute(ctx, Op::Insert(lo_key, 1)).ok);
            assert!(sl.execute(ctx, Op::Insert(hi_key, 2)).ok);
        });
        let ram = m.ram();
        for (p, key) in [(0usize, lo_key), (1, hi_key)] {
            let (n, _) = node::raw_next(ram, sl.heads[p], 0);
            assert_ne!(n, NULL);
            assert_eq!(node::raw_header(ram, n).key, key);
        }
    }

    #[test]
    fn concurrent_disjoint_threads_match_model() {
        let (m, sl, ks) = setup();
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 0)));
        run_hosts(&m, &sl, 4, move |ctx, sl, core| {
            for i in 0..ks.total_initial() {
                if i as usize % 4 != core {
                    continue;
                }
                let key = ks.initial_key(i);
                if i % 3 == 0 {
                    assert!(sl.execute(ctx, Op::Remove(key)).ok);
                } else {
                    assert!(sl.execute(ctx, Op::Update(key, i)).ok);
                }
            }
        });
        sl.check_invariants();
        let mut model = BTreeMap::new();
        for i in 0..ks.total_initial() {
            if i % 3 != 0 {
                model.insert(ks.initial_key(i), i);
            }
        }
        let got: BTreeMap<_, _> = sl.collect().into_iter().collect();
        assert_eq!(got, model);
    }

    #[test]
    fn nonblocking_pipeline_completes() {
        let (m, sl, ks) = setup();
        run_hosts(&m, &sl, 2, move |ctx, sl, core| {
            let keys: Vec<Key> = (0..20u32).map(|i| ks.initial_key(i * 2 + core as u32)).collect();
            let mut pending = Vec::new();
            for chunk in keys.chunks(2) {
                for (lane, &k) in chunk.iter().enumerate() {
                    match sl.issue(ctx, lane, Op::Insert(k, k)) {
                        Issued::Pending(p) => pending.push(p),
                        Issued::Done(_) => {}
                    }
                }
                for mut p in pending.drain(..) {
                    loop {
                        match sl.poll(ctx, &mut p) {
                            PollOutcome::Done(r) => {
                                assert!(r.ok);
                                break;
                            }
                            PollOutcome::Pending => ctx.idle(40),
                        }
                    }
                }
            }
        });
        sl.check_invariants();
        assert_eq!(sl.collect().len(), 40);
    }

    #[test]
    fn deterministic_replay() {
        let world = || {
            let (m, sl, ks) = setup();
            sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), 0)));
            let mut sim = m.simulation();
            sl.spawn_services(&mut sim);
            for core in 0..3usize {
                let sl = Arc::clone(&sl);
                sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..30u32 {
                        let key = ks.initial_key((i * 7 + core as u32 * 13) % ks.total_initial());
                        match i % 3 {
                            0 => drop(sl.execute(ctx, Op::Remove(key))),
                            1 => drop(sl.execute(ctx, Op::Insert(key, i))),
                            _ => drop(sl.execute(ctx, Op::Read(key))),
                        }
                    }
                });
            }
            let out = sim.run();
            (out.makespan(), sl.collect())
        };
        assert_eq!(world(), world());
    }
}
