//! Publication list and flat-combining offload protocol (§3.2).
//!
//! Each NMP core owns a scratchpad that is memory-mapped into the host
//! address space. A fixed array of 64-byte slots lives there: slot
//! `core * max_inflight + lane` belongs to host thread `core`'s lane
//! `lane`. To offload an operation, the host writes the request words, then
//! the control word with the valid bit set — each an MMIO write — and polls
//! the control word until the NMP core clears the valid bit. The NMP core
//! (the *combiner*) repeatedly scans all slots of its partition, executing
//! every posted operation one at a time.
//!
//! Slot layout (8 words):
//!
//! ```text
//! w0  ctrl: VALID | RETRY | RET_OK | LOCK_PATH | opcode<<8
//!     (on completion the high half carries batch-occupancy feedback:
//!      occupancy<<32, Policy::Adaptive only; see offload::policy)
//! w1  key (lo) | value (hi)
//! w2  begin-NMP-traversal ptr (lo) | host node ptr (hi)
//! w3  aux: parent seqnum (B+ tree) or node height (skiplist)
//! w4  result: value (lo) | new NMP node ptr (hi)
//! w5  result: split key (lo) | new child ptr (hi)
//! w6  reserved
//! w7  reserved
//! ```

use std::sync::Arc;

use nmp_sim::{Addr, EffectSpec, Machine, Policy, Spawner, ThreadCtx, ThreadKind, NULL};
use workloads::{Key, Value};

use crate::offload::policy::{coalesce_run_len, sort_batch, CombinerControl};

/// Slot size in bytes (one NMP-buffer block would be 2 slots; slots are
/// scratchpad-resident so only MMIO pricing applies).
pub const SLOT_BYTES: u32 = 64;

/// Operation codes (3 bits in the paper; we use a byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Point lookup.
    Read = 0,
    /// In-place value update of an existing key.
    Update = 1,
    /// Insert a new key (fails if present).
    Insert = 2,
    /// Remove a key.
    Remove = 3,
    /// B+ tree: complete an insert whose host-side path is now locked.
    ResumeInsert = 4,
    /// B+ tree: abandon a LOCK_PATH insert (host failed to lock its path).
    UnlockPath = 5,
    /// Range scan within the partition (extension; YCSB-E).
    Scan = 6,
    /// Priority queue: pop the partition's minimum key (extension; §6.3).
    PopMin = 7,
}

impl OpCode {
    fn from_bits(b: u64) -> OpCode {
        match b & 0x7 {
            0 => OpCode::Read,
            1 => OpCode::Update,
            2 => OpCode::Insert,
            3 => OpCode::Remove,
            4 => OpCode::ResumeInsert,
            5 => OpCode::UnlockPath,
            6 => OpCode::Scan,
            _ => OpCode::PopMin,
        }
    }
}

const CTRL_VALID: u64 = 1 << 0;
const CTRL_RETRY: u64 = 1 << 1;
const CTRL_RET_OK: u64 = 1 << 2;
const CTRL_LOCK_PATH: u64 = 1 << 3;

/// An offloaded operation request, as written by the host thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requested operation.
    pub op: OpCode,
    /// Target key.
    pub key: Key,
    /// Value to insert/update (ignored by reads and removes).
    pub value: Value,
    /// Begin-NMP-traversal node (§3.2 item 3); NULL = partition sentinel.
    pub begin: Addr,
    /// Host-side counterpart node, if any (hybrid skiplist tall inserts).
    pub host_ptr: Addr,
    /// Parent sequence number (hybrid B+ tree) or node height (skiplist).
    pub aux: u32,
}

impl Request {
    /// Request with no begin pointer, host pointer, or aux word.
    pub fn new(op: OpCode, key: Key, value: Value) -> Self {
        Request { op, key, value, begin: NULL, host_ptr: NULL, aux: 0 }
    }
}

/// The NMP core's reply, as written back into the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Response {
    /// Begin-NMP-traversal node was stale; host must retry from scratch.
    pub retry: bool,
    /// Success/failure bit.
    pub ok: bool,
    /// B+ tree: host must lock its path and send RESUME_INSERT.
    pub lock_path: bool,
    /// Associated value (reads) or host pointer of the target (updates).
    pub value: u32,
    /// Node created in the NMP partition (inserts).
    pub new_ptr: Addr,
    /// B+ tree RESUME_INSERT: dividing key pushed up to the host.
    pub split_key: u32,
    /// B+ tree RESUME_INSERT: new child (split-off NMP node).
    pub new_child: Addr,
    /// Occupancy of the combining pass that served this response, carried
    /// in the high half of the control word so the feedback costs no extra
    /// MMIO. Nonzero only under `Policy::Adaptive`; feeds the driver's
    /// [`crate::offload::policy::LaneGovernor`].
    pub combined: u32,
}

impl Response {
    /// Stale begin pointer: host must retry from scratch.
    pub fn retry() -> Self {
        Response { retry: true, ..Default::default() }
    }

    /// Success carrying `value`.
    pub fn ok_value(value: u32) -> Self {
        Response { ok: true, value, ..Default::default() }
    }

    /// Completed without effect (key absent on read/remove, present on insert).
    pub fn fail() -> Self {
        Response::default()
    }

    /// B+ tree: ask the host to lock its path and send `ResumeInsert`.
    pub fn lock_path() -> Self {
        Response { lock_path: true, ..Default::default() }
    }
}

/// The publication lists of every NMP partition for one structure.
pub struct PubLists {
    machine: Arc<Machine>,
    slots_per_part: usize,
    max_inflight: usize,
}

impl PubLists {
    /// Provision `host_cores * max_inflight` slots in each partition's
    /// scratchpad.
    pub fn new(machine: Arc<Machine>, max_inflight: usize) -> Self {
        let cores = machine.config().host_cores;
        let slots = cores * max_inflight;
        let need = slots as u32 * SLOT_BYTES;
        assert!(
            need <= machine.config().scratchpad_bytes,
            "publication list ({need} B) exceeds scratchpad"
        );
        // Zero all slots (valid bits clear).
        for p in 0..machine.partitions() {
            for s in 0..slots {
                let a = machine.map().spad_base(p) + s as u32 * SLOT_BYTES;
                for w in 0..8 {
                    // xtask: allow(raw-mem) — pre-simulation zeroing of the runtime's own slots
                    machine.ram().write_u64(a + w * 8, 0);
                }
            }
        }
        PubLists { machine, slots_per_part: slots, max_inflight }
    }

    /// The machine these lists live on.
    /// The machine these lists live on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Per-core lane count (§3.5 non-blocking depth).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Slots in each partition's list (`host_cores * max_inflight`).
    pub fn slots_per_part(&self) -> usize {
        self.slots_per_part
    }

    /// Slot index owned by host `core`'s lane `lane`.
    pub fn slot_of(&self, core: usize, lane: usize) -> usize {
        assert!(lane < self.max_inflight, "lane {lane} out of range");
        core * self.max_inflight + lane
    }

    fn slot_addr(&self, part: usize, slot: usize) -> Addr {
        debug_assert!(slot < self.slots_per_part);
        self.machine.map().spad_base(part) + slot as u32 * SLOT_BYTES
    }

    // ---- host side (MMIO) ----

    /// Post a request into `slot` of partition `part`: three MMIO data
    /// writes followed by the control-word write that publishes it.
    pub fn post(&self, ctx: &mut ThreadCtx, part: usize, slot: usize, req: &Request) {
        debug_assert!(matches!(ctx.kind(), ThreadKind::Host { .. }));
        let a = self.slot_addr(part, slot);
        ctx.mmio_write_u64(a + 8, (req.key as u64) | ((req.value as u64) << 32));
        ctx.mmio_write_u64(a + 16, (req.begin as u64) | ((req.host_ptr as u64) << 32));
        ctx.mmio_write_u64(a + 24, req.aux as u64);
        // Release: publishes the data words above to the scanning NMP core.
        ctx.mmio_write_u64_release(a, CTRL_VALID | ((req.op as u64) << 8));
    }

    /// One poll: if the NMP core has cleared the valid bit, read the
    /// response words and return them.
    pub fn try_response(&self, ctx: &mut ThreadCtx, part: usize, slot: usize) -> Option<Response> {
        let a = self.slot_addr(part, slot);
        // Acquire: pairs with the NMP core's release in `complete`.
        let ctrl = ctx.mmio_read_u64_acquire(a);
        if ctrl & CTRL_VALID != 0 {
            return None;
        }
        let mut resp = Response {
            retry: ctrl & CTRL_RETRY != 0,
            ok: ctrl & CTRL_RET_OK != 0,
            lock_path: ctrl & CTRL_LOCK_PATH != 0,
            // Batch-occupancy feedback rides the ctrl word's high half
            // (zero under Policy::Fixed), so reading it is free.
            combined: (ctrl >> 32) as u32,
            ..Default::default()
        };
        if resp.retry || resp.lock_path {
            return Some(resp);
        }
        let w4 = ctx.mmio_read_u64(a + 32);
        resp.value = w4 as u32;
        resp.new_ptr = (w4 >> 32) as Addr;
        let w5 = ctx.mmio_read_u64(a + 40);
        resp.split_key = w5 as u32;
        resp.new_child = (w5 >> 32) as Addr;
        Some(resp)
    }

    /// Blocking wait: poll until the response arrives, idling the host
    /// thread by the configured poll interval between polls.
    pub fn wait_response(&self, ctx: &mut ThreadCtx, part: usize, slot: usize) -> Response {
        let interval = self.machine.config().host_poll_interval_cycles;
        loop {
            if let Some(r) = self.try_response(ctx, part, slot) {
                return r;
            }
            ctx.idle(interval);
        }
    }

    // ---- NMP side (scratchpad-local) ----

    /// Scan one slot; if a valid request is published, read and return it.
    pub fn scan(&self, ctx: &mut ThreadCtx, part: usize, slot: usize) -> Option<Request> {
        debug_assert!(matches!(ctx.kind(), ThreadKind::Nmp { .. }));
        let a = self.slot_addr(part, slot);
        // Acquire: pairs with the host's release in `post`.
        let ctrl = ctx.read_u64_acquire(a);
        if ctrl & CTRL_VALID == 0 {
            return None;
        }
        let w1 = ctx.read_u64(a + 8);
        let w2 = ctx.read_u64(a + 16);
        let w3 = ctx.read_u64(a + 24);
        Some(Request {
            op: OpCode::from_bits(ctrl >> 8),
            key: w1 as u32,
            value: (w1 >> 32) as u32,
            begin: w2 as Addr,
            host_ptr: (w2 >> 32) as Addr,
            aux: w3 as u32,
        })
    }

    /// Write the response words, then clear the valid bit (publishing the
    /// completion to the polling host thread).
    pub fn complete(&self, ctx: &mut ThreadCtx, part: usize, slot: usize, resp: &Response) {
        let a = self.slot_addr(part, slot);
        if !(resp.retry || resp.lock_path) {
            ctx.write_u64(a + 32, (resp.value as u64) | ((resp.new_ptr as u64) << 32));
            ctx.write_u64(a + 40, (resp.split_key as u64) | ((resp.new_child as u64) << 32));
        }
        // Occupancy feedback in the high half; 0 under Policy::Fixed, so
        // the fixed-policy control word is bit-identical to the original
        // protocol.
        let mut ctrl = (resp.combined as u64) << 32;
        if resp.retry {
            ctrl |= CTRL_RETRY;
        }
        if resp.ok {
            ctrl |= CTRL_RET_OK;
        }
        if resp.lock_path {
            ctrl |= CTRL_LOCK_PATH;
        }
        // Release: publishes the response words to the polling host thread.
        ctx.write_u64_release(a, ctrl);
    }
}

/// An NMP-side operation executor: applies one published request to the
/// partition's portion of the data structure.
pub trait NmpExec: Send + Sync + 'static {
    /// Cross-request state the combiner keeps per slot (e.g. the locked
    /// path of a B+ tree insert awaiting RESUME_INSERT).
    type SlotState: Default + Send;

    /// Apply one published request to partition `part`'s portion of the
    /// structure.
    fn exec(
        &self,
        ctx: &mut ThreadCtx,
        part: usize,
        req: &Request,
        state: &mut Self::SlotState,
    ) -> Response;

    /// The NMP half of the structure's declared memory-effect plan: per
    /// op code, everything `exec` may touch (on top of the publication-list
    /// protocol itself, [`crate::effects::NMP_PROTOCOL`]). The combiner
    /// scopes conformance checking to the op being served, so an executor
    /// straying outside this plan is blamed with the exact op and site.
    fn effect_spec(&self) -> EffectSpec;

    /// Op codes whose `exec` is a pure function of the request and the
    /// partition state — no partition-memory writes, no slot-state use —
    /// and may therefore be key-range coalesced under `Policy::Adaptive`:
    /// identical concurrent requests share one descent, followers receive
    /// a replica of the lead's response.
    /// [`crate::effects::assert_coalescible_ops`] statically cross-checks
    /// every declared op against the effect spec at combiner-spawn time.
    /// Default: nothing coalesces.
    fn coalescible_ops(&self) -> &'static [OpCode] {
        &[]
    }
}

/// Spawn one flat-combining daemon per partition. Each combiner runs the
/// batched flat-combining loop: one scan pass over its publication list
/// collects *all* currently-published requests, then executes them
/// back-to-back, amortizing the scan cost over the whole batch instead of
/// re-scanning after every request. The batch size of every pass feeds the
/// combined-per-pass histogram in [`nmp_sim::OffloadStats`].
///
/// Generic over the run type ([`Spawner`]): the same daemons serve a
/// cycle-accurate [`nmp_sim::Simulation`] or a real-thread
/// [`nmp_sim::NativeRun`].
pub fn spawn_combiners<S: Spawner, E: NmpExec>(sim: &mut S, lists: Arc<PubLists>, exec: Arc<E>) {
    let parts = lists.machine.partitions();
    let base_idle = lists.machine.config().nmp_idle_poll_cycles;
    let policy = lists.machine.config().policy;
    // Under the adaptive policy the loop below replicates responses across
    // coalesced runs; statically prove every declared-coalescible op's NMP
    // plan is partition-read-only before any daemon runs.
    let coalescible: &'static [OpCode] = match policy {
        Policy::Fixed => &[],
        Policy::Adaptive => {
            crate::effects::assert_coalescible_ops(&exec.effect_spec(), exec.coalescible_ops());
            exec.coalescible_ops()
        }
    };
    for part in 0..parts {
        let lists = Arc::clone(&lists);
        let exec = Arc::clone(&exec);
        sim.spawn_daemon_boxed(
            format!("nmp-{part}"),
            ThreadKind::Nmp { part },
            Box::new(move |ctx| {
                let mut states: Vec<E::SlotState> = Vec::new();
                states.resize_with(lists.slots_per_part(), Default::default);
                let mut batch: Vec<(usize, Request)> = Vec::with_capacity(lists.slots_per_part());
                let mut ctl = CombinerControl::new(policy, base_idle);
                #[cfg(feature = "analysis")]
                let analysis = lists.machine.mem().analysis().cloned();
                loop {
                    batch.clear();
                    #[cfg(feature = "trace")]
                    let pass_start = ctx.now();
                    for slot in 0..lists.slots_per_part() {
                        if let Some(req) = lists.scan(ctx, part, slot) {
                            batch.push((slot, req));
                        }
                        ctx.step();
                    }
                    lists.machine.mem().note_offload_pass(part, batch.len());
                    if batch.is_empty() {
                        if ctx.stop_requested() {
                            return;
                        }
                        ctx.idle(ctl.idle_after_empty());
                        continue;
                    }
                    ctl.note_busy();
                    if policy == Policy::Adaptive {
                        // Key-range coalescing: order the pass by (key, slot)
                        // so identical requests form contiguous runs; the run
                        // order is the serve order, preserving a deterministic
                        // per-request response mapping.
                        sort_batch(&mut batch);
                    }
                    let occupancy = batch.len() as u32;
                    let mut i = 0;
                    while i < batch.len() {
                        let (slot, req) = batch[i];
                        let run = coalesce_run_len(&batch, i, coalescible);
                        #[cfg(feature = "trace")]
                        let exec_start = ctx.now();
                        // Scope conformance checking to the op being served so
                        // blame reports name it; the scan pass above runs
                        // unscoped (checked against the protocol union).
                        #[cfg(feature = "analysis")]
                        if let Some(a) = &analysis {
                            a.set_current_op(ctx.id(), Some(req.op as u8));
                        }
                        let mut resp = exec.exec(ctx, part, &req, &mut states[slot]);
                        if policy == Policy::Adaptive {
                            resp.combined = occupancy;
                        }
                        lists.complete(ctx, part, slot, &resp);
                        #[cfg(feature = "analysis")]
                        if let Some(a) = &analysis {
                            a.set_current_op(ctx.id(), None);
                        }
                        #[cfg(feature = "trace")]
                        if let Some(t) = lists.machine.mem().tracer() {
                            t.note_exec(part, slot, exec_start, ctx.now());
                        }
                        ctx.step();
                        // Followers of a coalesced run: identical request,
                        // unchanged partition state -> replicate the lead's
                        // response without a second descent.
                        for &(fslot, _) in &batch[i + 1..i + run] {
                            #[cfg(feature = "trace")]
                            let repl_start = ctx.now();
                            #[cfg(feature = "analysis")]
                            if let Some(a) = &analysis {
                                a.set_current_op(ctx.id(), Some(req.op as u8));
                            }
                            lists.complete(ctx, part, fslot, &resp);
                            lists.machine.mem().note_offload_coalesced(part);
                            #[cfg(feature = "analysis")]
                            if let Some(a) = &analysis {
                                a.set_current_op(ctx.id(), None);
                            }
                            #[cfg(feature = "trace")]
                            if let Some(t) = lists.machine.mem().tracer() {
                                t.note_exec(part, fslot, repl_start, ctx.now());
                            }
                            ctx.step();
                        }
                        i += run;
                    }
                    #[cfg(feature = "trace")]
                    if let Some(t) = lists.machine.mem().tracer() {
                        t.note_batch(part, pass_start, ctx.now(), batch.len() as u64);
                    }
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::Config;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn machine() -> Arc<Machine> {
        Machine::new(Config::tiny())
    }

    #[test]
    fn slot_indexing_disjoint() {
        let l = PubLists::new(machine(), 4);
        let mut seen = std::collections::HashSet::new();
        for core in 0..4 {
            for lane in 0..4 {
                assert!(seen.insert(l.slot_of(core, lane)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds scratchpad")]
    fn oversized_publist_rejected() {
        let _ = PubLists::new(machine(), 64);
    }

    /// Protocol-only spec for executors that touch no data region.
    fn protocol_only(name: &'static str) -> EffectSpec {
        EffectSpec::new(name)
            .op(crate::effects::protocol_op(OpCode::Read, "Read"))
            .op(crate::effects::protocol_op(OpCode::Update, "Update"))
            .op(crate::effects::protocol_op(OpCode::Insert, "Insert"))
    }

    /// Echo executor: replies with ok and value = key + 1.
    struct Echo;
    impl NmpExec for Echo {
        type SlotState = ();
        fn exec(&self, _ctx: &mut ThreadCtx, _part: usize, req: &Request, _s: &mut ()) -> Response {
            Response::ok_value(req.key + 1)
        }
        fn effect_spec(&self) -> EffectSpec {
            protocol_only("echo")
        }
    }

    #[test]
    fn round_trip_through_combiner() {
        let m = machine();
        let lists = Arc::new(PubLists::new(Arc::clone(&m), 1));
        let mut sim = m.simulation();
        spawn_combiners(&mut sim, Arc::clone(&lists), Arc::new(Echo));
        let results = Arc::new(AtomicU32::new(0));
        for core in 0..2 {
            let lists = Arc::clone(&lists);
            let results = Arc::clone(&results);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                let slot = lists.slot_of(core, 0);
                let part = core % 2;
                let req = Request::new(OpCode::Read, 100 + core as u32, 0);
                lists.post(ctx, part, slot, &req);
                let resp = lists.wait_response(ctx, part, slot);
                assert!(resp.ok);
                assert_eq!(resp.value, 101 + core as u32);
                results.fetch_add(1, Ordering::Relaxed);
            });
        }
        sim.run();
        assert_eq!(results.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn many_ops_per_slot_sequential() {
        let m = machine();
        let lists = Arc::new(PubLists::new(Arc::clone(&m), 1));
        let mut sim = m.simulation();
        spawn_combiners(&mut sim, Arc::clone(&lists), Arc::new(Echo));
        let lists2 = Arc::clone(&lists);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            for i in 0..50u32 {
                let slot = lists2.slot_of(0, 0);
                lists2.post(ctx, 1, slot, &Request::new(OpCode::Update, i, i));
                let resp = lists2.wait_response(ctx, 1, slot);
                assert_eq!(resp.value, i + 1);
            }
        });
        sim.run();
    }

    #[test]
    fn retry_response_skips_result_words() {
        struct AlwaysRetry;
        impl NmpExec for AlwaysRetry {
            type SlotState = ();
            fn exec(&self, _: &mut ThreadCtx, _: usize, _: &Request, _: &mut ()) -> Response {
                Response::retry()
            }
            fn effect_spec(&self) -> EffectSpec {
                protocol_only("always-retry")
            }
        }
        let m = machine();
        let lists = Arc::new(PubLists::new(Arc::clone(&m), 1));
        let mut sim = m.simulation();
        spawn_combiners(&mut sim, Arc::clone(&lists), Arc::new(AlwaysRetry));
        let lists2 = Arc::clone(&lists);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            lists2.post(ctx, 0, 0, &Request::new(OpCode::Insert, 5, 6));
            let resp = lists2.wait_response(ctx, 0, 0);
            assert!(resp.retry);
            assert!(!resp.ok);
        });
        sim.run();
    }

    #[test]
    fn request_fields_roundtrip() {
        let m = machine();
        let lists = Arc::new(PubLists::new(Arc::clone(&m), 2));
        struct Check;
        impl NmpExec for Check {
            type SlotState = ();
            fn exec(&self, _: &mut ThreadCtx, _: usize, req: &Request, _: &mut ()) -> Response {
                assert_eq!(req.op, OpCode::Insert);
                assert_eq!(req.key, 0xAABB);
                assert_eq!(req.value, 0xCCDD);
                assert_eq!(req.begin, 0x1000);
                assert_eq!(req.host_ptr, 0x2000);
                assert_eq!(req.aux, 17);
                Response {
                    ok: true,
                    new_ptr: 0x3000,
                    split_key: 9,
                    new_child: 0x4000,
                    ..Default::default()
                }
            }
            fn effect_spec(&self) -> EffectSpec {
                protocol_only("check")
            }
        }
        let mut sim = m.simulation();
        spawn_combiners(&mut sim, Arc::clone(&lists), Arc::new(Check));
        let l2 = Arc::clone(&lists);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            let req = Request {
                op: OpCode::Insert,
                key: 0xAABB,
                value: 0xCCDD,
                begin: 0x1000,
                host_ptr: 0x2000,
                aux: 17,
            };
            l2.post(ctx, 1, 3, &req);
            let resp = l2.wait_response(ctx, 1, 3);
            assert!(resp.ok);
            assert_eq!(resp.new_ptr, 0x3000);
            assert_eq!(resp.split_key, 9);
            assert_eq!(resp.new_child, 0x4000);
        });
        sim.run();
    }
}
