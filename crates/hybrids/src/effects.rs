//! Shared memory-effect declarations for the offload protocol.
//!
//! Every structure in this crate exports a declared access plan
//! ([`EffectSpec`]) per operation code; the plans are statically verified
//! against the machine topology and the publication-list protocol at
//! registration time ([`register_effect_spec`]), before any simulation
//! cycle executes. The protocol constants here describe the one
//! publication-list handshake every offloading structure shares
//! (`crate::publist`), so per-structure specs only add their data-plane
//! accesses on top.

use std::sync::Arc;

use nmp_sim::Machine;
pub use nmp_sim::{AccessDecl, EffectSpec, OpSpec, Topology};

use crate::publist::OpCode;

use nmp_sim::analysis::RegionClass as R;

/// Host side of one publication-list round trip (`PubLists::post` +
/// `PubLists::try_response`): three payload MMIO stores, the control-word
/// release that publishes the request, the control-word acquire that polls
/// for the response, and two payload MMIO loads.
pub const HOST_PROTOCOL: [AccessDecl; 4] = [
    AccessDecl::write(R::Spad).mmio(),
    AccessDecl::write(R::Spad).mmio().release().sync("ctrl"),
    AccessDecl::read(R::Spad).mmio().acquire().sync("ctrl"),
    AccessDecl::read(R::Spad).mmio(),
];

/// NMP side of one publication-list round trip (`PubLists::scan` +
/// `PubLists::complete`): the control-word acquire that picks up a
/// published request, three payload loads, two payload stores, and the
/// control-word release that publishes the response.
pub const NMP_PROTOCOL: [AccessDecl; 4] = [
    AccessDecl::read(R::Spad).acquire().sync("ctrl"),
    AccessDecl::read(R::Spad),
    AccessDecl::write(R::Spad),
    AccessDecl::write(R::Spad).release().sync("ctrl"),
];

/// An [`OpSpec`] pre-loaded with both halves of the publication-list
/// protocol. Structure specs start from this and add their data-plane
/// declarations.
pub fn protocol_op(code: OpCode, name: &'static str) -> OpSpec {
    OpSpec::new(code as u8, name).host_all(&HOST_PROTOCOL).nmp_all(&NMP_PROTOCOL)
}

/// The topology of `machine`, for spec verification.
pub fn topology(machine: &Machine) -> Topology {
    Topology { parts: machine.partitions(), host_cores: machine.config().host_cores }
}

/// Statically verify `spec` against `machine`'s topology (panicking with a
/// full error listing on failure — zero simulation cycles) and, when an
/// analysis is attached, install it for spec-conformance checking.
pub fn register_effect_spec(machine: &Arc<Machine>, spec: &EffectSpec) {
    nmp_sim::analysis::effects::assert_verified(spec, topology(machine));
    #[cfg(feature = "analysis")]
    if let Some(a) = machine.mem().analysis() {
        a.install_spec(spec.clone());
    }
}

/// Statically prove that every op an executor declares coalescible
/// ([`crate::publist::NmpExec::coalescible_ops`]) is safe to coalesce:
/// the op must appear in the executor's effect spec and its NMP plan must
/// contain no partition-memory write. A read path with a hidden mutation
/// (e.g. the B+ tree's sequence-number adoption) would make a replicated
/// response unsound — this check turns that mistake into a panic at
/// combiner-spawn time, before any simulation cycle executes.
pub fn assert_coalescible_ops(spec: &EffectSpec, ops: &[OpCode]) {
    use nmp_sim::analysis::Dir;
    for &op in ops {
        let s = spec.op_spec(op as u8).unwrap_or_else(|| {
            panic!("spec '{}': coalescible op {op:?} has no declared effect plan", spec.structure)
        });
        for d in &s.nmp {
            assert!(
                !(d.dir == Dir::Write && d.region == R::Part),
                "spec '{}': op {op:?} declared coalescible but its NMP plan \
                 writes partition memory ({d:?}) — coalescing would replicate \
                 a response across a state change",
                spec.structure
            );
        }
    }
}
