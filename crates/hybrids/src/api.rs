//! Public operation API shared by every index structure in this crate.
//!
//! All structures execute *inside the simulator*: an operation is invoked by
//! a logical host thread and receives that thread's [`ThreadCtx`], through
//! which every node access is timed. Structures with an NMP-managed portion
//! additionally expose the non-blocking call interface of §3.5: `issue`
//! returns a pending handle (the paper's "operation ID") and `poll` checks
//! on / completes it.

use std::sync::Arc;

use nmp_sim::{EffectSpec, Simulation, ThreadCtx, ThreadKind};
use workloads::{Op, Value};

/// Result of one completed data-structure operation.
///
/// `ok` carries the publication list's 1-bit success/failure return value
/// (§3.2): found (read/update), inserted (insert: false = duplicate key),
/// removed (remove: false = key absent). `value` is the associated value for
/// successful reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    /// The 1-bit success/failure return (see type docs).
    pub ok: bool,
    /// Associated value for successful reads; 0 otherwise.
    pub value: Value,
}

impl OpResult {
    /// Successful result carrying `value`.
    pub fn ok(value: Value) -> Self {
        OpResult { ok: true, value }
    }

    /// Failed result (`ok == false`).
    pub fn fail() -> Self {
        OpResult { ok: false, value: 0 }
    }
}

/// Outcome of a non-blocking `issue` call.
pub enum Issued<P> {
    /// The operation completed entirely on the host side (e.g. a read
    /// satisfied from the host-managed portion).
    Done(OpResult),
    /// The operation was offloaded; poll the handle for completion.
    Pending(P),
}

/// Outcome of polling a pending operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// NMP core has not finished (or a retry was re-issued internally).
    Pending,
    /// Operation complete.
    Done(OpResult),
}

/// A concurrent index running inside the simulator.
pub trait SimIndex: Send + Sync + 'static {
    /// Per-operation state carried between `issue` and completion.
    type Pending: Send + 'static;

    /// Execute `op` to completion (blocking NMP calls): retries and
    /// publication-list polling happen inside.
    fn execute(&self, ctx: &mut ThreadCtx, op: Op) -> OpResult;

    /// Start `op` with a non-blocking NMP call on publication-list lane
    /// `lane` of the calling host thread (§3.5). Lanes `0..max_inflight()`
    /// of each host thread map to distinct publication-list slots.
    fn issue(&self, ctx: &mut ThreadCtx, lane: usize, op: Op) -> Issued<Self::Pending>;

    /// Check a pending operation; completes host-side post-processing
    /// (e.g. linking a tall skiplist node, the LOCK_PATH / RESUME_INSERT
    /// dance) and internally re-issues on retry.
    fn poll(&self, ctx: &mut ThreadCtx, pending: &mut Self::Pending) -> PollOutcome;

    /// The structure's declared memory-effect plan: per operation code, the
    /// regions each thread class may read and write, with what ordering and
    /// via which channel. Verified statically at registration time
    /// ([`crate::effects::register_effect_spec`]) and enforced dynamically
    /// in spec-conformance mode.
    fn effect_spec(&self) -> EffectSpec;

    /// Spawn this structure's NMP-core service loops (flat combiners) as
    /// daemon threads of `sim`, after registering [`Self::effect_spec`].
    /// Host-only structures spawn nothing but still register their spec.
    fn spawn_services(self: &Arc<Self>, sim: &mut Simulation);

    /// Publication-list lanes provisioned per host thread.
    fn max_inflight(&self) -> usize {
        1
    }

    /// Batch occupancy observed by host `core`'s most recent completed
    /// offload response (the combiner's in-band ctrl-word feedback; see
    /// [`crate::offload::policy`]). Structures backed by an
    /// [`crate::OffloadRuntime`] forward to
    /// [`crate::OffloadRuntime::occupancy_feedback`]; host-only structures
    /// keep this default. Always 0 under `Policy::Fixed`.
    fn occupancy_feedback(&self, _core: usize) -> u32 {
        0
    }
}

/// Host core index of the calling logical thread.
pub fn host_core(ctx: &ThreadCtx) -> usize {
    match ctx.kind() {
        ThreadKind::Host { core } => core,
        ThreadKind::Nmp { .. } => panic!("host-side operation invoked from an NMP core"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_result_constructors() {
        assert_eq!(OpResult::ok(7), OpResult { ok: true, value: 7 });
        assert_eq!(OpResult::fail(), OpResult { ok: false, value: 0 });
    }
}
