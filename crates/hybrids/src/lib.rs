//! # hybrids — HybriDS concurrent data structures on a simulated NMP machine
//!
//! Reproduction of *HybriDS: Cache-Conscious Concurrent Data Structures for
//! Near-Memory Processing Architectures* (Choe, Crotty, Moreshet, Herlihy,
//! Bahar — SPAA 2022), built on the [`nmp_sim`] substrate.
//!
//! ## Structures
//!
//! | paper name | type | here |
//! |---|---|---|
//! | *lock-free* | skiplist baseline (non-NMP) | [`skiplist::LockFreeSkipList`] |
//! | *NMP-based* | flat-combining skiplist (prior work) | [`skiplist::NmpSkipList`] |
//! | **hybrid skiplist** | §3.3 | [`skiplist::HybridSkipList`] |
//! | *host-only* | seqlock B+ tree baseline | [`btree::HostBTree`] |
//! | **hybrid B+ tree** | §3.4 | [`btree::HybridBTree`] |
//! | **hybrid hash map** | §6.3 extension | [`hashmap::HybridHashMap`] |
//! | **hybrid priority queue** | §6.3 extension | [`pqueue::HybridPqueue`] |
//!
//! All structures implement [`api::SimIndex`]: operations execute inside
//! the simulator on logical host threads, with blocking (`execute`) or
//! non-blocking (`issue`/`poll`, §3.5) NMP calls. [`driver::run_index`]
//! runs a YCSB-style workload and reports the paper's metrics.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use hybrids::skiplist::HybridSkipList;
//! use hybrids::api::SimIndex;
//! use hybrids::driver::{run_index, RunSpec};
//! use nmp_sim::{Config, Machine};
//! use workloads::{KeySpace, WorkloadSpec};
//!
//! let machine = Machine::new(Config::tiny());
//! let ks = KeySpace::new(512, 2, 64);
//! let sl = HybridSkipList::new(Arc::clone(&machine), ks, 10, 4, 42, 4);
//! sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
//!
//! let spec = RunSpec::new(WorkloadSpec::ycsb_c(7, 2, 50), 10, 1);
//! let result = run_index(&machine, &sl, &ks, &spec);
//! assert_eq!(result.measured_ops, 100);
//! sl.check_invariants();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod btree;
pub mod driver;
pub mod effects;
pub mod hashmap;
pub mod offload;
pub mod pqueue;
pub mod publist;
pub mod skiplist;

pub use api::{Issued, OpResult, PollOutcome, SimIndex};
#[cfg(feature = "analysis")]
pub use driver::run_index_recorded;
pub use driver::{run_index, RunResult, RunSpec};
pub use effects::{register_effect_spec, topology};
pub use offload::policy::Policy;
pub use offload::{OffloadClient, OffloadRuntime, PendingOp, Step};
