//! B+ tree node layout: 128-byte cache-block-aligned nodes (§3.4), with
//! 4-byte keys/values/pointers as in the paper's DBx1000-style trees.
//!
//! ```text
//! bytes 0..4    seqnum (host nodes) / parent_seqnum (NMP nodes)
//! bytes 4..8    meta: level (u8) | slotuse (u8) | lock (u8) | unused (u8)
//! bytes 8..64   keys[14]            (u32 each)
//! bytes 64..120 leaf: values[14]    (u32 each)
//!               inner: children[0..14]
//! bytes 120..124 leaf: next-leaf pointer; inner: children[14]
//! bytes 124..128 unused
//! ```
//!
//! A leaf (level 0) holds up to 14 key/value pairs; an inner node holds up
//! to 14 dividing keys and 15 children. The subtree left of `keys[i]`
//! contains keys `<= keys[i]`; to the right, `> keys[i]`.

// xtask: accessor-module — all raw (untimed) B+ tree memory access lives
// here; other modules go through these helpers.

use nmp_sim::{Addr, Arena, MemBackend, ThreadCtx};
use workloads::{Key, Value};

/// Node size in bytes (one cache block in the Table 1 configuration).
pub const NODE_BYTES: u32 = 128;
/// Max key/value pairs in a leaf.
pub const LEAF_MAX: u32 = 14;
/// Max dividing keys in an inner node (children = INNER_MAX + 1).
pub const INNER_MAX: u32 = 14;

const KEYS_OFF: u32 = 8;
const PAYLOAD_OFF: u32 = 64;

/// Allocate one zeroed node (128-byte aligned so nodes match cache blocks
/// and NMP-buffer blocks exactly).
pub fn alloc_node(arena: &Arena) -> Addr {
    arena.alloc_aligned(NODE_BYTES, 128)
}

/// Return a node's 128 bytes to the arena (merge/relocation cleanup).
pub fn free_node(arena: &Arena, node: Addr) {
    arena.free(node, NODE_BYTES, 128);
}

/// Unpacked node metadata word (`node + 4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Height in the tree: `0` for leaves, parents one more than children.
    pub level: u32,
    /// Number of keys currently stored in the node.
    pub slotuse: u32,
    /// NMP-side node lock bit (host nodes use the seqlock word instead).
    pub locked: bool,
}

impl Meta {
    fn pack(self) -> u32 {
        self.level | (self.slotuse << 8) | ((self.locked as u32) << 16)
    }

    fn unpack(v: u32) -> Meta {
        Meta { level: v & 0xFF, slotuse: (v >> 8) & 0xFF, locked: (v >> 16) & 1 != 0 }
    }

    /// Whether this node is a leaf (`level == 0`).
    pub fn is_leaf(self) -> bool {
        self.level == 0
    }
}

// ---- untimed (population / inspection) ----

/// Untimed node initialization: zero everything, then write the header.
pub fn raw_init(ram: &dyn MemBackend, node: Addr, level: u32, slotuse: u32) {
    ram.write_u64(node, (Meta { level, slotuse, locked: false }.pack() as u64) << 32);
    for w in 1..16 {
        ram.write_u64(node + w * 8, 0);
    }
}

/// Untimed read of the metadata word.
pub fn raw_meta(ram: &dyn MemBackend, node: Addr) -> Meta {
    Meta::unpack(ram.read_u32(node + 4))
}

/// Untimed write of the metadata word.
pub fn raw_set_meta(ram: &dyn MemBackend, node: Addr, m: Meta) {
    ram.write_u32(node + 4, m.pack());
}

/// Untimed read of the seqlock word.
pub fn raw_seq(ram: &dyn MemBackend, node: Addr) -> u32 {
    ram.read_u32(node)
}

/// Untimed write of the seqlock word.
pub fn raw_set_seq(ram: &dyn MemBackend, node: Addr, seq: u32) {
    ram.write_u32(node, seq);
}

/// Untimed read of key slot `i`.
pub fn raw_key(ram: &dyn MemBackend, node: Addr, i: u32) -> Key {
    debug_assert!(i < INNER_MAX);
    ram.read_u32(node + KEYS_OFF + 4 * i)
}

/// Untimed read of a tree's root-word cell.
pub fn raw_root(ram: &dyn MemBackend, root_word: Addr) -> Addr {
    ram.read_u32(root_word)
}

/// Untimed initialization of a tree's root-word cell (structure build).
pub fn raw_set_root(ram: &dyn MemBackend, root_word: Addr, root: Addr) {
    ram.write_u32(root_word, root);
}

/// Untimed word-for-word node copy (push-down subtree relocation).
pub fn raw_copy_node(ram: &dyn MemBackend, old: Addr, new: Addr) {
    for w in 0..NODE_BYTES / 8 {
        ram.write_u64(new + w * 8, ram.read_u64(old + w * 8));
    }
}

/// Untimed write of key slot `i`.
pub fn raw_set_key(ram: &dyn MemBackend, node: Addr, i: u32, k: Key) {
    ram.write_u32(node + KEYS_OFF + 4 * i, k);
}

/// Payload slot `i`: value in a leaf, child pointer in an inner node
/// (children have one more slot than keys).
pub fn raw_payload(ram: &dyn MemBackend, node: Addr, i: u32) -> u32 {
    debug_assert!(i <= INNER_MAX);
    ram.read_u32(node + PAYLOAD_OFF + 4 * i)
}

/// Untimed write of payload slot `i` (see [`raw_payload`]).
pub fn raw_set_payload(ram: &dyn MemBackend, node: Addr, i: u32, v: u32) {
    debug_assert!(i <= INNER_MAX);
    ram.write_u32(node + PAYLOAD_OFF + 4 * i, v);
}

// ---- timed ----

/// Timed read of the seqlock word.
pub fn read_seq(ctx: &mut ThreadCtx, node: Addr) -> u32 {
    // Acquire: the seqnum is the node's synchronization word — observing an
    // even value must order the reader after the writer's release below.
    ctx.read_u32_acquire(node)
}

/// Timed write of the seqlock word.
pub fn write_seq(ctx: &mut ThreadCtx, node: Addr, seq: u32) {
    // Release: publishes the critical section's writes (or, when a split
    // replicates a seqnum into a fresh node, publishes the new node).
    ctx.write_u32_release(node, seq)
}

/// Try to lock a host node's sequence lock: even -> odd CAS.
pub fn try_lock_seq(ctx: &mut ThreadCtx, node: Addr, expect_even: u32) -> bool {
    debug_assert_eq!(expect_even % 2, 0);
    ctx.cas_u32(node, expect_even, expect_even + 1).is_ok()
}

/// Release a host node's sequence lock (odd -> even increment).
pub fn unlock_seq(ctx: &mut ThreadCtx, node: Addr) {
    let s = read_seq(ctx, node);
    debug_assert_eq!(s % 2, 1, "unlock of an unlocked node");
    write_seq(ctx, node, s + 1);
}

/// Timed read of the metadata word.
pub fn read_meta(ctx: &mut ThreadCtx, node: Addr) -> Meta {
    Meta::unpack(ctx.read_u32(node + 4))
}

/// Timed write of the metadata word.
pub fn write_meta(ctx: &mut ThreadCtx, node: Addr, m: Meta) {
    ctx.write_u32(node + 4, m.pack())
}

/// Timed read of key slot `i`.
pub fn read_key(ctx: &mut ThreadCtx, node: Addr, i: u32) -> Key {
    ctx.read_u32(node + KEYS_OFF + 4 * i)
}

/// Timed write of key slot `i`.
pub fn write_key(ctx: &mut ThreadCtx, node: Addr, i: u32, k: Key) {
    ctx.write_u32(node + KEYS_OFF + 4 * i, k)
}

/// Timed read of payload slot `i` (see [`raw_payload`]).
pub fn read_payload(ctx: &mut ThreadCtx, node: Addr, i: u32) -> u32 {
    ctx.read_u32(node + PAYLOAD_OFF + 4 * i)
}

/// Timed write of payload slot `i` (see [`raw_payload`]).
pub fn write_payload(ctx: &mut ThreadCtx, node: Addr, i: u32, v: u32) {
    ctx.write_u32(node + PAYLOAD_OFF + 4 * i, v)
}

/// Timed node initialization (writes a fresh node's header).
pub fn init_node(ctx: &mut ThreadCtx, node: Addr, level: u32, slotuse: u32) {
    write_seq(ctx, node, 0);
    write_meta(ctx, node, Meta { level, slotuse, locked: false });
}

// ---- timed, speculative ----
//
// Optimistic read paths (seqlock-validated descents and leaf probes) read
// node contents that a concurrent writer may be mutating; the seqnum
// re-check discards any torn result. These `_spec` variants cost the same
// simulated cycles as their plain counterparts but tell the race detector
// the read is validated elsewhere and must not be reported.

/// Speculative [`read_meta`] for seqlock-validated paths.
pub fn read_meta_spec(ctx: &mut ThreadCtx, node: Addr) -> Meta {
    Meta::unpack(ctx.read_u32_speculative(node + 4))
}

/// Speculative [`read_key`] for seqlock-validated paths.
pub fn read_key_spec(ctx: &mut ThreadCtx, node: Addr, i: u32) -> Key {
    ctx.read_u32_speculative(node + KEYS_OFF + 4 * i)
}

/// Speculative [`read_payload`] for seqlock-validated paths.
pub fn read_payload_spec(ctx: &mut ThreadCtx, node: Addr, i: u32) -> u32 {
    ctx.read_u32_speculative(node + PAYLOAD_OFF + 4 * i)
}

/// Index of the child to follow for `key` in an inner node
/// (`find_child` of Listings 4/5): first `i` with `key <= keys[i]`,
/// else `slotuse`.
pub fn find_child_idx(ctx: &mut ThreadCtx, node: Addr, slotuse: u32, key: Key) -> u32 {
    for i in 0..slotuse {
        ctx.step();
        if key <= read_key(ctx, node, i) {
            return i;
        }
    }
    slotuse
}

/// Speculative [`find_child_idx`] for seqlock-validated descents.
pub fn find_child_idx_spec(ctx: &mut ThreadCtx, node: Addr, slotuse: u32, key: Key) -> u32 {
    for i in 0..slotuse {
        ctx.step();
        if key <= read_key_spec(ctx, node, i) {
            return i;
        }
    }
    slotuse
}

/// Position of `key` in a leaf, if present.
pub fn leaf_find(ctx: &mut ThreadCtx, node: Addr, slotuse: u32, key: Key) -> Option<u32> {
    for i in 0..slotuse {
        ctx.step();
        let k = read_key(ctx, node, i);
        if k == key {
            return Some(i);
        }
        if k > key {
            return None;
        }
    }
    None
}

/// Speculative [`leaf_find`] for seqlock-validated probes.
pub fn leaf_find_spec(ctx: &mut ThreadCtx, node: Addr, slotuse: u32, key: Key) -> Option<u32> {
    for i in 0..slotuse {
        ctx.step();
        let k = read_key_spec(ctx, node, i);
        if k == key {
            return Some(i);
        }
        if k > key {
            return None;
        }
    }
    None
}

/// Insert `key -> value` into a non-full leaf at its sorted position.
/// Caller has verified the key is absent and holds exclusive access.
pub fn leaf_insert(ctx: &mut ThreadCtx, node: Addr, key: Key, value: Value) {
    let m = read_meta(ctx, node);
    debug_assert!(m.is_leaf() && m.slotuse < LEAF_MAX);
    let mut pos = m.slotuse;
    for i in 0..m.slotuse {
        ctx.step();
        if read_key(ctx, node, i) > key {
            pos = i;
            break;
        }
    }
    let mut i = m.slotuse;
    while i > pos {
        let k = read_key(ctx, node, i - 1);
        let v = read_payload(ctx, node, i - 1);
        write_key(ctx, node, i, k);
        write_payload(ctx, node, i, v);
        i -= 1;
    }
    write_key(ctx, node, pos, key);
    write_payload(ctx, node, pos, value);
    write_meta(ctx, node, Meta { slotuse: m.slotuse + 1, ..m });
}

/// Remove the entry at `pos` from a leaf (shift left). "Free-at-empty":
/// an emptied leaf stays linked (relaxed minimum-occupancy invariant, §3.4).
pub fn leaf_remove_at(ctx: &mut ThreadCtx, node: Addr, pos: u32) {
    let m = read_meta(ctx, node);
    debug_assert!(m.is_leaf() && pos < m.slotuse);
    for i in pos..m.slotuse - 1 {
        let k = read_key(ctx, node, i + 1);
        let v = read_payload(ctx, node, i + 1);
        write_key(ctx, node, i, k);
        write_payload(ctx, node, i, v);
    }
    write_meta(ctx, node, Meta { slotuse: m.slotuse - 1, ..m });
}

/// Insert dividing key `key` and right-child `child` into a non-full inner
/// node, immediately after the slot that currently routes to the split
/// child.
pub fn inner_insert(ctx: &mut ThreadCtx, node: Addr, key: Key, child: Addr) {
    let m = read_meta(ctx, node);
    debug_assert!(!m.is_leaf() && m.slotuse < INNER_MAX);
    let mut pos = m.slotuse;
    for i in 0..m.slotuse {
        ctx.step();
        if read_key(ctx, node, i) > key {
            pos = i;
            break;
        }
    }
    let mut i = m.slotuse;
    while i > pos {
        let k = read_key(ctx, node, i - 1);
        write_key(ctx, node, i, k);
        let c = read_payload(ctx, node, i);
        write_payload(ctx, node, i + 1, c);
        i -= 1;
    }
    write_key(ctx, node, pos, key);
    write_payload(ctx, node, pos + 1, child);
    write_meta(ctx, node, Meta { slotuse: m.slotuse + 1, ..m });
}

/// Split a full leaf: upper half moves to a new node. Returns
/// `(dividing_key, new_right_node)`; keys `<= dividing_key` stay left.
/// The new node replicates the original's seqnum (footnote 3 of the paper)
/// and inherits its next-leaf link.
pub fn split_leaf(ctx: &mut ThreadCtx, arena: &Arena, node: Addr) -> (Key, Addr) {
    let m = read_meta(ctx, node);
    debug_assert!(m.is_leaf() && m.slotuse == LEAF_MAX);
    let right = alloc_node(arena);
    let keep = LEAF_MAX / 2;
    let moved = LEAF_MAX - keep;
    let seq = read_seq(ctx, node);
    write_seq(ctx, right, seq);
    write_meta(ctx, right, Meta { level: 0, slotuse: moved, locked: m.locked });
    for i in 0..moved {
        let k = read_key(ctx, node, keep + i);
        let v = read_payload(ctx, node, keep + i);
        write_key(ctx, right, i, k);
        write_payload(ctx, right, i, v);
    }
    // next-leaf chain: node -> right -> old successor
    let succ = ctx.read_u32(node + 120);
    ctx.write_u32(right + 120, succ);
    ctx.write_u32(node + 120, right);
    write_meta(ctx, node, Meta { slotuse: keep, ..m });
    let div = read_key(ctx, node, keep - 1);
    (div, right)
}

/// Split a full inner node: the middle key is pushed up. Returns
/// `(pushed_key, new_right_node)`.
pub fn split_inner(ctx: &mut ThreadCtx, arena: &Arena, node: Addr) -> (Key, Addr) {
    let m = read_meta(ctx, node);
    debug_assert!(!m.is_leaf() && m.slotuse == INNER_MAX);
    let right = alloc_node(arena);
    let mid = INNER_MAX / 2;
    let moved = INNER_MAX - mid - 1;
    let seq = read_seq(ctx, node);
    write_seq(ctx, right, seq);
    write_meta(ctx, right, Meta { level: m.level, slotuse: moved, locked: m.locked });
    for i in 0..moved {
        let k = read_key(ctx, node, mid + 1 + i);
        write_key(ctx, right, i, k);
    }
    for i in 0..=moved {
        let c = read_payload(ctx, node, mid + 1 + i);
        write_payload(ctx, right, i, c);
    }
    let push = read_key(ctx, node, mid);
    write_meta(ctx, node, Meta { slotuse: mid, ..m });
    (push, right)
}

/// Leaf next-pointer (range-scan support; partition-local in NMP leaves).
pub fn raw_next_leaf(ram: &dyn MemBackend, node: Addr) -> Addr {
    ram.read_u32(node + 120)
}

/// Untimed write of the leaf next-pointer (see [`raw_next_leaf`]).
pub fn raw_set_next_leaf(ram: &dyn MemBackend, node: Addr, next: Addr) {
    ram.write_u32(node + 120, next);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, Machine, ThreadKind};
    use std::sync::Arc;

    fn on_host(f: impl FnOnce(&mut ThreadCtx, &Arena) + Send + 'static) {
        let m = Machine::new(Config::tiny());
        let mut sim = m.simulation();
        let m2 = Arc::clone(&m);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| f(ctx, m2.host_arena()));
        sim.run();
    }

    #[test]
    fn meta_pack_roundtrip() {
        let m = Meta { level: 3, slotuse: 14, locked: true };
        assert_eq!(Meta::unpack(m.pack()), m);
        assert!(!m.is_leaf());
        assert!(Meta { level: 0, slotuse: 0, locked: false }.is_leaf());
    }

    #[test]
    fn leaf_insert_keeps_sorted_order() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 0, 0);
            for k in [50u32, 10, 30, 20, 40] {
                leaf_insert(ctx, n, k, k * 2);
            }
            let m = read_meta(ctx, n);
            assert_eq!(m.slotuse, 5);
            let keys: Vec<u32> = (0..5).map(|i| read_key(ctx, n, i)).collect();
            assert_eq!(keys, [10, 20, 30, 40, 50]);
            assert_eq!(read_payload(ctx, n, 2), 60);
        });
    }

    #[test]
    fn leaf_find_and_remove() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 0, 0);
            for k in 1..=5u32 {
                leaf_insert(ctx, n, k * 10, k);
            }
            assert_eq!(leaf_find(ctx, n, 5, 30), Some(2));
            assert_eq!(leaf_find(ctx, n, 5, 31), None);
            leaf_remove_at(ctx, n, 2);
            assert_eq!(leaf_find(ctx, n, 4, 30), None);
            assert_eq!(leaf_find(ctx, n, 4, 40), Some(2));
            assert_eq!(read_meta(ctx, n).slotuse, 4);
        });
    }

    #[test]
    fn find_child_routes_less_or_equal_left() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 1, 2);
            write_key(ctx, n, 0, 10);
            write_key(ctx, n, 1, 20);
            assert_eq!(find_child_idx(ctx, n, 2, 5), 0);
            assert_eq!(find_child_idx(ctx, n, 2, 10), 0, "<= goes left");
            assert_eq!(find_child_idx(ctx, n, 2, 11), 1);
            assert_eq!(find_child_idx(ctx, n, 2, 20), 1);
            assert_eq!(find_child_idx(ctx, n, 2, 21), 2);
        });
    }

    #[test]
    fn split_leaf_partitions_keys() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 0, 0);
            for k in 1..=LEAF_MAX {
                leaf_insert(ctx, n, k * 10, k);
            }
            let (div, right) = split_leaf(ctx, arena, n);
            let lm = read_meta(ctx, n);
            let rm = read_meta(ctx, right);
            assert_eq!(lm.slotuse + rm.slotuse, LEAF_MAX);
            assert_eq!(div, read_key(ctx, n, lm.slotuse - 1));
            // all right keys > div, all left keys <= div
            for i in 0..rm.slotuse {
                assert!(read_key(ctx, right, i) > div);
            }
            for i in 0..lm.slotuse {
                assert!(read_key(ctx, n, i) <= div);
            }
            // leaf chain
            assert_eq!(raw_next_leaf(ctx.mem().ram(), n), right);
        });
    }

    #[test]
    fn split_inner_pushes_middle_key() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 2, 0);
            for i in 0..INNER_MAX {
                write_key(ctx, n, i, (i + 1) * 10);
            }
            for i in 0..=INNER_MAX {
                write_payload(ctx, n, i, 0x1000 + i * 128);
            }
            write_meta(ctx, n, Meta { level: 2, slotuse: INNER_MAX, locked: false });
            let (push, right) = split_inner(ctx, arena, n);
            let lm = read_meta(ctx, n);
            let rm = read_meta(ctx, right);
            assert_eq!(push, (INNER_MAX / 2 + 1) * 10);
            assert_eq!(lm.slotuse + rm.slotuse + 1, INNER_MAX);
            assert_eq!(rm.level, 2);
            // child counts consistent: left slotuse+1 + right slotuse+1 = 16
            assert_eq!(read_payload(ctx, right, 0), 0x1000 + (INNER_MAX / 2 + 1) * 128);
        });
    }

    #[test]
    fn inner_insert_places_child_right_of_divider() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 1, 1);
            write_key(ctx, n, 0, 100);
            write_payload(ctx, n, 0, 0xA00);
            write_payload(ctx, n, 1, 0xB00);
            inner_insert(ctx, n, 50, 0xC00);
            let m = read_meta(ctx, n);
            assert_eq!(m.slotuse, 2);
            assert_eq!(read_key(ctx, n, 0), 50);
            assert_eq!(read_key(ctx, n, 1), 100);
            assert_eq!(read_payload(ctx, n, 0), 0xA00);
            assert_eq!(read_payload(ctx, n, 1), 0xC00);
            assert_eq!(read_payload(ctx, n, 2), 0xB00);
        });
    }

    #[test]
    fn seq_lock_cycle() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 0, 0);
            assert!(try_lock_seq(ctx, n, 0));
            assert_eq!(read_seq(ctx, n), 1);
            assert!(!try_lock_seq(ctx, n, 0), "locked node rejects second lock");
            unlock_seq(ctx, n);
            assert_eq!(read_seq(ctx, n), 2);
            assert!(try_lock_seq(ctx, n, 2));
        });
    }

    #[test]
    fn split_replicates_seqnum() {
        on_host(|ctx, arena| {
            let n = alloc_node(arena);
            init_node(ctx, n, 0, 0);
            write_seq(ctx, n, 7);
            for k in 1..=LEAF_MAX {
                leaf_insert(ctx, n, k * 8, k);
            }
            let (_, right) = split_leaf(ctx, arena, n);
            assert_eq!(read_seq(ctx, right), 7, "footnote 3: seqnum replicated");
        });
    }
}
