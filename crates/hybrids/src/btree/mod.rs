//! B+ tree family: the host-only seqlock baseline and the hybrid B+ tree
//! of §3.4.

pub mod build;
pub mod host_only;
pub mod hybrid;
pub mod node;
pub mod traverse;

pub use host_only::HostBTree;
pub use hybrid::HybridBTree;
