//! Hybrid B+ tree (§3.4): sequence-locked host-managed top levels, locked
//! single-threaded NMP-managed lower levels, synchronized across the
//! host-NMP boundary by the parent-seqnum protocol and the
//! LOCK_PATH / RESUME_INSERT dance of Listings 3–5.
//!
//! * The tree is bulk-built in host memory, the split point is chosen so
//!   the top levels fit the LLC, and lower subtrees are pushed down into
//!   NMP partitions at contiguous key-range boundaries ([`super::build`]).
//! * Every operation traverses the host levels optimistically
//!   (Listing 4), then offloads with the begin-NMP-traversal child and the
//!   parent's observed seqnum. The NMP core validates the parent seqnum
//!   against the one recorded in the begin node (Listing 5, lines 2–8):
//!   greater-recorded ⇒ the begin node has been split ⇒ host retry;
//!   smaller-recorded ⇒ a sibling split bumped the parent ⇒ adopt.
//! * An NMP insert locks its path bottom-up. If even the top NMP node must
//!   split, the NMP core keeps the path locked and replies LOCK_PATH; the
//!   host locks its own path (seqnum CAS) and sends RESUME_INSERT (the
//!   split-off child then propagates into the locked host path), or fails
//!   to lock and sends UNLOCK_PATH and retries from the root.
//! * Removals that meet a locked leaf abort and retry (§3.4); reads and
//!   value updates proceed.

use std::sync::Arc;

use nmp_sim::analysis::RegionClass;
use nmp_sim::{Addr, EffectSpec, Machine, Region, Simulation, ThreadCtx, NULL};
use workloads::{Key, Op, Value};

use crate::api::{Issued, OpResult, PollOutcome, SimIndex};
use crate::effects::{protocol_op, AccessDecl};
use crate::offload::{OffloadClient, OffloadRuntime, PendingOp, Step};
use crate::publist::{NmpExec, OpCode, Request, Response};

use super::build;
use super::host_only::{apply_insert, InsertSeed};
use super::node::{self, INNER_MAX};
use super::traverse::try_descend;

/// NMP-side executor of the hybrid B+ tree.
pub struct BtreeExec {
    machine: Arc<Machine>,
}

/// A cross-boundary insert parked between LOCK_PATH and RESUME_INSERT /
/// UNLOCK_PATH: the NMP path stays locked meanwhile (Listing 5).
pub struct ParkedInsert {
    key: Key,
    value: Value,
    locked: Vec<Addr>,
    begin: Addr,
    parent_seq: u32,
}

impl NmpExec for BtreeExec {
    type SlotState = Option<ParkedInsert>;

    // Deliberately NOT coalescible (the `NmpExec` default, `&[]`): even
    // the Read path may write partition memory — sequence-number adoption
    // stores `req.aux` into the node when the recorded seqnum lags — so
    // replicating a response across requests would skip a state change.
    // `effects::assert_coalescible_ops` would reject a Read declaration
    // here anyway.

    fn exec(
        &self,
        ctx: &mut ThreadCtx,
        part: usize,
        req: &Request,
        state: &mut Option<ParkedInsert>,
    ) -> Response {
        match req.op {
            OpCode::ResumeInsert => {
                let p = state.take().expect("RESUME_INSERT without a parked insert");
                let mut locked = p.locked;
                let carry = apply_insert(
                    ctx,
                    self.machine.part_arena(part),
                    &mut locked,
                    0,
                    InsertSeed::Leaf(p.key, p.value),
                );
                let (div, new_child) = carry.expect("a parked insert always splits its top node");
                // The begin node and its split-off sibling will see their
                // host parent unlock at parent_seq + 2 (lock + unlock).
                node::write_seq(ctx, p.begin, p.parent_seq + 2);
                node::write_seq(ctx, new_child, p.parent_seq + 2);
                for &n in &locked {
                    let m = node::read_meta(ctx, n);
                    node::write_meta(ctx, n, node::Meta { locked: false, ..m });
                }
                Response { ok: true, split_key: div, new_child, ..Default::default() }
            }
            OpCode::UnlockPath => {
                let p = state.take().expect("UNLOCK_PATH without a parked insert");
                for &n in &p.locked {
                    let m = node::read_meta(ctx, n);
                    node::write_meta(ctx, n, node::Meta { locked: false, ..m });
                }
                Response { ok: true, ..Default::default() }
            }
            _ => self.exec_main(ctx, part, req, state),
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        // NMP half: non-scan ops acquire-read the begin node's parent
        // seqnum and may release-store it back on sibling-split adoption;
        // mutators additionally write node contents (Part regions are
        // single-core, so the annotations are same-thread no-ops).
        let check = [
            AccessDecl::read(RegionClass::Part).acquire(),
            AccessDecl::read(RegionClass::Part),
            AccessDecl::write(RegionClass::Part).release(),
        ];
        let mutate = [
            AccessDecl::read(RegionClass::Part).acquire(),
            AccessDecl::read(RegionClass::Part),
            AccessDecl::write(RegionClass::Part),
            AccessDecl::write(RegionClass::Part).release(),
        ];
        let walk = [AccessDecl::read(RegionClass::Part)];
        // Splits replicate the original's seq word (acquire read + release
        // store), so the resumed insert reads seqnums as well as contents.
        let resume = [
            AccessDecl::read(RegionClass::Part).acquire(),
            AccessDecl::read(RegionClass::Part),
            AccessDecl::write(RegionClass::Part),
            AccessDecl::write(RegionClass::Part).release(),
        ];
        let unlock = [AccessDecl::read(RegionClass::Part), AccessDecl::write(RegionClass::Part)];
        EffectSpec::new("hybrid-btree")
            .op(protocol_op(OpCode::Read, "Read").nmp_all(&check))
            .op(protocol_op(OpCode::Scan, "Scan").nmp_all(&walk))
            .op(protocol_op(OpCode::Update, "Update").nmp_all(&mutate))
            .op(protocol_op(OpCode::Insert, "Insert").nmp_all(&mutate))
            .op(protocol_op(OpCode::Remove, "Remove").nmp_all(&mutate))
            .op(protocol_op(OpCode::ResumeInsert, "ResumeInsert").nmp_all(&resume))
            .op(protocol_op(OpCode::UnlockPath, "UnlockPath").nmp_all(&unlock))
    }
}

impl BtreeExec {
    fn exec_main(
        &self,
        ctx: &mut ThreadCtx,
        part: usize,
        req: &Request,
        state: &mut Option<ParkedInsert>,
    ) -> Response {
        let begin = req.begin;
        debug_assert_ne!(begin, NULL);
        // Host-NMP boundary synchronization (Listing 5, lines 2-8).
        // Scans carry the remaining length in `aux` instead of the parent
        // seqnum and skip the check: a begin node is never deleted, and a
        // concurrent split at worst makes the (non-atomic) scan continue
        // from a slightly stale leaf.
        if req.op != OpCode::Scan {
            let recorded = node::read_seq(ctx, begin);
            if recorded > req.aux {
                return Response::retry(); // begin node was split by an earlier op
            }
            if recorded < req.aux {
                node::write_seq(ctx, begin, req.aux); // sibling split: adopt
            }
        }
        // Descend from the begin node, recording the path.
        let bm = node::read_meta(ctx, begin);
        let mut path: Vec<Addr> = vec![NULL; bm.level as usize + 1];
        path[bm.level as usize] = begin;
        let mut curr = begin;
        let mut meta = bm;
        while meta.level > 0 {
            let idx = node::find_child_idx(ctx, curr, meta.slotuse, req.key);
            curr = node::read_payload(ctx, curr, idx);
            meta = node::read_meta(ctx, curr);
            path[meta.level as usize] = curr;
        }
        let leaf = curr;
        let lm = meta;
        match req.op {
            OpCode::Scan => {
                // Walk the partition-local leaf chain from `key`, reading up
                // to `aux` pairs with keys <= `value` (the subtree bound the
                // host computed; 0 = unbounded).
                let bound = req.value;
                let mut remaining = req.aux;
                let mut count = 0u32;
                let mut from = req.key;
                let mut node_ptr = leaf;
                'walk: while remaining > 0 && node_ptr != NULL {
                    let m = node::read_meta(ctx, node_ptr);
                    for i in 0..m.slotuse.min(node::LEAF_MAX) {
                        ctx.step();
                        let k = node::read_key(ctx, node_ptr, i);
                        if k < from {
                            continue;
                        }
                        if bound != 0 && k > bound {
                            break 'walk;
                        }
                        let _ = node::read_payload(ctx, node_ptr, i);
                        count += 1;
                        remaining -= 1;
                        if remaining == 0 {
                            break 'walk;
                        }
                    }
                    from = 0;
                    node_ptr = ctx.read_u32(node_ptr + 120);
                }
                // split_key = 1 signals the chain ended inside the bound
                // (global end if the bound was unbounded).
                Response {
                    ok: true,
                    value: count,
                    split_key: (node_ptr == NULL) as u32,
                    ..Default::default()
                }
            }
            OpCode::Read => match node::leaf_find(ctx, leaf, lm.slotuse, req.key) {
                Some(i) => Response::ok_value(node::read_payload(ctx, leaf, i)),
                None => Response::fail(),
            },
            OpCode::Update => match node::leaf_find(ctx, leaf, lm.slotuse, req.key) {
                Some(i) => {
                    node::write_payload(ctx, leaf, i, req.value);
                    Response { ok: true, ..Default::default() }
                }
                None => Response::fail(),
            },
            OpCode::Remove => {
                if lm.locked {
                    // Leaf reserved by a parked insert: abort & retry (§3.4).
                    return Response::retry();
                }
                match node::leaf_find(ctx, leaf, lm.slotuse, req.key) {
                    Some(i) => {
                        node::leaf_remove_at(ctx, leaf, i);
                        Response { ok: true, ..Default::default() }
                    }
                    None => Response::fail(),
                }
            }
            OpCode::Insert => {
                if node::leaf_find(ctx, leaf, lm.slotuse, req.key).is_some() {
                    return Response::fail(); // duplicate
                }
                // Lock the path bottom-up until a non-full node absorbs
                // (Listing 5, lines 13-24).
                let mut locked: Vec<Addr> = Vec::new();
                let mut locked_all = false;
                for lvl in 0..=bm.level {
                    let n = path[lvl as usize];
                    let m = node::read_meta(ctx, n);
                    if m.locked {
                        // Reserved by another parked insert: back off.
                        for &x in &locked {
                            let xm = node::read_meta(ctx, x);
                            node::write_meta(ctx, x, node::Meta { locked: false, ..xm });
                        }
                        return Response::retry();
                    }
                    node::write_meta(ctx, n, node::Meta { locked: true, ..m });
                    locked.push(n);
                    let max = if lvl == 0 { node::LEAF_MAX } else { INNER_MAX };
                    if m.slotuse < max {
                        locked_all = true;
                        break;
                    }
                }
                if locked_all {
                    let carry = apply_insert(
                        ctx,
                        self.machine.part_arena(part),
                        &mut locked,
                        0,
                        InsertSeed::Leaf(req.key, req.value),
                    );
                    debug_assert!(carry.is_none(), "absorbed insert cannot escape");
                    for &n in &locked {
                        let m = node::read_meta(ctx, n);
                        node::write_meta(ctx, n, node::Meta { locked: false, ..m });
                    }
                    Response { ok: true, ..Default::default() }
                } else {
                    // Even the top NMP node must split: park the insert with
                    // its path locked and ask the host to lock its side.
                    *state = Some(ParkedInsert {
                        key: req.key,
                        value: req.value,
                        locked,
                        begin,
                        parent_seq: req.aux,
                    });
                    Response::lock_path()
                }
            }
            _ => unreachable!(),
        }
    }
}

/// The hybrid B+ tree.
pub struct HybridBTree {
    machine: Arc<Machine>,
    runtime: OffloadRuntime,
    exec: Arc<BtreeExec>,
    root_word: Addr,
    last_host_level: u32,
}

impl HybridBTree {
    /// Bulk-build over ascending `pairs`, choose the host-NMP split from
    /// the LLC size (budget 1.25× L2, mirroring the paper's 1.14 MB host
    /// portion over a 1 MB LLC), and push the lower levels down into the
    /// NMP partitions.
    pub fn new(
        machine: Arc<Machine>,
        pairs: &[(Key, Value)],
        fill: f64,
        max_inflight: usize,
    ) -> Arc<Self> {
        let budget = machine.config().l2.size_bytes as u64 * 5 / 4;
        Self::with_budget(machine, pairs, fill, max_inflight, budget)
    }

    /// As [`Self::new`] with an explicit host-portion byte budget.
    pub fn with_budget(
        machine: Arc<Machine>,
        pairs: &[(Key, Value)],
        fill: f64,
        max_inflight: usize,
        budget_bytes: u64,
    ) -> Arc<Self> {
        let (root, height) = build::bulk_build(&machine, machine.host_arena(), pairs, fill);
        let counts = build::level_counts(&machine, root, height);
        let last_host_level = build::choose_split(&counts, budget_bytes);
        build::push_down(&machine, root, height, last_host_level);
        let root_word = machine.host_arena().alloc(8);
        node::raw_set_root(machine.ram(), root_word, root);
        let runtime = OffloadRuntime::new(Arc::clone(&machine), max_inflight);
        let exec = Arc::new(BtreeExec { machine: Arc::clone(&machine) });
        Arc::new(HybridBTree { machine, runtime, exec, root_word, last_host_level })
    }

    /// The machine the tree lives on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Current root node address.
    pub fn root(&self) -> Addr {
        node::raw_root(self.machine.ram(), self.root_word)
    }

    /// Current tree height (levels, root included).
    pub fn height(&self) -> u32 {
        node::raw_meta(self.machine.ram(), self.root()).level + 1
    }

    /// The lowest host-managed level (children of these nodes are the top
    /// NMP-managed nodes).
    pub fn last_host_level(&self) -> u32 {
        self.last_host_level
    }

    fn part_of(&self, begin: Addr) -> usize {
        match self.machine.map().region_of(begin) {
            Region::Part(p) => p,
            r => panic!("begin-NMP-traversal node {begin:#x} not in an NMP partition ({r:?})"),
        }
    }

    fn opcode(op: Op) -> OpCode {
        match op {
            Op::Read(_) => OpCode::Read,
            Op::Insert(..) => OpCode::Insert,
            Op::Remove(_) => OpCode::Remove,
            Op::Update(..) => OpCode::Update,
            Op::Scan(..) => OpCode::Scan,
            Op::ExtractMin => unreachable!("extract-min never reaches the offload path"),
        }
    }

    /// Next subtree request of a range scan (extension; YCSB-E): iterate
    /// begin-child subtrees left to right. Each offload scans one subtree's
    /// worth of the partition-local leaf chain, bounded by the subtree's
    /// dividing key; the host then continues at `bound + 1`, which routes
    /// to the next subtree (possibly in the next partition). The descent is
    /// bounded, so a seqlock held by a sibling lane never wedges the scan —
    /// it stalls and retries on the next poll.
    fn scan_step(&self, ctx: &mut ThreadCtx, st: &mut BtOpState) -> Step {
        if st.remaining == 0 {
            return Step::Done(OpResult { ok: st.count > 0, value: st.count });
        }
        let Some(d) = try_descend(ctx, self.root_word, st.from, self.last_host_level, PATIENCE)
        else {
            return Step::Stall;
        };
        let (_, begin) = d.picked.expect("hybrid descent always picks an NMP child");
        let part = self.part_of(begin);
        st.hi = d.picked_hi;
        let mut req = Request::new(OpCode::Scan, st.from, d.picked_hi);
        req.begin = begin;
        req.aux = st.remaining;
        Step::Post { part, req }
    }

    /// Host traversal + offload request (Listing 4 lines 4-24). Bounded:
    /// gives up (stalls) after a few seqlock waits so a pipelined host
    /// thread never spins on a lock that one of its *own* in-flight
    /// operations holds.
    fn offload_step(&self, ctx: &mut ThreadCtx, op: Op, st: &mut BtOpState) -> Step {
        let key = op.key();
        let Some(d) = try_descend(ctx, self.root_word, key, self.last_host_level, PATIENCE) else {
            return Step::Stall;
        };
        let (_, begin) = d.picked.expect("hybrid descent always picks an NMP child");
        let part = self.part_of(begin);
        let value = match op {
            Op::Insert(_, v) | Op::Update(_, v) => v,
            _ => 0,
        };
        let mut req = Request::new(Self::opcode(op), key, value);
        req.begin = begin;
        req.aux = d.bottom().1; // parent's observed (even) seqnum
        st.saved = SavedDescent { path: d.path, root_level: d.root_level };
        st.part = part;
        Step::Post { part, req }
    }

    /// LOCK_PATH arrived: lock the recorded host path from the last host
    /// level upward until a non-full node (Listing 4 lines 26-35).
    fn try_lock_host_path(&self, ctx: &mut ThreadCtx, saved: &SavedDescent) -> Option<Vec<Addr>> {
        let mut locked = Vec::new();
        for &(n, s) in saved.path.iter() {
            if !node::try_lock_seq(ctx, n, s) {
                for &l in locked.iter().rev() {
                    node::unlock_seq(ctx, l);
                }
                return None;
            }
            locked.push(n);
            if node::read_meta(ctx, n).slotuse < INNER_MAX {
                break;
            }
        }
        Some(locked)
    }

    /// Complete the host side of a cross-boundary insert: graft the
    /// split-off NMP child into the locked host path, growing a new root
    /// if every host level split, then unlock.
    fn finish_resume(
        &self,
        ctx: &mut ThreadCtx,
        mut locked: Vec<Addr>,
        root_level: u32,
        split_key: Key,
        new_child: Addr,
    ) {
        let top_of_path = *locked.last().unwrap();
        let carry = apply_insert(
            ctx,
            self.machine.host_arena(),
            &mut locked,
            self.last_host_level,
            InsertSeed::Child(split_key, new_child),
        );
        if let Some((div, right)) = carry {
            let nr = node::alloc_node(self.machine.host_arena());
            node::init_node(ctx, nr, root_level + 1, 1);
            node::write_key(ctx, nr, 0, div);
            node::write_payload(ctx, nr, 0, top_of_path);
            node::write_payload(ctx, nr, 1, right);
            // Release: publishes the new root to optimistic descents.
            ctx.write_u32_release(self.root_word, nr);
        }
        for &l in locked.iter().rev() {
            node::unlock_seq(ctx, l);
        }
    }

    fn to_result(op: Op, resp: &Response) -> OpResult {
        match op {
            Op::Read(_) => OpResult { ok: resp.ok, value: resp.value },
            _ => OpResult { ok: resp.ok, value: 0 },
        }
    }

    // ---- untimed inspection ----

    /// All `(key, value)` pairs, validating tree ordering on the way.
    pub fn collect(&self) -> Vec<(Key, Value)> {
        build::check_and_collect(&self.machine, self.root(), 0, 0)
    }

    /// Structural invariants at quiescence: ordering (via collect), region
    /// placement per level, all host seqlocks even, all NMP locks clear,
    /// and begin-node parent seqnums never ahead of their parents.
    pub fn check_invariants(&self) {
        let ram = self.machine.ram();
        let _ = self.collect();
        let root = self.root();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let m = node::raw_meta(ram, n);
            let region = self.machine.map().region_of(n);
            if m.level >= self.last_host_level {
                assert_eq!(region, Region::Host, "host-level node in wrong region");
                assert_eq!(node::raw_seq(ram, n) % 2, 0, "host node {n:#x} left locked");
            } else {
                assert!(matches!(region, Region::Part(_)), "NMP node {n:#x} in wrong region");
                assert!(!m.locked, "NMP node {n:#x} left locked");
            }
            if !m.is_leaf() {
                for i in 0..=m.slotuse {
                    let c = node::raw_payload(ram, n, i);
                    if m.level == self.last_host_level {
                        let ps = node::raw_seq(ram, c);
                        let s = node::raw_seq(ram, n);
                        assert!(ps <= s, "child {c:#x} parent_seqnum {ps} ahead of parent {s}");
                        assert!(matches!(self.machine.map().region_of(c), Region::Part(_)));
                    }
                    stack.push(c);
                }
            }
        }
    }
}

/// Seqlock waits a bounded host descent tolerates before giving up, so a
/// pipelined host thread never spins on a lock that one of its *own*
/// in-flight operations holds.
const PATIENCE: u32 = 8;

/// Host traversal snapshot kept while an operation is in flight.
#[derive(Default)]
pub struct SavedDescent {
    path: Vec<(Addr, u32)>,
    root_level: u32,
}

/// Which request the operation currently awaits a response to.
#[derive(Default, PartialEq, Eq)]
enum BtPhase {
    /// The main operation (or, for a stalled descent, none yet).
    #[default]
    Main,
    /// RESUME_INSERT (host path locked, held in `BtOpState::locked`).
    Resume,
    /// UNLOCK_PATH acknowledgment before retrying from the root.
    AwaitUnlock,
}

/// Per-operation offload state: the recorded host descent, the lock-path
/// phase, and the subtree-hopping scan cursor.
#[derive(Default)]
pub struct BtOpState {
    saved: SavedDescent,
    phase: BtPhase,
    locked: Vec<Addr>,
    /// Partition of the main request's begin node; RESUME_INSERT /
    /// UNLOCK_PATH must go to the same combiner (it holds the parked
    /// insert in that slot's state).
    part: usize,
    started: bool,
    from: Key,
    remaining: u32,
    count: u32,
    hi: Key,
}

impl OffloadClient for HybridBTree {
    type OpState = BtOpState;

    fn advance(&self, ctx: &mut ThreadCtx, op: Op, st: &mut BtOpState) -> Step {
        if let Op::Scan(k, len) = op {
            if !st.started {
                st.started = true;
                st.from = k;
                st.remaining = len as u32;
            }
            return self.scan_step(ctx, st);
        }
        if matches!(op, Op::ExtractMin) {
            // Not a search-tree operation (priority queues only).
            return Step::Done(OpResult::fail());
        }
        // Initial attempt, stalled-descent retry, or NMP-side retry
        // (stale begin node / locked leaf): redo the optimistic descent.
        st.phase = BtPhase::Main;
        self.offload_step(ctx, op, st)
    }

    fn complete(&self, ctx: &mut ThreadCtx, op: Op, resp: &Response, st: &mut BtOpState) -> Step {
        if matches!(op, Op::Scan(..)) {
            st.count += resp.value;
            st.remaining = st.remaining.saturating_sub(resp.value);
            if st.remaining == 0 || st.hi == 0 {
                // Either length satisfied, or the rightmost (unbounded)
                // subtree served everything it could: global end.
                return Step::Done(OpResult { ok: st.count > 0, value: st.count });
            }
            st.from = st.hi + 1;
            return self.scan_step(ctx, st);
        }
        match st.phase {
            BtPhase::Resume => {
                debug_assert!(resp.ok, "RESUME_INSERT is guaranteed to succeed");
                let locked = std::mem::take(&mut st.locked);
                self.finish_resume(
                    ctx,
                    locked,
                    st.saved.root_level,
                    resp.split_key,
                    resp.new_child,
                );
                Step::Done(OpResult::ok(0))
            }
            BtPhase::AwaitUnlock => {
                // Retry the whole insert from the root (Listing 4 line 33).
                st.phase = BtPhase::Main;
                self.offload_step(ctx, op, st)
            }
            BtPhase::Main => {
                if resp.lock_path {
                    return match self.try_lock_host_path(ctx, &st.saved) {
                        Some(locked) => {
                            st.locked = locked;
                            st.phase = BtPhase::Resume;
                            Step::Post {
                                part: st.part,
                                req: Request::new(OpCode::ResumeInsert, op.key(), 0),
                            }
                        }
                        None => {
                            st.phase = BtPhase::AwaitUnlock;
                            Step::Post {
                                part: st.part,
                                req: Request::new(OpCode::UnlockPath, op.key(), 0),
                            }
                        }
                    };
                }
                Step::Done(Self::to_result(op, resp))
            }
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        // Host half: every op performs the optimistic seqlock descent
        // (acquire seqnum reads + speculative content reads); inserts may
        // additionally seqnum-CAS-lock the host path, graft the split-off
        // child (plain reads/writes) and release-publish a new root.
        let descend = [
            AccessDecl::read(RegionClass::Host).acquire(),
            AccessDecl::read(RegionClass::Host).speculative(),
        ];
        let graft = [
            AccessDecl::read(RegionClass::Host).acquire(),
            AccessDecl::read(RegionClass::Host).speculative(),
            AccessDecl::read(RegionClass::Host),
            AccessDecl::write(RegionClass::Host),
            AccessDecl::write(RegionClass::Host).cas(),
            AccessDecl::write(RegionClass::Host).release(),
        ];
        let resume = [
            AccessDecl::read(RegionClass::Host).acquire(),
            AccessDecl::read(RegionClass::Host),
            AccessDecl::write(RegionClass::Host),
            AccessDecl::write(RegionClass::Host).release(),
        ];
        EffectSpec::new("hybrid-btree")
            .op(protocol_op(OpCode::Read, "Read").host_all(&descend))
            .op(protocol_op(OpCode::Scan, "Scan").host_all(&descend))
            .op(protocol_op(OpCode::Update, "Update").host_all(&descend))
            .op(protocol_op(OpCode::Insert, "Insert").host_all(&graft))
            .op(protocol_op(OpCode::Remove, "Remove").host_all(&descend))
            .op(protocol_op(OpCode::ResumeInsert, "ResumeInsert").host_all(&resume))
            .op(protocol_op(OpCode::UnlockPath, "UnlockPath").host_all(&descend))
    }
}

impl SimIndex for HybridBTree {
    type Pending = PendingOp<BtOpState>;

    fn execute(&self, ctx: &mut ThreadCtx, op: Op) -> OpResult {
        self.runtime.execute(ctx, self, op)
    }

    fn issue(&self, ctx: &mut ThreadCtx, lane: usize, op: Op) -> Issued<Self::Pending> {
        self.runtime.issue(ctx, self, lane, op)
    }

    fn poll(&self, ctx: &mut ThreadCtx, pending: &mut Self::Pending) -> PollOutcome {
        self.runtime.poll(ctx, self, pending)
    }

    fn effect_spec(&self) -> EffectSpec {
        OffloadClient::effect_spec(self).merged(NmpExec::effect_spec(&*self.exec))
    }

    fn spawn_services(self: &Arc<Self>, sim: &mut Simulation) {
        self.runtime.register_spec(&SimIndex::effect_spec(&**self));
        self.runtime.spawn_combiners(sim, Arc::clone(&self.exec));
    }

    fn max_inflight(&self) -> usize {
        self.runtime.max_inflight()
    }

    fn occupancy_feedback(&self, core: usize) -> u32 {
        self.runtime.occupancy_feedback(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, ThreadKind};
    use std::collections::BTreeMap;

    fn setup(n: u32, fill: f64, budget: u64) -> (Arc<Machine>, Arc<HybridBTree>) {
        let m = Machine::new(Config::tiny());
        let pairs: Vec<(Key, Value)> = (1..=n).map(|k| (k * 8, k)).collect();
        let t = HybridBTree::with_budget(Arc::clone(&m), &pairs, fill, 4, budget);
        (m, t)
    }

    fn run_hosts(
        m: &Arc<Machine>,
        t: &Arc<HybridBTree>,
        threads: usize,
        f: impl Fn(&mut ThreadCtx, &HybridBTree, usize) + Send + Sync + 'static,
    ) {
        let mut sim = m.simulation();
        t.spawn_services(&mut sim);
        let f = Arc::new(f);
        for core in 0..threads {
            let t = Arc::clone(t);
            let f = Arc::clone(&f);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| f(ctx, &t, core));
        }
        sim.run();
    }

    #[test]
    fn construction_splits_tree() {
        let (_m, t) = setup(2000, 0.5, 8 * 1024);
        assert!(t.last_host_level() >= 1);
        assert!(t.last_host_level() < t.height());
        t.check_invariants();
        assert_eq!(t.collect().len(), 2000);
    }

    #[test]
    fn point_ops_roundtrip() {
        let (m, t) = setup(2000, 0.5, 8 * 1024);
        run_hosts(&m, &t, 1, |ctx, t, _| {
            assert_eq!(t.execute(ctx, Op::Read(800)), OpResult::ok(100));
            assert!(!t.execute(ctx, Op::Read(801)).ok);
            assert!(t.execute(ctx, Op::Insert(801, 5)).ok);
            assert!(!t.execute(ctx, Op::Insert(801, 6)).ok, "duplicate");
            assert_eq!(t.execute(ctx, Op::Read(801)), OpResult::ok(5));
            assert!(t.execute(ctx, Op::Update(801, 7)).ok);
            assert_eq!(t.execute(ctx, Op::Read(801)), OpResult::ok(7));
            assert!(t.execute(ctx, Op::Remove(801)).ok);
            assert!(!t.execute(ctx, Op::Remove(801)).ok);
        });
        t.check_invariants();
    }

    #[test]
    fn split_heavy_inserts_cross_boundary() {
        // Full leaves + sequential keys at one spot force LOCK_PATH /
        // RESUME_INSERT cascades through the host boundary.
        let (m, t) = setup(2000, 1.0, 8 * 1024);
        run_hosts(&m, &t, 1, |ctx, t, _| {
            for i in 0..300u32 {
                assert!(t.execute(ctx, Op::Insert(16001 + i, i)).ok, "insert {i}");
            }
        });
        t.check_invariants();
        assert_eq!(t.collect().len(), 2300);
    }

    #[test]
    fn concurrent_split_heavy_inserts() {
        let (m, t) = setup(2000, 1.0, 8 * 1024);
        run_hosts(&m, &t, 4, |ctx, t, core| {
            for i in 0..60u32 {
                let key = 16001 + core as u32 * 1000 + i;
                assert!(t.execute(ctx, Op::Insert(key, i)).ok, "core {core} insert {i}");
            }
        });
        t.check_invariants();
        assert_eq!(t.collect().len(), 2240);
    }

    #[test]
    fn concurrent_disjoint_ops_match_model() {
        let (m, t) = setup(2000, 0.5, 8 * 1024);
        run_hosts(&m, &t, 4, |ctx, t, core| {
            for k in 1..=2000u32 {
                if k as usize % 4 != core {
                    continue;
                }
                match k % 4 {
                    0 => assert!(t.execute(ctx, Op::Remove(k * 8)).ok, "remove {k}"),
                    1 => assert!(t.execute(ctx, Op::Update(k * 8, k + 9)).ok),
                    2 => assert!(t.execute(ctx, Op::Insert(k * 8 + 3, k)).ok),
                    _ => assert!(t.execute(ctx, Op::Read(k * 8)).ok),
                }
            }
        });
        t.check_invariants();
        let mut model = BTreeMap::new();
        for k in 1..=2000u32 {
            match k % 4 {
                0 => {}
                1 => {
                    model.insert(k * 8, k + 9);
                }
                2 => {
                    model.insert(k * 8, k);
                    model.insert(k * 8 + 3, k);
                }
                _ => {
                    model.insert(k * 8, k);
                }
            }
        }
        let got: BTreeMap<_, _> = t.collect().into_iter().collect();
        assert_eq!(got, model);
    }

    #[test]
    fn remove_retries_past_parked_insert() {
        // Concurrent split-heavy inserts and removes in the same key range:
        // removes must survive hitting locked leaves.
        let (m, t) = setup(500, 1.0, 4 * 1024);
        run_hosts(&m, &t, 4, |ctx, t, core| {
            for i in 0..40u32 {
                if core % 2 == 0 {
                    let key = 4001 + core as u32 * 500 + i;
                    assert!(t.execute(ctx, Op::Insert(key, i)).ok);
                } else {
                    let key = ((i * 13 + core as u32) % 500 + 1) * 8;
                    let _ = t.execute(ctx, Op::Remove(key));
                }
            }
        });
        t.check_invariants();
    }

    #[test]
    fn nonblocking_pipeline_with_lock_path() {
        let (m, t) = setup(500, 1.0, 4 * 1024);
        run_hosts(&m, &t, 2, |ctx, t, core| {
            let mut lanes: Vec<Option<PendingOp<BtOpState>>> = (0..2).map(|_| None).collect();
            let mut issued = 0u32;
            let mut done = 0u32;
            let total = 50u32;
            while done < total {
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    match slot.take() {
                        None if issued < total => {
                            let key = 4001 + core as u32 * 500 + issued;
                            issued += 1;
                            match t.issue(ctx, lane, Op::Insert(key, key)) {
                                Issued::Done(r) => {
                                    assert!(r.ok);
                                    done += 1;
                                }
                                Issued::Pending(p) => *slot = Some(p),
                            }
                        }
                        None => {}
                        Some(mut p) => match t.poll(ctx, &mut p) {
                            PollOutcome::Done(r) => {
                                assert!(r.ok);
                                done += 1;
                            }
                            PollOutcome::Pending => *slot = Some(p),
                        },
                    }
                }
                ctx.idle(20);
            }
        });
        t.check_invariants();
        assert_eq!(t.collect().len(), 600);
    }

    #[test]
    fn sibling_split_updates_recorded_seq() {
        // After a cross-boundary split bumps the parent seq, operations on
        // *sibling* begin nodes (recorded < offloaded) must still succeed.
        let (m, t) = setup(500, 1.0, 4 * 1024);
        run_hosts(&m, &t, 1, |ctx, t, _| {
            // Force splits in one area...
            for i in 0..60u32 {
                // Gap keys (never multiples of 8): each lands in a full
                // leaf and forces a split.
                assert!(t.execute(ctx, Op::Insert(2001 + 8 * i, i)).ok, "insert {i}");
            }
            // ...then read everywhere else (siblings of the split child).
            for k in 1..=500u32 {
                assert!(t.execute(ctx, Op::Read(k * 8)).ok, "read {k}");
            }
        });
        t.check_invariants();
    }

    #[test]
    fn deterministic_replay() {
        let world = || {
            let (m, t) = setup(500, 0.7, 4 * 1024);
            let mut sim = m.simulation();
            t.spawn_services(&mut sim);
            for core in 0..3usize {
                let t = Arc::clone(&t);
                sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..40u32 {
                        let key = ((i * 31 + core as u32 * 17) % 600 + 1) * 8;
                        match i % 3 {
                            0 => drop(t.execute(ctx, Op::Insert(key + 1, i))),
                            1 => drop(t.execute(ctx, Op::Remove(key))),
                            _ => drop(t.execute(ctx, Op::Read(key))),
                        }
                    }
                });
            }
            let out = sim.run();
            (out.makespan(), t.collect())
        };
        assert_eq!(world(), world());
    }
}
