//! Bulk construction and host→NMP push-down of B+ trees (§3.4).
//!
//! The hybrid B+ tree "is first constructed entirely in the host-managed
//! region" from an existing table, then the levels below the host-NMP split
//! point are pushed down into the NMP partitions at range boundaries.

use std::sync::Arc;

use nmp_sim::{Addr, Arena, Machine, NULL};
use workloads::{Key, Value};

use super::node::{self, INNER_MAX, LEAF_MAX};

/// Build a B+ tree over ascending `pairs` with the given leaf/inner fill
/// factor (the paper populates by sorted insertion, which yields roughly
/// half-full nodes; `fill = 0.5` models that). Returns `(root, height)`
/// where `height` is the number of levels.
pub fn bulk_build(
    machine: &Arc<Machine>,
    arena: &Arena,
    pairs: &[(Key, Value)],
    fill: f64,
) -> (Addr, u32) {
    assert!(!pairs.is_empty());
    assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "pairs must be ascending");
    let ram = machine.ram();
    let per_leaf = ((LEAF_MAX as f64 * fill).round() as u32).clamp(1, LEAF_MAX);
    // Build leaves. Each entry: (max key in subtree, node).
    let mut level_nodes: Vec<(Key, Addr)> = Vec::new();
    let mut prev_leaf = NULL;
    for chunk in pairs.chunks(per_leaf as usize) {
        let n = node::alloc_node(arena);
        node::raw_init(ram, n, 0, chunk.len() as u32);
        for (i, &(k, v)) in chunk.iter().enumerate() {
            node::raw_set_key(ram, n, i as u32, k);
            node::raw_set_payload(ram, n, i as u32, v);
        }
        if prev_leaf != NULL {
            node::raw_set_next_leaf(ram, prev_leaf, n);
        }
        prev_leaf = n;
        level_nodes.push((chunk.last().unwrap().0, n));
    }
    // Build inner levels until a single root remains.
    let per_inner = ((INNER_MAX as f64 * fill).round() as u32).clamp(1, INNER_MAX) + 1;
    let mut level = 0;
    while level_nodes.len() > 1 {
        level += 1;
        let mut next_level = Vec::with_capacity(level_nodes.len() / per_inner as usize + 1);
        for group in level_nodes.chunks(per_inner as usize) {
            let n = node::alloc_node(arena);
            node::raw_init(ram, n, level, (group.len() - 1) as u32);
            for (i, &(maxk, child)) in group.iter().enumerate() {
                if i + 1 < group.len() {
                    node::raw_set_key(ram, n, i as u32, maxk);
                }
                node::raw_set_payload(ram, n, i as u32, child);
            }
            next_level.push((group.last().unwrap().0, n));
        }
        level_nodes = next_level;
    }
    (level_nodes[0].1, level + 1)
}

/// Count nodes per level (index = level). Untimed BFS.
pub fn level_counts(machine: &Arc<Machine>, root: Addr, height: u32) -> Vec<u64> {
    let ram = machine.ram();
    let mut counts = vec![0u64; height as usize];
    let mut frontier = vec![root];
    for lvl in (0..height).rev() {
        counts[lvl as usize] = frontier.len() as u64;
        if lvl == 0 {
            break;
        }
        let mut next = Vec::with_capacity(frontier.len() * 8);
        for n in frontier {
            let m = node::raw_meta(ram, n);
            debug_assert_eq!(m.level, lvl);
            for i in 0..=m.slotuse {
                next.push(node::raw_payload(ram, n, i));
            }
        }
        frontier = next;
    }
    counts
}

/// Choose the last host-side level (§3.4): the lowest level `x >= 1` such
/// that levels `x..height` cumulatively fit in `budget_bytes` (≈ 1.25× the
/// LLC, mirroring the paper's 1.14 MB host portion against a 1 MB LLC).
pub fn choose_split(counts: &[u64], budget_bytes: u64) -> u32 {
    let height = counts.len() as u32;
    assert!(height >= 2, "tree too shallow to split");
    let mut cum = 0u64;
    for lvl in (1..height).rev() {
        cum += counts[lvl as usize] * node::NODE_BYTES as u64;
        if cum > budget_bytes {
            // This level no longer fits: split one above it.
            assert!(lvl + 1 < height, "LLC too small to host even the root level");
            return lvl + 1;
        }
    }
    1 // everything above the leaves fits: leaves go to NMP
}

/// Push the subtrees below `last_host_level` down into the NMP partitions:
/// the children of the last host level are divided into `partitions`
/// contiguous (key-ordered) runs, each subtree is copied into its
/// partition's arena, host child pointers are rewritten, and the copied
/// host nodes are freed. NMP-side leaves are re-linked partition-locally.
///
/// Returns, for each partition, the number of nodes it received.
pub fn push_down(
    machine: &Arc<Machine>,
    root: Addr,
    height: u32,
    last_host_level: u32,
) -> Vec<u64> {
    assert!(last_host_level >= 1 && last_host_level < height);
    let ram = machine.ram();
    let parts = machine.partitions();
    // Collect last-host-level nodes left-to-right.
    let mut frontier = vec![root];
    for _lvl in (last_host_level + 1..height).rev() {
        let mut next = Vec::new();
        for n in &frontier {
            let m = node::raw_meta(ram, *n);
            for i in 0..=m.slotuse {
                next.push(node::raw_payload(ram, *n, i));
            }
        }
        frontier = next;
    }
    // Total children (= top NMP-level subtree roots), in key order, with
    // their (parent, slot) locations.
    let mut sites: Vec<(Addr, u32)> = Vec::new();
    for parent in &frontier {
        let m = node::raw_meta(ram, *parent);
        debug_assert_eq!(m.level, last_host_level);
        for i in 0..=m.slotuse {
            sites.push((*parent, i));
        }
    }
    let per_part = sites.len().div_ceil(parts);
    let mut moved = vec![0u64; parts];
    let mut last_leaf: Vec<Addr> = vec![NULL; parts];
    for (si, &(parent, slot)) in sites.iter().enumerate() {
        let part = (si / per_part).min(parts - 1);
        let child = node::raw_payload(ram, parent, slot);
        let new_child = copy_subtree(machine, part, child, &mut moved[part], &mut last_leaf[part]);
        node::raw_set_payload(ram, parent, slot, new_child);
        // Top NMP node records its parent's current seqnum (0 at init).
        node::raw_set_seq(ram, new_child, node::raw_seq(ram, parent));
    }
    moved
}

/// Depth-first copy of a subtree into partition `part`. Leaves are chained
/// left-to-right partition-locally through `last_leaf`.
fn copy_subtree(
    machine: &Arc<Machine>,
    part: usize,
    old: Addr,
    moved: &mut u64,
    last_leaf: &mut Addr,
) -> Addr {
    let ram = machine.ram();
    let arena = machine.part_arena(part);
    let new = node::alloc_node(arena);
    node::raw_copy_node(ram, old, new);
    node::raw_set_seq(ram, new, 0);
    let m = node::raw_meta(ram, old);
    if m.is_leaf() {
        node::raw_set_next_leaf(ram, new, NULL);
        if *last_leaf != NULL {
            node::raw_set_next_leaf(ram, *last_leaf, new);
        }
        *last_leaf = new;
    } else {
        for i in 0..=m.slotuse {
            let c = node::raw_payload(ram, old, i);
            let nc = copy_subtree(machine, part, c, moved, last_leaf);
            node::raw_set_payload(ram, new, i, nc);
        }
    }
    node::free_node(machine.host_arena(), old);
    *moved += 1;
    new
}

/// Untimed full-tree check: key ordering under dividers, level consistency,
/// leaf keys ascending globally. Works on host-only and hybrid (crossing
/// into NMP regions) trees alike. Returns all `(key, value)` pairs.
pub fn check_and_collect(
    machine: &Arc<Machine>,
    root: Addr,
    lo: Key,
    hi: Key, // exclusive
) -> Vec<(Key, Value)> {
    let ram = machine.ram();
    let m = node::raw_meta(ram, root);
    let mut out = Vec::new();
    if m.is_leaf() {
        let mut prev: Option<Key> = None;
        for i in 0..m.slotuse {
            let k = node::raw_key(ram, root, i);
            assert!(k > lo && (hi == 0 || k <= hi), "leaf key {k} outside ({lo}, {hi}]");
            if let Some(p) = prev {
                assert!(k > p, "leaf keys not ascending");
            }
            prev = Some(k);
            out.push((k, node::raw_payload(ram, root, i)));
        }
        return out;
    }
    let mut lo_i = lo;
    for i in 0..=m.slotuse {
        let hi_i = if i < m.slotuse { node::raw_key(ram, root, i) } else { hi };
        let child = node::raw_payload(ram, root, i);
        let cm = node::raw_meta(ram, child);
        assert_eq!(cm.level + 1, m.level, "child level mismatch");
        out.extend(check_and_collect(machine, child, lo_i, hi_i));
        lo_i = hi_i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::Config;

    fn machine() -> Arc<Machine> {
        Machine::new(Config::tiny())
    }

    fn pairs(n: u32) -> Vec<(Key, Value)> {
        (1..=n).map(|k| (k * 8, k)).collect()
    }

    #[test]
    fn bulk_build_collects_back() {
        let m = machine();
        let p = pairs(1000);
        let (root, h) = bulk_build(&m, m.host_arena(), &p, 0.5);
        assert!(h >= 3, "height {h}");
        let got = check_and_collect(&m, root, 0, 0);
        assert_eq!(got, p);
    }

    #[test]
    fn fill_factor_controls_height() {
        let m1 = machine();
        let (_, h_half) = bulk_build(&m1, m1.host_arena(), &pairs(2000), 0.5);
        let m2 = machine();
        let (_, h_full) = bulk_build(&m2, m2.host_arena(), &pairs(2000), 1.0);
        assert!(h_full <= h_half);
    }

    #[test]
    fn level_counts_sum_and_shape() {
        let m = machine();
        let (root, h) = bulk_build(&m, m.host_arena(), &pairs(1000), 0.5);
        let counts = level_counts(&m, root, h);
        assert_eq!(counts.len() as u32, h);
        assert_eq!(counts[h as usize - 1], 1, "single root");
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "level sizes decrease upward");
        }
        // 1000 keys at 7/leaf = 143 leaves
        assert_eq!(counts[0], 143);
    }

    #[test]
    fn choose_split_respects_budget() {
        // counts: leaves=1000, l1=100, l2=10, root=1
        let counts = vec![1000, 100, 10, 1];
        // budget fits root+l2 (11*128) but not l1
        let x = choose_split(&counts, 12 * 128);
        assert_eq!(x, 2);
        // generous budget: only leaves pushed down
        let x = choose_split(&counts, 1_000_000);
        assert_eq!(x, 1);
    }

    #[test]
    #[should_panic(expected = "LLC too small")]
    fn choose_split_rejects_tiny_budget() {
        let counts = vec![1000, 100, 10, 1];
        let _ = choose_split(&counts, 64);
    }

    #[test]
    fn push_down_preserves_contents_and_moves_to_partitions() {
        let m = machine();
        let p = pairs(1500);
        let (root, h) = bulk_build(&m, m.host_arena(), &p, 0.5);
        let counts = level_counts(&m, root, h);
        let lhl = choose_split(&counts, 4 * 1024);
        assert!(lhl >= 1 && lhl < h);
        let host_before = m.host_arena().live_bytes();
        let moved = push_down(&m, root, h, lhl);
        assert_eq!(moved.len(), m.partitions());
        assert!(moved.iter().all(|&c| c > 0), "both partitions receive subtrees");
        assert!(m.host_arena().live_bytes() < host_before, "host nodes freed");
        // Structure and contents intact across the host/NMP boundary.
        let got = check_and_collect(&m, root, 0, 0);
        assert_eq!(got, p);
        // Children of the last host level now live in NMP partitions.
        let ram = m.ram();
        let mut frontier = vec![root];
        for _ in (lhl + 1..h).rev() {
            let mut next = Vec::new();
            for n in &frontier {
                let meta = node::raw_meta(ram, *n);
                for i in 0..=meta.slotuse {
                    next.push(node::raw_payload(ram, *n, i));
                }
            }
            frontier = next;
        }
        for parent in &frontier {
            let meta = node::raw_meta(ram, *parent);
            for i in 0..=meta.slotuse {
                let c = node::raw_payload(ram, *parent, i);
                assert!(
                    matches!(m.map().region_of(c), nmp_sim::Region::Part(_)),
                    "child {c:#x} not in an NMP partition"
                );
            }
        }
    }

    #[test]
    fn push_down_partitions_are_key_contiguous() {
        let m = machine();
        let p = pairs(1500);
        let (root, h) = bulk_build(&m, m.host_arena(), &p, 0.5);
        let counts = level_counts(&m, root, h);
        let lhl = choose_split(&counts, 4 * 1024);
        push_down(&m, root, h, lhl);
        // Walk leaves in key order; partition index must be nondecreasing.
        let ram = m.ram();
        let mut node_ptr = root;
        loop {
            let meta = node::raw_meta(ram, node_ptr);
            if meta.is_leaf() {
                break;
            }
            node_ptr = node::raw_payload(ram, node_ptr, 0);
        }
        let mut last_part = 0usize;
        let mut leaves = 0;
        while node_ptr != NULL {
            if let nmp_sim::Region::Part(p) = m.map().region_of(node_ptr) {
                assert!(p >= last_part, "partition order regressed");
                last_part = p;
            } else {
                panic!("leaf outside NMP partitions");
            }
            leaves += 1;
            node_ptr = node::raw_next_leaf(ram, node_ptr);
        }
        // Leaf chain is partition-local: following next pointers from the
        // first leaf only covers partition 0's leaves... unless relinked.
        // We relink within partitions, so the chain ends at partition 0's
        // last leaf only if partitions > 1 — accept either count > 0.
        assert!(leaves > 0);
    }
}
