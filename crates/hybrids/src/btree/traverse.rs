//! Shared host-side OCC traversal (Listing 4, lines 4–22).
//!
//! The traversal records every node on the path together with the sequence
//! number observed at access time. Before descending into a child, it waits
//! for the child's write (odd seqnum) to complete, then re-validates the
//! current node; if the current node changed, it moves back *up* the path
//! to the lowest unmodified ancestor (restarting from the root if even the
//! root changed).
//!
//! The traversal stops at `stop_level`. For the host-only B+ tree
//! `stop_level == 0` (the leaf is the last path entry). For the hybrid
//! B+ tree `stop_level` is the last host-side level and the picked child is
//! the begin-NMP-traversal node: its pointer is read and the parent is
//! re-validated, but no seqnum is read from it (it lives in NMP memory).

use nmp_sim::{Addr, ThreadCtx};
use workloads::Key;

use super::node;

/// A recorded traversal: `path[level]` = `(node, observed even seqnum)` for
/// `stop_level <= level <= root_level`.
pub struct Descent {
    /// `(node, seqnum)` per level, bottom (`stop_level`) first.
    pub path: Vec<(Addr, u32)>,
    /// Level of the root node when the descent started.
    pub root_level: u32,
    /// Lowest level recorded (0 for host-only, `last_host_level` hybrid).
    pub stop_level: u32,
    /// For hybrid traversals (`stop_level > 0`): the NMP child picked at
    /// the stop-level node, and its slot index.
    pub picked: Option<(u32, Addr)>,
    /// Largest key that can live under the picked child (0 = unbounded):
    /// the tightest dividing key above it on the path. Range scans use it
    /// as the continuation point into the next subtree.
    pub picked_hi: Key,
}

impl Descent {
    /// The `(node, seqnum)` recorded at `level`.
    pub fn at(&self, level: u32) -> (Addr, u32) {
        self.path[(level - self.stop_level) as usize]
    }

    /// The `(node, seqnum)` at the descent's lowest recorded level.
    pub fn bottom(&self) -> (Addr, u32) {
        self.path[0]
    }
}

/// Wait until `node`'s seqnum is even (no writer in its critical section)
/// and return it, giving up after `patience` runs out.
fn wait_even(ctx: &mut ThreadCtx, node: Addr, patience: &mut u32) -> Option<u32> {
    loop {
        let s = node::read_seq(ctx, node);
        if s.is_multiple_of(2) {
            return Some(s);
        }
        if *patience == 0 {
            return None;
        }
        *patience -= 1;
        ctx.idle(8);
    }
}

/// Perform the Listing 4 traversal for `key`, stopping at `stop_level`.
/// Blocks (in simulated time) while writers hold seqlocks on the path.
pub fn descend(ctx: &mut ThreadCtx, root_word: Addr, key: Key, stop_level: u32) -> Descent {
    loop {
        if let Some(d) = try_descend(ctx, root_word, key, stop_level, u32::MAX) {
            return d;
        }
    }
}

/// Bounded variant of [`descend`] for non-blocking operation pipelines:
/// gives up (returns `None`) once `patience` lock-waits have been spent, so
/// a host thread can go service its other in-flight lanes instead of
/// spinning on a seqlock that one of those very lanes holds.
pub fn try_descend(
    ctx: &mut ThreadCtx,
    root_word: Addr,
    key: Key,
    stop_level: u32,
    mut patience: u32,
) -> Option<Descent> {
    'root: loop {
        // Acquire: pairs with the release store a root split publishes with.
        let root = ctx.read_u32_acquire(root_word) as Addr;
        let rseq = wait_even(ctx, root, &mut patience)?;
        let rmeta = node::read_meta_spec(ctx, root);
        if rmeta.level < stop_level {
            // Stale root pointer read across a root split; retry.
            if patience == 0 {
                return None;
            }
            patience -= 1;
            ctx.idle(8);
            continue 'root;
        }
        let levels = (rmeta.level - stop_level + 1) as usize;
        let mut path: Vec<(Addr, u32)> = vec![(0, 0); levels];
        let mut his: Vec<Key> = vec![0; levels]; // inherited upper bounds
        path[levels - 1] = (root, rseq);
        let mut level = rmeta.level;
        loop {
            let (curr, cseq) = path[(level - stop_level) as usize];
            let inherited_hi = his[(level - stop_level) as usize];
            // Speculative reads: a writer may be mutating `curr`; the
            // seqnum re-check before descending discards torn results.
            let meta = node::read_meta_spec(ctx, curr);
            let idx = node::find_child_idx_spec(ctx, curr, meta.slotuse.min(node::INNER_MAX), key);
            // Tightest bound for the chosen child: its dividing key, or the
            // bound inherited from ancestors for the rightmost child.
            let child_hi = if idx < meta.slotuse.min(node::INNER_MAX) {
                node::read_key_spec(ctx, curr, idx)
            } else {
                inherited_hi
            };
            if level == stop_level {
                if stop_level == 0 {
                    // curr is the leaf; nothing to pick.
                    return Some(Descent {
                        path,
                        root_level: rmeta.level,
                        stop_level,
                        picked: None,
                        picked_hi: inherited_hi,
                    });
                }
                // Hybrid boundary: read the NMP child pointer, then
                // re-validate the parent.
                let child = node::read_payload_spec(ctx, curr, idx) as Addr;
                if node::read_seq(ctx, curr) == cseq {
                    return Some(Descent {
                        path,
                        root_level: rmeta.level,
                        stop_level,
                        picked: Some((idx, child)),
                        picked_hi: child_hi,
                    });
                }
            } else {
                let child = node::read_payload_spec(ctx, curr, idx) as Addr;
                let chseq = wait_even(ctx, child, &mut patience)?;
                if node::read_seq(ctx, curr) == cseq {
                    level -= 1;
                    path[(level - stop_level) as usize] = (child, chseq);
                    his[(level - stop_level) as usize] = child_hi;
                    continue;
                }
            }
            // Current node was modified: move back up the path to the
            // lowest unchanged ancestor (Listing 4, lines 19-22).
            loop {
                level += 1;
                if level > rmeta.level {
                    continue 'root;
                }
                let (anc, aseq) = path[(level - stop_level) as usize];
                if node::read_seq(ctx, anc) == aseq {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::build;
    use nmp_sim::{Config, Machine, ThreadKind};
    use std::sync::Arc;

    fn with_tree(
        n: u32,
        f: impl FnOnce(&mut ThreadCtx, Addr /*root_word*/, u32 /*height*/) + Send + 'static,
    ) {
        let m = Machine::new(Config::tiny());
        let pairs: Vec<(u32, u32)> = (1..=n).map(|k| (k * 8, k)).collect();
        let (root, height) = build::bulk_build(&m, m.host_arena(), &pairs, 0.5);
        let root_word = m.host_arena().alloc(8);
        m.ram().write_u32(root_word, root);
        let mut sim = m.simulation();
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| f(ctx, root_word, height));
        sim.run();
        let _ = Arc::clone(&m);
    }

    #[test]
    fn descend_reaches_correct_leaf() {
        with_tree(500, |ctx, root_word, height| {
            assert!(height >= 3);
            for probe in [8u32, 400, 2000, 4000] {
                let d = descend(ctx, root_word, probe, 0);
                let (leaf, _) = d.bottom();
                let m = node::read_meta(ctx, leaf);
                assert!(m.is_leaf());
                assert!(node::leaf_find(ctx, leaf, m.slotuse, probe).is_some(), "key {probe}");
            }
        });
    }

    #[test]
    fn descend_stop_level_one_returns_pick() {
        with_tree(500, |ctx, root_word, _| {
            let d = descend(ctx, root_word, 808, 1);
            let (n, _) = d.bottom();
            let m = node::read_meta(ctx, n);
            assert_eq!(m.level, 1);
            let (idx, child) = d.picked.unwrap();
            assert!(idx <= m.slotuse);
            let cm = node::read_meta(ctx, child);
            assert!(cm.is_leaf());
            assert!(node::leaf_find(ctx, child, cm.slotuse, 808).is_some());
        });
    }

    #[test]
    fn descend_waits_for_writer_to_finish() {
        // Lock the root (odd seq), spawn a reader; reader must block until
        // a second thread unlocks.
        let m = Machine::new(Config::tiny());
        let pairs: Vec<(u32, u32)> = (1..=200u32).map(|k| (k * 8, k)).collect();
        let (root, _h) = build::bulk_build(&m, m.host_arena(), &pairs, 0.5);
        let root_word = m.host_arena().alloc(8);
        m.ram().write_u32(root_word, root);
        node::raw_set_seq(m.ram(), root, 1); // writer in progress
        let mut sim = m.simulation();
        sim.spawn("reader", ThreadKind::Host { core: 0 }, move |ctx| {
            let t0 = ctx.now();
            let d = descend(ctx, root_word, 80, 0);
            assert!(ctx.now() - t0 > 400, "reader must have waited");
            assert_eq!(node::read_seq(ctx, d.at(d.root_level).0), 2);
        });
        sim.spawn("unlocker", ThreadKind::Host { core: 1 }, move |ctx| {
            ctx.advance(500);
            node::write_seq(ctx, root, 2);
        });
        sim.run();
    }

    #[test]
    fn path_levels_consistent() {
        with_tree(500, |ctx, root_word, height| {
            let d = descend(ctx, root_word, 1000, 0);
            assert_eq!(d.path.len() as u32, height);
            for lvl in 0..height {
                let (n, s) = d.at(lvl);
                assert_eq!(node::read_meta(ctx, n).level, lvl);
                assert_eq!(s % 2, 0);
            }
        });
    }
}
