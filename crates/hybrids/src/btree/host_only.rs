//! Host-only B+ tree baseline (§5.1): the whole tree lives in host memory
//! and, like the host-managed portion of the hybrid B+ tree, uses sequence
//! locks for concurrency.
//!
//! Readers traverse optimistically (Listing 4) and validate leaf seqnums;
//! writers lock the affected path bottom-up with even→odd CAS on each
//! node's seqnum, splitting full nodes as needed, and unlock with a second
//! increment. Deletions are "free-at-empty": a leaf that empties stays
//! linked (relaxed minimum-occupancy invariant).

use std::sync::Arc;

use nmp_sim::analysis::RegionClass;
use nmp_sim::{Addr, EffectSpec, Machine, OpSpec, Simulation, ThreadCtx};
use workloads::{Key, Op, Value};

use crate::api::{Issued, OpResult, PollOutcome, SimIndex};
use crate::effects::AccessDecl;
use crate::publist::OpCode;

use super::build;
use super::node::{self, INNER_MAX, LEAF_MAX};
use super::traverse::descend;

/// Host-only seqlock B+ tree.
pub struct HostBTree {
    machine: Arc<Machine>,
    root_word: Addr,
}

fn max_slots(level: u32) -> u32 {
    if level == 0 {
        LEAF_MAX
    } else {
        INNER_MAX
    }
}

impl HostBTree {
    /// Bulk-build over ascending `pairs` with the given fill factor.
    pub fn new(machine: Arc<Machine>, pairs: &[(Key, Value)], fill: f64) -> Arc<Self> {
        let (root, _height) = build::bulk_build(&machine, machine.host_arena(), pairs, fill);
        let root_word = machine.host_arena().alloc(8);
        node::raw_set_root(machine.ram(), root_word, root);
        Arc::new(HostBTree { machine, root_word })
    }

    /// The machine the tree lives on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Current root node address.
    pub fn root(&self) -> Addr {
        node::raw_root(self.machine.ram(), self.root_word)
    }

    /// Current tree height (levels, root included).
    pub fn height(&self) -> u32 {
        node::raw_meta(self.machine.ram(), self.root()).level + 1
    }

    fn read_op(&self, ctx: &mut ThreadCtx, key: Key) -> OpResult {
        loop {
            let d = descend(ctx, self.root_word, key, 0);
            let (leaf, seq) = d.bottom();
            // Speculative: the seqnum re-check below discards torn reads.
            let m = node::read_meta_spec(ctx, leaf);
            let r = node::leaf_find_spec(ctx, leaf, m.slotuse.min(LEAF_MAX), key)
                .map(|i| node::read_payload_spec(ctx, leaf, i));
            if node::read_seq(ctx, leaf) == seq {
                return match r {
                    Some(v) => OpResult::ok(v),
                    None => OpResult::fail(),
                };
            }
        }
    }

    fn update_op(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> OpResult {
        loop {
            let d = descend(ctx, self.root_word, key, 0);
            let (leaf, seq) = d.bottom();
            if !node::try_lock_seq(ctx, leaf, seq) {
                continue;
            }
            let m = node::read_meta(ctx, leaf);
            let found = node::leaf_find(ctx, leaf, m.slotuse, key);
            if let Some(i) = found {
                node::write_payload(ctx, leaf, i, value);
            }
            node::unlock_seq(ctx, leaf);
            return if found.is_some() { OpResult::ok(0) } else { OpResult::fail() };
        }
    }

    fn remove_op(&self, ctx: &mut ThreadCtx, key: Key) -> OpResult {
        loop {
            let d = descend(ctx, self.root_word, key, 0);
            let (leaf, seq) = d.bottom();
            if !node::try_lock_seq(ctx, leaf, seq) {
                continue;
            }
            let m = node::read_meta(ctx, leaf);
            let found = node::leaf_find(ctx, leaf, m.slotuse, key);
            if let Some(i) = found {
                node::leaf_remove_at(ctx, leaf, i);
            }
            node::unlock_seq(ctx, leaf);
            return if found.is_some() { OpResult::ok(0) } else { OpResult::fail() };
        }
    }

    /// Range scan (extension; YCSB-E): walk the leaf chain from the leaf
    /// containing `key`, validating each leaf's seqlock and re-descending
    /// from the continuation key when a leaf changes mid-read.
    fn scan_op(&self, ctx: &mut ThreadCtx, key: Key, len: u16) -> OpResult {
        let mut remaining = len as u32;
        let mut count = 0u32;
        let mut from = key;
        'restart: while remaining > 0 {
            let d = descend(ctx, self.root_word, from, 0);
            let (mut leaf, _) = d.bottom();
            loop {
                let seq = node::read_seq(ctx, leaf);
                if !seq.is_multiple_of(2) {
                    ctx.idle(8);
                    continue 'restart;
                }
                // Speculative: the seqnum re-check below discards torn reads.
                let m = node::read_meta_spec(ctx, leaf);
                let mut read_here = 0u32;
                for i in 0..m.slotuse.min(node::LEAF_MAX) {
                    ctx.step();
                    if node::read_key_spec(ctx, leaf, i) >= from {
                        let _ = node::read_payload_spec(ctx, leaf, i);
                        read_here += 1;
                        if read_here == remaining {
                            break;
                        }
                    }
                }
                let next = ctx.read_u32_speculative(leaf + 120);
                if node::read_seq(ctx, leaf) != seq {
                    continue 'restart; // leaf changed under us
                }
                count += read_here;
                remaining -= read_here;
                if remaining == 0 || next == nmp_sim::NULL {
                    break 'restart;
                }
                from = 0; // subsequent leaves are read in full
                leaf = next;
            }
        }
        OpResult { ok: count > 0, value: count }
    }

    fn insert_op(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> OpResult {
        'retry: loop {
            let d = descend(ctx, self.root_word, key, 0);
            // Lock the path bottom-up until the first non-full node
            // (which absorbs the insert without further splits).
            let mut locked: Vec<Addr> = Vec::new();
            let mut full_path = true;
            for lvl in 0..=d.root_level {
                let (n, s) = d.at(lvl);
                if !node::try_lock_seq(ctx, n, s) {
                    for &l in locked.iter().rev() {
                        node::unlock_seq(ctx, l);
                    }
                    continue 'retry;
                }
                locked.push(n);
                if node::read_meta(ctx, n).slotuse < max_slots(lvl) {
                    full_path = false;
                    break;
                }
            }
            // Duplicate check under the leaf lock.
            let leaf = locked[0];
            let lm = node::read_meta(ctx, leaf);
            if node::leaf_find(ctx, leaf, lm.slotuse, key).is_some() {
                for &l in locked.iter().rev() {
                    node::unlock_seq(ctx, l);
                }
                return OpResult::fail();
            }
            let top_of_path = *locked.last().unwrap();
            let carry = apply_insert(
                ctx,
                self.machine.host_arena(),
                &mut locked,
                0,
                InsertSeed::Leaf(key, value),
            );
            if let Some((div, right)) = carry {
                debug_assert!(full_path, "split escaped a non-full absorber");
                // Root split: grow the tree by one level.
                let old_root = top_of_path;
                let nr = node::alloc_node(self.machine.host_arena());
                node::init_node(ctx, nr, d.root_level + 1, 1);
                node::write_key(ctx, nr, 0, div);
                node::write_payload(ctx, nr, 0, old_root);
                node::write_payload(ctx, nr, 1, right);
                // Release: publishes the new root to optimistic descents.
                ctx.write_u32_release(self.root_word, nr);
            }
            for &l in locked.iter().rev() {
                node::unlock_seq(ctx, l);
            }
            return OpResult::ok(0);
        }
    }

    // ---- untimed inspection ----

    /// Untimed in-order dump of all `(key, value)` pairs.
    pub fn collect(&self) -> Vec<(Key, Value)> {
        build::check_and_collect(&self.machine, self.root(), 0, 0)
    }

    /// Untimed structural check (panics on a broken tree).
    pub fn check_invariants(&self) {
        let ram = self.machine.ram();
        let root = self.root();
        let _ = build::check_and_collect(&self.machine, root, 0, 0);
        // All seqlocks released at quiescence.
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            assert_eq!(node::raw_seq(ram, n) % 2, 0, "node {n:#x} left locked");
            let m = node::raw_meta(ram, n);
            assert!(!m.locked);
            if !m.is_leaf() {
                for i in 0..=m.slotuse {
                    stack.push(node::raw_payload(ram, n, i));
                }
            }
        }
    }
}

/// What an insert carries into the bottom of a locked path.
pub(super) enum InsertSeed {
    /// A key/value pair entering at a leaf (level 0).
    Leaf(Key, Value),
    /// A dividing key plus right-child pointer entering at an inner level
    /// (the hybrid tree's host side receives this from RESUME_INSERT).
    Child(Key, Addr),
}

/// Apply an insert along a locked path. `locked[i]` is the node at level
/// `base_level + i`; every node except possibly the last is full. Splits
/// full nodes bottom-up; returns `Some((dividing_key, new_right))` if even
/// the topmost locked node split (the caller then grows the tree or, on
/// the NMP side, reports the split to the host). Newly split-off nodes
/// replicate the seq word of their original (footnote 3) and are appended
/// to `locked` so the caller's unlock pass covers them.
pub(super) fn apply_insert(
    ctx: &mut ThreadCtx,
    arena: &nmp_sim::Arena,
    locked: &mut Vec<Addr>,
    base_level: u32,
    seed: InsertSeed,
) -> Option<(Key, Addr)> {
    let path_len = locked.len();
    let mut carry: Option<(Key, Addr)> = match seed {
        InsertSeed::Leaf(k, v) => {
            debug_assert_eq!(base_level, 0, "leaf seed must enter at level 0");
            // Sentinel: handled by the lvl == 0 branch below.
            let _ = (k, v);
            None
        }
        InsertSeed::Child(k, c) => Some((k, c)),
    };
    let leaf_seed = match seed {
        InsertSeed::Leaf(k, v) => Some((k, v)),
        InsertSeed::Child(..) => None,
    };
    let mut rights: Vec<Addr> = Vec::new();
    for (i, &n) in locked.iter().enumerate().take(path_len) {
        let lvl = base_level + i as u32;
        let m = node::read_meta(ctx, n);
        let is_leaf_step = lvl == 0 && leaf_seed.is_some();
        if m.slotuse < max_slots(lvl) {
            if is_leaf_step {
                let (k, v) = leaf_seed.unwrap();
                node::leaf_insert(ctx, n, k, v);
            } else {
                let (ck, cc) = carry.take().expect("inner level reached without carry");
                node::inner_insert(ctx, n, ck, cc);
            }
            break;
        }
        let (div, right) = if lvl == 0 {
            node::split_leaf(ctx, arena, n)
        } else {
            node::split_inner(ctx, arena, n)
        };
        rights.push(right);
        if is_leaf_step {
            let (k, v) = leaf_seed.unwrap();
            if k <= div {
                node::leaf_insert(ctx, n, k, v);
            } else {
                node::leaf_insert(ctx, right, k, v);
            }
        } else {
            let (ck, cc) = carry.take().expect("carry missing at inner split");
            if ck <= div {
                node::inner_insert(ctx, n, ck, cc);
            } else {
                node::inner_insert(ctx, right, ck, cc);
            }
        }
        carry = Some((div, right));
    }
    locked.extend(rights);
    carry
}

impl SimIndex for HostBTree {
    type Pending = OpResult;

    fn execute(&self, ctx: &mut ThreadCtx, op: Op) -> OpResult {
        match op {
            Op::Read(k) => self.read_op(ctx, k),
            Op::Insert(k, v) => self.insert_op(ctx, k, v),
            Op::Remove(k) => self.remove_op(ctx, k),
            Op::Update(k, v) => self.update_op(ctx, k, v),
            Op::Scan(k, len) => self.scan_op(ctx, k, len),
            // Not a search-tree operation (priority queues only).
            Op::ExtractMin => OpResult::fail(),
        }
    }

    fn issue(&self, ctx: &mut ThreadCtx, _lane: usize, op: Op) -> Issued<OpResult> {
        // No NMP portion: the operation completes synchronously.
        Issued::Done(self.execute(ctx, op))
    }

    fn poll(&self, _ctx: &mut ThreadCtx, pending: &mut OpResult) -> PollOutcome {
        PollOutcome::Done(*pending)
    }

    fn effect_spec(&self) -> EffectSpec {
        // Entirely host-resident: no publication-list protocol, no NMP
        // declarations. Readers descend optimistically (acquire seqnum
        // reads + speculative content reads); writers add the seqnum CAS
        // lock, plain critical-section accesses, and the release unlock.
        let descend = [
            AccessDecl::read(RegionClass::Host).acquire(),
            AccessDecl::read(RegionClass::Host).speculative(),
        ];
        let mutate = [
            AccessDecl::read(RegionClass::Host).acquire(),
            AccessDecl::read(RegionClass::Host).speculative(),
            AccessDecl::read(RegionClass::Host),
            AccessDecl::write(RegionClass::Host),
            AccessDecl::write(RegionClass::Host).cas(),
            AccessDecl::write(RegionClass::Host).release(),
        ];
        EffectSpec::new("host-btree")
            .op(OpSpec::new(OpCode::Read as u8, "Read").host_all(&descend))
            .op(OpSpec::new(OpCode::Scan as u8, "Scan").host_all(&descend))
            .op(OpSpec::new(OpCode::Update as u8, "Update").host_all(&mutate))
            .op(OpSpec::new(OpCode::Insert as u8, "Insert").host_all(&mutate))
            .op(OpSpec::new(OpCode::Remove as u8, "Remove").host_all(&mutate))
    }

    fn spawn_services(self: &Arc<Self>, _sim: &mut Simulation) {
        crate::effects::register_effect_spec(&self.machine, &self.effect_spec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, ThreadKind};
    use std::collections::BTreeMap;

    fn setup(n: u32, fill: f64) -> (Arc<Machine>, Arc<HostBTree>) {
        let m = Machine::new(Config::tiny());
        let pairs: Vec<(Key, Value)> = (1..=n).map(|k| (k * 8, k)).collect();
        let t = HostBTree::new(Arc::clone(&m), &pairs, fill);
        (m, t)
    }

    fn run_hosts(
        m: &Arc<Machine>,
        t: &Arc<HostBTree>,
        threads: usize,
        f: impl Fn(&mut ThreadCtx, &HostBTree, usize) + Send + Sync + 'static,
    ) {
        let mut sim = m.simulation();
        let f = Arc::new(f);
        for core in 0..threads {
            let t = Arc::clone(t);
            let f = Arc::clone(&f);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| f(ctx, &t, core));
        }
        sim.run();
    }

    #[test]
    fn point_ops_roundtrip() {
        let (m, t) = setup(500, 0.5);
        run_hosts(&m, &t, 1, |ctx, t, _| {
            assert_eq!(t.execute(ctx, Op::Read(400)), OpResult::ok(50));
            assert!(!t.execute(ctx, Op::Read(401)).ok);
            assert!(t.execute(ctx, Op::Insert(401, 9)).ok);
            assert!(!t.execute(ctx, Op::Insert(401, 10)).ok, "duplicate");
            assert_eq!(t.execute(ctx, Op::Read(401)), OpResult::ok(9));
            assert!(t.execute(ctx, Op::Update(401, 11)).ok);
            assert_eq!(t.execute(ctx, Op::Read(401)), OpResult::ok(11));
            assert!(t.execute(ctx, Op::Remove(401)).ok);
            assert!(!t.execute(ctx, Op::Remove(401)).ok);
        });
        t.check_invariants();
    }

    #[test]
    fn inserts_cause_splits_and_stay_sorted() {
        let (m, t) = setup(100, 1.0); // full leaves: every insert splits
        run_hosts(&m, &t, 1, |ctx, t, _| {
            for k in 1..=100u32 {
                assert!(t.execute(ctx, Op::Insert(k * 8 + 1, k)).ok);
            }
        });
        t.check_invariants();
        assert_eq!(t.collect().len(), 200);
    }

    #[test]
    fn root_split_grows_tree() {
        let m = Machine::new(Config::tiny());
        let pairs: Vec<(Key, Value)> = (1..=LEAF_MAX).map(|k| (k * 8, k)).collect();
        let t = HostBTree::new(Arc::clone(&m), &pairs, 1.0);
        assert_eq!(t.height(), 1, "starts as a single full leaf");
        run_hosts(&m, &t, 1, |ctx, t, _| {
            assert!(t.execute(ctx, Op::Insert(3, 3)).ok);
        });
        assert_eq!(t.height(), 2);
        t.check_invariants();
        assert_eq!(t.collect().len(), LEAF_MAX as usize + 1);
    }

    #[test]
    fn sequential_inserts_grow_many_levels() {
        let m = Machine::new(Config::tiny());
        let t = HostBTree::new(Arc::clone(&m), &[(8, 1)], 1.0);
        run_hosts(&m, &t, 1, |ctx, t, _| {
            for k in 2..=600u32 {
                assert!(t.execute(ctx, Op::Insert(k * 8, k)).ok, "insert {k}");
            }
        });
        t.check_invariants();
        assert!(t.height() >= 3, "height {}", t.height());
        assert_eq!(t.collect().len(), 600);
    }

    #[test]
    fn empty_leaf_stays_linked_free_at_empty() {
        let (m, t) = setup(100, 0.5);
        run_hosts(&m, &t, 1, |ctx, t, _| {
            // Remove all keys of the first leaf (7 keys at fill 0.5).
            for k in 1..=7u32 {
                assert!(t.execute(ctx, Op::Remove(k * 8)).ok);
            }
            // Tree still works.
            assert!(t.execute(ctx, Op::Read(64)).ok);
            assert!(t.execute(ctx, Op::Insert(9, 1)).ok);
            assert_eq!(t.execute(ctx, Op::Read(9)), OpResult::ok(1));
        });
        t.check_invariants();
    }

    #[test]
    fn concurrent_disjoint_ops_match_model() {
        let (m, t) = setup(400, 0.5);
        run_hosts(&m, &t, 4, |ctx, t, core| {
            for k in 1..=400u32 {
                if k as usize % 4 != core {
                    continue;
                }
                match k % 4 {
                    0 => assert!(t.execute(ctx, Op::Remove(k * 8)).ok),
                    1 => assert!(t.execute(ctx, Op::Update(k * 8, k + 1)).ok),
                    2 => assert!(t.execute(ctx, Op::Insert(k * 8 + 1, k)).ok),
                    _ => assert!(t.execute(ctx, Op::Read(k * 8)).ok),
                }
            }
        });
        t.check_invariants();
        let mut model = BTreeMap::new();
        for k in 1..=400u32 {
            match k % 4 {
                0 => {}
                1 => {
                    model.insert(k * 8, k + 1);
                }
                2 => {
                    model.insert(k * 8, k);
                    model.insert(k * 8 + 1, k);
                }
                _ => {
                    model.insert(k * 8, k);
                }
            }
        }
        let got: BTreeMap<_, _> = t.collect().into_iter().collect();
        assert_eq!(got, model);
    }

    #[test]
    fn concurrent_same_key_insert_single_winner() {
        let (m, t) = setup(50, 0.5);
        let wins = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut sim = m.simulation();
        for core in 0..4usize {
            let t = Arc::clone(&t);
            let wins = Arc::clone(&wins);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                if t.execute(ctx, Op::Insert(99, core as u32)).ok {
                    wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        sim.run();
        assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 1);
        t.check_invariants();
    }

    #[test]
    fn concurrent_split_contention_on_one_leaf() {
        // All threads hammer the same key neighborhood to force competing
        // path locks and splits.
        let (m, t) = setup(20, 1.0);
        run_hosts(&m, &t, 4, |ctx, t, core| {
            for i in 0..25u32 {
                let key = 161 + core as u32 + 4 * i; // distinct keys, same region
                assert!(t.execute(ctx, Op::Insert(key, core as u32)).ok);
            }
        });
        t.check_invariants();
        assert_eq!(t.collect().len(), 120);
    }

    #[test]
    fn deterministic_replay() {
        let world = || {
            let (m, t) = setup(200, 0.5);
            let mut sim = m.simulation();
            for core in 0..3usize {
                let t = Arc::clone(&t);
                sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..40u32 {
                        let key = ((i * 17 + core as u32 * 29) % 250 + 1) * 8;
                        match i % 3 {
                            0 => drop(t.execute(ctx, Op::Insert(key + 1, i))),
                            1 => drop(t.execute(ctx, Op::Remove(key))),
                            _ => drop(t.execute(ctx, Op::Read(key))),
                        }
                    }
                });
            }
            let out = sim.run();
            (out.makespan(), t.collect())
        };
        assert_eq!(world(), world());
    }
}
