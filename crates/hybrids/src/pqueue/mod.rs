//! Hybrid priority queue: host-merged partition minima on top,
//! NMP-managed per-partition sorted runs on the bottom (§6.3
//! generalization of the host-top/NMP-bottom split).
//!
//! Keys are range-partitioned across vaults exactly like the hybrid
//! skiplist (`KeySpace::partition_of`), and each partition holds its live
//! keys in a sequential skiplist (reusing `skiplist::{node, seq}`) owned
//! by that partition's flat combiner — so every structural mutation is
//! single-owner and race-free by construction (the SynCron discipline).
//!
//! The *host* side keeps one 8-byte **minimum cache word per partition** in
//! host memory (LLC-resident: `parts * 8` bytes). `insert` routes to the
//! owning partition's combiner; `extract_min` merges the cached minima,
//! posts a `POP_MIN` to the argmin partition, and the combiner's response
//! carries back that partition's *new* minimum, which the host publishes to
//! the cache with a release store. Cache words are sync cells
//! (release/acquire), so concurrent refreshes are last-writer-wins and
//! never race; a stale word only costs an extra hop:
//!
//! * stale-nonempty → the combiner answers "empty", the host marks the
//!   partition tried and re-merges (a multi-`POST` operation, like B+ tree
//!   resumes);
//! * stale-empty → before failing an `extract_min`, the host probes every
//!   not-yet-tried partition through its combiner, so "queue empty" is
//!   only reported after each partition confirmed it within the op.
//!
//! Linearization points: `insert` at the combiner's execution of the
//! `INSERT` request; a successful `extract_min` at the combiner's `POP_MIN`
//! execution (per-partition pop order is exactly combiner order, which
//! `verify_extract_order` replays against a model); a failed `extract_min`
//! at its last empty probe. Extract-min returns the *popped key* as the
//! operation value. Point reads, removes, updates, and scans are outside
//! the interface and fail host-side.

pub mod cells;

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use nmp_sim::analysis::RegionClass;
use nmp_sim::{Addr, EffectSpec, Machine, Region, Simulation, ThreadCtx, NULL};
use workloads::{Key, KeySpace, Op, Value};

use crate::api::{Issued, OpResult, PollOutcome, SimIndex};
use crate::effects::{protocol_op, AccessDecl};
use crate::offload::{OffloadClient, OffloadRuntime, PendingOp, Step};
use crate::publist::{NmpExec, OpCode, Request, Response};
use crate::skiplist::{node, seq};

/// One combiner-ordered event, recorded when the queue is built with
/// [`HybridPqueue::with_exec_log`]; consumed by `verify_extract_order`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqEvent {
    /// An `INSERT` the combiner applied.
    Insert {
        /// Inserted key.
        key: Key,
        /// Inserted value.
        value: Value,
        /// Whether the insert took effect (false = duplicate).
        ok: bool,
    },
    /// A `POP_MIN` the combiner applied.
    Pop {
        /// The extracted minimum, or `None` on an empty partition.
        popped: Option<(Key, Value)>,
    },
}

/// NMP-side executor: applies `INSERT` / `POP_MIN` to the partition's
/// sorted run and reports the partition's resulting minimum.
pub struct PqExec {
    machine: Arc<Machine>,
    heads: Vec<Addr>,
    levels: u32,
    /// Per-partition event log (test instrumentation; untimed, outside
    /// simulated memory, so it cannot perturb determinism).
    log: Option<Vec<Mutex<Vec<PqEvent>>>>,
}

impl PqExec {
    /// `(min key, present)` of `part` after the current request.
    fn current_min(&self, ctx: &mut ThreadCtx, part: usize) -> (Key, u32) {
        let (first, _) = node::read_next(ctx, self.heads[part], 0);
        if first == NULL {
            (0, 0)
        } else {
            (node::read_header(ctx, first).key, 1)
        }
    }

    fn note(&self, part: usize, ev: PqEvent) {
        if let Some(log) = &self.log {
            log[part].lock().push(ev);
        }
    }
}

impl NmpExec for PqExec {
    type SlotState = ();

    // Deliberately NOT coalescible (the `NmpExec` default, `&[]`): every
    // pqueue op mutates the partition (Insert links nodes, PopMin unlinks
    // the minimum), so two identical requests must run two descents.

    fn exec(&self, ctx: &mut ThreadCtx, part: usize, req: &Request, _s: &mut ()) -> Response {
        let arena = self.machine.part_arena(part);
        match req.op {
            OpCode::Insert => {
                let n = seq::insert(
                    ctx,
                    arena,
                    self.heads[part],
                    self.levels,
                    req.key,
                    req.value,
                    req.aux, // key height, computed host-side
                    NULL,
                );
                self.note(
                    part,
                    PqEvent::Insert { key: req.key, value: req.value, ok: n.is_some() },
                );
                let (min_key, present) = self.current_min(ctx, part);
                Response {
                    ok: n.is_some(),
                    new_ptr: n.unwrap_or(NULL),
                    split_key: min_key,
                    new_child: present,
                    ..Default::default()
                }
            }
            OpCode::PopMin => {
                // The minimum is the sentinel's level-0 successor, and —
                // being the smallest key — the sentinel's successor at
                // every level it occupies, so unlinking never needs a find.
                let (first, _) = node::read_next(ctx, self.heads[part], 0);
                if first == NULL {
                    self.note(part, PqEvent::Pop { popped: None });
                    return Response::fail(); // new_child == 0: partition empty
                }
                let hdr = node::read_header(ctx, first);
                let value = node::read_value(ctx, first);
                let stored = ((ctx.read_u64(first + 16) >> 32) & 0xFF) as u32;
                for l in 0..stored {
                    let (succ, _) = node::read_next(ctx, first, l);
                    node::write_next(ctx, self.heads[part], l, succ, false);
                }
                node::free_node(arena, first, stored);
                self.note(part, PqEvent::Pop { popped: Some((hdr.key, value)) });
                let (min_key, present) = self.current_min(ctx, part);
                Response {
                    ok: true,
                    value: hdr.key,
                    new_ptr: value,
                    split_key: min_key,
                    new_child: present,
                    ..Default::default()
                }
            }
            op => panic!("pqueue executor received opcode {op:?}"),
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        // NMP half: both ops walk and splice the partition's sorted run.
        let run = [AccessDecl::read(RegionClass::Part), AccessDecl::write(RegionClass::Part)];
        EffectSpec::new("hybrid-pqueue")
            .op(protocol_op(OpCode::Insert, "Insert").nmp_all(&run))
            .op(protocol_op(OpCode::PopMin, "PopMin").nmp_all(&run))
    }
}

/// Host-side per-op state of an in-flight `extract_min`.
#[derive(Default)]
pub struct PqState {
    /// Bitmask of partitions that answered "empty" within this op.
    tried: u32,
    /// Partition the current `POP_MIN` was posted to.
    target: usize,
}

/// The hybrid priority queue.
pub struct HybridPqueue {
    machine: Arc<Machine>,
    runtime: OffloadRuntime,
    exec: Arc<PqExec>,
    /// Per-partition sentinel of the sorted run.
    heads: Vec<Addr>,
    /// Host-resident minimum cache base (`parts * 8` bytes).
    minima: Addr,
    levels: u32,
    ks: KeySpace,
    seed: u64,
}

impl HybridPqueue {
    /// Build an empty queue with `levels` skiplist levels per partition
    /// run and `max_inflight` offload lanes per host core.
    pub fn new(
        machine: Arc<Machine>,
        ks: KeySpace,
        levels: u32,
        seed: u64,
        max_inflight: usize,
    ) -> Arc<Self> {
        Self::build(machine, ks, levels, seed, max_inflight, false)
    }

    /// Like [`new`](Self::new), but records every combiner event so tests
    /// can call [`verify_extract_order`](Self::verify_extract_order).
    pub fn with_exec_log(
        machine: Arc<Machine>,
        ks: KeySpace,
        levels: u32,
        seed: u64,
        max_inflight: usize,
    ) -> Arc<Self> {
        Self::build(machine, ks, levels, seed, max_inflight, true)
    }

    fn build(
        machine: Arc<Machine>,
        ks: KeySpace,
        levels: u32,
        seed: u64,
        max_inflight: usize,
        log: bool,
    ) -> Arc<Self> {
        let parts = machine.partitions();
        assert_eq!(ks.parts as usize, parts, "key space must match machine partitions");
        assert!(ks.parts <= 32, "tried-mask holds at most 32 partitions");
        assert!(levels >= 1);
        let ram = machine.ram();
        let heads: Vec<Addr> =
            (0..parts).map(|p| seq::make_sentinel(machine.part_arena(p), ram, levels)).collect();
        let minima = machine.host_arena().alloc_aligned(parts as u32 * 8, 128);
        for p in 0..parts {
            cells::raw_set(ram, minima, p, cells::pack(0, false));
        }
        let runtime = OffloadRuntime::new(Arc::clone(&machine), max_inflight);
        let exec = Arc::new(PqExec {
            machine: Arc::clone(&machine),
            heads: heads.clone(),
            levels,
            log: log.then(|| (0..parts).map(|_| Mutex::new(Vec::new())).collect()),
        });
        Arc::new(HybridPqueue { machine, runtime, exec, heads, minima, levels, ks, seed })
    }

    /// Publish a combiner-reported partition minimum to the host cache.
    fn refresh_cache(&self, ctx: &mut ThreadCtx, part: usize, resp: &Response) {
        cells::publish(ctx, self.minima, part, cells::pack(resp.split_key, resp.new_child != 0));
        ctx.step();
    }

    /// Merge the cached minima over partitions not yet tried by this op and
    /// post a `POP_MIN` to the best candidate. When the cache claims every
    /// remaining partition is empty, probe one anyway — the cache may be
    /// stale, and an `extract_min` may fail only once every partition
    /// confirmed emptiness within the op.
    fn merge_step(&self, ctx: &mut ThreadCtx, st: &mut PqState) -> Step {
        let mut best: Option<(Key, usize)> = None;
        let mut first_untried = None;
        for p in 0..self.ks.parts as usize {
            if st.tried & (1 << p) != 0 {
                continue;
            }
            if first_untried.is_none() {
                first_untried = Some(p);
            }
            let w = cells::load(ctx, self.minima, p);
            ctx.step();
            if w & cells::PRESENT != 0 {
                let k = w as u32;
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, p));
                }
            }
        }
        let target = match (best, first_untried) {
            (Some((_, p)), _) => p,
            (None, Some(p)) => p,
            (None, None) => return Step::Done(OpResult::fail()),
        };
        st.target = target;
        Step::Post { part: target, req: Request::new(OpCode::PopMin, 0, 0) }
    }

    /// Untimed bulk population from unique keys (pre-simulation).
    pub fn populate(&self, pairs: &[(Key, Value)]) {
        let ram = self.machine.ram();
        let mut sorted = pairs.to_vec();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        let mut last: Vec<Vec<Addr>> =
            self.heads.iter().map(|&h| vec![h; self.levels as usize]).collect();
        let mut prev = None;
        for &(key, value) in &sorted {
            assert_ne!(prev, Some(key), "duplicate key {key} in populate");
            prev = Some(key);
            let p = self.ks.partition_of(key) as usize;
            let height = node::height_for_key(key, self.seed, self.levels);
            let stored = height.min(self.levels);
            let n = node::alloc_node(self.machine.part_arena(p), stored);
            node::raw_init(ram, n, key, value, height, stored, NULL);
            for l in 0..stored {
                node::raw_set_next(ram, last[p][l as usize], l, n, false);
                last[p][l as usize] = n;
            }
        }
        for p in 0..self.ks.parts as usize {
            let (first, _) = node::raw_next(ram, self.heads[p], 0);
            let word = if first == NULL {
                cells::pack(0, false)
            } else {
                cells::pack(node::raw_header(ram, first).key, true)
            };
            cells::raw_set(ram, self.minima, p, word);
        }
    }

    fn collect_partition(&self, p: usize) -> Vec<(Key, Value)> {
        let ram = self.machine.ram();
        let mut out = Vec::new();
        let (mut cur, _) = node::raw_next(ram, self.heads[p], 0);
        while cur != NULL {
            out.push((node::raw_header(ram, cur).key, node::raw_value(ram, cur)));
            cur = node::raw_next(ram, cur, 0).0;
        }
        out
    }

    /// Live `(key, value)` pairs in ascending key order (range partitioning
    /// makes the per-partition concatenation globally sorted).
    pub fn collect(&self) -> Vec<(Key, Value)> {
        (0..self.ks.parts as usize).flat_map(|p| self.collect_partition(p)).collect()
    }

    /// Structural invariants (call at quiescence): per-partition runs are
    /// strictly sorted, contained in their partition's region and key
    /// range, and upper levels are sublists of level 0.
    pub fn check_invariants(&self) {
        let ram = self.machine.ram();
        for p in 0..self.ks.parts as usize {
            let head = self.heads[p];
            let mut level0 = std::collections::HashSet::new();
            let mut prev: Option<Key> = None;
            let (mut cur, _) = node::raw_next(ram, head, 0);
            while cur != NULL {
                assert_eq!(self.machine.map().region_of(cur), Region::Part(p));
                let key = node::raw_header(ram, cur).key;
                if let Some(pk) = prev {
                    assert!(pk < key, "level-0 keys not strictly ascending in part {p}");
                }
                assert_eq!(self.ks.partition_of(key) as usize, p, "key {key} in wrong partition");
                prev = Some(key);
                level0.insert(cur);
                cur = node::raw_next(ram, cur, 0).0;
            }
            for l in 1..self.levels {
                let (mut cur, _) = node::raw_next(ram, head, l);
                let mut prev: Option<Key> = None;
                while cur != NULL {
                    assert!(level0.contains(&cur), "level-{l} node missing from level 0");
                    assert!(node::raw_levels(ram, cur) > l);
                    let key = node::raw_header(ram, cur).key;
                    if let Some(pk) = prev {
                        assert!(pk < key, "level-{l} keys not strictly ascending");
                    }
                    prev = Some(key);
                    cur = node::raw_next(ram, cur, l).0;
                }
            }
        }
    }

    /// Replay the combiner event log (requires [`with_exec_log`]) against a
    /// per-partition model seeded with `initial`: every successful pop must
    /// have taken the partition's minimum at its combiner slot, every empty
    /// pop must have seen a truly empty partition, and the final model must
    /// match the live structure.
    ///
    /// [`with_exec_log`]: Self::with_exec_log
    pub fn verify_extract_order(&self, initial: &[(Key, Value)]) {
        let log = self.exec.log.as_ref().expect("build with with_exec_log to verify");
        for (p, part_log) in log.iter().enumerate() {
            let mut model: BTreeMap<Key, Value> = initial
                .iter()
                .copied()
                .filter(|&(k, _)| self.ks.partition_of(k) as usize == p)
                .collect();
            for ev in part_log.lock().iter() {
                match *ev {
                    PqEvent::Insert { key, value, ok } => {
                        if ok {
                            assert!(
                                model.insert(key, value).is_none(),
                                "insert-ok of already-present key {key}"
                            );
                        } else {
                            assert!(model.contains_key(&key), "insert-fail of absent key {key}");
                        }
                    }
                    PqEvent::Pop { popped: Some((key, value)) } => {
                        let (&mk, &mv) = model.first_key_value().expect("pop from empty partition");
                        assert_eq!((mk, mv), (key, value), "pop was not the partition minimum");
                        model.remove(&mk);
                    }
                    PqEvent::Pop { popped: None } => {
                        assert!(model.is_empty(), "empty pop while partition {p} held keys");
                    }
                }
            }
            assert_eq!(
                self.collect_partition(p),
                model.into_iter().collect::<Vec<_>>(),
                "final partition {p} contents diverge from the replayed log"
            );
        }
    }
}

impl OffloadClient for HybridPqueue {
    type OpState = PqState;

    fn advance(&self, ctx: &mut ThreadCtx, op: Op, st: &mut PqState) -> Step {
        match op {
            Op::Insert(k, v) => {
                let mut req = Request::new(OpCode::Insert, k, v);
                req.aux = node::height_for_key(k, self.seed, self.levels);
                Step::Post { part: self.ks.partition_of(k) as usize, req }
            }
            Op::ExtractMin => self.merge_step(ctx, st),
            // A priority queue has no point lookups or scans.
            Op::Read(_) | Op::Remove(_) | Op::Update(..) | Op::Scan(..) => {
                Step::Done(OpResult::fail())
            }
        }
    }

    fn complete(&self, ctx: &mut ThreadCtx, op: Op, resp: &Response, st: &mut PqState) -> Step {
        match op {
            Op::Insert(k, _) => {
                self.refresh_cache(ctx, self.ks.partition_of(k) as usize, resp);
                Step::Done(OpResult { ok: resp.ok, value: 0 })
            }
            Op::ExtractMin => {
                self.refresh_cache(ctx, st.target, resp);
                if resp.ok {
                    // Extract-min reports the popped key.
                    Step::Done(OpResult { ok: true, value: resp.value })
                } else {
                    // The minima cache claimed this partition had (or might
                    // have) a key, but the probe found it empty: a stale
                    // probe (ROADMAP §4.6).
                    self.machine.mem().note_pqueue_stale(st.target, ctx.now());
                    st.tried |= 1 << st.target;
                    self.merge_step(ctx, st)
                }
            }
            op => unreachable!("pqueue completed unsupported op {op:?}"),
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        // Host half: completions publish the partition's new minimum with a
        // release store; the merge step acquire-loads every untried cell.
        let refresh = AccessDecl::write(RegionClass::Host).release().sync("minima");
        let merge = AccessDecl::read(RegionClass::Host).acquire().sync("minima");
        EffectSpec::new("hybrid-pqueue")
            .op(protocol_op(OpCode::Insert, "Insert").host(refresh))
            .op(protocol_op(OpCode::PopMin, "PopMin").host_all(&[merge, refresh]))
    }
}

impl SimIndex for HybridPqueue {
    type Pending = PendingOp<PqState>;

    fn execute(&self, ctx: &mut ThreadCtx, op: Op) -> OpResult {
        self.runtime.execute(ctx, self, op)
    }

    fn issue(&self, ctx: &mut ThreadCtx, lane: usize, op: Op) -> Issued<Self::Pending> {
        self.runtime.issue(ctx, self, lane, op)
    }

    fn poll(&self, ctx: &mut ThreadCtx, pending: &mut Self::Pending) -> PollOutcome {
        self.runtime.poll(ctx, self, pending)
    }

    fn effect_spec(&self) -> EffectSpec {
        OffloadClient::effect_spec(self).merged(self.exec.effect_spec())
    }

    fn spawn_services(self: &Arc<Self>, sim: &mut Simulation) {
        self.runtime.register_spec(&SimIndex::effect_spec(&**self));
        self.runtime.spawn_combiners(sim, Arc::clone(&self.exec));
    }

    fn max_inflight(&self) -> usize {
        self.runtime.max_inflight()
    }

    fn occupancy_feedback(&self, core: usize) -> u32 {
        self.runtime.occupancy_feedback(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, ThreadKind};

    fn keyspace() -> KeySpace {
        KeySpace::new(128, 2, 64)
    }

    fn setup(log: bool) -> (Arc<Machine>, Arc<HybridPqueue>) {
        let m = Machine::new(Config::tiny());
        let build = if log { HybridPqueue::with_exec_log } else { HybridPqueue::new };
        let pq = build(Arc::clone(&m), keyspace(), 6, 7, 2);
        (m, pq)
    }

    fn run_hosts(
        m: &Arc<Machine>,
        pq: &Arc<HybridPqueue>,
        threads: usize,
        f: impl Fn(&mut ThreadCtx, &HybridPqueue, usize) + Send + Sync + 'static,
    ) {
        let mut sim = m.simulation();
        pq.spawn_services(&mut sim);
        let f = Arc::new(f);
        for core in 0..threads {
            let pq = Arc::clone(pq);
            let f = Arc::clone(&f);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| f(ctx, &pq, core));
        }
        sim.run();
    }

    #[test]
    fn insert_then_extract_sorted() {
        let (m, pq) = setup(true);
        // Keys deliberately posted out of order, straddling both partitions.
        let keys = [901u32, 3, 514, 77, 600, 12, 999, 450];
        run_hosts(&m, &pq, 1, move |ctx, pq, _| {
            for &k in &keys {
                assert!(pq.execute(ctx, Op::Insert(k, k + 1)).ok);
            }
            assert!(!pq.execute(ctx, Op::Insert(77, 5)).ok, "duplicate");
            let mut sorted = keys.to_vec();
            sorted.sort_unstable();
            for &k in &sorted {
                assert_eq!(pq.execute(ctx, Op::ExtractMin), OpResult::ok(k));
            }
            assert!(!pq.execute(ctx, Op::ExtractMin).ok, "drained");
            // Unsupported point ops fail host-side without posting.
            assert!(!pq.execute(ctx, Op::Read(3)).ok);
            assert!(!pq.execute(ctx, Op::Remove(3)).ok);
            assert!(!pq.execute(ctx, Op::Update(3, 1)).ok);
            assert!(!pq.execute(ctx, Op::Scan(3, 4)).ok);
        });
        pq.check_invariants();
        pq.verify_extract_order(&[]);
        assert!(pq.collect().is_empty());
    }

    #[test]
    fn populate_matches_extract_order() {
        let (m, pq) = setup(true);
        let ks = keyspace();
        let initial: Vec<(Key, Value)> = (0..64).map(|i| (ks.initial_key(i * 2), i + 1)).collect();
        pq.populate(&initial);
        pq.check_invariants();
        let mut expect = initial.clone();
        expect.sort_unstable();
        assert_eq!(pq.collect(), expect);
        let first = expect[0];
        run_hosts(&m, &pq, 1, move |ctx, pq, _| {
            assert_eq!(pq.execute(ctx, Op::ExtractMin), OpResult::ok(first.0));
        });
        pq.verify_extract_order(&initial);
        assert_eq!(pq.collect(), expect[1..]);
    }

    #[test]
    fn concurrent_extracts_are_locally_ascending() {
        let (m, pq) = setup(true);
        let ks = keyspace();
        let initial: Vec<(Key, Value)> = ks.initial_keys().iter().map(|&k| (k, k)).collect();
        pq.populate(&initial);
        let per_thread = initial.len() / 4;
        let popped: Arc<Mutex<Vec<Vec<Key>>>> = Arc::new(Mutex::new(vec![Vec::new(); 4]));
        let sink = Arc::clone(&popped);
        run_hosts(&m, &pq, 4, move |ctx, pq, core| {
            let mut mine = Vec::new();
            for _ in 0..per_thread {
                let r = pq.execute(ctx, Op::ExtractMin);
                assert!(r.ok);
                mine.push(r.value);
            }
            sink.lock()[core] = mine;
        });
        pq.check_invariants();
        pq.verify_extract_order(&initial);
        assert!(pq.collect().is_empty());
        let popped = popped.lock();
        let mut all: Vec<Key> = popped.iter().flatten().copied().collect();
        for thread_pops in popped.iter() {
            // Stale cache words may route a pop to a non-argmin partition,
            // so global per-thread monotonicity is not guaranteed — but a
            // shrinking partition's minimum only grows, so each thread's
            // pops from any one partition must ascend.
            for p in 0..ks.parts {
                let from_p: Vec<Key> =
                    thread_pops.iter().copied().filter(|&k| ks.partition_of(k) == p).collect();
                assert!(from_p.windows(2).all(|w| w[0] < w[1]), "per-partition pops ascend");
            }
        }
        all.sort_unstable();
        assert_eq!(all, initial.iter().map(|&(k, _)| k).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_concurrent_inserts_and_extracts_conserve_keys() {
        let (m, pq) = setup(true);
        let ks = keyspace();
        let initial: Vec<(Key, Value)> = (0..32).map(|i| (ks.initial_key(i * 4), i)).collect();
        pq.populate(&initial);
        run_hosts(&m, &pq, 4, move |ctx, pq, core| {
            for i in 0..30u32 {
                if i % 3 == 0 {
                    let _ = pq.execute(ctx, Op::ExtractMin);
                } else {
                    let k = ks.initial_key((i * 4 + core as u32) % 128) + 1 + core as u32;
                    let _ = pq.execute(ctx, Op::Insert(k, i));
                }
            }
        });
        pq.check_invariants();
        // The replay asserts per-partition pop ordering AND that the final
        // structure equals initial + successful inserts - pops.
        pq.verify_extract_order(&initial);
    }

    #[test]
    fn deterministic_replay() {
        let world = || {
            let (m, pq) = setup(false);
            let ks = keyspace();
            pq.populate(&(0..32).map(|i| (ks.initial_key(i * 4), i)).collect::<Vec<_>>());
            let mut sim = m.simulation();
            pq.spawn_services(&mut sim);
            for core in 0..3usize {
                let pq = Arc::clone(&pq);
                sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..25u32 {
                        if i % 2 == 0 {
                            let _ = pq.execute(ctx, Op::ExtractMin);
                        } else {
                            let _ = pq.execute(ctx, Op::Insert(i * 31 + core as u32 * 7 + 1, i));
                        }
                    }
                });
            }
            let out = sim.run();
            (out.makespan(), pq.collect())
        };
        assert_eq!(world(), world());
    }
}
