//! Host-resident minimum-cache sync cells of the hybrid priority queue.
//!
//! One 8-byte word per partition, packed by [`pack`]: bit 32 flags the
//! partition non-empty, the low 32 bits hold its cached minimum key. The
//! cells follow a release/acquire protocol — completions publish a
//! combiner-reported minimum with a release store ([`publish`]) and the
//! merge step reads each cell with an acquire load ([`load`]) — so
//! concurrent refreshes are last-writer-wins and never race.

// xtask: accessor-module — all raw (untimed) minima-cell memory access
// lives here; other modules go through these helpers.

use nmp_sim::{Addr, MemBackend, ThreadCtx};
use workloads::Key;

/// Minimum-cache word: bit 32 = partition non-empty, low 32 bits = min key.
pub const PRESENT: u64 = 1 << 32;

/// Pack a partition minimum into one cache word.
pub fn pack(min_key: Key, present: bool) -> u64 {
    if present {
        PRESENT | min_key as u64
    } else {
        0
    }
}

/// Address of partition `p`'s cell.
fn cell(base: Addr, p: usize) -> Addr {
    base + p as u32 * 8
}

/// Untimed cell write (structure build / bulk population).
pub fn raw_set(ram: &dyn MemBackend, base: Addr, p: usize, word: u64) {
    ram.write_u64(cell(base, p), word);
}

/// Timed release publish of a combiner-reported minimum.
pub fn publish(ctx: &mut ThreadCtx, base: Addr, p: usize, word: u64) {
    ctx.write_u64_release(cell(base, p), word);
}

/// Timed acquire load of one cell during the merge step.
pub fn load(ctx: &mut ThreadCtx, base: Addr, p: usize) -> u64 {
    ctx.read_u64_acquire(cell(base, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        assert_eq!(pack(0, false), 0);
        assert_eq!(pack(0xABCD, true), PRESENT | 0xABCD);
        assert_eq!(pack(0xABCD, true) as u32, 0xABCD);
        assert!(pack(42, true) & PRESENT != 0);
    }

    #[test]
    fn raw_set_targets_cell() {
        let ram = nmp_sim::SimRam::new(4096);
        raw_set(&ram, 256, 3, pack(9, true));
        assert_eq!(ram.read_u64(256 + 24), PRESENT | 9);
    }
}
