//! Shared offload runtime: the host↔NMP request lifecycle, in one place.
//!
//! Every hybrid structure offloads operations the same way (§3.2, §3.5):
//! run a host-side phase (traversal/classification), post a request into a
//! publication-list slot, wait for or poll the combiner's response, retry
//! when the NMP side reports a stale begin node, fall back to a host-locked
//! path on LOCK_PATH, and possibly post follow-up requests. This module owns
//! that state machine once; structures implement only the structure-specific
//! decisions through [`OffloadClient`]:
//!
//! * `advance` — run the host phase and decide: finish on the host
//!   ([`Step::Done`]), publish a request ([`Step::Post`]), or yield and try
//!   again later ([`Step::Stall`], e.g. a bounded seqlock descent that hit
//!   its patience limit). `advance` is also where retries restart: the
//!   runtime re-invokes it after every retry response, so a client's host
//!   phase is automatically its retry path.
//! * `complete` — interpret a non-retry response: finish ([`Step::Done`]),
//!   or continue the operation with a follow-up request ([`Step::Post`] —
//!   partition-hopping scans, the B+ tree RESUME_INSERT / UNLOCK_PATH
//!   dance) or a host-side fallback ([`Step::Stall`]).
//!
//! The runtime provisions the publication lists, spawns the batching flat
//! combiners ([`crate::publist::spawn_combiners`]), allocates slots
//! (`core * max_inflight + lane`), and records per-partition/per-lane
//! telemetry (posts, retries, lock-path falls) into
//! [`nmp_sim::OffloadStats`] as a side effect of driving the lifecycle —
//! structures cannot forget to count.

pub mod policy;

use parking_lot::Mutex;
use std::sync::Arc;

use nmp_sim::{EffectSpec, Machine, ThreadCtx};
use workloads::Op;

use crate::api::{host_core, Issued, OpResult, PollOutcome};
use crate::publist::{self, NmpExec, PubLists, Request, Response};

/// Op-kind byte used by the trace subsystem's per-kind aggregation (see
/// `nmp_sim::trace::kind_label` for the label table).
pub fn op_kind(op: Op) -> u8 {
    match op {
        Op::Read(_) => 0,
        Op::Insert(_, _) => 1,
        Op::Remove(_) => 2,
        Op::Update(_, _) => 3,
        Op::Scan(_, _) => 4,
        Op::ExtractMin => 5,
    }
}

/// Host-side cycle-attribution state for one in-flight op (feature `trace`).
///
/// A cursor (`cursor`) tracks the last attributed cycle; every runtime entry
/// and exit moves it forward, crediting the elapsed segment to exactly one
/// of `host` / `post` / `wait` — so the three always tile `[start, now]`
/// with no gaps or double counting.
#[cfg(feature = "trace")]
struct OpTrace {
    id: u64,
    kind: u8,
    start: u64,
    cursor: u64,
    host: u64,
    post: u64,
    wait: u64,
    queue: u64,
    exec: u64,
    drain: u64,
    legs: u32,
}

#[cfg(feature = "trace")]
impl OpTrace {
    /// Attribute the gap since the last runtime exit: queueing for a posted
    /// op, host-side scheduling otherwise.
    fn enter(&mut self, now: u64, posted: bool) {
        if posted {
            self.mark_wait(now);
        } else {
            self.mark_host(now);
        }
    }

    fn mark_host(&mut self, now: u64) {
        self.host += now - self.cursor;
        self.cursor = now;
    }

    fn mark_post(&mut self, now: u64) {
        self.post += now - self.cursor;
        self.cursor = now;
    }

    fn mark_wait(&mut self, now: u64) {
        self.wait += now - self.cursor;
        self.cursor = now;
    }
}

/// What a client wants the runtime to do next with an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The operation is finished (host-served, or response fully applied).
    Done(OpResult),
    /// Publish `req` to partition `part` and await its response.
    Post {
        /// Target NMP partition.
        part: usize,
        /// The request to publish.
        req: Request,
    },
    /// The host phase could not make progress (e.g. contended host levels);
    /// the runtime will re-invoke `advance` on the next poll.
    Stall,
}

/// Structure-specific half of the offload lifecycle. One operation's state
/// lives in an `OpState`; the runtime threads it through `advance` /
/// `complete` until one of them returns [`Step::Done`].
pub trait OffloadClient: Send + Sync + 'static {
    /// Per-operation state (host-side nodes held across the offload, scan
    /// cursors, lock-path phase). `Default` must be the fresh-operation
    /// state.
    type OpState: Default + Send + 'static;

    /// Run the host phase of `op` (initially, after a [`Step::Stall`], and
    /// after every retry response) and decide the next step.
    fn advance(&self, ctx: &mut ThreadCtx, op: Op, st: &mut Self::OpState) -> Step;

    /// Apply a non-retry response (including LOCK_PATH responses) and
    /// decide the next step.
    fn complete(
        &self,
        ctx: &mut ThreadCtx,
        op: Op,
        resp: &Response,
        st: &mut Self::OpState,
    ) -> Step;

    /// The host half of the structure's declared memory-effect plan: per
    /// op code, everything `advance`/`complete` may touch (on top of the
    /// publication-list protocol itself,
    /// [`crate::effects::HOST_PROTOCOL`]). Merged with the executor's
    /// [`NmpExec::effect_spec`] half at registration time.
    fn effect_spec(&self) -> EffectSpec;
}

/// A pending offloaded operation: the paper's "operation ID" (§3.5), owned
/// by the issuing host thread and bound to one publication-list slot.
pub struct PendingOp<S> {
    op: Op,
    slot: usize,
    part: usize,
    posted: bool,
    state: S,
    #[cfg(feature = "trace")]
    tr: Option<OpTrace>,
}

/// The per-structure offload runtime: publication lists plus the shared
/// pipeline state machine driving them.
pub struct OffloadRuntime {
    machine: Arc<Machine>,
    lists: Arc<PubLists>,
    /// Latest batch-occupancy feedback per host core (the ctrl-word high
    /// half), stored by `on_response` and read back by the same host thread
    /// through [`OffloadRuntime::occupancy_feedback`] — a same-thread
    /// mailbox, so the value is a pure function of simulated state.
    occupancy: Vec<Mutex<u32>>,
}

impl OffloadRuntime {
    /// Provision publication lists with `max_inflight` lanes per host
    /// thread on `machine`.
    pub fn new(machine: Arc<Machine>, max_inflight: usize) -> Self {
        let lists = Arc::new(PubLists::new(Arc::clone(&machine), max_inflight));
        let occupancy = (0..machine.config().host_cores).map(|_| Mutex::new(0)).collect();
        OffloadRuntime { machine, lists, occupancy }
    }

    /// Batch occupancy observed by host `core`'s most recent completed
    /// response (the combiner's in-band feedback; 0 under `Policy::Fixed`).
    pub fn occupancy_feedback(&self, core: usize) -> u32 {
        *self.occupancy[core].lock()
    }

    /// The machine this runtime posts to.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Publication-list lanes per host thread.
    pub fn max_inflight(&self) -> usize {
        self.lists.max_inflight()
    }

    /// Statically verify `spec` against this runtime's machine topology
    /// (panicking on failure, with zero simulation cycles) and install it
    /// for spec-conformance checking. Structures call this from
    /// `spawn_services` with their merged client + executor spec.
    pub fn register_spec(&self, spec: &EffectSpec) {
        crate::effects::register_effect_spec(&self.machine, spec);
    }

    /// Spawn the flat-combining daemons (one per partition) executing
    /// requests through `exec`. Generic over the run type
    /// ([`nmp_sim::Spawner`]): the same daemons serve a cycle-accurate
    /// [`nmp_sim::Simulation`] or a real-thread [`nmp_sim::NativeRun`].
    pub fn spawn_combiners<S: nmp_sim::Spawner, E: NmpExec>(&self, sim: &mut S, exec: Arc<E>) {
        publist::spawn_combiners(sim, Arc::clone(&self.lists), exec);
    }

    fn new_pending<S: Default>(&self, _ctx: &ThreadCtx, op: Op, slot: usize) -> PendingOp<S> {
        PendingOp {
            op,
            slot,
            part: 0,
            posted: false,
            state: S::default(),
            #[cfg(feature = "trace")]
            tr: self.begin_trace(_ctx, op),
        }
    }

    #[cfg(feature = "trace")]
    fn begin_trace(&self, ctx: &ThreadCtx, op: Op) -> Option<OpTrace> {
        let t = self.machine.mem().tracer()?;
        let now = ctx.now();
        let kind = op_kind(op);
        let id = t.op_begin(host_core(ctx), kind, now);
        Some(OpTrace {
            id,
            kind,
            start: now,
            cursor: now,
            host: 0,
            post: 0,
            wait: 0,
            queue: 0,
            exec: 0,
            drain: 0,
            legs: 0,
        })
    }

    /// Close the op's trace record at completion. The final cursor position
    /// is the completion cycle: every lifecycle path marks the cursor up to
    /// `ctx.now()` before a `Step::Done` can surface here.
    fn finish_trace<S>(&self, _ctx: &ThreadCtx, _pend: &mut PendingOp<S>) {
        #[cfg(feature = "trace")]
        if let Some(tr) = _pend.tr.take() {
            if let Some(t) = self.machine.mem().tracer() {
                t.op_end(
                    host_core(_ctx),
                    nmp_sim::trace::OpRecord {
                        op: tr.id,
                        kind: tr.kind,
                        start: tr.start,
                        end: tr.cursor,
                        host: tr.host,
                        post: tr.post,
                        wait: tr.wait,
                        queue: tr.queue,
                        exec: tr.exec,
                        drain: tr.drain,
                        legs: tr.legs,
                    },
                );
            }
        }
    }

    fn apply_step<S>(
        &self,
        ctx: &mut ThreadCtx,
        pend: &mut PendingOp<S>,
        step: Step,
    ) -> Option<OpResult> {
        match step {
            Step::Done(r) => {
                #[cfg(feature = "trace")]
                if let Some(tr) = pend.tr.as_mut() {
                    tr.mark_host(ctx.now());
                }
                Some(r)
            }
            Step::Stall => {
                #[cfg(feature = "trace")]
                if let Some(tr) = pend.tr.as_mut() {
                    tr.mark_host(ctx.now());
                }
                pend.posted = false;
                None
            }
            Step::Post { part, req } => {
                #[cfg(feature = "trace")]
                let post_start = {
                    if let Some(tr) = pend.tr.as_mut() {
                        tr.mark_host(ctx.now());
                    }
                    ctx.now()
                };
                self.lists.post(ctx, part, pend.slot, &req);
                self.machine.mem().note_offload_post(part, pend.slot % self.lists.max_inflight());
                pend.part = part;
                pend.posted = true;
                #[cfg(feature = "trace")]
                if let Some(tr) = pend.tr.as_mut() {
                    let now = ctx.now();
                    tr.mark_post(now);
                    tr.legs += 1;
                    if let Some(t) = self.machine.mem().tracer() {
                        t.note_post(host_core(ctx), part, pend.slot, tr.id, post_start, now);
                    }
                }
                None
            }
        }
    }

    fn on_response<C: OffloadClient>(
        &self,
        ctx: &mut ThreadCtx,
        client: &C,
        pend: &mut PendingOp<C::OpState>,
        resp: &Response,
    ) -> Option<OpResult> {
        #[cfg(feature = "trace")]
        if let Some(tr) = pend.tr.as_mut() {
            let now = ctx.now();
            tr.mark_wait(now);
            if let Some(t) = self.machine.mem().tracer() {
                if let Some((q, e, d)) = t.leg_observed(pend.part, pend.slot, now) {
                    tr.queue += q;
                    tr.exec += e;
                    tr.drain += d;
                }
                if resp.retry {
                    t.instant(nmp_sim::trace::Track::Host(host_core(ctx)), "retry", now);
                }
            }
        }
        let step = if resp.retry {
            self.machine.mem().note_offload_retry(pend.part);
            client.advance(ctx, pend.op, &mut pend.state)
        } else {
            if resp.combined != 0 {
                *self.occupancy[host_core(ctx)].lock() = resp.combined;
            }
            if resp.lock_path {
                self.machine.mem().note_offload_lock_path(pend.part);
            }
            client.complete(ctx, pend.op, resp, &mut pend.state)
        };
        self.apply_step(ctx, pend, step)
    }

    /// Execute `op` to completion with blocking NMP calls on lane 0.
    pub fn execute<C: OffloadClient>(&self, ctx: &mut ThreadCtx, client: &C, op: Op) -> OpResult {
        let slot = self.lists.slot_of(host_core(ctx), 0);
        let mut pend = self.new_pending::<C::OpState>(ctx, op, slot);
        let step = client.advance(ctx, op, &mut pend.state);
        if let Some(r) = self.apply_step(ctx, &mut pend, step) {
            self.finish_trace(ctx, &mut pend);
            return r;
        }
        let interval = self.machine.config().host_poll_interval_cycles;
        loop {
            if pend.posted {
                let resp = self.lists.wait_response(ctx, pend.part, pend.slot);
                if let Some(r) = self.on_response(ctx, client, &mut pend, &resp) {
                    self.finish_trace(ctx, &mut pend);
                    return r;
                }
            } else {
                ctx.idle(interval);
                let step = client.advance(ctx, pend.op, &mut pend.state);
                if let Some(r) = self.apply_step(ctx, &mut pend, step) {
                    self.finish_trace(ctx, &mut pend);
                    return r;
                }
            }
        }
    }

    /// Start `op` non-blockingly on publication-list lane `lane` (§3.5).
    pub fn issue<C: OffloadClient>(
        &self,
        ctx: &mut ThreadCtx,
        client: &C,
        lane: usize,
        op: Op,
    ) -> Issued<PendingOp<C::OpState>> {
        let slot = self.lists.slot_of(host_core(ctx), lane);
        let mut pend = self.new_pending::<C::OpState>(ctx, op, slot);
        let step = client.advance(ctx, op, &mut pend.state);
        match self.apply_step(ctx, &mut pend, step) {
            Some(r) => {
                self.finish_trace(ctx, &mut pend);
                Issued::Done(r)
            }
            None => Issued::Pending(pend),
        }
    }

    /// Poll a pending operation: drain a ready response (driving retries,
    /// follow-up posts, and host fallbacks through the client), or re-run a
    /// stalled host phase. Never blocks.
    pub fn poll<C: OffloadClient>(
        &self,
        ctx: &mut ThreadCtx,
        client: &C,
        pend: &mut PendingOp<C::OpState>,
    ) -> PollOutcome {
        #[cfg(feature = "trace")]
        if let Some(tr) = pend.tr.as_mut() {
            tr.enter(ctx.now(), pend.posted);
        }
        if !pend.posted {
            let step = client.advance(ctx, pend.op, &mut pend.state);
            return match self.apply_step(ctx, pend, step) {
                Some(r) => {
                    self.finish_trace(ctx, pend);
                    PollOutcome::Done(r)
                }
                None => PollOutcome::Pending,
            };
        }
        match self.lists.try_response(ctx, pend.part, pend.slot) {
            None => {
                #[cfg(feature = "trace")]
                if let Some(tr) = pend.tr.as_mut() {
                    tr.mark_wait(ctx.now());
                }
                PollOutcome::Pending
            }
            Some(resp) => match self.on_response(ctx, client, pend, &resp) {
                Some(r) => {
                    self.finish_trace(ctx, pend);
                    PollOutcome::Done(r)
                }
                None => PollOutcome::Pending,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publist::OpCode;
    use nmp_sim::{Config, ThreadKind};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn machine() -> Arc<Machine> {
        Machine::new(Config::tiny())
    }

    /// Echo executor: ok, value = key + 1; retries first attempt per slot
    /// when `retry_once` is set.
    struct Echo {
        retry_once: bool,
    }
    impl NmpExec for Echo {
        type SlotState = u32;
        fn exec(
            &self,
            ctx: &mut ThreadCtx,
            _part: usize,
            req: &Request,
            tries: &mut u32,
        ) -> Response {
            // Modest execution cost so pipelined posts pile up behind the
            // in-progress request and the next scan pass batches them.
            ctx.idle(300);
            *tries += 1;
            if self.retry_once && *tries == 1 {
                return Response::retry();
            }
            Response::ok_value(req.key + 1)
        }
        fn effect_spec(&self) -> EffectSpec {
            EffectSpec::new("echo").op(crate::effects::protocol_op(OpCode::Read, "Read"))
        }
    }

    /// Client routing every op to partition key % parts.
    struct ModClient {
        parts: usize,
    }
    impl OffloadClient for ModClient {
        type OpState = ();
        fn advance(&self, _ctx: &mut ThreadCtx, op: Op, _st: &mut ()) -> Step {
            let key = op.key();
            Step::Post { part: key as usize % self.parts, req: Request::new(OpCode::Read, key, 0) }
        }
        fn complete(&self, _ctx: &mut ThreadCtx, _op: Op, resp: &Response, _st: &mut ()) -> Step {
            Step::Done(OpResult { ok: resp.ok, value: resp.value })
        }
        fn effect_spec(&self) -> EffectSpec {
            EffectSpec::new("mod-client").op(crate::effects::protocol_op(OpCode::Read, "Read"))
        }
    }

    #[test]
    fn execute_round_trip_and_telemetry() {
        let m = machine();
        let rt = Arc::new(OffloadRuntime::new(Arc::clone(&m), 1));
        let client = Arc::new(ModClient { parts: m.partitions() });
        let mut sim = m.simulation();
        rt.spawn_combiners(&mut sim, Arc::new(Echo { retry_once: false }));
        let done = Arc::new(AtomicU32::new(0));
        for core in 0..2 {
            let rt = Arc::clone(&rt);
            let client = Arc::clone(&client);
            let done = Arc::clone(&done);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                let r = rt.execute(ctx, &*client, Op::Read(10 + core as u32));
                assert!(r.ok);
                assert_eq!(r.value, 11 + core as u32);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        sim.run();
        assert_eq!(done.load(Ordering::Relaxed), 2);
        let o = m.mem().snapshot().offload;
        assert_eq!(o.posted_total(), 2);
        assert_eq!(o.completed_total(), 2, "every post executed exactly once");
        assert_eq!(o.retries_total(), 0);
    }

    #[test]
    fn retry_reposts_through_advance() {
        let m = machine();
        let rt = Arc::new(OffloadRuntime::new(Arc::clone(&m), 1));
        let client = Arc::new(ModClient { parts: m.partitions() });
        let mut sim = m.simulation();
        rt.spawn_combiners(&mut sim, Arc::new(Echo { retry_once: true }));
        let rt2 = Arc::clone(&rt);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            let r = rt2.execute(ctx, &*client, Op::Read(7));
            assert!(r.ok);
            assert_eq!(r.value, 8);
        });
        sim.run();
        let o = m.mem().snapshot().offload;
        assert_eq!(o.retries_total(), 1);
        assert_eq!(o.posted_total(), 2, "retry causes one repost");
    }

    #[test]
    fn pipelined_lanes_post_to_distinct_slots() {
        let m = machine();
        let rt = Arc::new(OffloadRuntime::new(Arc::clone(&m), 4));
        let client = Arc::new(ModClient { parts: m.partitions() });
        let mut sim = m.simulation();
        rt.spawn_combiners(&mut sim, Arc::new(Echo { retry_once: false }));
        let rt2 = Arc::clone(&rt);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            let mut pending = Vec::new();
            for lane in 0..4 {
                // Same partition so one combiner pass can batch them.
                match rt2.issue(ctx, &*client, lane, Op::Read(2 * lane as u32)) {
                    Issued::Pending(p) => pending.push(p),
                    Issued::Done(_) => unreachable!("ModClient always posts"),
                }
            }
            let mut results = vec![None; pending.len()];
            while results.iter().any(Option::is_none) {
                let mut progressed = false;
                for (i, p) in pending.iter_mut().enumerate() {
                    if results[i].is_none() {
                        if let PollOutcome::Done(r) = rt2.poll(ctx, &*client, p) {
                            results[i] = Some(r);
                            progressed = true;
                        }
                    }
                }
                if !progressed {
                    ctx.idle(16);
                }
            }
            for (lane, r) in results.iter().enumerate() {
                assert_eq!(r.unwrap().value, 2 * lane as u32 + 1);
            }
        });
        sim.run();
        let o = m.mem().snapshot().offload;
        assert_eq!(o.posted_total(), 4);
        // All four keys are even -> partition 0; 4 distinct lanes used.
        assert!(o.lane_posted[..4].iter().all(|&c| c == 1), "lanes: {:?}", o.lane_posted);
        assert!(o.passes_with(2) > 0, "combiner should batch concurrent lane posts");
    }
}
