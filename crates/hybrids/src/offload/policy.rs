//! Self-tuning offload policy layer (ROADMAP "Self-tuning offload
//! runtime").
//!
//! Three levers, all switched by [`Policy`] (a [`nmp_sim::Config`] knob):
//!
//! 1. **Key-range request coalescing** — under [`Policy::Adaptive`] the
//!    flat-combining pass sorts each collected batch by `(key, slot)` and
//!    serves runs of *identical* requests whose op code the executor
//!    declares coalescible ([`crate::publist::NmpExec::coalescible_ops`])
//!    with a single NMP descent: the run's lead request executes normally
//!    and every follower slot receives a replica of the lead's response.
//!    Correctness: all requests of one batch are mutually concurrent (each
//!    issuing host thread is blocked until its slot completes), so any
//!    serial order of the batch is a valid linearization; a follower is
//!    field-for-field identical to its lead and the partition state does
//!    not change between the lead's descent and the follower's completion,
//!    so the lead's response is exactly what the follower's own descent
//!    would have produced. Executors may only declare ops whose NMP plan
//!    never writes partition memory
//!    ([`crate::effects::assert_coalescible_ops`] enforces this at
//!    combiner-spawn time), which rules out read-paths with hidden
//!    mutations such as the B+ tree's sequence-number adoption.
//! 2. **Adaptive combiner idle** ([`CombinerControl`]) — replaces the
//!    constant `nmp_idle_poll_cycles` wait after an empty scan pass with
//!    an exponential back-off that resets to `max(base/4, 1)` whenever a
//!    pass finds work, so a busy partition is re-scanned promptly while a
//!    quiet one backs off up to `8 * base`.
//! 3. **Adaptive host lane depth and pipeline idle** ([`LaneGovernor`]) —
//!    replaces the fixed `inflight` depth and constant
//!    `host_pipeline_idle_cycles` stall wait of the non-blocking driver
//!    loop. The governor consumes the combiner's batch-occupancy feedback
//!    (the same combined-per-pass quantity [`nmp_sim::OffloadStats`]
//!    histograms, delivered in-band in the high half of the slot control
//!    word so the signal is a pure function of simulated state and costs
//!    no extra MMIO) and probes lane depth
//!    conservatively downward, reverting any probe that does not strictly
//!    improve completions-per-cycle.
//!
//! **Determinism.** Every decision here is a pure function of values
//! produced by the simulation itself: combiner-local pass history, the
//! issuing thread's own completion count and simulated clock, and the
//! ctrl-word occupancy bits written by the combiner and read back by the
//! same host thread. No wall-clock time, no cross-OS-thread counter reads
//! — so
//! byte-identical traces survive any `NMP_SIM_SHARDS` setting, which is
//! what makes the adaptive battery in `tests/shard_determinism.rs`
//! possible.

pub use nmp_sim::Policy;

use crate::publist::{OpCode, Request};

/// Sort a combining-pass batch for coalescing: by key, then by slot index
/// so equal-key runs are contiguous and the order within a run (and the
/// full serve order) is deterministic.
pub fn sort_batch(batch: &mut [(usize, Request)]) {
    batch.sort_by_key(|&(slot, ref req)| (req.key, slot));
}

/// Length of the coalescible run starting at `i` in a batch sorted by
/// [`sort_batch`]: the lead request plus every immediately following
/// request that is field-for-field identical to it, provided the lead's op
/// code is in `coalescible`. Returns 1 (no coalescing) otherwise.
pub fn coalesce_run_len(batch: &[(usize, Request)], i: usize, coalescible: &[OpCode]) -> usize {
    let lead = &batch[i].1;
    if !coalescible.contains(&lead.op) {
        return 1;
    }
    let mut len = 1;
    while i + len < batch.len() && batch[i + len].1 == *lead {
        len += 1;
    }
    len
}

/// Per-combiner idle tuner (lever 2). One instance lives in each
/// flat-combining daemon; its state is the daemon's own pass history only.
#[derive(Debug, Clone)]
pub struct CombinerControl {
    policy: Policy,
    base: u64,
    cur: u64,
}

impl CombinerControl {
    /// Ceiling of the adaptive back-off, as a multiple of the configured
    /// base idle.
    pub const MAX_BACKOFF: u64 = 8;

    /// A control for one combiner with the configured
    /// `nmp_idle_poll_cycles` as `base`.
    pub fn new(policy: Policy, base: u64) -> Self {
        CombinerControl { policy, base, cur: Self::floor(base) }
    }

    fn floor(base: u64) -> u64 {
        (base / 4).max(1)
    }

    /// Cycles to idle after a scan pass that found no requests. Fixed:
    /// always `base`. Adaptive: the current back-off, which then doubles
    /// (capped at `MAX_BACKOFF * base`).
    pub fn idle_after_empty(&mut self) -> u64 {
        match self.policy {
            Policy::Fixed => self.base,
            Policy::Adaptive => {
                let v = self.cur;
                self.cur = (self.cur * 2).min(self.base * Self::MAX_BACKOFF).max(1);
                v
            }
        }
    }

    /// A scan pass found work: re-arm the back-off at its floor so the
    /// next quiet pass re-scans promptly.
    pub fn note_busy(&mut self) {
        if self.policy == Policy::Adaptive {
            self.cur = Self::floor(self.base);
        }
    }
}

/// Completions per depth-probe epoch: enough samples that a throughput
/// comparison is meaningful, small enough that probing reacts within a run.
const EPOCH_COMPLETIONS: u64 = 32;
/// Base failed-probe cooldown, in epochs. Every consecutive failed probe
/// doubles it (capped at `PROBE_COOLDOWN << MAX_FAIL_STREAK`), so a
/// workload that genuinely wants the full lane depth pays a vanishing
/// fraction of its epochs to futile probing.
const PROBE_COOLDOWN: u32 = 7;
/// Cap on the failed-probe cooldown doubling.
const MAX_FAIL_STREAK: u32 = 3;
/// Host stall back-off ceiling, as a multiple of the configured base idle.
const STALL_BACKOFF: u64 = 4;
/// Occupancy histogram buckets (mirrors `nmp_sim::OFFLOAD_HIST_BUCKETS`).
const HIST_BUCKETS: usize = 17;

/// Per-host-thread lane-depth and pipeline-idle governor (lever 3). One
/// instance lives in each driver pipeline loop; its inputs are that
/// thread's own completions, the in-band ctrl-word occupancy feedback,
/// and the simulated clock.
#[derive(Debug, Clone)]
pub struct LaneGovernor {
    policy: Policy,
    base_idle: u64,
    idle: u64,
    max_depth: usize,
    depth: usize,
    /// Local copy of the combined-per-pass histogram, built from the
    /// ctrl-word occupancy feedback of this thread's own completions.
    hist: [u64; HIST_BUCKETS],
    /// Occupancy EWMA in 1/16ths (integer fixed point; no floats so the
    /// value is bit-exact everywhere).
    ewma16: u64,
    completions: u64,
    epoch_start_completions: u64,
    epoch_start_cycles: u64,
    /// Throughput of the pre-probe epoch, in completions-per-cycle fixed
    /// point (`completions << 20 / cycles`); 0 = not probing.
    probe_baseline: u64,
    cooldown: u32,
    /// Consecutive failed probes; drives the cooldown doubling.
    fail_streak: u32,
}

impl LaneGovernor {
    /// A governor for one pipeline loop with the configured `inflight` as
    /// the depth ceiling and `host_pipeline_idle_cycles` as the idle base.
    pub fn new(policy: Policy, base_idle: u64, max_inflight: usize) -> Self {
        let max_depth = max_inflight.max(1);
        LaneGovernor {
            policy,
            base_idle,
            idle: base_idle,
            max_depth,
            depth: max_depth,
            hist: [0; HIST_BUCKETS],
            ewma16: 0,
            completions: 0,
            epoch_start_completions: 0,
            epoch_start_cycles: 0,
            probe_baseline: 0,
            cooldown: 0,
            fail_streak: 0,
        }
    }

    /// Lanes the loop may issue new operations on right now (always in
    /// `1..=max_inflight`; lanes above the current depth still drain).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Mean observed batch occupancy in 1/16ths (diagnostics/tests).
    pub fn occupancy_ewma16(&self) -> u64 {
        self.ewma16
    }

    /// The governor's local combined-per-pass histogram (diagnostics).
    pub fn hist(&self) -> &[u64; HIST_BUCKETS] {
        &self.hist
    }

    fn throughput(&self, now: u64) -> u64 {
        let dc = self.completions - self.epoch_start_completions;
        let dt = (now - self.epoch_start_cycles).max(1);
        (dc << 20) / dt
    }

    /// Feed one completed operation: `occupancy` is the ctrl-word
    /// batch-occupancy feedback (0 under [`Policy::Fixed`]), `now` the
    /// simulated clock.
    pub fn note_completion(&mut self, occupancy: u32, now: u64) {
        self.completions += 1;
        if self.policy == Policy::Fixed {
            return;
        }
        let b = (occupancy as usize).min(HIST_BUCKETS - 1);
        self.hist[b] += 1;
        // ewma16 <- ewma16 * 7/8 + occupancy_in_16ths / 8
        self.ewma16 = self.ewma16 - self.ewma16 / 8 + (occupancy as u64) * 2;
        if self.epoch_start_cycles == 0 {
            self.epoch_start_cycles = now;
            self.epoch_start_completions = self.completions;
            return;
        }
        if self.completions - self.epoch_start_completions < EPOCH_COMPLETIONS {
            return;
        }
        let tp = self.throughput(now);
        if self.probe_baseline != 0 {
            // A depth probe just finished: keep the shallower depth only if
            // it improved completions-per-cycle by a clear margin (> 1/16),
            // so phase noise cannot lock the pipeline at a worse depth.
            if tp > self.probe_baseline + self.probe_baseline / 16 {
                self.probe_baseline = 0; // accepted; may probe again later
                self.fail_streak = 0;
                self.cooldown = PROBE_COOLDOWN;
            } else {
                self.depth = (self.depth + 1).min(self.max_depth);
                self.probe_baseline = 0;
                self.cooldown = PROBE_COOLDOWN << self.fail_streak.min(MAX_FAIL_STREAK);
                self.fail_streak += 1;
            }
        } else if self.cooldown > 0 {
            self.cooldown -= 1;
        } else if self.depth > 1 && self.ewma16 >= (self.depth as u64) * 2 * 16 {
            // Batches routinely carry ≥ 2x our lane depth: the combiner is
            // saturated and an extra lane only queues. Probe one shallower.
            self.probe_baseline = tp;
            self.depth -= 1;
        }
        self.epoch_start_completions = self.completions;
        self.epoch_start_cycles = now;
    }

    /// Cycles to idle when a full poll round made no progress. Fixed:
    /// always the configured base. Adaptive: doubles per consecutive
    /// stalled round up to `4 * base`, re-armed at `max(base/4, 1)` by
    /// [`Self::note_progress`].
    pub fn idle_on_stall(&mut self) -> u64 {
        match self.policy {
            Policy::Fixed => self.base_idle,
            Policy::Adaptive => {
                let v = self.idle;
                self.idle = (self.idle * 2).min(self.base_idle * STALL_BACKOFF).max(1);
                v
            }
        }
    }

    /// A poll round completed at least one operation: re-arm the stall
    /// back-off at its floor so the pipeline polls eagerly while work is
    /// flowing.
    pub fn note_progress(&mut self) {
        if self.policy == Policy::Adaptive {
            self.idle = (self.base_idle / 4).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::NULL;

    fn req(op: OpCode, key: u32) -> Request {
        Request { op, key, value: 0, begin: NULL, host_ptr: NULL, aux: 0 }
    }

    #[test]
    fn sort_batch_orders_by_key_then_slot() {
        let mut batch = vec![
            (3, req(OpCode::Read, 9)),
            (1, req(OpCode::Read, 2)),
            (2, req(OpCode::Read, 9)),
            (0, req(OpCode::Read, 5)),
        ];
        sort_batch(&mut batch);
        let order: Vec<usize> = batch.iter().map(|&(s, _)| s).collect();
        assert_eq!(order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn coalesce_run_groups_identical_requests_only() {
        let mut batch = vec![
            (0, req(OpCode::Read, 7)),
            (1, req(OpCode::Read, 7)),
            (2, req(OpCode::Read, 7)),
            (3, req(OpCode::Read, 8)),
        ];
        sort_batch(&mut batch);
        assert_eq!(coalesce_run_len(&batch, 0, &[OpCode::Read]), 3);
        assert_eq!(coalesce_run_len(&batch, 3, &[OpCode::Read]), 1);
        // Op not declared coalescible -> no run.
        assert_eq!(coalesce_run_len(&batch, 0, &[]), 1);
    }

    #[test]
    fn coalesce_run_requires_full_field_equality() {
        // Same key, different begin pointer: responses could differ, so
        // the run must not merge them.
        let a = req(OpCode::Read, 7);
        let mut b = req(OpCode::Read, 7);
        b.begin = 0x40;
        let batch = vec![(0, a), (1, b)];
        assert_eq!(coalesce_run_len(&batch, 0, &[OpCode::Read]), 1);
    }

    #[test]
    fn combiner_control_fixed_is_constant() {
        let mut c = CombinerControl::new(Policy::Fixed, 16);
        for _ in 0..10 {
            assert_eq!(c.idle_after_empty(), 16);
        }
        c.note_busy();
        assert_eq!(c.idle_after_empty(), 16);
    }

    #[test]
    fn combiner_control_adaptive_backs_off_and_rearms() {
        let mut c = CombinerControl::new(Policy::Adaptive, 16);
        let seq: Vec<u64> = (0..8).map(|_| c.idle_after_empty()).collect();
        assert_eq!(seq, vec![4, 8, 16, 32, 64, 128, 128, 128]);
        c.note_busy();
        assert_eq!(c.idle_after_empty(), 4);
    }

    #[test]
    fn combiner_control_never_idles_zero() {
        let mut c = CombinerControl::new(Policy::Adaptive, 1);
        for _ in 0..5 {
            assert!(c.idle_after_empty() >= 1);
        }
    }

    #[test]
    fn governor_fixed_keeps_depth_and_idle() {
        let mut g = LaneGovernor::new(Policy::Fixed, 16, 4);
        for i in 0..200 {
            g.note_completion(16, 100 * (i + 1));
            assert_eq!(g.depth(), 4);
            assert_eq!(g.idle_on_stall(), 16);
        }
    }

    #[test]
    fn governor_adaptive_idle_rearms_on_progress() {
        let mut g = LaneGovernor::new(Policy::Adaptive, 16, 4);
        assert_eq!(g.idle_on_stall(), 16);
        assert_eq!(g.idle_on_stall(), 32);
        assert_eq!(g.idle_on_stall(), 64);
        assert_eq!(g.idle_on_stall(), 64, "capped at 4x base");
        g.note_progress();
        assert_eq!(g.idle_on_stall(), 4, "re-armed at base/4");
    }

    #[test]
    fn governor_probes_down_when_saturated_and_reverts_on_regression() {
        let mut g = LaneGovernor::new(Policy::Adaptive, 16, 4);
        let mut now = 0;
        // Saturated: occupancy 16 with depth 4 -> ewma crosses 2x depth.
        // Constant completion rate, so the shallower probe is never a
        // strict improvement and must be reverted.
        let mut probed = false;
        let mut reverted = false;
        for _ in 0..(EPOCH_COMPLETIONS * 20) {
            now += 100;
            g.note_completion(16, now);
            assert!(g.depth() >= 3, "probes at most one step at a time");
            probed |= g.depth() == 3;
            reverted |= probed && g.depth() == 4;
        }
        assert!(probed, "saturation should trigger a downward probe");
        assert!(reverted, "non-improving probe reverted");
    }

    #[test]
    fn governor_keeps_improving_probe() {
        let mut g = LaneGovernor::new(Policy::Adaptive, 16, 4);
        let mut now = 0;
        // First epochs at depth 4 are slow (200 cycles/op); once the probe
        // drops to depth 3 completions speed up (50 cycles/op), so the
        // probe is a strict improvement and sticks.
        for _ in 0..(EPOCH_COMPLETIONS * 20) {
            now += if g.depth() == 4 { 200 } else { 50 };
            g.note_completion(16, now);
        }
        assert!(g.depth() < 4, "strictly-improving probe should be kept");
    }

    #[test]
    fn governor_depth_never_leaves_bounds() {
        let mut g = LaneGovernor::new(Policy::Adaptive, 16, 1);
        let mut now = 0;
        for _ in 0..(EPOCH_COMPLETIONS * 8) {
            now += 10;
            g.note_completion(16, now);
            assert_eq!(g.depth(), 1);
        }
    }
}
