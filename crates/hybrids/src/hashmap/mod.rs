//! Hybrid hash map: host-resident bucket directory, NMP-managed bucket
//! chains (§6.3 generalization of the host-top/NMP-bottom split).
//!
//! The *directory* is a fixed array of `buckets` routing words in host
//! memory, sized to fit the LLC (asserted at construction). Entry `b` packs
//! the partition owning bucket `b` and the simulated address of the
//! bucket's head slot inside that partition. Buckets are assigned to
//! partitions by contiguous *hash ranges* (`part = b / buckets_per_part`),
//! the hash-space analogue of the paper's key-range partitioning — every
//! chain of a bucket range lives in one vault, served by that vault's
//! single-owner combiner.
//!
//! The directory is **resize-free and read-only after construction** (v1):
//! host threads route with one timed read that, in steady state, hits the
//! LLC, and a cached routing word can never be stale — so the hash map
//! needs no RETRY path at all. (Caching chain *heads* host-side instead
//! would be unsound: insert-at-head makes cached heads miss newer nodes.
//! Routing words never change, so they are the only thing worth pinning in
//! cache.) All chain mutation happens partition-locally on the NMP side,
//! where the flat combiner serializes it; operations linearize at the
//! combiner's execution, which the conformance harness checks per key.
//!
//! Scans and extract-min are outside a hash map's interface and complete
//! host-side as failures.

use std::sync::Arc;

use nmp_sim::analysis::RegionClass;
use nmp_sim::{Addr, EffectSpec, Machine, Region, Simulation, ThreadCtx, NULL};
use workloads::{mix64, Key, Op, Value};

use crate::api::{Issued, OpResult, PollOutcome, SimIndex};
use crate::effects::{protocol_op, AccessDecl};
use crate::offload::{OffloadClient, OffloadRuntime, PendingOp, Step};
use crate::publist::{NmpExec, OpCode, Request, Response};

pub mod node;

/// NMP-side executor: applies one published request to the bucket chain
/// whose head slot the host resolved through the directory (`req.begin`).
pub struct HashMapExec {
    machine: Arc<Machine>,
}

impl HashMapExec {
    /// Walk the chain headed at `slot` for `key`; returns
    /// `(predecessor, node)` with `NULL` predecessor for the head node.
    fn find(ctx: &mut ThreadCtx, slot: Addr, key: Key) -> (Addr, Addr) {
        let mut prev = NULL;
        let mut cur = ctx.read_u64(slot) as Addr;
        while cur != NULL {
            if node::read_key(ctx, cur) == key {
                return (prev, cur);
            }
            ctx.step();
            prev = cur;
            cur = node::read_next(ctx, cur);
        }
        (prev, NULL)
    }
}

impl NmpExec for HashMapExec {
    type SlotState = ();

    // Reads are a pure bucket-chain walk (`find` + value load): no
    // partition writes, no slot state — safe to key-range coalesce.
    fn coalescible_ops(&self) -> &'static [OpCode] {
        &[OpCode::Read]
    }

    fn exec(&self, ctx: &mut ThreadCtx, part: usize, req: &Request, _s: &mut ()) -> Response {
        let slot = req.begin;
        match req.op {
            OpCode::Read => match Self::find(ctx, slot, req.key) {
                (_, n) if n != NULL => Response::ok_value(node::read_value(ctx, n)),
                _ => Response::fail(),
            },
            OpCode::Update => match Self::find(ctx, slot, req.key) {
                (_, n) if n != NULL => {
                    node::write_value(ctx, n, req.value);
                    Response { ok: true, ..Default::default() }
                }
                _ => Response::fail(),
            },
            OpCode::Insert => {
                if Self::find(ctx, slot, req.key).1 != NULL {
                    return Response::fail(); // duplicate key
                }
                let head = ctx.read_u64(slot) as Addr;
                let n = node::alloc_node(self.machine.part_arena(part));
                node::init_node(ctx, n, req.key, req.value, head);
                ctx.write_u64(slot, n as u64); // insert at head
                Response { ok: true, new_ptr: n, ..Default::default() }
            }
            OpCode::Remove => {
                let (prev, n) = Self::find(ctx, slot, req.key);
                if n == NULL {
                    return Response::fail();
                }
                let next = node::read_next(ctx, n);
                if prev == NULL {
                    ctx.write_u64(slot, next as u64);
                } else {
                    node::write_next(ctx, prev, next);
                }
                // Safe to free immediately: no host pointer ever refers to
                // a chain node (begin pointers are head-slot addresses).
                node::free_node(self.machine.part_arena(part), n);
                Response { ok: true, ..Default::default() }
            }
            op => panic!("hash map executor received opcode {op:?}"),
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        // NMP half: head-slot and chain-node traffic is partition-local;
        // mutating ops additionally store (head slot, node fields).
        let chase = [AccessDecl::read(RegionClass::Part)];
        let mutate = [AccessDecl::read(RegionClass::Part), AccessDecl::write(RegionClass::Part)];
        EffectSpec::new("hybrid-hashmap")
            .op(protocol_op(OpCode::Read, "Read").nmp_all(&chase))
            .op(protocol_op(OpCode::Update, "Update").nmp_all(&mutate))
            .op(protocol_op(OpCode::Insert, "Insert").nmp_all(&mutate))
            .op(protocol_op(OpCode::Remove, "Remove").nmp_all(&mutate))
    }
}

/// Directory word: head-slot address (lo 32) | owning partition (hi 32).
fn pack_dir(slot: Addr, part: usize) -> u64 {
    slot as u64 | ((part as u64) << 32)
}

/// The hybrid hash map.
pub struct HybridHashMap {
    machine: Arc<Machine>,
    runtime: OffloadRuntime,
    exec: Arc<HashMapExec>,
    /// Host-resident bucket directory base.
    dir: Addr,
    buckets: u32,
    buckets_per_part: u32,
    /// Per-partition base of the bucket head-slot array.
    part_heads: Vec<Addr>,
    seed: u64,
}

impl HybridHashMap {
    /// Build a map with `buckets` fixed buckets (a multiple of the machine's
    /// partition count; directory must fit the LLC).
    pub fn new(machine: Arc<Machine>, buckets: u32, seed: u64, max_inflight: usize) -> Arc<Self> {
        let parts = machine.partitions() as u32;
        assert!(
            buckets > 0 && buckets.is_multiple_of(parts),
            "buckets must split evenly across partitions"
        );
        assert!(
            buckets as u64 * 8 <= machine.config().l2.size_bytes as u64,
            "bucket directory ({buckets} x 8 B) must fit the LLC"
        );
        let buckets_per_part = buckets / parts;
        let ram = machine.ram();
        let part_heads: Vec<Addr> = (0..parts as usize)
            .map(|p| {
                let base = machine.part_arena(p).alloc_aligned(buckets_per_part * 8, 128);
                for i in 0..buckets_per_part {
                    node::raw_set_head(ram, base + i * 8, NULL);
                }
                base
            })
            .collect();
        let dir = machine.host_arena().alloc_aligned(buckets * 8, 128);
        for b in 0..buckets {
            let part = (b / buckets_per_part) as usize;
            let slot = part_heads[part] + (b % buckets_per_part) * 8;
            node::raw_set_route(ram, dir, b, pack_dir(slot, part));
        }
        let runtime = OffloadRuntime::new(Arc::clone(&machine), max_inflight);
        let exec = Arc::new(HashMapExec { machine: Arc::clone(&machine) });
        Arc::new(HybridHashMap {
            machine,
            runtime,
            exec,
            dir,
            buckets,
            buckets_per_part,
            part_heads,
            seed,
        })
    }

    /// Number of buckets (fixed at construction).
    pub fn buckets(&self) -> u32 {
        self.buckets
    }

    /// Which bucket `key` hashes into.
    pub fn bucket_of(&self, key: Key) -> u32 {
        (mix64(self.seed ^ key as u64) % self.buckets as u64) as u32
    }

    fn slot_of_bucket(&self, b: u32) -> (usize, Addr) {
        let part = (b / self.buckets_per_part) as usize;
        (part, self.part_heads[part] + (b % self.buckets_per_part) * 8)
    }

    /// Untimed bulk population from unique `(key, value)` pairs.
    pub fn populate(&self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        let ram = self.machine.ram();
        for (key, value) in pairs {
            let (part, slot) = self.slot_of_bucket(self.bucket_of(key));
            let head = node::raw_head(ram, slot);
            let n = node::alloc_node(self.machine.part_arena(part));
            node::raw_init(ram, n, key, value, head);
            node::raw_set_head(ram, slot, n);
        }
    }

    /// Live `(key, value)` pairs across all buckets, in key order.
    pub fn collect(&self) -> Vec<(Key, Value)> {
        let ram = self.machine.ram();
        let mut out = Vec::new();
        for b in 0..self.buckets {
            let (_, slot) = self.slot_of_bucket(b);
            let mut cur = node::raw_head(ram, slot);
            while cur != NULL {
                out.push((node::raw_key(ram, cur), node::raw_value(ram, cur)));
                cur = node::raw_next(ram, cur);
            }
        }
        out.sort_unstable();
        out
    }

    /// Register the effect spec and spawn the flat-combining daemons on any
    /// run type — a cycle-accurate [`Simulation`] or a real-thread
    /// [`nmp_sim::NativeRun`]. [`SimIndex::spawn_services`] delegates here;
    /// the native serving path (`hybrids-server`) calls it directly.
    pub fn spawn_services_on<S: nmp_sim::Spawner>(self: &Arc<Self>, sp: &mut S) {
        self.runtime.register_spec(&SimIndex::effect_spec(&**self));
        self.runtime.spawn_combiners(sp, Arc::clone(&self.exec));
    }

    /// Structural invariants (call at quiescence): every chain node hashes
    /// to its bucket, lives in the bucket's partition, appears once, and no
    /// key is stored twice.
    pub fn check_invariants(&self) {
        let ram = self.machine.ram();
        let mut seen_nodes = std::collections::HashSet::new();
        let mut seen_keys = std::collections::HashSet::new();
        for b in 0..self.buckets {
            let (part, slot) = self.slot_of_bucket(b);
            assert_eq!(self.machine.map().region_of(slot), Region::Part(part));
            let mut cur = node::raw_head(ram, slot);
            while cur != NULL {
                assert!(seen_nodes.insert(cur), "node {cur:#x} linked twice (cycle?)");
                assert_eq!(self.machine.map().region_of(cur), Region::Part(part));
                let key = node::raw_key(ram, cur);
                assert_eq!(self.bucket_of(key), b, "key {key} chained in wrong bucket");
                assert!(seen_keys.insert(key), "key {key} stored twice");
                cur = node::raw_next(ram, cur);
            }
        }
    }
}

impl OffloadClient for HybridHashMap {
    type OpState = ();

    fn advance(&self, ctx: &mut ThreadCtx, op: Op, _st: &mut ()) -> Step {
        let (code, key, value) = match op {
            Op::Read(k) => (OpCode::Read, k, 0),
            Op::Insert(k, v) => (OpCode::Insert, k, v),
            Op::Remove(k) => (OpCode::Remove, k, 0),
            Op::Update(k, v) => (OpCode::Update, k, v),
            // A hash map is unordered: no scans, no extract-min.
            Op::Scan(..) | Op::ExtractMin => return Step::Done(OpResult::fail()),
        };
        let b = self.bucket_of(key);
        // The whole host phase: one directory read (LLC-resident routing).
        let w = ctx.read_u64(self.dir + b * 8);
        ctx.step();
        let mut req = Request::new(code, key, value);
        req.begin = w as Addr;
        req.aux = b;
        Step::Post { part: (w >> 32) as usize, req }
    }

    fn complete(&self, _ctx: &mut ThreadCtx, op: Op, resp: &Response, _st: &mut ()) -> Step {
        Step::Done(match op {
            Op::Read(_) => OpResult { ok: resp.ok, value: resp.value },
            _ => OpResult { ok: resp.ok, value: 0 },
        })
    }

    fn effect_spec(&self) -> EffectSpec {
        // Host half: the entire host phase is one directory routing read in
        // host memory (LLC-resident), then the protocol round trip.
        let route = [AccessDecl::read(RegionClass::Host)];
        EffectSpec::new("hybrid-hashmap")
            .op(protocol_op(OpCode::Read, "Read").host_all(&route))
            .op(protocol_op(OpCode::Update, "Update").host_all(&route))
            .op(protocol_op(OpCode::Insert, "Insert").host_all(&route))
            .op(protocol_op(OpCode::Remove, "Remove").host_all(&route))
    }
}

impl SimIndex for HybridHashMap {
    type Pending = PendingOp<()>;

    fn execute(&self, ctx: &mut ThreadCtx, op: Op) -> OpResult {
        self.runtime.execute(ctx, self, op)
    }

    fn issue(&self, ctx: &mut ThreadCtx, lane: usize, op: Op) -> Issued<Self::Pending> {
        self.runtime.issue(ctx, self, lane, op)
    }

    fn poll(&self, ctx: &mut ThreadCtx, pending: &mut Self::Pending) -> PollOutcome {
        self.runtime.poll(ctx, self, pending)
    }

    fn effect_spec(&self) -> EffectSpec {
        OffloadClient::effect_spec(self).merged(self.exec.effect_spec())
    }

    fn spawn_services(self: &Arc<Self>, sim: &mut Simulation) {
        self.spawn_services_on(sim);
    }

    fn max_inflight(&self) -> usize {
        self.runtime.max_inflight()
    }

    fn occupancy_feedback(&self, core: usize) -> u32 {
        self.runtime.occupancy_feedback(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::{Config, ThreadKind};
    use std::collections::BTreeMap;

    fn setup() -> (Arc<Machine>, Arc<HybridHashMap>) {
        let m = Machine::new(Config::tiny());
        let hm = HybridHashMap::new(Arc::clone(&m), 64, 42, 2);
        (m, hm)
    }

    fn run_hosts(
        m: &Arc<Machine>,
        hm: &Arc<HybridHashMap>,
        threads: usize,
        f: impl Fn(&mut ThreadCtx, &HybridHashMap, usize) + Send + Sync + 'static,
    ) {
        let mut sim = m.simulation();
        hm.spawn_services(&mut sim);
        let f = Arc::new(f);
        for core in 0..threads {
            let hm = Arc::clone(hm);
            let f = Arc::clone(&f);
            sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| f(ctx, &hm, core));
        }
        sim.run();
    }

    #[test]
    fn blocking_ops_roundtrip() {
        let (m, hm) = setup();
        run_hosts(&m, &hm, 1, |ctx, hm, _| {
            assert!(!hm.execute(ctx, Op::Read(10)).ok);
            assert!(hm.execute(ctx, Op::Insert(10, 7)).ok);
            assert!(!hm.execute(ctx, Op::Insert(10, 8)).ok, "duplicate");
            assert_eq!(hm.execute(ctx, Op::Read(10)), OpResult::ok(7));
            assert!(hm.execute(ctx, Op::Update(10, 9)).ok);
            assert_eq!(hm.execute(ctx, Op::Read(10)), OpResult::ok(9));
            assert!(hm.execute(ctx, Op::Remove(10)).ok);
            assert!(!hm.execute(ctx, Op::Remove(10)).ok);
            assert!(!hm.execute(ctx, Op::Read(10)).ok);
            // Unsupported ops fail host-side.
            assert!(!hm.execute(ctx, Op::Scan(0, 5)).ok);
            assert!(!hm.execute(ctx, Op::ExtractMin).ok);
        });
        hm.check_invariants();
        assert!(hm.collect().is_empty());
    }

    #[test]
    fn chains_hold_colliding_keys() {
        let (m, hm) = setup();
        // Many more keys than buckets forces multi-node chains.
        run_hosts(&m, &hm, 1, |ctx, hm, _| {
            for k in 1..=300u32 {
                assert!(hm.execute(ctx, Op::Insert(k, k * 2)).ok);
            }
            for k in 1..=300u32 {
                assert_eq!(hm.execute(ctx, Op::Read(k)), OpResult::ok(k * 2));
            }
        });
        hm.check_invariants();
        assert_eq!(hm.collect().len(), 300);
    }

    #[test]
    fn populate_matches_execute_view() {
        let (m, hm) = setup();
        let pairs: Vec<(Key, Value)> = (1..=100u32).map(|k| (k * 3, k)).collect();
        hm.populate(pairs.clone());
        hm.check_invariants();
        assert_eq!(hm.collect(), pairs);
        run_hosts(&m, &hm, 1, |ctx, hm, _| {
            assert_eq!(hm.execute(ctx, Op::Read(3)), OpResult::ok(1));
            assert_eq!(hm.execute(ctx, Op::Read(300)), OpResult::ok(100));
        });
    }

    #[test]
    fn concurrent_disjoint_threads_match_model() {
        let (m, hm) = setup();
        hm.populate((1..=200u32).map(|k| (k, 0)));
        run_hosts(&m, &hm, 4, |ctx, hm, core| {
            for k in 1..=200u32 {
                if k as usize % 4 != core {
                    continue;
                }
                if k % 3 == 0 {
                    assert!(hm.execute(ctx, Op::Remove(k)).ok);
                } else {
                    assert!(hm.execute(ctx, Op::Update(k, k + 1)).ok);
                }
            }
        });
        hm.check_invariants();
        let model: BTreeMap<Key, Value> =
            (1..=200u32).filter(|k| k % 3 != 0).map(|k| (k, k + 1)).collect();
        assert_eq!(hm.collect().into_iter().collect::<BTreeMap<_, _>>(), model);
    }

    #[test]
    fn directory_fits_llc_enforced() {
        let m = Machine::new(Config::tiny()); // 16 kB LLC
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = HybridHashMap::new(Arc::clone(&m), 4096, 1, 1); // 32 kB directory
        }));
        assert!(r.is_err(), "oversized directory must be rejected");
    }

    #[test]
    fn deterministic_replay() {
        let world = || {
            let (m, hm) = setup();
            hm.populate((1..=64u32).map(|k| (k, k)));
            let mut sim = m.simulation();
            hm.spawn_services(&mut sim);
            for core in 0..3usize {
                let hm = Arc::clone(&hm);
                sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..40u32 {
                        let key = (i * 7 + core as u32 * 13) % 96 + 1;
                        match i % 3 {
                            0 => drop(hm.execute(ctx, Op::Remove(key))),
                            1 => drop(hm.execute(ctx, Op::Insert(key, i))),
                            _ => drop(hm.execute(ctx, Op::Read(key))),
                        }
                    }
                });
            }
            let out = sim.run();
            (out.makespan(), hm.collect())
        };
        assert_eq!(world(), world());
    }

    #[test]
    fn native_backend_serves_same_semantics() {
        // The exact blocking-op contract, but executed by real OS threads
        // over the native memory backend (DESIGN.md §4.11): combiners run
        // as native daemons, host threads hit the same offload client.
        let m = Machine::new_native(Config::tiny());
        let hm = HybridHashMap::new(Arc::clone(&m), 64, 42, 2);
        let mut run = m.native_run();
        hm.spawn_services_on(&mut run);
        for core in 0..4usize {
            let hm = Arc::clone(&hm);
            run.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
                let base = 1_000 * (core as Key + 1);
                for i in 0..50u32 {
                    assert!(hm.execute(ctx, Op::Insert(base + i, i + 1)).ok);
                    assert!(!hm.execute(ctx, Op::Insert(base + i, 9)).ok, "duplicate");
                }
                for i in 0..50u32 {
                    assert_eq!(hm.execute(ctx, Op::Read(base + i)), OpResult::ok(i + 1));
                }
                for i in 0..25u32 {
                    assert!(hm.execute(ctx, Op::Remove(base + 2 * i)).ok);
                }
            });
        }
        run.finish();
        hm.check_invariants();
        assert_eq!(hm.collect().len(), 4 * 25);
    }
}
