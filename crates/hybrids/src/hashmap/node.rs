//! Chain-node layout of the hybrid hash map's NMP-managed buckets.
//!
//! ```text
//! w0  key (lo u32)
//! w1  value (lo u32)
//! w2  next chain node (lo u32; NULL terminates)
//! w3  reserved (padding to one 32-byte allocation)
//! ```
//!
//! Nodes are 32 bytes, 32-byte aligned, so a node never straddles a
//! 128-byte vault/cache block and the NMP core's node-size register buffer
//! holds a whole node after one fill.

// xtask: accessor-module — all raw (untimed) hash-map memory access lives
// here; other modules go through these helpers.

use nmp_sim::{Addr, Arena, MemBackend, ThreadCtx};
use workloads::{Key, Value};

/// Bytes per chain node (power of two; see module docs).
pub const NODE_BYTES: u32 = 32;
/// Alignment of every chain node.
pub const NODE_ALIGN: u32 = 32;

/// Allocate one chain node.
pub fn alloc_node(arena: &Arena) -> Addr {
    arena.alloc_aligned(NODE_BYTES, NODE_ALIGN)
}

/// Return a chain node to its arena.
pub fn free_node(arena: &Arena, node: Addr) {
    arena.free(node, NODE_BYTES, NODE_ALIGN);
}

// ---- untimed (population / invariant checking) ----

/// Untimed full-node initialization.
pub fn raw_init(ram: &dyn MemBackend, node: Addr, key: Key, value: Value, next: Addr) {
    ram.write_u64(node, key as u64);
    ram.write_u64(node + 8, value as u64);
    ram.write_u64(node + 16, next as u64);
    ram.write_u64(node + 24, 0);
}

/// Untimed key read.
pub fn raw_key(ram: &dyn MemBackend, node: Addr) -> Key {
    ram.read_u64(node) as u32
}

/// Untimed value read.
pub fn raw_value(ram: &dyn MemBackend, node: Addr) -> Value {
    ram.read_u64(node + 8) as u32
}

/// Untimed next-pointer read.
pub fn raw_next(ram: &dyn MemBackend, node: Addr) -> Addr {
    ram.read_u64(node + 16) as u32
}

/// Untimed read of a bucket head slot.
pub fn raw_head(ram: &dyn MemBackend, slot: Addr) -> Addr {
    ram.read_u64(slot) as u32
}

/// Untimed write of a bucket head slot.
pub fn raw_set_head(ram: &dyn MemBackend, slot: Addr, head: Addr) {
    ram.write_u64(slot, head as u64);
}

/// Untimed write of one packed directory routing word.
pub fn raw_set_route(ram: &dyn MemBackend, dir: Addr, bucket: u32, word: u64) {
    ram.write_u64(dir + bucket * 8, word);
}

// ---- timed (combiner execution) ----

/// Timed key read.
pub fn read_key(ctx: &mut ThreadCtx, node: Addr) -> Key {
    ctx.read_u64(node) as u32
}

/// Timed value read.
pub fn read_value(ctx: &mut ThreadCtx, node: Addr) -> Value {
    ctx.read_u64(node + 8) as u32
}

/// Timed value write.
pub fn write_value(ctx: &mut ThreadCtx, node: Addr, value: Value) {
    ctx.write_u64(node + 8, value as u64);
}

/// Timed next-pointer read.
pub fn read_next(ctx: &mut ThreadCtx, node: Addr) -> Addr {
    ctx.read_u64(node + 16) as u32
}

/// Timed next-pointer write.
pub fn write_next(ctx: &mut ThreadCtx, node: Addr, next: Addr) {
    ctx.write_u64(node + 16, next as u64);
}

/// Timed initialization of a freshly allocated node.
pub fn init_node(ctx: &mut ThreadCtx, node: Addr, key: Key, value: Value, next: Addr) {
    ctx.write_u64(node, key as u64);
    ctx.write_u64(node + 8, value as u64);
    ctx.write_u64(node + 16, next as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let ram = nmp_sim::SimRam::new(4096);
        raw_init(&ram, 64, 0xBEEF, 7, 0x120);
        assert_eq!(raw_key(&ram, 64), 0xBEEF);
        assert_eq!(raw_value(&ram, 64), 7);
        assert_eq!(raw_next(&ram, 64), 0x120);
    }

    #[test]
    fn node_fits_one_block() {
        assert_eq!(NODE_BYTES, 32);
        assert_eq!(128 % NODE_ALIGN, 0, "aligned nodes never straddle a block");
    }

    #[test]
    fn alloc_free_reuses() {
        let arena = Arena::new("test", 128, 1 << 14);
        let a = alloc_node(&arena);
        free_node(&arena, a);
        assert_eq!(alloc_node(&arena), a, "freelist reuse");
    }
}
