//! Exhaustive interleaving check of the two cross-thread-class word
//! protocols the structures rely on, in the style of `loom` but
//! hand-rolled (no dependencies): every schedule of two model threads is
//! enumerated by DFS, and each schedule is checked with the same
//! vector-clock happens-before rules as `nmp_sim::analysis::race`:
//!
//! * a cell becomes a *sync cell* the first time it sees an
//!   acquire/release access; sync loads join the thread clock with the
//!   cell clock, sync stores join the cell clock with the thread clock and
//!   bump the thread's epoch;
//! * plain accesses to data cells race when two threads touch the cell,
//!   at least one writes, and neither happens-before the other.
//!
//! Protocols under test:
//!
//! 1. the publication-list ctrl word (`publist.rs`): payload words are
//!    written plain, then the ctrl word is release-written; the other side
//!    acquire-reads ctrl until it observes the flag, then reads the
//!    payload plain — including the full round trip where the same slot
//!    words are reused for the response;
//! 2. the pqueue minima cells (`pqueue/cells.rs`): the packed
//!    key|present word *is* the sync cell — release-written by
//!    `refresh_cache`, acquire-read by `merge_step`.
//!
//! For each protocol a demoted variant (release downgraded to a plain
//! write, or the guard skipped) must race in at least one schedule —
//! establishing that the test can actually see the bug the annotations
//! prevent.
//!
//! Spinning is modeled exactly but boundedly: while a `SpinAcq` has not
//! observed its expected value, the scheduler may run it as a *failed
//! poll* — the acquire read happens (promoting the cell, joining clocks)
//! but the program counter does not advance — up to a fixed per-thread
//! poll budget, which keeps the schedule space finite while still
//! interleaving polls with the other thread's stores.

/// One model-thread instruction over a tiny cell-indexed memory.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Plain data write of `1` (values only matter for spin guards).
    Write(usize, u64),
    /// Release write.
    WriteRel(usize, u64),
    /// Plain data read.
    Read(usize),
    /// Acquire read (no guard).
    ReadAcq(usize),
    /// Acquire read that only executes once the cell holds `expected`.
    SpinAcq(usize, u64),
}

const THREADS: usize = 2;

/// Per-cell access history, as in `race.rs`: the last write plus the reads
/// since it, at most one per thread; `(tid, epoch)` pairs.
#[derive(Debug, Clone, Default)]
struct CellHistory {
    last_write: Option<(usize, u32)>,
    reads: Vec<(usize, u32)>,
}

/// Failed polls a spinning thread may issue before it parks until its
/// guard can succeed.
const POLL_BUDGET: u8 = 2;

#[derive(Debug, Clone)]
struct State {
    pcs: [usize; THREADS],
    mem: Vec<u64>,
    /// `Some(clock)` once the cell is promoted to a sync cell.
    sync: Vec<Option<[u32; THREADS]>>,
    vc: [[u32; THREADS]; THREADS],
    cells: Vec<CellHistory>,
    polls: [u8; THREADS],
    races: u32,
}

impl State {
    fn new(num_cells: usize) -> State {
        let mut vc = [[0u32; THREADS]; THREADS];
        for (t, clock) in vc.iter_mut().enumerate() {
            clock[t] = 1; // as after `on_sim_start`
        }
        State {
            pcs: [0; THREADS],
            mem: vec![0; num_cells],
            sync: vec![None; num_cells],
            vc,
            cells: vec![CellHistory::default(); num_cells],
            polls: [0; THREADS],
            races: 0,
        }
    }
}

fn join(into: &mut [u32; THREADS], other: &[u32; THREADS]) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// Apply one step for thread `tid`, mirroring `RaceDetector::on_access`.
fn apply(s: &mut State, tid: usize, step: Step) {
    let (c, is_write, is_sync_op, value) = match step {
        Step::Write(c, v) => (c, true, false, Some(v)),
        Step::WriteRel(c, v) => (c, true, true, Some(v)),
        Step::Read(c) => (c, false, false, None),
        Step::ReadAcq(c) | Step::SpinAcq(c, _) => (c, false, true, None),
    };

    // Promotion: the first annotated access makes the cell a sync cell and
    // drops its plain-access history.
    if is_sync_op && s.sync[c].is_none() {
        s.sync[c] = Some([0; THREADS]);
        s.cells[c] = CellHistory::default();
    }

    if let Some(clock) = &mut s.sync[c] {
        // Sync cell: loads acquire, stores release (plain or annotated).
        if is_write {
            join(clock, &s.vc[tid]);
            s.vc[tid][tid] += 1;
        } else {
            let clock = *clock;
            join(&mut s.vc[tid], &clock);
        }
    } else {
        // Plain access to a data cell: happens-before race check.
        let epoch = s.vc[tid][tid];
        let hist = &mut s.cells[c];
        if let Some((wt, we)) = hist.last_write {
            if wt != tid && s.vc[tid][wt] < we {
                s.races += 1;
            }
        }
        if is_write {
            for &(rt, re) in &hist.reads {
                if rt != tid && s.vc[tid][rt] < re {
                    s.races += 1;
                }
            }
            hist.last_write = Some((tid, epoch));
            hist.reads.clear();
        } else if let Some(slot) = hist.reads.iter_mut().find(|(rt, _)| *rt == tid) {
            *slot = (tid, epoch);
        } else {
            hist.reads.push((tid, epoch));
        }
    }

    if let Some(v) = value {
        s.mem[c] = v;
    }
}

/// How a thread may be scheduled next.
#[derive(Debug, Clone, Copy)]
enum Transition {
    /// Execute the step at the current pc and advance.
    Advance(usize),
    /// A `SpinAcq` whose guard is not yet satisfied performs the acquire
    /// read without advancing (bounded by [`POLL_BUDGET`]).
    FailedPoll(usize),
}

/// DFS over every schedule. Returns `(schedules, schedules_with_races)`.
fn explore(progs: [&[Step]; THREADS], num_cells: usize) -> (u64, u64) {
    fn rec(s: &State, progs: [&[Step]; THREADS], out: &mut (u64, u64)) {
        let mut enabled: Vec<Transition> = Vec::new();
        let mut parked = false;
        for (t, prog) in progs.iter().enumerate() {
            let pc = s.pcs[t];
            if pc >= prog.len() {
                continue;
            }
            match prog[pc] {
                Step::SpinAcq(c, want) if s.mem[c] != want => {
                    parked = true;
                    if s.polls[t] < POLL_BUDGET {
                        enabled.push(Transition::FailedPoll(t));
                    }
                }
                _ => enabled.push(Transition::Advance(t)),
            }
        }
        if enabled.is_empty() {
            // Spinners whose budget ran out with no thread able to unblock
            // them would show up here as a deadlock.
            assert!(!parked, "schedule deadlocked on a spin guard: {s:?}");
            for (t, prog) in progs.iter().enumerate() {
                assert_eq!(s.pcs[t], prog.len(), "schedule deadlocked in thread {t}: {s:?}");
            }
            out.0 += 1;
            out.1 += u64::from(s.races > 0);
            return;
        }
        for tr in enabled {
            let mut next = s.clone();
            match tr {
                Transition::Advance(t) => {
                    apply(&mut next, t, progs[t][s.pcs[t]]);
                    next.pcs[t] += 1;
                }
                Transition::FailedPoll(t) => {
                    let Step::SpinAcq(c, _) = progs[t][s.pcs[t]] else { unreachable!() };
                    apply(&mut next, t, Step::ReadAcq(c));
                    next.polls[t] += 1;
                }
            }
            rec(&next, progs, out);
        }
    }
    let mut out = (0, 0);
    rec(&State::new(num_cells), progs, &mut out);
    out
}

// Cell roles for the publication-list slot model.
const CTRL: usize = 0;
const W1: usize = 1;
const W2: usize = 2;

#[test]
fn publist_post_scan_protocol_is_race_free_in_all_schedules() {
    // Host `post`: payload plain, ctrl release. NMP `scan`: ctrl acquire
    // (spin), payload plain.
    let host = [Step::Write(W1, 1), Step::Write(W2, 1), Step::WriteRel(CTRL, 1)];
    let nmp = [Step::SpinAcq(CTRL, 1), Step::Read(W1), Step::Read(W2)];
    let (schedules, racy) = explore([&host, &nmp], 3);
    assert!(schedules > 1, "expected multiple schedules, got {schedules}");
    assert_eq!(racy, 0, "{racy} of {schedules} schedules raced");
}

#[test]
fn publist_full_round_trip_reusing_slot_words_is_race_free() {
    // The real slot protocol reuses the same words for the response: the
    // NMP side overwrites the payload words it just read and
    // release-writes DONE into ctrl; the host acquire-spins on ctrl and
    // reads the result words back.
    let host = [
        Step::Write(W1, 1),
        Step::Write(W2, 1),
        Step::WriteRel(CTRL, 1),
        Step::SpinAcq(CTRL, 2),
        Step::Read(W1),
        Step::Read(W2),
    ];
    let nmp = [
        Step::SpinAcq(CTRL, 1),
        Step::Read(W1),
        Step::Read(W2),
        Step::Write(W1, 2),
        Step::Write(W2, 2),
        Step::WriteRel(CTRL, 2),
    ];
    let (schedules, racy) = explore([&host, &nmp], 3);
    assert!(schedules > 1);
    assert_eq!(racy, 0, "{racy} of {schedules} schedules raced");
}

#[test]
fn publist_demoted_ctrl_release_races() {
    // Downgrade the host's ctrl release to a plain write: in schedules
    // where the NMP side's acquire promotes the ctrl cell only after the
    // plain write, no happens-before edge covers the payload words.
    let host = [Step::Write(W1, 1), Step::Write(W2, 1), Step::Write(CTRL, 1)];
    let nmp = [Step::SpinAcq(CTRL, 1), Step::Read(W1), Step::Read(W2)];
    let (schedules, racy) = explore([&host, &nmp], 3);
    assert!(racy > 0, "demoted release should race in some of the {schedules} schedules");
}

#[test]
fn publist_unguarded_payload_read_races() {
    // Reading the payload without waiting on ctrl races even though the
    // ctrl word itself is properly release/acquire.
    let host = [Step::Write(W1, 1), Step::Write(W2, 1), Step::WriteRel(CTRL, 1)];
    let nmp = [Step::Read(W1), Step::Read(W2), Step::ReadAcq(CTRL)];
    let (schedules, racy) = explore([&host, &nmp], 3);
    assert!(racy > 0, "unguarded reads should race in some of the {schedules} schedules");
}

#[test]
fn pqueue_minima_cell_is_race_free_in_all_schedules() {
    // `refresh_cache` release-writes the packed key|present word;
    // `merge_step` acquire-reads it. The word is its own sync cell, so
    // repeated refreshes against repeated merges never race.
    let refresher = [Step::WriteRel(0, 7), Step::WriteRel(0, 9)];
    let merger = [Step::ReadAcq(0), Step::ReadAcq(0)];
    let (schedules, racy) = explore([&refresher, &merger], 1);
    assert!(schedules > 1);
    assert_eq!(racy, 0, "{racy} of {schedules} schedules raced");
}

#[test]
fn pqueue_minima_cell_demoted_to_plain_races() {
    let refresher = [Step::Write(0, 7)];
    let merger = [Step::Read(0)];
    let (schedules, racy) = explore([&refresher, &merger], 1);
    assert_eq!(racy, schedules, "plain write vs plain read races in every schedule");
}
