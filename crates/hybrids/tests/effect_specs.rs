//! Smoke test: every structure's declared access plan passes static
//! verification against its machine's topology with ZERO simulation
//! cycles — no `Simulation` is ever built here, only the specs are
//! inspected. This is the registration-time guarantee (`spawn_services`
//! calls `register_effect_spec`, which panics on a bad plan before any
//! cycle runs) exercised directly for all six structures.

use std::sync::Arc;

use hybrids::api::SimIndex;
use hybrids::btree::{HostBTree, HybridBTree};
use hybrids::hashmap::HybridHashMap;
use hybrids::pqueue::HybridPqueue;
use hybrids::publist::OpCode;
use hybrids::skiplist::{HybridSkipList, NmpSkipList};
use hybrids::topology;
use nmp_sim::analysis::verify_spec;
use nmp_sim::{Config, EffectSpec, Machine};
use workloads::KeySpace;

fn keyspace() -> KeySpace {
    KeySpace::new(256, 2, 64)
}

/// Verify `spec` against `machine` and assert it covers exactly `ops`.
fn assert_plan(machine: &Machine, spec: &EffectSpec, name: &str, ops: &[OpCode]) {
    let errs = verify_spec(spec, topology(machine));
    assert!(errs.is_empty(), "{name}: {errs:?}");
    for &op in ops {
        assert!(spec.op_spec(op as u8).is_some(), "{name}: spec is missing op {op:?}");
    }
}

#[test]
fn all_six_structures_ship_verified_specs() {
    let ks = keyspace();
    let initial: Vec<(u32, u32)> = (0..64).map(|i| (ks.initial_key(i), 1)).collect();
    let point_ops = [OpCode::Read, OpCode::Update, OpCode::Insert, OpCode::Remove];

    let m = Machine::new(Config::tiny());
    let sl = NmpSkipList::new(Arc::clone(&m), ks, 8, 3, 1);
    assert_plan(&m, &sl.effect_spec(), "nmp-skiplist", &point_ops);
    assert_plan(&m, &sl.effect_spec(), "nmp-skiplist", &[OpCode::Scan]);

    let m = Machine::new(Config::tiny());
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 3, 1);
    assert_plan(&m, &sl.effect_spec(), "hybrid-skiplist", &point_ops);
    assert_plan(&m, &sl.effect_spec(), "hybrid-skiplist", &[OpCode::Scan]);

    let m = Machine::new(Config::tiny());
    let t = HybridBTree::with_budget(Arc::clone(&m), &initial, 0.7, 2, 2 * 1024);
    assert_plan(
        &m,
        &t.effect_spec(),
        "hybrid-btree",
        &[
            OpCode::Read,
            OpCode::Update,
            OpCode::Insert,
            OpCode::Remove,
            OpCode::Scan,
            OpCode::ResumeInsert,
            OpCode::UnlockPath,
        ],
    );

    let m = Machine::new(Config::tiny());
    let t = HostBTree::new(Arc::clone(&m), &initial, 0.7);
    assert_plan(&m, &t.effect_spec(), "host-btree", &point_ops);

    let m = Machine::new(Config::tiny());
    let hm = HybridHashMap::new(Arc::clone(&m), 64, 99, 1);
    assert_plan(&m, &hm.effect_spec(), "hybrid-hashmap", &point_ops);

    let m = Machine::new(Config::tiny());
    let pq = HybridPqueue::new(Arc::clone(&m), ks, 8, 5, 1);
    assert_plan(&m, &pq.effect_spec(), "hybrid-pqueue", &[OpCode::Insert, OpCode::PopMin]);
}

/// The merged (host + NMP) spec is what registration verifies: for the
/// offloading structures both thread classes must appear, with the
/// publication-list protocol on each side.
#[test]
fn offloading_specs_declare_both_protocol_halves() {
    use nmp_sim::analysis::{RegionClass, ThreadClass};

    let m = Machine::new(Config::tiny());
    let hm = HybridHashMap::new(Arc::clone(&m), 64, 99, 1);
    let spec = hm.effect_spec();
    for class in [ThreadClass::Host, ThreadClass::Nmp] {
        assert!(
            spec.all_decls(class).any(|d| d.region == RegionClass::Spad),
            "hybrid-hashmap: {class:?} side must declare the publication-list channel"
        );
    }
}
