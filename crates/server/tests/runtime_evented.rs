//! End-to-end tests for the evented connection runtime: real sockets on
//! loopback against a real server, exercising exactly the properties the
//! reactor exists to provide — slow-loris tolerance, write backpressure,
//! idle eviction, graceful drain, and byte-identical behavior with the
//! blocking runtime.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hybrids_server::proto::{self, Command};
use hybrids_server::ttl::EXPTIME_PIVOT;
use hybrids_server::{Clock, EventedOpts, RuntimeKind, Server, ServerOpts};

/// Evented server on an ephemeral port with test-friendly tuning.
fn evented_server(evented: EventedOpts, clock: Clock) -> Server {
    Server::start(&ServerOpts {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        buckets: 256,
        max_inflight: 2,
        seed: 42,
        runtime: RuntimeKind::Evented,
        evented,
        clock,
    })
    .expect("bind loopback")
}

fn shut_down(addr: std::net::SocketAddr) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&proto::encode_request(&Command::Shutdown)).unwrap();
    let mut buf = [0u8; 16];
    let _ = s.read(&mut buf);
}

fn read_exactly(s: &mut TcpStream, want: usize) -> Vec<u8> {
    let mut out = vec![0u8; want];
    s.read_exact(&mut out).expect("full response");
    out
}

/// Read until EOF (the server closed the connection).
fn read_to_eof(s: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read to EOF");
    out
}

#[test]
fn evented_pipelined_round_trip_is_byte_exact() {
    let server = evented_server(EventedOpts::default(), Clock::System);
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    wire.extend_from_slice(&proto::encode_request(&Command::Set {
        key: 10,
        value: 7,
        exptime: 0,
        noreply: false,
    }));
    wire.extend_from_slice(&proto::encode_request(&Command::Set {
        key: 11,
        value: 900,
        exptime: 0,
        noreply: true,
    }));
    wire.extend_from_slice(&proto::encode_request(&Command::Get(vec![10, 11, 12])));
    wire.extend_from_slice(&proto::encode_request(&Command::Delete { key: 10, noreply: false }));
    wire.extend_from_slice(&proto::encode_request(&Command::Get(vec![10])));
    s.write_all(&wire).unwrap();

    let mut want = Vec::new();
    want.extend_from_slice(proto::encode_stored());
    want.extend_from_slice(&proto::encode_get(&[(10, 7), (11, 900)]));
    want.extend_from_slice(proto::encode_deleted());
    want.extend_from_slice(&proto::encode_get(&[]));

    let got = read_exactly(&mut s, want.len());
    assert_eq!(got, want, "wire bytes differ from reference encoding");
    drop(s);

    shut_down(addr);
    let (map, counters) = server.wait();
    map.check_invariants();
    assert_eq!(map.collect(), vec![(11, 900)]);
    assert_eq!(counters.get_hits.load(Ordering::Relaxed), 2);
    assert_eq!(counters.get_misses.load(Ordering::Relaxed), 2);
}

/// Run one scripted conversation (ending in `quit`) against a fresh
/// server of the given runtime and return every byte the server sent.
fn converse(runtime: RuntimeKind, wire: &[u8]) -> Vec<u8> {
    // Start well past EXPTIME_PIVOT so an `exptime` of PIVOT+1 (an
    // absolute unix timestamp) is already in the past.
    let (clock, _) = Clock::manual(100_000_000);
    let server = Server::start(&ServerOpts {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        buckets: 256,
        max_inflight: 2,
        seed: 42,
        runtime,
        evented: EventedOpts::default(),
        clock,
    })
    .expect("bind loopback");
    let addr = server.addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(wire).unwrap();
    let got = read_to_eof(&mut s);
    drop(s);
    shut_down(addr);
    server.wait();
    got
}

#[test]
fn blocking_and_evented_answer_identical_streams_identically() {
    // A stream touching every response path: stored, noreply, multi-get
    // hits and misses, an immediately-expired set (absolute past
    // exptime), deletes both ways, a recoverable protocol error, and a
    // trailing quit so the server closes the connection.
    let mut wire = Vec::new();
    for cmd in [
        Command::Set { key: 1, value: 11, exptime: 0, noreply: false },
        Command::Set { key: 2, value: 22, exptime: 0, noreply: true },
        Command::Set { key: 3, value: 33, exptime: EXPTIME_PIVOT + 1, noreply: false },
        Command::Get(vec![1, 2, 3, 4]),
        Command::Delete { key: 1, noreply: false },
        Command::Delete { key: 9, noreply: false },
    ] {
        wire.extend_from_slice(&proto::encode_request(&cmd));
    }
    wire.extend_from_slice(b"bogus\r\n");
    wire.extend_from_slice(&proto::encode_request(&Command::Get(vec![2])));
    wire.extend_from_slice(&proto::encode_request(&Command::Quit));

    let blocking = converse(RuntimeKind::Blocking, &wire);
    let evented = converse(RuntimeKind::Evented, &wire);
    assert!(!blocking.is_empty());
    assert_eq!(
        String::from_utf8_lossy(&blocking),
        String::from_utf8_lossy(&evented),
        "runtimes disagree on an identical request stream"
    );
    // And both saw the expired key as a miss: key 3's get found it dead.
    assert!(String::from_utf8_lossy(&blocking).contains("VALUE 1 0"));
    assert!(!String::from_utf8_lossy(&blocking).contains("VALUE 3"));
}

#[test]
fn slow_loris_single_bytes_still_parse() {
    let server = evented_server(EventedOpts::default(), Clock::System);
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    // Drip a set and a get one byte at a time across ~100 writes.
    for b in b"set 5 0 0 2\r\n37\r\nget 5\r\n" {
        s.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut want = Vec::new();
    want.extend_from_slice(proto::encode_stored());
    want.extend_from_slice(&proto::encode_get(&[(5, 37)]));
    let got = read_exactly(&mut s, want.len());
    assert_eq!(got, want);
    drop(s);

    shut_down(addr);
    server.wait();
}

#[test]
fn non_draining_reader_trips_backpressure_without_unbounded_buffering() {
    // Tiny write-queue watermarks so the test trips them quickly, and a
    // capped SO_SNDBUF so the kernel (which otherwise auto-tunes socket
    // buffers to many MB and absorbs the whole backlog itself) hands the
    // pressure to userspace.
    let opts = EventedOpts {
        wq_high: 1024,
        wq_low: 256,
        sock_sndbuf: Some(16 * 1024),
        ..EventedOpts::default()
    };
    let server = evented_server(opts, Clock::System);
    let addr = server.addr();
    let counters = server.counters();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"set 7 0 0 3\r\n123\r\n").unwrap();
    assert_eq!(read_exactly(&mut s, 8), b"STORED\r\n");

    // A writer thread pipelines gets and never reads a byte back. Kernel
    // socket buffers absorb the first chunk of responses, so the volume
    // needed to hit the userspace high-water mark is discovered at run
    // time rather than hard-coded: keep writing until the server parks
    // read interest on this connection.
    const BATCH: usize = 512;
    const MAX_BATCHES: usize = 64; // hard cap ≈ 32K gets / ~750 KB of responses
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicUsize::new(0));
    let writer = {
        let mut s = s.try_clone().unwrap();
        let stop = Arc::clone(&stop);
        let sent = Arc::clone(&sent);
        std::thread::spawn(move || {
            let batch = b"get 7\r\n".repeat(BATCH);
            for _ in 0..MAX_BATCHES {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                s.write_all(&batch).unwrap();
                sent.fetch_add(BATCH, Ordering::Release);
            }
        })
    };

    let trip_deadline = Instant::now() + Duration::from_secs(30);
    while counters.backpressure_pauses.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < trip_deadline, "a non-draining reader never parked read interest");
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Release);

    // Drain. Reading un-wedges the writer if its last `write_all` is
    // blocked; it then sees `stop` and exits. Every response must arrive
    // intact and in order: the stream is a strict repetition of RESP, so
    // each received byte is checked against its expected phase.
    const RESP: &[u8] = b"VALUE 7 0 3\r\n123\r\nEND\r\n";
    s.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    let mut last_progress = Instant::now();
    let mut got = 0usize;
    let mut buf = vec![0u8; 1 << 16];
    loop {
        if writer.is_finished() && got == sent.load(Ordering::Acquire) * RESP.len() {
            break;
        }
        assert!(
            last_progress.elapsed() < Duration::from_secs(10),
            "drain stalled: {got} bytes received"
        );
        match s.read(&mut buf) {
            Ok(0) => panic!("server closed the connection mid-drain"),
            Ok(n) => {
                for (i, &b) in buf[..n].iter().enumerate() {
                    assert_eq!(
                        b,
                        RESP[(got + i) % RESP.len()],
                        "response stream corrupted at byte {}",
                        got + i
                    );
                }
                got += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => panic!("drain read failed: {e}"),
        }
    }
    writer.join().expect("writer thread panicked");
    drop(s);

    shut_down(addr);
    let (_, counters) = server.wait();
    assert!(
        counters.backpressure_pauses.load(Ordering::Relaxed) > 0,
        "a non-draining reader never parked read interest"
    );
}

#[test]
fn idle_connections_are_evicted_by_the_timer_wheel() {
    let opts = EventedOpts { idle_timeout_ms: 150, tick_ms: 10, ..EventedOpts::default() };
    let server = evented_server(opts, Clock::System);
    let addr = server.addr();

    // An active exchange keeps the connection alive…
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.write_all(b"get 1\r\n").unwrap();
    read_exactly(&mut idle, b"END\r\n".len());

    // …then going quiet gets it closed by the wheel, seen as EOF.
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 16];
    let n = idle.read(&mut buf).expect("server should close, not error");
    assert_eq!(n, 0, "expected EOF from idle eviction");
    assert!(start.elapsed() >= Duration::from_millis(100), "evicted suspiciously fast");
    drop(idle);

    shut_down(addr);
    let (_, counters) = server.wait();
    assert!(counters.idle_evicted.load(Ordering::Relaxed) >= 1);
}

#[test]
fn graceful_shutdown_quiesces_in_flight_requests() {
    let server = evented_server(EventedOpts::default(), Clock::System);
    let addr = server.addr();

    // Client A pipelines work and deliberately does not read yet.
    let mut a = TcpStream::connect(addr).unwrap();
    a.write_all(b"set 4 0 0 2\r\n55\r\n").unwrap();
    let n_gets = 200usize;
    let mut burst = Vec::new();
    for _ in 0..n_gets {
        burst.extend_from_slice(b"get 4\r\n");
    }
    a.write_all(&burst).unwrap();
    // Let the reactor ingest A's burst before shutdown stops reads.
    std::thread::sleep(Duration::from_millis(300));

    // Client B asks the server to shut down.
    let mut b = TcpStream::connect(addr).unwrap();
    b.write_all(&proto::encode_request(&Command::Shutdown)).unwrap();
    let ok = read_to_eof(&mut b);
    assert_eq!(ok, b"OK\r\n", "shutdown is acknowledged then the conn closes");

    // A still receives every response it was owed, then EOF.
    let mut want = Vec::new();
    want.extend_from_slice(proto::encode_stored());
    for _ in 0..n_gets {
        want.extend_from_slice(&proto::encode_get(&[(4, 55)]));
    }
    a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let got = read_to_eof(&mut a);
    assert_eq!(got, want, "in-flight responses were dropped by shutdown");

    let (map, counters) = server.wait();
    map.check_invariants();
    assert_eq!(counters.get_hits.load(Ordering::Relaxed), n_gets as u64);
}

#[test]
fn exptime_expires_lazily_under_manual_clock() {
    let (clock, cell) = Clock::manual(1_000_000);
    let server = evented_server(EventedOpts::default(), clock);
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    // Relative exptime: dies 5 seconds after the set.
    s.write_all(b"set 6 0 5 2\r\n99\r\nget 6\r\n").unwrap();
    let mut want = Vec::new();
    want.extend_from_slice(proto::encode_stored());
    want.extend_from_slice(&proto::encode_get(&[(6, 99)]));
    assert_eq!(read_exactly(&mut s, want.len()), want, "alive before expiry");

    cell.store(1_000_005, Ordering::Release);
    s.write_all(b"get 6\r\n").unwrap();
    let miss = proto::encode_get(&[]);
    assert_eq!(read_exactly(&mut s, miss.len()), miss, "dead at the boundary second");
    drop(s);

    shut_down(addr);
    let (map, counters) = server.wait();
    assert_eq!(counters.serve_expired.load(Ordering::Relaxed), 1);
    // The lazy expiry really removed the key from the map.
    assert!(map.collect().is_empty());
}

#[test]
fn poll_fallback_backend_serves_identically() {
    let opts = EventedOpts { poller: hybrids_server::PollerKind::Poll, ..EventedOpts::default() };
    let server = evented_server(opts, Clock::System);
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"set 8 0 0 1\r\n4\r\nget 8\r\n").unwrap();
    let mut want = Vec::new();
    want.extend_from_slice(proto::encode_stored());
    want.extend_from_slice(&proto::encode_get(&[(8, 4)]));
    assert_eq!(read_exactly(&mut s, want.len()), want);
    drop(s);

    shut_down(addr);
    server.wait();
}
