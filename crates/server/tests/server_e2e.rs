//! End-to-end tests: a real `hybrids-server` on loopback, driven over
//! real sockets.
//!
//! These are the executable form of the quickstart: start the server on
//! an ephemeral port, speak the wire protocol at it (byte-exact against
//! the reference encoders), run the load generator, shut down, inspect
//! the surviving map.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;

use hybrids_server::loadgen::{self, LoadgenOpts};
use hybrids_server::proto::{self, Command};
use hybrids_server::{Server, ServerOpts};
use workloads::{CacheMix, KeyDist};

fn test_server() -> Server {
    Server::start(&ServerOpts {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        buckets: 256,
        max_inflight: 2,
        seed: 42,
        ..ServerOpts::default()
    })
    .expect("bind loopback")
}

/// Send `shutdown` so `Server::wait` can join.
fn shut_down(addr: std::net::SocketAddr) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&proto::encode_request(&Command::Shutdown)).unwrap();
    let mut buf = [0u8; 16];
    let _ = s.read(&mut buf);
}

/// Read until the connection has produced `want` bytes (responses arrive
/// in one or more TCP segments).
fn read_exactly(s: &mut TcpStream, want: usize) -> Vec<u8> {
    let mut out = vec![0u8; want];
    s.read_exact(&mut out).expect("full response");
    out
}

#[test]
fn pipelined_round_trip_is_byte_exact() {
    let server = test_server();
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    // One write carrying a whole pipelined conversation.
    let mut wire = Vec::new();
    wire.extend_from_slice(&proto::encode_request(&Command::Set {
        key: 10,
        value: 7,
        exptime: 0,
        noreply: false,
    }));
    wire.extend_from_slice(&proto::encode_request(&Command::Set {
        key: 11,
        value: 900,
        exptime: 0,
        noreply: true,
    }));
    wire.extend_from_slice(&proto::encode_request(&Command::Get(vec![10, 11, 12])));
    wire.extend_from_slice(&proto::encode_request(&Command::Delete { key: 10, noreply: false }));
    wire.extend_from_slice(&proto::encode_request(&Command::Delete { key: 12, noreply: false }));
    wire.extend_from_slice(&proto::encode_request(&Command::Get(vec![10])));
    s.write_all(&wire).unwrap();

    // Expected bytes, straight from the reference encoders.
    let mut want = Vec::new();
    want.extend_from_slice(proto::encode_stored());
    want.extend_from_slice(&proto::encode_get(&[(10, 7), (11, 900)]));
    want.extend_from_slice(proto::encode_deleted());
    want.extend_from_slice(proto::encode_not_found());
    want.extend_from_slice(&proto::encode_get(&[]));

    let got = read_exactly(&mut s, want.len());
    assert_eq!(got, want, "wire bytes differ from reference encoding");
    drop(s);

    shut_down(addr);
    let (map, counters) = server.wait();
    map.check_invariants();
    assert_eq!(map.collect(), vec![(11, 900)]);
    assert_eq!(counters.get_hits.load(Ordering::Relaxed), 2);
    assert_eq!(counters.get_misses.load(Ordering::Relaxed), 2);
}

#[test]
fn malformed_input_gets_errors_not_hangups() {
    let server = test_server();
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"frobnicate\r\nget zero\r\nset 1 0 0 1\r\n7\r\nget 1\r\n").unwrap();
    let mut want = Vec::new();
    want.extend_from_slice(&proto::encode_error_line("ERROR"));
    want.extend_from_slice(&proto::encode_error_line("CLIENT_ERROR bad key"));
    want.extend_from_slice(proto::encode_stored());
    want.extend_from_slice(&proto::encode_get(&[(1, 7)]));
    let got = read_exactly(&mut s, want.len());
    assert_eq!(got, want);
    drop(s);

    shut_down(addr);
    let (map, counters) = server.wait();
    map.check_invariants();
    assert_eq!(counters.proto_errors.load(Ordering::Relaxed), 2);
}

#[test]
fn loadgen_mixed_run_produces_report() {
    let server = test_server();
    let addr = server.addr();

    let opts = LoadgenOpts {
        addr: addr.to_string(),
        conns: 2,
        per_conn: 300,
        seed: 7,
        mix: CacheMix::new(60, 30, 10),
        dist: KeyDist::Uniform,
        keys: 512,
        preload: true,
        shutdown: true,
        rate: None,
        client_threads: 0,
        pipeline: 1,
        starve_timeout_ms: 250,
    };
    let report = loadgen::run(&opts).expect("loadgen run");
    assert_eq!(report.total_ops, 600);
    assert_eq!(report.backend, "native");
    assert_eq!(report.mix, "60-30-10");
    assert_eq!(report.mode, "closed");
    assert!(report.ops_per_sec > 0.0);
    assert!(report.p50_us > 0.0 && report.p50_us <= report.p95_us);
    assert!(report.p95_us <= report.p99_us);
    // Preload makes most gets hit (deletes erode a few keys).
    assert!(report.get_hits > report.get_misses, "{report:?}");

    let (map, counters) = server.wait();
    map.check_invariants();
    assert!(counters.sets.load(Ordering::Relaxed) >= 512, "preload counted");
    // The served state is a coherent map: every surviving key has a
    // nonzero value and keys are unique.
    let contents = map.collect();
    let mut keys: Vec<u32> = contents.iter().map(|(k, _)| *k).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), contents.len(), "duplicate keys in chains");
}

#[test]
fn loadgen_open_loop_paces_arrivals_and_reports() {
    let server = test_server();
    let addr = server.addr();

    let opts = LoadgenOpts {
        addr: addr.to_string(),
        conns: 2,
        per_conn: 200,
        seed: 11,
        mix: CacheMix::new(80, 15, 5),
        dist: KeyDist::Uniform,
        keys: 256,
        preload: true,
        shutdown: true,
        // 4000 req/s total over 2 conns -> 2000/s each; 200 requests
        // per conn means the schedule spans exactly 100 ms.
        rate: Some(4_000),
        client_threads: 0,
        pipeline: 1,
        starve_timeout_ms: 250,
    };
    let t0 = std::time::Instant::now();
    let report = loadgen::run(&opts).expect("open-loop run");
    assert_eq!(report.total_ops, 400);
    assert_eq!(report.mode, "open");
    assert_eq!(report.offered_rate, Some(4_000));
    // Paced arrivals: the run cannot finish before the schedule does.
    assert!(t0.elapsed() >= std::time::Duration::from_millis(95), "arrivals were not paced");
    assert!(report.p50_us > 0.0 && report.p50_us <= report.p99_us);

    let (map, _) = server.wait();
    map.check_invariants();
}

#[test]
fn loadgen_muxed_client_matches_thread_per_conn_totals() {
    // The muxed client holds every connection open for the whole run, so
    // the server must multiplex them: evented runtime (a blocking server
    // would need workers >= conns or the surplus connections starve).
    let server = Server::start(&ServerOpts {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        buckets: 256,
        max_inflight: 2,
        seed: 42,
        runtime: hybrids_server::RuntimeKind::Evented,
        ..ServerOpts::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    // 8 connections driven by 2 client threads, lockstep closed loop.
    let opts = LoadgenOpts {
        addr: addr.to_string(),
        conns: 8,
        per_conn: 100,
        seed: 7,
        mix: CacheMix::new(60, 30, 10),
        dist: KeyDist::Uniform,
        keys: 512,
        preload: true,
        shutdown: true,
        rate: None,
        client_threads: 2,
        pipeline: 2,
        starve_timeout_ms: 250,
    };
    let report = loadgen::run(&opts).expect("muxed loadgen run");
    assert_eq!(report.total_ops, 800, "every connection's stream fully served");
    assert_eq!(report.mode, "closed");
    assert!(report.ops_per_sec > 0.0);
    assert!(report.get_hits > 0, "{report:?}");

    let (map, _) = server.wait();
    map.check_invariants();
}

#[test]
fn conn_scaling_sweep_produces_schema_complete_report() {
    use hybrids_server::sweep::{self, SweepOpts};

    // Deliberately tiny: this validates the harness and the BENCH_10
    // schema, not the headline numbers.
    let report = sweep::run(&SweepOpts {
        conn_counts: vec![2, 4],
        total_ops: 200,
        keys: 256,
        seed: 42,
        evented_workers: 2,
        rate: None,
        client_threads: 2,
        pipeline: 2,
    })
    .expect("sweep run");
    assert_eq!(report.experiment, "conn_scaling");
    assert_eq!(report.pr, 10);
    assert_eq!(report.points.len(), 4, "two conn counts x two runtimes");
    for p in &report.points {
        assert!(p.ops_per_sec > 0.0, "{p:?}");
        assert!(p.total_ops > 0, "{p:?}");
        assert!(p.p50_us <= p.p95_us && p.p95_us <= p.p99_us, "{p:?}");
    }
    let s = &report.summary;
    assert_eq!(s.conns, 4);
    assert_eq!(s.blocking_workers, 4, "blocking runs thread-per-connection");
    assert_eq!(s.evented_workers, 2);
    assert!(s.evented_vs_blocking > 0.0);
}
