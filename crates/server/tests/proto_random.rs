//! Randomized protocol-parser tests, in the repo's seeded-xorshift
//! idiom (no proptest): every case is a pure function of a fixed seed,
//! so failures replay exactly.
//!
//! Three properties:
//!
//! * **fragmentation-independence** — a valid pipelined command sequence
//!   parses to the same commands no matter how the byte stream is split
//!   into `push` fragments;
//! * **no panics on garbage** — arbitrary byte soup (and truncated valid
//!   frames) never panics the parser and always terminates;
//! * **reference-encoder round trip** — `encode_request` output is the
//!   parser's fixed point.

use hybrids_server::proto::{encode_request, Command, Parsed, Parser};
use workloads::Rng;

/// Random well-formed command (keys nonzero, values arbitrary).
fn random_command(rng: &mut Rng) -> Command {
    match rng.below(5) {
        0 => {
            let n = 1 + rng.below(4) as usize;
            Command::Get((0..n).map(|_| rng.next_u32().max(1)).collect())
        }
        1 => Command::Set {
            key: rng.next_u32().max(1),
            value: rng.next_u32(),
            exptime: if rng.below(4) == 0 { rng.next_u32() } else { 0 },
            noreply: rng.below(4) == 0,
        },
        2 => Command::Delete { key: rng.next_u32().max(1), noreply: rng.below(4) == 0 },
        3 => Command::Quit,
        _ => Command::Shutdown,
    }
}

/// Split `wire` into random fragments and feed them through a parser,
/// draining after every fragment (interleaves push and next arbitrarily).
fn parse_fragmented(wire: &[u8], rng: &mut Rng) -> Vec<Parsed> {
    let mut parser = Parser::new();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < wire.len() {
        let take = 1 + rng.below(17) as usize;
        let end = (pos + take).min(wire.len());
        parser.push(&wire[pos..end]);
        pos = end;
        out.extend(parser.by_ref());
    }
    out.extend(parser.by_ref());
    out
}

#[test]
fn fragmentation_never_changes_the_parse() {
    let root = Rng::new(0x9e37_79b9_7f4a_7c15);
    for round in 0..200u64 {
        let mut rng = root.fork(round);
        let cmds: Vec<Command> = (0..1 + rng.below(12)).map(|_| random_command(&mut rng)).collect();
        let mut wire = Vec::new();
        for c in &cmds {
            wire.extend_from_slice(&encode_request(c));
        }
        // Parse whole-buffer once as the reference…
        let mut whole = Parser::new();
        whole.push(&wire);
        let mut reference = Vec::new();
        reference.extend(whole.by_ref());
        assert_eq!(
            reference,
            cmds.iter().map(|c| Parsed::Cmd(c.clone())).collect::<Vec<_>>(),
            "round {round}: whole-buffer parse lost commands"
        );
        // …then three random fragmentations must agree byte-for-byte.
        for split_try in 0..3u64 {
            let mut frag_rng = root.fork(round * 31 + split_try + 1_000_000);
            let got = parse_fragmented(&wire, &mut frag_rng);
            assert_eq!(got, reference, "round {round} split {split_try}");
        }
    }
}

#[test]
fn garbage_never_panics_and_always_terminates() {
    let root = Rng::new(0xdead_beef_cafe_f00d);
    for round in 0..300u64 {
        let mut rng = root.fork(round);
        let len = rng.below(600) as usize;
        let mut wire: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        // Salt with protocol tokens so some rounds reach deep parse paths.
        for _ in 0..rng.below(4) {
            let tok: &[u8] = match rng.below(6) {
                0 => b"get ",
                1 => b"set ",
                2 => b"delete ",
                3 => b"\r\n",
                4 => b" noreply",
                _ => b"0 0 ",
            };
            let at = if wire.is_empty() { 0 } else { rng.below(wire.len() as u64) as usize };
            wire.splice(at..at, tok.iter().copied());
        }
        let mut steps = parse_fragmented(&wire, &mut rng).len();
        // Truncated valid frames: a real command cut mid-line must simply
        // wait for more bytes, not loop or panic.
        let cmd_wire = encode_request(&random_command(&mut rng));
        let cut = rng.below(cmd_wire.len() as u64) as usize;
        let mut p = Parser::new();
        p.push(&cmd_wire[..cut]);
        for _ in p.by_ref() {
            steps += 1;
            assert!(steps < 10_000, "parser failed to terminate");
        }
    }
}

#[test]
fn noise_between_valid_commands_is_survivable() {
    // A valid command following a malformed (non-fatal) line must still
    // parse: the parser resynchronizes at line boundaries.
    let root = Rng::new(42);
    for round in 0..100u64 {
        let mut rng = root.fork(round);
        let good =
            Command::Set { key: 5, value: 1 + rng.next_u32() % 100, exptime: 0, noreply: false };
        let mut wire = Vec::new();
        let noise_len = rng.below(40) as usize;
        let mut noise: Vec<u8> =
            (0..noise_len).map(|_| b' ' + (rng.next_u32() % 90) as u8).collect();
        noise.retain(|b| *b != b'\r');
        wire.extend_from_slice(&noise);
        wire.extend_from_slice(b"\r\n");
        wire.extend_from_slice(&encode_request(&good));
        let mut parser = Parser::new();
        parser.push(&wire);
        let mut got = Vec::new();
        got.extend(parser.by_ref());
        let last = got.last().expect("something parsed");
        assert_eq!(
            last,
            &Parsed::Cmd(good),
            "round {round}: command after noise line lost (noise {:?})",
            String::from_utf8_lossy(&noise)
        );
    }
}
