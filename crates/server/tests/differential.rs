//! Sim-vs-native differential tests: the same workload replayed through
//! `HybridHashMap` on the cycle-accurate simulator and on the native
//! backend must produce identical logical outcomes — per-operation
//! results and final map contents.
//!
//! The simulator is the correctness oracle (races, region policy,
//! linearizability run there); these tests pin the native backend to it.
//! Multi-threaded streams use per-thread disjoint key ranges so the
//! logical outcome is independent of interleaving — any divergence is a
//! backend bug, not scheduling noise.

use std::sync::Arc;

use hybrids::hashmap::HybridHashMap;
use hybrids::{OpResult, SimIndex};
use nmp_sim::{Config, Machine, ThreadKind};
use parking_lot::Mutex;
use workloads::{Key, Op, Rng, Value};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 400;

/// Deterministic op stream confined to keys `[base, base + span)`.
fn stream(seed: u64, base: Key, span: u32, len: usize) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..len)
        .map(|_| {
            let key = base + rng.below(span as u64) as Key;
            let value: Value = rng.next_u32() | 1;
            match rng.below(100) {
                0..=39 => Op::Read(key),
                40..=69 => Op::Insert(key, value),
                70..=84 => Op::Update(key, value),
                _ => Op::Remove(key),
            }
        })
        .collect()
}

/// A logical-thread body runnable on either engine.
type ThreadBody = Box<dyn FnOnce(&mut nmp_sim::ThreadCtx) + Send>;

/// Replay `streams[t]` on thread `t`; returns per-thread results and the
/// final sorted contents.
fn replay(native: bool, streams: &[Vec<Op>]) -> (Vec<Vec<OpResult>>, Vec<(Key, Value)>) {
    let cfg = Config::tiny();
    let machine = if native { Machine::new_native(cfg) } else { Machine::new(cfg) };
    let map = HybridHashMap::new(Arc::clone(&machine), 64, 42, 2);
    let results: Arc<Vec<Mutex<Vec<OpResult>>>> =
        Arc::new((0..streams.len()).map(|_| Mutex::new(Vec::new())).collect());

    let mut bodies: Vec<ThreadBody> = Vec::new();
    for (t, ops) in streams.iter().enumerate() {
        let map = Arc::clone(&map);
        let results = Arc::clone(&results);
        let ops = ops.clone();
        bodies.push(Box::new(move |ctx| {
            let mut out = Vec::with_capacity(ops.len());
            for op in ops {
                out.push(map.execute(ctx, op));
            }
            *results[t].lock() = out;
        }));
    }

    if native {
        let mut run = machine.native_run();
        map.spawn_services_on(&mut run);
        for (t, body) in bodies.into_iter().enumerate() {
            run.spawn(format!("h{t}"), ThreadKind::Host { core: t }, body);
        }
        run.finish();
    } else {
        let mut sim = machine.simulation();
        map.spawn_services_on(&mut sim);
        for (t, body) in bodies.into_iter().enumerate() {
            sim.spawn(format!("h{t}"), ThreadKind::Host { core: t }, body);
        }
        sim.run();
    }

    map.check_invariants();
    let mut contents = map.collect();
    contents.sort_unstable();
    let per_thread = results.iter().map(|m| m.lock().clone()).collect();
    (per_thread, contents)
}

#[test]
fn disjoint_multithread_outcomes_match() {
    // Each thread owns a private key range: outcomes are
    // interleaving-independent, so sim and native must agree exactly.
    let streams: Vec<Vec<Op>> = (0..THREADS)
        .map(|t| stream(0xC0FFEE + t as u64, 1 + 10_000 * t as Key, 64, OPS_PER_THREAD))
        .collect();
    let (sim_results, sim_contents) = replay(false, &streams);
    let (nat_results, nat_contents) = replay(true, &streams);
    for t in 0..THREADS {
        assert_eq!(
            sim_results[t], nat_results[t],
            "thread {t}: op results diverge between sim and native"
        );
    }
    assert_eq!(sim_contents, nat_contents, "final contents diverge");
    assert!(!sim_contents.is_empty(), "workload should leave residue");
}

#[test]
fn single_thread_full_mix_matches() {
    // One thread, one shared key range: the complete serial history must
    // agree op-for-op.
    let streams = vec![stream(7, 1, 512, 2_000)];
    let (sim_results, sim_contents) = replay(false, &streams);
    let (nat_results, nat_contents) = replay(true, &streams);
    assert_eq!(sim_results, nat_results);
    assert_eq!(sim_contents, nat_contents);
    // Sanity: the mix exercised every outcome class.
    let flat = &sim_results[0];
    assert!(flat.iter().any(|r| r.ok));
    assert!(flat.iter().any(|r| !r.ok));
}

#[test]
fn native_replay_is_self_consistent() {
    // The native backend is not deterministic in timing, but a
    // disjoint-key workload's logical outcome must be stable run to run.
    let streams: Vec<Vec<Op>> =
        (0..THREADS).map(|t| stream(99 + t as u64, 1 + 4_096 * t as Key, 32, 200)).collect();
    let (r1, c1) = replay(true, &streams);
    let (r2, c2) = replay(true, &streams);
    assert_eq!(r1, r2);
    assert_eq!(c1, c2);
}
