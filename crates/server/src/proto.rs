//! Memcached text protocol: incremental command parser and response
//! encoders.
//!
//! The wire dialect is the classic memcached text protocol restricted to
//! the verbs the cache front end serves — `get` (multi-key), `set`,
//! `delete`, `quit` — plus a `shutdown` extension used by CI to tear the
//! server down cleanly. Keys and values are decimal `u32` renderings
//! (the structures under the cache store 4-byte keys and values, §3.2 of
//! the paper); anything else is rejected with `CLIENT_ERROR`, never a
//! panic.
//!
//! [`Parser`] is incremental: bytes arrive in arbitrary fragments
//! ([`Parser::push`]) and complete commands are drained with
//! [`Parser::next`], which buffers partial frames (a command line split
//! mid-token, a `set` data block still in flight) until enough bytes
//! arrive. Pipelined input — many commands in one TCP segment — drains as
//! many commands as are complete.
//!
//! The free `encode_*` functions are the *reference encoders*: the server
//! builds every response through them, and the randomized protocol tests
//! hold the server's output byte-equal to them.

use workloads::{Key, Value};

/// Longest accepted command line (bytes, excluding the `\r\n`). Real
/// memcached keys cap at 250 bytes; our keys are ≤ 10 digits, so this is
/// generous while still bounding memory for garbage input.
pub const MAX_LINE: usize = 1024;

/// Longest accepted `set` data block: ten digits render any `u32`.
pub const MAX_DATA: usize = 10;

/// One complete, well-formed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get <key>+` — look up one or more keys.
    Get(Vec<Key>),
    /// `set <key> <flags> <exptime> <bytes>\r\n<data>` — store (insert or
    /// overwrite). Flags are accepted and ignored; `exptime` follows
    /// memcached semantics (0 = never, ≤ 30 days = relative seconds,
    /// larger = absolute unix time) and is honored by the TTL table.
    Set {
        /// Key to store under.
        key: Key,
        /// Value parsed from the data block.
        value: Value,
        /// Raw expiry field from the command line (memcached encoding).
        exptime: u32,
        /// Suppress the `STORED` reply.
        noreply: bool,
    },
    /// `delete <key>` — remove if present.
    Delete {
        /// Key to remove.
        key: Key,
        /// Suppress the reply.
        noreply: bool,
    },
    /// `quit` — close this connection.
    Quit,
    /// `shutdown` — stop the whole server (CI teardown extension).
    Shutdown,
}

/// One parser step: a command, a protocol error to report, or
/// "need more bytes".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A complete well-formed command.
    Cmd(Command),
    /// A protocol error; `line` is the full error response line (without
    /// terminator). `fatal` errors desynchronize framing — the server
    /// sends the line and closes the connection.
    Error {
        /// Response line, e.g. `CLIENT_ERROR bad key`.
        line: String,
        /// Whether the connection can no longer be framed reliably.
        fatal: bool,
    },
}

fn client_error(msg: &str) -> Parsed {
    Parsed::Error { line: format!("CLIENT_ERROR {msg}"), fatal: false }
}

/// Incremental frame parser with partial-frame buffering.
#[derive(Debug, Default)]
pub struct Parser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so draining pipelined
    /// input is amortized O(bytes).
    start: usize,
}

impl Parser {
    /// Fresh parser with an empty buffer.
    pub fn new() -> Self {
        Parser::default()
    }

    /// Append raw bytes received from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    fn next_frame(&mut self) -> Option<Parsed> {
        let rest = &self.buf[self.start..];
        let Some(eol) = find_crlf(rest) else {
            if rest.len() > MAX_LINE {
                // No terminator within any legal line length: framing is
                // gone for good.
                self.start = self.buf.len();
                return Some(Parsed::Error {
                    line: "CLIENT_ERROR line too long".into(),
                    fatal: true,
                });
            }
            return None;
        };
        let line = &rest[..eol];
        if line.len() > MAX_LINE {
            self.start += eol + 2;
            return Some(client_error("line too long"));
        }
        let Ok(line_str) = std::str::from_utf8(line) else {
            self.start += eol + 2;
            return Some(client_error("line is not utf-8"));
        };
        let words: Vec<&str> = line_str.split_ascii_whitespace().collect();
        let after_line = self.start + eol + 2;
        match words.first().copied() {
            None => {
                // Blank line: skip silently (tolerates trailing CRLF from
                // sloppy clients).
                self.start = after_line;
                self.next()
            }
            Some("get") | Some("gets") => {
                self.start = after_line;
                if words.len() < 2 {
                    return Some(client_error("get needs at least one key"));
                }
                let mut keys = Vec::with_capacity(words.len() - 1);
                for w in &words[1..] {
                    match parse_key(w) {
                        Some(k) => keys.push(k),
                        None => return Some(client_error("bad key")),
                    }
                }
                Some(Parsed::Cmd(Command::Get(keys)))
            }
            Some("set") => {
                if !(5..=6).contains(&words.len()) {
                    self.start = after_line;
                    return Some(client_error("set needs <key> <flags> <exptime> <bytes>"));
                }
                let noreply = words.len() == 6;
                if noreply && words[5] != "noreply" {
                    self.start = after_line;
                    return Some(client_error("bad set flags"));
                }
                let key = parse_key(words[1]);
                let exptime = words[3].parse::<u32>().ok();
                let meta_ok = words[2].parse::<u32>().is_ok() && exptime.is_some();
                let Some(len) = words[4].parse::<usize>().ok().filter(|l| *l <= MAX_DATA) else {
                    self.start = after_line;
                    return Some(client_error("bad data length"));
                };
                // The data block (len bytes + CRLF) must be buffered before
                // the frame completes.
                let need = after_line + len + 2;
                if self.buf.len() < need {
                    return None;
                }
                let data = &self.buf[after_line..after_line + len];
                let terminated = &self.buf[after_line + len..need] == b"\r\n";
                let value = std::str::from_utf8(data).ok().and_then(|s| s.parse::<u32>().ok());
                self.start = need;
                if !terminated {
                    // Data block ran over its declared length: resync by
                    // dropping through the declared frame, report the error.
                    return Some(client_error("bad data chunk"));
                }
                let (Some(key), true, Some(value)) = (key, meta_ok, value) else {
                    return Some(client_error(if key.is_none() {
                        "bad key"
                    } else if !meta_ok {
                        "bad flags/exptime"
                    } else {
                        "bad data chunk"
                    }));
                };
                Some(Parsed::Cmd(Command::Set {
                    key,
                    value,
                    exptime: exptime.unwrap_or(0),
                    noreply,
                }))
            }
            Some("delete") => {
                self.start = after_line;
                if !(2..=3).contains(&words.len()) {
                    return Some(client_error("delete needs one key"));
                }
                let noreply = words.len() == 3;
                if noreply && words[2] != "noreply" {
                    return Some(client_error("bad delete flags"));
                }
                match parse_key(words[1]) {
                    Some(key) => Some(Parsed::Cmd(Command::Delete { key, noreply })),
                    None => Some(client_error("bad key")),
                }
            }
            Some("quit") => {
                self.start = after_line;
                Some(Parsed::Cmd(Command::Quit))
            }
            Some("shutdown") => {
                self.start = after_line;
                Some(Parsed::Cmd(Command::Shutdown))
            }
            Some(_) => {
                self.start = after_line;
                Some(Parsed::Error { line: "ERROR".into(), fatal: false })
            }
        }
    }
}

impl Iterator for Parser {
    type Item = Parsed;

    /// Drain the next complete command, if the buffer holds one.
    /// `None` means "need more bytes", not exhaustion — [`Parser::push`]
    /// more input and resume iterating.
    fn next(&mut self) -> Option<Parsed> {
        self.next_frame()
    }
}

/// Keys are nonzero decimal `u32` (key 0 is reserved across the repo's
/// key spaces).
fn parse_key(w: &str) -> Option<Key> {
    w.parse::<u32>().ok().filter(|k| *k != 0)
}

fn find_crlf(b: &[u8]) -> Option<usize> {
    b.windows(2).position(|w| w == b"\r\n")
}

// ---------------------------------------------------------------------------
// Reference response encoders
// ---------------------------------------------------------------------------

/// `get` response: one `VALUE` stanza per hit (misses are silently
/// omitted, as in memcached), then `END`.
pub fn encode_get(hits: &[(Key, Value)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in hits {
        let data = v.to_string();
        out.extend_from_slice(format!("VALUE {k} 0 {}\r\n{data}\r\n", data.len()).as_bytes());
    }
    out.extend_from_slice(b"END\r\n");
    out
}

/// `set` success reply.
pub fn encode_stored() -> &'static [u8] {
    b"STORED\r\n"
}

/// `delete` hit reply.
pub fn encode_deleted() -> &'static [u8] {
    b"DELETED\r\n"
}

/// `delete` miss reply.
pub fn encode_not_found() -> &'static [u8] {
    b"NOT_FOUND\r\n"
}

/// `shutdown` acknowledgement.
pub fn encode_ok() -> &'static [u8] {
    b"OK\r\n"
}

/// An error line (from [`Parsed::Error`]) as wire bytes.
pub fn encode_error_line(line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(line.len() + 2);
    out.extend_from_slice(line.as_bytes());
    out.extend_from_slice(b"\r\n");
    out
}

/// Encode a request as a client would send it (the loadgen's and the
/// tests' wire writer).
pub fn encode_request(cmd: &Command) -> Vec<u8> {
    match cmd {
        Command::Get(keys) => {
            let mut out = b"get".to_vec();
            for k in keys {
                out.extend_from_slice(format!(" {k}").as_bytes());
            }
            out.extend_from_slice(b"\r\n");
            out
        }
        Command::Set { key, value, exptime, noreply } => {
            let data = value.to_string();
            let tail = if *noreply { " noreply" } else { "" };
            format!("set {key} 0 {exptime} {}{tail}\r\n{data}\r\n", data.len()).into_bytes()
        }
        Command::Delete { key, noreply } => {
            let tail = if *noreply { " noreply" } else { "" };
            format!("delete {key}{tail}\r\n").into_bytes()
        }
        Command::Quit => b"quit\r\n".to_vec(),
        Command::Shutdown => b"shutdown\r\n".to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut Parser) -> Vec<Parsed> {
        p.by_ref().collect()
    }

    #[test]
    fn parses_basic_commands() {
        let mut p = Parser::new();
        p.push(b"get 17\r\nset 5 0 0 2\r\n42\r\ndelete 5\r\nquit\r\nshutdown\r\n");
        assert_eq!(
            drain(&mut p),
            vec![
                Parsed::Cmd(Command::Get(vec![17])),
                Parsed::Cmd(Command::Set { key: 5, value: 42, exptime: 0, noreply: false }),
                Parsed::Cmd(Command::Delete { key: 5, noreply: false }),
                Parsed::Cmd(Command::Quit),
                Parsed::Cmd(Command::Shutdown),
            ]
        );
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn multi_key_get_and_noreply() {
        let mut p = Parser::new();
        p.push(b"get 1 2 3\r\nset 9 1 2 1 noreply\r\n7\r\ndelete 9 noreply\r\n");
        assert_eq!(
            drain(&mut p),
            vec![
                Parsed::Cmd(Command::Get(vec![1, 2, 3])),
                Parsed::Cmd(Command::Set { key: 9, value: 7, exptime: 2, noreply: true }),
                Parsed::Cmd(Command::Delete { key: 9, noreply: true }),
            ]
        );
    }

    #[test]
    fn partial_frames_buffer_until_complete() {
        let mut p = Parser::new();
        p.push(b"se");
        assert_eq!(p.next(), None);
        p.push(b"t 5 0 0 3\r\n1");
        assert_eq!(p.next(), None, "data block incomplete");
        p.push(b"23\r");
        assert_eq!(p.next(), None, "terminator incomplete");
        p.push(b"\n");
        assert_eq!(
            p.next(),
            Some(Parsed::Cmd(Command::Set { key: 5, value: 123, exptime: 0, noreply: false }))
        );
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        let cases: &[(&[u8], &str)] = &[
            (b"get\r\n", "CLIENT_ERROR get needs at least one key"),
            (b"get zero\r\n", "CLIENT_ERROR bad key"),
            (b"get 0\r\n", "CLIENT_ERROR bad key"),
            (b"set 1 0 0\r\n", "CLIENT_ERROR set needs <key> <flags> <exptime> <bytes>"),
            (b"set 1 0 0 99\r\n", "CLIENT_ERROR bad data length"),
            (b"set x 0 0 1\r\n2\r\n", "CLIENT_ERROR bad key"),
            (b"set 1 y 0 1\r\n2\r\n", "CLIENT_ERROR bad flags/exptime"),
            (b"set 1 0 0 2\r\nzz\r\n", "CLIENT_ERROR bad data chunk"),
            (b"delete\r\n", "CLIENT_ERROR delete needs one key"),
            (b"delete 1 2\r\n", "CLIENT_ERROR bad delete flags"),
            (b"frobnicate 12\r\n", "ERROR"),
        ];
        for (bytes, want) in cases {
            let mut p = Parser::new();
            p.push(bytes);
            match p.next() {
                Some(Parsed::Error { line, fatal }) => {
                    assert_eq!(&line, want, "input {:?}", String::from_utf8_lossy(bytes));
                    assert!(!fatal);
                }
                other => panic!("expected error for {bytes:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn overlong_data_resyncs_at_declared_length() {
        let mut p = Parser::new();
        // Declared 2 bytes but the block holds 3: the third byte is left
        // in the stream and breaks the next frame boundary — exactly how
        // memcached treats it ("bad data chunk", resync at declared len).
        p.push(b"set 1 0 0 2\r\n123\r\nget 1\r\n");
        assert!(matches!(p.next(), Some(Parsed::Error { fatal: false, .. })));
    }

    #[test]
    fn unterminated_garbage_is_fatal() {
        let mut p = Parser::new();
        p.push(&vec![b'x'; MAX_LINE + 100]);
        match p.next() {
            Some(Parsed::Error { fatal, .. }) => assert!(fatal),
            other => panic!("expected fatal error, got {other:?}"),
        }
    }

    #[test]
    fn encoders_roundtrip_requests() {
        let cmds = vec![
            Command::Get(vec![1, 77, 4_000_000_000]),
            Command::Set { key: 8, value: 0, exptime: 0, noreply: false },
            Command::Set { key: u32::MAX, value: u32::MAX, exptime: u32::MAX, noreply: true },
            Command::Delete { key: 3, noreply: true },
            Command::Quit,
            Command::Shutdown,
        ];
        let mut wire = Vec::new();
        for c in &cmds {
            wire.extend_from_slice(&encode_request(c));
        }
        let mut p = Parser::new();
        p.push(&wire);
        let parsed = drain(&mut p);
        assert_eq!(parsed.len(), cmds.len());
        for (got, want) in parsed.iter().zip(&cmds) {
            assert_eq!(got, &Parsed::Cmd(want.clone()));
        }
    }

    #[test]
    fn get_response_shape() {
        assert_eq!(encode_get(&[]), b"END\r\n");
        assert_eq!(
            encode_get(&[(7, 123), (9, 5)]),
            b"VALUE 7 0 3\r\n123\r\nVALUE 9 0 1\r\n5\r\nEND\r\n"
        );
    }
}
