//! Connection runtimes for `hybrids-server`.
//!
//! The server can drive its sockets two ways:
//!
//! * **blocking** — the original thread-per-connection topology: an
//!   acceptor feeds an mpsc channel; each worker (a host thread of the
//!   native machine) owns one connection at a time, blocking on its
//!   socket. Simple, and kept as the differential baseline.
//! * **evented** — M reactor threads multiplex thousands of connections
//!   over `epoll` (or `poll`), parse requests into a shared work queue,
//!   and N native-machine workers execute them against the map and post
//!   responses back to the owning reactor. Connections outnumber threads
//!   by orders of magnitude; a worker never blocks on a slow peer.
//!
//! Both runtimes execute requests through the same
//! [`Service`] layer, so for an identical request
//! stream they produce byte-identical responses — the differential tests
//! hold the runtimes to that.

pub mod conn;
pub mod poller;
pub mod reactor;
pub mod sys;
pub mod timer;

pub use conn::ConnCfg;
pub use poller::PollerKind;
pub use reactor::{Completion, ConnToken, ReactorCfg, ReactorHandle, WorkItem, WorkQueue};

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nmp_sim::{NativeRun, ThreadCtx, ThreadKind};

use crate::service::Service;

use reactor::Reactor;

/// Which connection runtime drives the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// Thread-per-connection (the original topology).
    #[default]
    Blocking,
    /// Reactor-multiplexed connections over epoll/poll.
    Evented,
}

impl RuntimeKind {
    /// Parse a `--runtime` flag value.
    pub fn parse(s: &str) -> Option<RuntimeKind> {
        match s {
            "blocking" => Some(RuntimeKind::Blocking),
            "evented" => Some(RuntimeKind::Evented),
            _ => None,
        }
    }
}

/// Evented-runtime tuning (all fields have serviceable defaults).
#[derive(Debug, Clone, Copy)]
pub struct EventedOpts {
    /// Reactor (event-loop) threads.
    pub reactors: usize,
    /// Close connections idle longer than this.
    pub idle_timeout_ms: u64,
    /// Graceful-shutdown drain budget before force-closing.
    pub drain_ms: u64,
    /// Per-connection unsent-backlog high-water mark (parks reads).
    pub wq_high: usize,
    /// Per-connection backlog low-water mark (resumes reads).
    pub wq_low: usize,
    /// Maximum dispatched-but-unanswered requests per connection.
    pub max_inflight_per_conn: usize,
    /// Readiness backend.
    pub poller: PollerKind,
    /// Reactor tick (poll timeout / timer resolution), in milliseconds.
    pub tick_ms: u64,
    /// Cap each accepted socket's kernel send buffer (`SO_SNDBUF`);
    /// `None` keeps the kernel default.
    pub sock_sndbuf: Option<usize>,
}

impl Default for EventedOpts {
    fn default() -> Self {
        EventedOpts {
            reactors: 2,
            idle_timeout_ms: 60_000,
            drain_ms: 5_000,
            wq_high: 256 * 1024,
            wq_low: 64 * 1024,
            max_inflight_per_conn: 1024,
            poller: PollerKind::Epoll,
            tick_ms: 20,
            sock_sndbuf: None,
        }
    }
}

impl EventedOpts {
    fn reactor_cfg(&self) -> ReactorCfg {
        ReactorCfg {
            conn: ConnCfg {
                wq_high: self.wq_high,
                wq_low: self.wq_low,
                max_inflight: self.max_inflight_per_conn,
            },
            idle_timeout_ms: self.idle_timeout_ms,
            drain_ms: self.drain_ms,
            tick_ms: self.tick_ms,
            sock_sndbuf: self.sock_sndbuf,
        }
    }
}

/// Thread handles of a started evented runtime (joined by
/// [`crate::server::Server::wait`]).
pub(crate) struct Evented {
    pub(crate) acceptor: JoinHandle<()>,
    pub(crate) reactors: Vec<JoinHandle<()>>,
    pub(crate) queues: Arc<Vec<WorkQueue>>,
}

impl Evented {
    /// Join everything in dependency order: acceptor (exits on the
    /// shutdown flag), then reactors (exit once drained — workers are
    /// still alive here, so in-flight responses complete), then close the
    /// queues so workers drain and exit. The caller finishes the native
    /// run afterwards.
    pub(crate) fn join(self) {
        self.acceptor.join().expect("acceptor panicked");
        for r in self.reactors {
            r.join().expect("reactor panicked");
        }
        for q in self.queues.iter() {
            q.close();
        }
    }
}

/// Wire up reactors, workers, and the acceptor for the evented runtime.
pub(crate) fn start_evented(
    listener: TcpListener,
    service: Arc<Service>,
    run: &mut NativeRun,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    opts: &EventedOpts,
) -> io::Result<Evented> {
    assert!(opts.reactors >= 1, "need at least one reactor");
    // One FIFO queue per worker: connections are pinned to a queue so
    // their requests execute in order (see `reactor::sticky_queue`).
    let queues: Arc<Vec<WorkQueue>> = Arc::new((0..workers).map(|_| WorkQueue::new()).collect());
    let cfg = opts.reactor_cfg();

    let mut handles = Vec::with_capacity(opts.reactors);
    let mut reactors = Vec::with_capacity(opts.reactors);
    for id in 0..opts.reactors {
        let (reactor, handle) = Reactor::new(
            id as u16,
            opts.poller,
            cfg,
            Arc::clone(&queues),
            Arc::clone(&service.counters),
            Arc::clone(&shutdown),
        )?;
        handles.push(handle);
        reactors.push(
            std::thread::Builder::new()
                .name(format!("reactor-{id}"))
                .spawn(move || reactor.run())
                .expect("spawn reactor"),
        );
    }

    let handles = Arc::new(handles);
    for core in 0..workers {
        let service = Arc::clone(&service);
        let queues = Arc::clone(&queues);
        let handles = Arc::clone(&handles);
        run.spawn(format!("conn-{core}"), ThreadKind::Host { core }, move |ctx| {
            worker_loop(ctx, &service, &queues[core], &handles);
        });
    }

    let acceptor = {
        let handles = Arc::clone(&handles);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("acceptor".into())
            .spawn(move || accept_loop(listener, &handles, &shutdown))
            .expect("spawn acceptor")
    };

    Ok(Evented { acceptor, reactors, queues })
}

/// Accept until shutdown, spreading connections round-robin over the
/// reactors. Bursts are accepted back-to-back so a connection ramp (the
/// 512-conn benchmark) isn't throttled by the idle sleep.
fn accept_loop(listener: TcpListener, handles: &[ReactorHandle], shutdown: &AtomicBool) {
    let mut next = 0usize;
    while !shutdown.load(Ordering::Acquire) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    handles[next % handles.len()].inject(stream);
                    next += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A native-machine worker: pop from this worker's own queue, execute
/// against the map, post the response back to the connection's reactor.
fn worker_loop(
    ctx: &mut ThreadCtx,
    service: &Service,
    queue: &WorkQueue,
    handles: &[ReactorHandle],
) {
    while let Some(item) = queue.pop() {
        let mut out = Vec::new();
        service.execute(ctx, &item.cmd, &mut out);
        handles[item.token.reactor as usize].complete(Completion {
            token: item.token,
            seq: item.seq,
            bytes: out,
        });
    }
}
