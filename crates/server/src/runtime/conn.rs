//! Per-connection state machine for the evented runtime.
//!
//! A [`Conn`] owns one socket's entire lifecycle: bytes in → parsed
//! frames → dispatched requests → **ordered** response slots → write
//! buffer → bytes out, with partial writes resumed wherever the kernel
//! left off. It is generic over `Read + Write` so the whole machine is
//! unit-testable against scripted in-memory streams, `WouldBlock`s and
//! all.
//!
//! # Ordering
//!
//! Responses must leave in request order even though workers complete
//! requests in any order. Each dispatched request takes the next sequence
//! number and an empty slot in a ring; [`Conn::complete`] fills the slot,
//! and the pump appends slots to the write buffer only in sequence order.
//! Inline responses (protocol errors, `shutdown`'s `OK`) go through the
//! same slots so they interleave correctly with in-flight requests.
//!
//! # Backpressure
//!
//! A peer that sends requests but never reads responses would otherwise
//! grow the write buffer without bound. When the unsent backlog crosses
//! `wq_high` the connection *parks its read interest* — already-parsed
//! frames still execute (bounded by `max_inflight`), but no new bytes are
//! read until the backlog drains below `wq_low` (hysteresis, so interest
//! doesn't flap on every write). Worst-case memory per connection is
//! therefore `wq_high` + one read round of responses, not "whatever the
//! peer pipelined".

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use crate::proto::{self, Command, Parsed, Parser};

/// Tuning knobs for a connection's buffers and limits.
#[derive(Debug, Clone, Copy)]
pub struct ConnCfg {
    /// Park read interest when the unsent write backlog reaches this.
    pub wq_high: usize,
    /// Resume reading once the backlog drains to this.
    pub wq_low: usize,
    /// Maximum dispatched-but-unanswered requests per connection.
    pub max_inflight: usize,
}

impl Default for ConnCfg {
    fn default() -> Self {
        ConnCfg { wq_high: 256 * 1024, wq_low: 64 * 1024, max_inflight: 1024 }
    }
}

/// Connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Reading and serving.
    Open,
    /// No more reads; drain in-flight responses, then close.
    Closing,
}

/// What a read round observed, beyond frames dispatched.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReadOutcome {
    /// The peer sent `shutdown` — the whole server should begin draining.
    pub shutdown: bool,
}

/// One connection's state machine. `S` is the transport (a non-blocking
/// `TcpStream` in production, a scripted mock in tests).
pub struct Conn<S> {
    stream: S,
    parser: Parser,
    /// Response slots for dispatched requests, indexed by
    /// `seq - head_seq`. `None` = still in flight.
    slots: VecDeque<Option<Vec<u8>>>,
    /// Sequence number of `slots[0]`.
    head_seq: u64,
    /// Sequence number the next dispatched request will take.
    next_seq: u64,
    /// Bytes queued to the peer; `wbuf[wpos..]` is unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    state: ConnState,
    /// Read interest parked by backpressure.
    paused: bool,
    /// Number of pause transitions not yet harvested by the reactor.
    pause_events: u64,
    /// Protocol errors not yet harvested by the reactor.
    proto_errors: u64,
    /// Reactor tick of the last read or write activity (for the idle
    /// wheel's lazy reinsertion).
    pub last_active: u64,
    cfg: ConnCfg,
}

impl<S: Read + Write> Conn<S> {
    /// Wrap a transport (already non-blocking in production).
    pub fn new(stream: S, cfg: ConnCfg) -> Self {
        Conn {
            stream,
            parser: Parser::new(),
            slots: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            wbuf: Vec::new(),
            wpos: 0,
            state: ConnState::Open,
            paused: false,
            pause_events: 0,
            proto_errors: 0,
            last_active: 0,
            cfg,
        }
    }

    /// Shared reference to the transport (for `deregister`/shutdown).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Read available bytes, drain every complete frame, and push
    /// dispatchable requests as `(seq, cmd)` onto `dispatch`. Inline
    /// responses (errors, `quit`, `shutdown`) are slotted directly.
    /// `Err` means the transport failed and the conn must be torn down.
    pub fn on_readable(&mut self, dispatch: &mut Vec<(u64, Command)>) -> io::Result<ReadOutcome> {
        let mut outcome = ReadOutcome::default();
        let mut buf = [0u8; 4096];
        // Read and parse ONE CHUNK AT A TIME, re-checking the inflight
        // cap between chunks. Parsing must interleave with reading: the
        // cap is enforced by frames dispatched, so reading everything
        // first would let a fast pipeliner blow arbitrarily far past it
        // in a single readiness round. Interleaved, overshoot is bounded
        // by the frames of one 4 KiB chunk.
        while self.state == ConnState::Open && self.inflight() < self.cfg.max_inflight {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.state = ConnState::Closing;
                    break;
                }
                Ok(n) => {
                    self.parser.push(&buf[..n]);
                    self.drain_parser(dispatch, &mut outcome);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Every byte read above was parsed right after its read, so at
        // this point the parser holds at most a partial frame — there is
        // nothing left to drain. (After `quit` the rest of the buffer is
        // deliberately ignored.)
        self.pump();
        Ok(outcome)
    }

    /// Drain every complete frame currently buffered in the parser.
    fn drain_parser(&mut self, dispatch: &mut Vec<(u64, Command)>, outcome: &mut ReadOutcome) {
        while let Some(parsed) = self.parser.next() {
            match parsed {
                Parsed::Cmd(Command::Quit) => {
                    // Pipelined requests before the quit still get their
                    // responses; we just stop reading.
                    self.state = ConnState::Closing;
                    break;
                }
                Parsed::Cmd(Command::Shutdown) => {
                    let seq = self.alloc_slot();
                    self.fill_slot(seq, proto::encode_ok().to_vec());
                    outcome.shutdown = true;
                    self.state = ConnState::Closing;
                    break;
                }
                Parsed::Cmd(cmd) => {
                    let seq = self.alloc_slot();
                    dispatch.push((seq, cmd));
                }
                Parsed::Error { line, fatal } => {
                    self.proto_errors += 1;
                    let seq = self.alloc_slot();
                    self.fill_slot(seq, proto::encode_error_line(&line));
                    if fatal {
                        self.state = ConnState::Closing;
                        break;
                    }
                }
            }
        }
    }

    /// Deliver the response bytes for request `seq` (from a worker or an
    /// inline path) and pump any newly-in-order slots to the write buffer.
    pub fn complete(&mut self, seq: u64, bytes: Vec<u8>) {
        self.fill_slot(seq, bytes);
        self.pump();
    }

    /// Write as much of the backlog as the kernel will take. Returns
    /// `Ok(true)` if the backlog is now empty.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer gone")),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        self.recheck_pressure();
        Ok(self.wpos == self.wbuf.len())
    }

    /// Requests dispatched (or slotted inline) but not yet pumped out.
    pub fn inflight(&self) -> usize {
        self.slots.len()
    }

    /// Whether the reactor should keep read interest on this socket.
    pub fn wants_read(&self) -> bool {
        self.state == ConnState::Open && !self.paused && self.inflight() < self.cfg.max_inflight
    }

    /// Whether unsent response bytes are queued.
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Whether every accepted request has been answered and flushed.
    pub fn is_drained(&self) -> bool {
        self.slots.is_empty() && !self.wants_write()
    }

    /// Whether the connection is done: closing and fully drained.
    pub fn should_close(&self) -> bool {
        self.state == ConnState::Closing && self.is_drained()
    }

    /// Stop reading (graceful-shutdown draining); in-flight responses
    /// still go out.
    pub fn begin_close(&mut self) {
        self.state = ConnState::Closing;
    }

    /// Harvest backpressure pause transitions since the last call.
    pub fn take_pause_events(&mut self) -> u64 {
        std::mem::take(&mut self.pause_events)
    }

    /// Harvest protocol-error counts since the last call.
    pub fn take_proto_errors(&mut self) -> u64 {
        std::mem::take(&mut self.proto_errors)
    }

    fn alloc_slot(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(None);
        seq
    }

    fn fill_slot(&mut self, seq: u64, bytes: Vec<u8>) {
        let idx = (seq - self.head_seq) as usize;
        debug_assert!(self.slots[idx].is_none(), "response {seq} delivered twice");
        self.slots[idx] = Some(bytes);
    }

    /// Move every in-order completed slot into the write buffer.
    fn pump(&mut self) {
        while let Some(Some(_)) = self.slots.front() {
            let bytes = self.slots.pop_front().unwrap().unwrap();
            self.head_seq += 1;
            self.wbuf.extend_from_slice(&bytes);
        }
        self.recheck_pressure();
    }

    /// Hysteresis on the unsent backlog: park reads at `wq_high`, resume
    /// at `wq_low`.
    fn recheck_pressure(&mut self) {
        let backlog = self.wbuf.len() - self.wpos;
        if !self.paused && backlog >= self.cfg.wq_high {
            self.paused = true;
            self.pause_events += 1;
        } else if self.paused && backlog <= self.cfg.wq_low {
            self.paused = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque as Script;

    /// A scripted transport: reads pop from `input` (empty = WouldBlock),
    /// writes append to `written` until the kernel-buffer `write_budget`
    /// depletes, then report `WouldBlock` (as a full socket buffer would).
    struct Mock {
        input: Script<Vec<u8>>,
        written: Vec<u8>,
        write_budget: usize,
    }

    impl Mock {
        fn new() -> Self {
            Mock { input: Script::new(), written: Vec::new(), write_budget: usize::MAX }
        }

        fn feed(&mut self, bytes: &[u8]) {
            self.input.push_back(bytes.to_vec());
        }
    }

    impl Read for Mock {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.input.pop_front() {
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.input.push_front(chunk[n..].to_vec());
                    }
                    Ok(n)
                }
                None => Err(io::ErrorKind::WouldBlock.into()),
            }
        }
    }

    impl Write for Mock {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.write_budget);
            if n == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            if self.write_budget != usize::MAX {
                self.write_budget -= n;
            }
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn conn(cfg: ConnCfg) -> Conn<Mock> {
        Conn::new(Mock::new(), cfg)
    }

    #[test]
    fn out_of_order_completions_flush_in_request_order() {
        let mut c = conn(ConnCfg::default());
        c.stream.feed(b"get 1\r\nget 2\r\nget 3\r\n");
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        assert_eq!(dispatch.len(), 3);
        // Workers answer 2, 0, 1 — the wire must still say 0, 1, 2.
        c.complete(dispatch[2].0, b"C".to_vec());
        assert!(!c.wants_write(), "seq 2 must wait for 0 and 1");
        c.complete(dispatch[0].0, b"A".to_vec());
        c.complete(dispatch[1].0, b"B".to_vec());
        c.flush().unwrap();
        assert_eq!(c.stream.written, b"ABC");
        assert!(c.is_drained());
    }

    #[test]
    fn slow_loris_partial_frames_assemble_across_reads() {
        let mut c = conn(ConnCfg::default());
        let mut dispatch = Vec::new();
        // One byte at a time, across separate readiness rounds.
        for chunk in [&b"ge"[..], b"t 7", b"\r", b"\n"] {
            c.stream.feed(chunk);
            c.on_readable(&mut dispatch).unwrap();
        }
        assert_eq!(dispatch.len(), 1);
        assert!(matches!(dispatch[0].1, Command::Get(ref k) if k == &vec![7]));
    }

    #[test]
    fn partial_writes_resume_where_they_stopped() {
        let mut c = conn(ConnCfg::default());
        c.stream.feed(b"get 5\r\n");
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        c.complete(dispatch[0].0, b"0123456789".to_vec());
        c.stream.write_budget = 3;
        assert!(!c.flush().unwrap());
        assert_eq!(c.stream.written, b"012");
        c.stream.write_budget = 4;
        assert!(!c.flush().unwrap());
        assert_eq!(c.stream.written, b"0123456");
        c.stream.write_budget = usize::MAX;
        assert!(c.flush().unwrap());
        assert_eq!(c.stream.written, b"0123456789");
    }

    #[test]
    fn backpressure_parks_reads_with_hysteresis() {
        let mut c = conn(ConnCfg { wq_high: 10, wq_low: 3, max_inflight: 64 });
        c.stream.feed(b"get 1\r\n");
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        c.stream.write_budget = 0; // peer not draining
        c.complete(dispatch[0].0, vec![b'x'; 12]);
        assert!(!c.wants_read(), "backlog over high-water parks reads");
        assert_eq!(c.take_pause_events(), 1);
        // Draining to above low-water is not enough to resume…
        c.stream.write_budget = 5;
        c.flush().unwrap();
        assert!(!c.wants_read(), "hysteresis: 7 > wq_low");
        // …but below it is.
        c.stream.write_budget = usize::MAX;
        c.flush().unwrap();
        assert!(c.wants_read());
        assert_eq!(c.take_pause_events(), 0, "resume is not a pause event");
    }

    #[test]
    fn inflight_cap_stops_reading_new_bytes() {
        let mut c = conn(ConnCfg { wq_high: 1 << 20, wq_low: 1 << 10, max_inflight: 2 });
        c.stream.feed(b"get 1\r\nget 2\r\n");
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        assert_eq!(dispatch.len(), 2);
        assert!(!c.wants_read(), "at the inflight cap");
        c.complete(dispatch[0].0, b"a".to_vec());
        c.complete(dispatch[1].0, b"b".to_vec());
        assert!(c.wants_read(), "answers free capacity");
    }

    #[test]
    fn ingest_interleaves_parsing_so_the_cap_holds_per_chunk() {
        let mut c = conn(ConnCfg { wq_high: 1 << 20, wq_low: 1 << 10, max_inflight: 1 });
        // Two kernel chunks are available; the cap must stop reading
        // after the first one's frames fill it, leaving the second in
        // the kernel (not buffered in userspace).
        c.stream.feed(b"get 1\r\n");
        c.stream.feed(b"get 2\r\n");
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        assert_eq!(dispatch.len(), 1);
        assert_eq!(c.stream.input.len(), 1, "second chunk must stay unread");
        // Answering frees capacity; the next round picks the chunk up.
        c.complete(dispatch[0].0, b"a".to_vec());
        dispatch.clear();
        c.on_readable(&mut dispatch).unwrap();
        assert_eq!(dispatch.len(), 1);
        assert!(matches!(dispatch[0].1, Command::Get(ref k) if k == &vec![2]));
    }

    #[test]
    fn quit_drains_pipelined_requests_then_closes() {
        let mut c = conn(ConnCfg::default());
        c.stream.feed(b"get 1\r\nquit\r\nget 2\r\n");
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        assert_eq!(dispatch.len(), 1, "nothing after quit is parsed");
        assert!(!c.wants_read());
        assert!(!c.should_close(), "the pre-quit get is still in flight");
        c.complete(dispatch[0].0, b"END\r\n".to_vec());
        c.flush().unwrap();
        assert!(c.should_close());
        assert_eq!(c.stream.written, b"END\r\n");
    }

    #[test]
    fn shutdown_slots_ok_inline_and_reports_it() {
        let mut c = conn(ConnCfg::default());
        c.stream.feed(b"get 1\r\nshutdown\r\n");
        let mut dispatch = Vec::new();
        let outcome = c.on_readable(&mut dispatch).unwrap();
        assert!(outcome.shutdown);
        c.complete(dispatch[0].0, b"END\r\n".to_vec());
        c.flush().unwrap();
        // OK comes after the get's response: slots keep wire order.
        assert_eq!(c.stream.written, b"END\r\nOK\r\n");
        assert!(c.should_close());
    }

    #[test]
    fn recoverable_protocol_error_keeps_the_conn_open() {
        let mut c = conn(ConnCfg::default());
        c.stream.feed(b"bogus\r\nget 4\r\n");
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        // The error response is slotted inline, the next command parses.
        assert_eq!(dispatch.len(), 1);
        c.complete(dispatch[0].0, b"END\r\n".to_vec());
        c.flush().unwrap();
        assert_eq!(c.stream.written, b"ERROR\r\nEND\r\n");
        assert!(c.wants_read());
    }

    #[test]
    fn fatal_protocol_error_answers_then_closes() {
        let mut c = conn(ConnCfg::default());
        // A line longer than any legal frame, never terminated: framing is
        // unrecoverable, so the error is fatal.
        c.stream.feed(&[b'a'; 2048]);
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        assert!(dispatch.is_empty());
        c.flush().unwrap();
        assert!(c.should_close());
        assert_eq!(c.stream.written, b"CLIENT_ERROR line too long\r\n");
    }

    #[test]
    fn eof_without_traffic_closes_cleanly() {
        let mut c = conn(ConnCfg::default());
        c.stream.feed(b""); // a 0-byte read = EOF
        let mut dispatch = Vec::new();
        c.on_readable(&mut dispatch).unwrap();
        assert!(dispatch.is_empty());
        assert!(c.should_close());
    }
}
