//! The reactor: one OS thread multiplexing many connections over a
//! [`Poller`].
//!
//! Each reactor owns a slab of [`Conn`] state machines. Readiness events
//! drive reads and writes; parsed requests are pushed onto the shared
//! [`WorkQueue`] tagged with a generation-guarded [`ConnToken`]; workers
//! send finished responses back through the reactor's [`ReactorHandle`]
//! mailbox and kick the self-pipe waker. Generations make stale
//! completions (for a connection that died and whose slab slot was
//! reused) harmless: the token's generation no longer matches and the
//! bytes are dropped.
//!
//! Reactors are plain OS threads, **not** host threads of the native
//! machine — they never touch the hash map; only workers (which own a
//! `ThreadCtx`) do.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::proto::Command;
use crate::service::ServeCounters;

use super::conn::{Conn, ConnCfg};
use super::poller::{Interest, Poller, PollerKind};
use super::sys;
use super::timer::TimerWheel;

/// Poller token reserved for the self-pipe waker.
const WAKER_TOKEN: usize = usize::MAX;

/// Which worker queue a connection's requests are pinned to.
pub fn sticky_queue(reactor: u16, idx: usize, queues: usize) -> usize {
    // Fibonacci-mix the slot so consecutive slots spread over workers;
    // fold the reactor id in (pre-multiply, so it survives the shift) so
    // two reactors' slot 0 diverge.
    let h = ((idx as u64) ^ ((reactor as u64) << 20)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 32) as usize % queues
}

/// Identifies one connection generation on one reactor. A token whose
/// `gen` no longer matches the slot's current generation is stale and is
/// ignored on delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnToken {
    /// Which reactor owns the connection.
    pub reactor: u16,
    /// Slab slot index.
    pub idx: u32,
    /// Slot generation at dispatch time.
    pub gen: u32,
}

/// A finished response traveling worker → reactor.
#[derive(Debug)]
pub struct Completion {
    /// The connection (generation-checked) the response belongs to.
    pub token: ConnToken,
    /// The request's per-connection sequence number.
    pub seq: u64,
    /// Wire bytes (possibly empty, e.g. `noreply`).
    pub bytes: Vec<u8>,
}

/// One unit of work traveling reactor → worker.
#[derive(Debug)]
pub struct WorkItem {
    /// Where the response goes.
    pub token: ConnToken,
    /// The request's per-connection sequence number.
    pub seq: u64,
    /// The parsed request.
    pub cmd: Command,
}

/// A reactor→worker queue (std `Mutex` + `Condvar`; the vendored
/// `parking_lot` deliberately omits a condvar).
///
/// Each worker owns one queue and every connection is routed to a fixed
/// queue (sticky by slab slot), because **execution** order — not just
/// response order — must match the blocking runtime: a `set` pipelined
/// before a `get` has to be visible to it. A single shared queue with
/// work-stealing workers would let two requests from one connection race
/// on different workers; per-connection stickiness makes the FIFO queue
/// itself the ordering guarantee, while distinct connections still
/// execute in parallel.
pub struct WorkQueue {
    inner: std::sync::Mutex<QueueInner>,
    cv: std::sync::Condvar,
}

struct QueueInner {
    items: VecDeque<WorkItem>,
    closed: bool,
}

impl WorkQueue {
    /// Empty, open queue.
    pub fn new() -> Self {
        WorkQueue {
            inner: std::sync::Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Enqueue one item and wake a worker.
    pub fn push(&self, item: WorkItem) {
        let mut g = self.inner.lock().unwrap();
        g.items.push_back(item);
        drop(g);
        self.cv.notify_one();
    }

    /// Block until an item is available; `None` once the queue is closed
    /// **and** drained (so no accepted request is ever dropped).
    pub fn pop(&self) -> Option<WorkItem> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Close the queue; blocked and future `pop`s return `None` once the
    /// backlog drains.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

impl Default for WorkQueue {
    fn default() -> Self {
        WorkQueue::new()
    }
}

/// The self-pipe write end plus its wake-once latch.
struct Waker {
    fd: RawFd,
    /// True while a wake byte is in flight — collapses N wakes into one
    /// pipe write per reactor iteration.
    pending: AtomicBool,
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[derive(Default)]
struct Mailbox {
    new_conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// Cloneable remote control for a reactor: inject accepted connections,
/// deliver completed responses.
#[derive(Clone)]
pub struct ReactorHandle {
    mailbox: Arc<Mutex<Mailbox>>,
    waker: Arc<Waker>,
}

impl ReactorHandle {
    /// Hand a freshly accepted connection to the reactor.
    pub fn inject(&self, stream: TcpStream) {
        self.mailbox.lock().new_conns.push(stream);
        self.wake();
    }

    /// Deliver a finished response.
    pub fn complete(&self, c: Completion) {
        self.mailbox.lock().completions.push(c);
        self.wake();
    }

    fn wake(&self) {
        if !self.waker.pending.swap(true, Ordering::AcqRel) {
            // A full pipe (WouldBlock) still wakes the reactor; any
            // other failure means the reactor is gone — nothing to do.
            let _ = sys::write_fd(self.waker.fd, &[1]);
        }
    }
}

/// Reactor tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReactorCfg {
    /// Per-connection buffer limits.
    pub conn: ConnCfg,
    /// Close connections idle longer than this.
    pub idle_timeout_ms: u64,
    /// Graceful-shutdown drain budget before force-closing.
    pub drain_ms: u64,
    /// Timer-wheel tick (also the poll timeout), in milliseconds.
    pub tick_ms: u64,
    /// Cap each accepted socket's kernel send buffer (`SO_SNDBUF`);
    /// `None` keeps the kernel's auto-tuned default. Capping it makes the
    /// userspace write-queue watermarks the real backpressure boundary
    /// instead of multi-megabyte kernel buffers.
    pub sock_sndbuf: Option<usize>,
}

impl Default for ReactorCfg {
    fn default() -> Self {
        ReactorCfg {
            conn: ConnCfg::default(),
            idle_timeout_ms: 60_000,
            drain_ms: 5_000,
            tick_ms: 20,
            sock_sndbuf: None,
        }
    }
}

struct Entry {
    conn: Conn<TcpStream>,
    interest: Interest,
}

/// One reactor thread's state. Construct with [`Reactor::new`], then move
/// into a thread and call [`Reactor::run`].
pub struct Reactor {
    id: u16,
    poller: Box<dyn Poller>,
    waker_rx: RawFd,
    handle: ReactorHandle,
    entries: Vec<Option<Entry>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    wheel: TimerWheel,
    cfg: ReactorCfg,
    queues: Arc<Vec<WorkQueue>>,
    counters: Arc<ServeCounters>,
    shutdown: Arc<AtomicBool>,
}

impl Reactor {
    /// Build a reactor and the handle used to feed it.
    pub fn new(
        id: u16,
        kind: PollerKind,
        cfg: ReactorCfg,
        queues: Arc<Vec<WorkQueue>>,
        counters: Arc<ServeCounters>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<(Reactor, ReactorHandle)> {
        let mut poller = kind.build()?;
        let (waker_rx, waker_tx) = sys::pipe_nonblocking()?;
        poller.register(waker_rx, WAKER_TOKEN, Interest::READ)?;
        let handle = ReactorHandle {
            mailbox: Arc::new(Mutex::new(Mailbox::default())),
            waker: Arc::new(Waker { fd: waker_tx, pending: AtomicBool::new(false) }),
        };
        Ok((
            Reactor {
                id,
                poller,
                waker_rx,
                handle: handle.clone(),
                entries: Vec::new(),
                gens: Vec::new(),
                free: Vec::new(),
                wheel: TimerWheel::new(),
                cfg,
                queues,
                counters,
                shutdown,
            },
            handle,
        ))
    }

    /// The event loop. Returns once shutdown is requested and every
    /// connection has drained (or the drain deadline forced the issue).
    pub fn run(mut self) {
        let epoch = Instant::now();
        let tick_ms = self.cfg.tick_ms.max(1);
        let idle_ticks = (self.cfg.idle_timeout_ms / tick_ms).max(1);
        let mut events = Vec::new();
        let mut dispatch: Vec<(u64, Command)> = Vec::new();
        let mut expired: Vec<usize> = Vec::new();
        let mut last_tick = 0u64;
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            let timeout = tick_ms.clamp(1, 50) as i32;
            if self.poller.poll(&mut events, timeout).is_err() {
                // A failing poller is unrecoverable; drop every conn.
                self.shutdown.store(true, Ordering::Release);
                break;
            }
            let now_tick = epoch.elapsed().as_millis() as u64 / tick_ms;

            // Self-pipe first, so the pending latch resets before the
            // mailbox is swapped (a wake raced in after the swap will
            // land a fresh byte and re-wake us next iteration).
            if events.iter().any(|e| e.token == WAKER_TOKEN) {
                let mut sink = [0u8; 64];
                while matches!(sys::read_fd(self.waker_rx, &mut sink), Ok(n) if n > 0) {}
            }
            self.handle.waker.pending.store(false, Ordering::Release);
            let (new_conns, completions) = {
                let mut mb = self.handle.mailbox.lock();
                (std::mem::take(&mut mb.new_conns), std::mem::take(&mut mb.completions))
            };
            for stream in new_conns {
                self.admit(stream, now_tick, idle_ticks, draining);
            }
            for c in completions {
                self.deliver(c, now_tick);
            }

            for &ev in &events {
                if ev.token != WAKER_TOKEN {
                    self.handle_event(ev, now_tick, &mut dispatch);
                }
            }

            if now_tick > last_tick {
                self.wheel.advance(now_tick, &mut expired);
                for idx in expired.drain(..) {
                    self.check_idle(idx, now_tick, idle_ticks);
                }
                last_tick = now_tick;
            }

            if !draining && self.shutdown.load(Ordering::Acquire) {
                draining = true;
                drain_deadline = Instant::now() + Duration::from_millis(self.cfg.drain_ms);
                for idx in 0..self.entries.len() {
                    if let Some(entry) = self.entries[idx].as_mut() {
                        entry.conn.begin_close();
                    }
                    self.post_io(idx);
                }
            }
            if draining {
                for idx in 0..self.entries.len() {
                    if self.entries[idx].as_ref().is_some_and(|e| e.conn.should_close()) {
                        self.teardown(idx);
                    }
                }
                let live = self.entries.iter().filter(|e| e.is_some()).count();
                if live == 0 {
                    break;
                }
                if Instant::now() >= drain_deadline {
                    for idx in 0..self.entries.len() {
                        if self.entries[idx].is_some() {
                            self.teardown(idx);
                        }
                    }
                    break;
                }
            }
        }
    }

    /// Register a freshly accepted connection (or drop it mid-drain).
    fn admit(&mut self, stream: TcpStream, now_tick: u64, idle_ticks: u64, draining: bool) {
        if draining {
            return; // accepted after shutdown began: just close it
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        if let Some(bytes) = self.cfg.sock_sndbuf {
            // Best effort: a socket that keeps the kernel default still
            // works, it just backpressures later.
            let _ = sys::set_send_buffer(stream.as_raw_fd(), bytes);
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.entries.push(None);
                self.gens.push(0);
                self.entries.len() - 1
            }
        };
        if self.poller.register(stream.as_raw_fd(), idx, Interest::READ).is_err() {
            self.free.push(idx);
            return;
        }
        let mut conn = Conn::new(stream, self.cfg.conn);
        conn.last_active = now_tick;
        self.entries[idx] = Some(Entry { conn, interest: Interest::READ });
        self.wheel.insert(idx, now_tick + idle_ticks);
    }

    /// Route a worker's completion to its connection, unless stale.
    fn deliver(&mut self, c: Completion, now_tick: u64) {
        let idx = c.token.idx as usize;
        if idx >= self.entries.len() || self.gens[idx] != c.token.gen {
            return; // connection died while the request was in flight
        }
        if let Some(entry) = self.entries[idx].as_mut() {
            entry.conn.complete(c.seq, c.bytes);
            entry.conn.last_active = now_tick;
        }
        self.post_io(idx);
    }

    /// React to one readiness event on a connection.
    fn handle_event(
        &mut self,
        ev: super::poller::Event,
        now_tick: u64,
        dispatch: &mut Vec<(u64, Command)>,
    ) {
        let idx = ev.token;
        let Some(entry) = self.entries.get_mut(idx).and_then(Option::as_mut) else {
            return; // already torn down this iteration
        };
        let mut dead = false;
        if ev.readable || ev.hangup {
            entry.conn.last_active = now_tick;
            match entry.conn.on_readable(dispatch) {
                Ok(outcome) => {
                    if outcome.shutdown {
                        self.shutdown.store(true, Ordering::Release);
                    }
                }
                Err(_) => dead = true,
            }
            let token = ConnToken { reactor: self.id, idx: idx as u32, gen: self.gens[idx] };
            // Sticky routing: all of this connection's requests go to one
            // worker's FIFO queue, preserving execution order.
            let qi = sticky_queue(self.id, idx, self.queues.len());
            for (seq, cmd) in dispatch.drain(..) {
                self.queues[qi].push(WorkItem { token, seq, cmd });
            }
        }
        if ev.hangup {
            // Hard error/hangup (not just half-close): both directions are
            // gone, responses can't be delivered — tear down now.
            dead = true;
        }
        if dead {
            self.teardown(idx);
        } else {
            self.post_io(idx);
        }
    }

    /// Flush, harvest counters, close-if-done, and sync poller interest —
    /// the common tail after anything touches a connection.
    fn post_io(&mut self, idx: usize) {
        let Some(entry) = self.entries.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if entry.conn.wants_write() && entry.conn.flush().is_err() {
            self.teardown(idx);
            return;
        }
        let pauses = entry.conn.take_pause_events();
        if pauses > 0 {
            self.counters.backpressure_pauses.fetch_add(pauses, Ordering::Relaxed);
        }
        let errors = entry.conn.take_proto_errors();
        if errors > 0 {
            self.counters.proto_errors.fetch_add(errors, Ordering::Relaxed);
        }
        if entry.conn.should_close() {
            self.teardown(idx);
            return;
        }
        let desired = Interest { read: entry.conn.wants_read(), write: entry.conn.wants_write() };
        if desired != entry.interest {
            let fd = entry.conn.stream().as_raw_fd();
            if self.poller.reregister(fd, idx, desired).is_ok() {
                if let Some(entry) = self.entries[idx].as_mut() {
                    entry.interest = desired;
                }
            }
        }
    }

    /// Evict or re-arm an idle-wheel entry that just popped.
    fn check_idle(&mut self, idx: usize, now_tick: u64, idle_ticks: u64) {
        let Some(entry) = self.entries.get(idx).and_then(Option::as_ref) else {
            return; // closed before its timer popped
        };
        let due = entry.conn.last_active + idle_ticks;
        if now_tick >= due {
            self.counters.idle_evicted.fetch_add(1, Ordering::Relaxed);
            self.teardown(idx);
        } else {
            // Lazy reinsertion: it saw traffic since arming; re-arm from
            // its actual last activity.
            self.wheel.insert(idx, due);
        }
    }

    /// Remove a connection: deregister, close, recycle the slot.
    fn teardown(&mut self, idx: usize) {
        let Some(entry) = self.entries[idx].take() else {
            return;
        };
        let _ = self.poller.deregister(entry.conn.stream().as_raw_fd());
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.counters.conns.fetch_add(1, Ordering::Relaxed);
        // Dropping the entry closes the socket.
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys::close_fd(self.waker_rx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_queue_drains_backlog_after_close() {
        let q = WorkQueue::new();
        let token = ConnToken { reactor: 0, idx: 0, gen: 0 };
        q.push(WorkItem { token, seq: 0, cmd: Command::Get(vec![1]) });
        q.push(WorkItem { token, seq: 1, cmd: Command::Get(vec![2]) });
        q.close();
        // Already-queued work survives the close…
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 1);
        // …then pops report closure.
        assert!(q.pop().is_none());
        assert!(q.pop().is_none());
    }

    #[test]
    fn waker_collapses_repeat_wakes() {
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServeCounters::default());
        let queues = Arc::new(vec![WorkQueue::new()]);
        let (reactor, handle) =
            Reactor::new(0, PollerKind::Poll, ReactorCfg::default(), queues, counters, shutdown)
                .unwrap();
        // First wake writes a byte and latches; repeats are absorbed.
        handle.wake();
        assert!(handle.waker.pending.load(Ordering::Acquire));
        handle.wake();
        handle.wake();
        let mut buf = [0u8; 16];
        let n = sys::read_fd(reactor.waker_rx, &mut buf).unwrap();
        assert_eq!(n, 1, "three wakes, one byte");
    }
}
