//! Raw syscall bindings for the evented runtime — the only file in the
//! repository that declares foreign functions.
//!
//! The build environment vendors no `libc` crate, so the handful of
//! syscalls the reactor needs (`epoll_*`, `poll`, `pipe`, `fcntl`) are
//! declared here as `extern "C"` items against the libc that `std`
//! already links. Everything is wrapped in small safe(ish) helpers that
//! translate `-1` into [`io::Error::last_os_error`]; nothing outside
//! `crates/server/src/runtime/` may name these symbols (the xtask
//! net-confinement lint enforces it).

#![allow(non_camel_case_types)]

use std::io;
use std::os::unix::io::RawFd;

/// `nfds_t` for `poll(2)` (a `c_ulong` on every platform we build for).
pub type nfds_t = core::ffi::c_ulong;

/// One `struct pollfd` entry for `poll(2)`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct pollfd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

/// One `struct epoll_event`. Packed on x86-64, exactly as in the kernel
/// ABI (`__EPOLL_PACKED`).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    /// Interest / readiness mask ([`EPOLLIN`], [`EPOLLOUT`], …).
    pub events: u32,
    /// Caller-owned cookie returned verbatim with each event.
    pub u64: u64,
}

/// Readable readiness (`poll` and `epoll` share the low event bits).
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;

/// `epoll` readable interest/readiness.
pub const EPOLLIN: u32 = 0x001;
/// `epoll` writable interest/readiness.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll` error readiness (always reported).
pub const EPOLLERR: u32 = 0x008;
/// `epoll` hangup readiness (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (must be requested explicitly).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: add a new fd.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: remove an fd.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's interest mask.
pub const EPOLL_CTL_MOD: i32 = 3;
/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `fcntl` command: get file status flags.
pub const F_GETFL: i32 = 3;
/// `fcntl` command: set file status flags.
pub const F_SETFL: i32 = 4;
/// Non-blocking file status flag.
pub const O_NONBLOCK: i32 = 0o4000;

/// `setsockopt` level for socket-level options.
#[cfg(target_os = "linux")]
pub const SOL_SOCKET: i32 = 1;
/// `setsockopt` level for socket-level options (BSD/macOS value).
#[cfg(not(target_os = "linux"))]
pub const SOL_SOCKET: i32 = 0xffff;
/// Kernel send-buffer size option.
#[cfg(target_os = "linux")]
pub const SO_SNDBUF: i32 = 7;
/// Kernel send-buffer size option (BSD/macOS value).
#[cfg(not(target_os = "linux"))]
pub const SO_SNDBUF: i32 = 0x1001;
/// Kernel receive-buffer size option.
#[cfg(target_os = "linux")]
pub const SO_RCVBUF: i32 = 8;
/// Kernel receive-buffer size option (BSD/macOS value).
#[cfg(not(target_os = "linux"))]
pub const SO_RCVBUF: i32 = 0x1002;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32) -> i32;
    fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Create an epoll instance (close-on-exec).
pub fn epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Add/modify/delete an fd in an epoll set. `event` may be `None` for
/// [`EPOLL_CTL_DEL`].
pub fn epoll_control(
    epfd: RawFd,
    op: i32,
    fd: RawFd,
    event: Option<epoll_event>,
) -> io::Result<()> {
    let mut ev = event.unwrap_or(epoll_event { events: 0, u64: 0 });
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Wait for events; returns how many entries of `events` were filled.
/// `timeout_ms < 0` blocks indefinitely. `EINTR` is retried internally.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [epoll_event],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// POSIX `poll(2)`; returns how many fds have non-zero `revents`.
/// `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [pollfd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Create a non-blocking pipe: `(read_end, write_end)`.
pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0i32; 2];
    cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
    for fd in fds {
        if let Err(e) = set_nonblocking(fd) {
            close_fd(fds[0]);
            close_fd(fds[1]);
            return Err(e);
        }
    }
    Ok((fds[0], fds[1]))
}

/// Set `O_NONBLOCK` on an fd.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }).map(|_| ())
}

/// Cap a socket's kernel send buffer (`SO_SNDBUF`). Without a cap, Linux
/// auto-tunes send buffers to many megabytes, which lets the kernel —
/// rather than the connection's write-queue watermarks — absorb a
/// non-draining peer's backlog.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_sockopt_int(fd, SO_SNDBUF, bytes as i32)
}

/// Cap a socket's kernel receive buffer (`SO_RCVBUF`).
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_sockopt_int(fd, SO_RCVBUF, bytes as i32)
}

fn set_sockopt_int(fd: RawFd, optname: i32, value: i32) -> io::Result<()> {
    let bytes = value.to_ne_bytes();
    cvt(unsafe { setsockopt(fd, SOL_SOCKET, optname, bytes.as_ptr(), bytes.len() as u32) })
        .map(|_| ())
}

/// Read up to `buf.len()` bytes from a raw fd (for the waker pipe).
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Write `buf` to a raw fd (for the waker pipe).
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Close a raw fd, ignoring errors (used in drops).
pub fn close_fd(fd: RawFd) {
    unsafe {
        let _ = close(fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trip_and_nonblocking_drain() {
        let (r, w) = pipe_nonblocking().unwrap();
        // Empty pipe: non-blocking read reports WouldBlock instead of
        // parking the thread.
        let mut buf = [0u8; 8];
        let err = read_fd(r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(write_fd(w, b"xy").unwrap(), 2);
        assert_eq!(read_fd(r, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"xy");
        close_fd(r);
        close_fd(w);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_sees_pipe_readability() {
        let ep = epoll_create().unwrap();
        let (r, w) = pipe_nonblocking().unwrap();
        epoll_control(ep, EPOLL_CTL_ADD, r, Some(epoll_event { events: EPOLLIN, u64: 77 }))
            .unwrap();
        let mut events = [epoll_event { events: 0, u64: 0 }; 4];
        assert_eq!(epoll_wait_events(ep, &mut events, 0).unwrap(), 0, "idle pipe");
        write_fd(w, &[1]).unwrap();
        let n = epoll_wait_events(ep, &mut events, 1_000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.u64 }, 77);
        assert_ne!(ev.events & EPOLLIN, 0);
        close_fd(ep);
        close_fd(r);
        close_fd(w);
    }

    #[test]
    fn poll_sees_pipe_readability() {
        let (r, w) = pipe_nonblocking().unwrap();
        let mut fds = [pollfd { fd: r, events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "idle pipe");
        write_fd(w, &[1]).unwrap();
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        close_fd(r);
        close_fd(w);
    }
}
