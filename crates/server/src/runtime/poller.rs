//! Readiness polling behind a small [`Poller`] trait.
//!
//! The production implementation is [`EpollPoller`] — a thin wrapper over
//! raw `epoll_create1`/`epoll_ctl`/`epoll_wait` (level-triggered, which
//! pairs naturally with the connection state machine's buffer-until-
//! `WouldBlock` discipline). [`PollPoller`] is the portable fallback over
//! POSIX `poll(2)`: same trait, same semantics, O(n) per wait — it keeps
//! the reactor testable on any unix and doubles as a differential check
//! that nothing in the runtime secretly depends on epoll behavior.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;

use super::sys;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { read: true, write: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { read: false, write: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { read: true, write: true };
    /// Registered but dormant (backpressured connection with nothing to
    /// write — kept in the set so hangups still surface).
    pub const NONE: Interest = Interest { read: false, write: false };
}

/// One readiness event, translated out of the backend's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Readable now (or peer half-closed — reads will return 0).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup; the connection should be torn down after a final
    /// read attempt drains whatever the kernel still buffers.
    pub hangup: bool,
}

/// A readiness poller: the reactor's only view of the OS event queue.
pub trait Poller: Send {
    /// Start watching `fd` with `interest`; `token` comes back in events.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Change the interest set of a registered fd.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Stop watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Wait up to `timeout_ms` (0 = poll, negative = forever) and append
    /// ready events to `events` (which is cleared first).
    fn poll(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;
    /// Backend name for logs and bench records.
    fn name(&self) -> &'static str;
}

/// Which poller backend to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// Linux `epoll` (the default; falls back to `poll` off-Linux).
    #[default]
    Epoll,
    /// Portable POSIX `poll(2)`.
    Poll,
}

impl PollerKind {
    /// Construct the chosen backend.
    pub fn build(self) -> io::Result<Box<dyn Poller>> {
        match self {
            #[cfg(target_os = "linux")]
            PollerKind::Epoll => Ok(Box::new(EpollPoller::new()?)),
            #[cfg(not(target_os = "linux"))]
            PollerKind::Epoll => Ok(Box::new(PollPoller::new())),
            PollerKind::Poll => Ok(Box::new(PollPoller::new())),
        }
    }

    /// Parse a `--poller` flag value.
    pub fn parse(s: &str) -> Option<PollerKind> {
        match s {
            "epoll" => Some(PollerKind::Epoll),
            "poll" => Some(PollerKind::Poll),
            _ => None,
        }
    }
}

/// Level-triggered epoll backend.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::epoll_event>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Create the epoll instance.
    pub fn new() -> io::Result<Self> {
        Ok(EpollPoller {
            epfd: sys::epoll_create()?,
            buf: vec![sys::epoll_event { events: 0, u64: 0 }; 256],
        })
    }

    fn mask(interest: Interest) -> u32 {
        // EPOLLRDHUP is always on so a half-closed peer surfaces even
        // while read interest is parked by backpressure.
        let mut m = sys::EPOLLRDHUP;
        if interest.read {
            m |= sys::EPOLLIN;
        }
        if interest.write {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let ev = sys::epoll_event { events: Self::mask(interest), u64: token as u64 };
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(ev))
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let ev = sys::epoll_event { events: Self::mask(interest), u64: token as u64 };
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_MOD, fd, Some(ev))
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, None)
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        let n = sys::epoll_wait_events(self.epfd, &mut self.buf, timeout_ms)?;
        for ev in &self.buf[..n] {
            let bits = ev.events;
            events.push(Event {
                token: { ev.u64 } as usize,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "epoll"
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Portable `poll(2)` backend: a flat fd table rebuilt per wait.
pub struct PollPoller {
    entries: HashMap<RawFd, (usize, Interest)>,
    fds: Vec<sys::pollfd>,
}

impl PollPoller {
    /// Empty registration table.
    pub fn new() -> Self {
        PollPoller { entries: HashMap::new(), fds: Vec::new() }
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        PollPoller::new()
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.entries.insert(fd, (token, interest)).is_some() {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self.entries.get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.entries.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        self.fds.clear();
        for (&fd, &(_, interest)) in &self.entries {
            let mut mask = 0i16;
            if interest.read {
                mask |= sys::POLLIN;
            }
            if interest.write {
                mask |= sys::POLLOUT;
            }
            // Zero-interest fds stay in the set: POLLERR/POLLHUP are
            // reported regardless of the requested mask.
            self.fds.push(sys::pollfd { fd, events: mask, revents: 0 });
        }
        if self.fds.is_empty() {
            // Nothing registered: honor the timeout so the reactor still
            // ticks its timer wheel.
            if timeout_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
            }
            return Ok(());
        }
        sys::poll_fds(&mut self.fds, timeout_ms)?;
        for pfd in &self.fds {
            if pfd.revents == 0 {
                continue;
            }
            let token = self.entries[&pfd.fd].0;
            events.push(Event {
                token,
                readable: pfd.revents & sys::POLLIN != 0,
                writable: pfd.revents & sys::POLLOUT != 0,
                hangup: pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
            });
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "poll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    /// A connected loopback socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn backend_contract(mut p: Box<dyn Poller>) {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let fd = b.as_raw_fd();
        p.register(fd, 9, Interest::READ).unwrap();

        let mut events = Vec::new();
        p.poll(&mut events, 0).unwrap();
        assert!(events.is_empty(), "{}: idle socket reported ready", p.name());

        a.write_all(b"hi").unwrap();
        p.poll(&mut events, 2_000).unwrap();
        assert_eq!(events.len(), 1, "{}", p.name());
        assert_eq!(events[0].token, 9);
        assert!(events[0].readable);

        // Parking read interest silences readability even with unread
        // bytes pending (the backpressure mechanism).
        p.reregister(fd, 9, Interest::NONE).unwrap();
        p.poll(&mut events, 10).unwrap();
        assert!(
            events.iter().all(|e| !e.readable || e.hangup),
            "{}: parked fd still readable: {events:?}",
            p.name()
        );

        // Write interest on an idle socket fires immediately.
        p.reregister(fd, 9, Interest::BOTH).unwrap();
        p.poll(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.writable), "{}", p.name());

        // Peer close surfaces as readable (EOF) and/or hangup.
        drop(a);
        p.poll(&mut events, 2_000).unwrap();
        assert!(
            events.iter().any(|e| e.readable || e.hangup),
            "{}: close invisible: {events:?}",
            p.name()
        );
        p.deregister(fd).unwrap();
        assert!(p.deregister(fd).is_err(), "{}: double deregister", p.name());
    }

    #[test]
    fn poll_backend_honors_the_contract() {
        backend_contract(Box::new(PollPoller::new()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_honors_the_contract() {
        backend_contract(Box::new(EpollPoller::new().unwrap()));
    }

    #[test]
    fn kind_parses_and_builds() {
        assert_eq!(PollerKind::parse("epoll"), Some(PollerKind::Epoll));
        assert_eq!(PollerKind::parse("poll"), Some(PollerKind::Poll));
        assert_eq!(PollerKind::parse("uring"), None);
        assert_eq!(PollerKind::Poll.build().unwrap().name(), "poll");
    }
}
