//! Hashed timer wheel for idle-connection timeouts.
//!
//! Deadlines land in one of `WHEEL_SLOTS` buckets keyed by
//! `deadline_tick % WHEEL_SLOTS`; advancing the wheel by one tick drains
//! one bucket and keeps entries whose deadline hashes to the same slot a
//! full revolution later. Precision is one tick (the reactor's poll
//! timeout), which is plenty for multi-second idle timeouts.
//!
//! The wheel never cancels: a connection that sees traffic simply updates
//! its own `last_active` stamp, and when its stale entry pops out the
//! reactor re-checks the stamp and (if the conn is in fact live) re-arms a
//! fresh entry — "lazy reinsertion". That keeps insert O(1) with no
//! per-entry handles.

/// Bucket count. Power of two so the modulo is a mask.
const WHEEL_SLOTS: usize = 64;

/// A deadline bucket wheel with lazy cancellation.
pub struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    /// Next tick to drain (all earlier ticks already drained).
    cursor: u64,
}

impl TimerWheel {
    /// Empty wheel starting at tick 0.
    pub fn new() -> Self {
        TimerWheel { slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(), cursor: 0 }
    }

    /// Arm `token` to pop once the wheel advances to `deadline_tick`.
    /// Deadlines at or before the cursor pop on the very next advance.
    pub fn insert(&mut self, token: usize, deadline_tick: u64) {
        let tick = deadline_tick.max(self.cursor);
        self.slots[(tick as usize) & (WHEEL_SLOTS - 1)].push((token, tick));
    }

    /// Advance to `now_tick`, appending every entry whose deadline has
    /// passed to `expired`. Entries sharing a slot but due a revolution
    /// later are retained.
    pub fn advance(&mut self, now_tick: u64, expired: &mut Vec<usize>) {
        while self.cursor <= now_tick {
            let slot = &mut self.slots[(self.cursor as usize) & (WHEEL_SLOTS - 1)];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].1 <= now_tick {
                    expired.push(slot.swap_remove(i).0);
                } else {
                    i += 1;
                }
            }
            self.cursor += 1;
        }
    }

    /// Entries currently armed (tests/observability).
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Whether no entries are armed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel, now: u64) -> Vec<usize> {
        let mut out = Vec::new();
        w.advance(now, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn pops_at_deadline_not_before() {
        let mut w = TimerWheel::new();
        w.insert(1, 10);
        w.insert(2, 20);
        assert!(drain(&mut w, 9).is_empty());
        assert_eq!(drain(&mut w, 10), vec![1]);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, 25), vec![2]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_slot_different_revolution_is_kept() {
        let mut w = TimerWheel::new();
        // Both hash to slot 5, one a full revolution later.
        w.insert(1, 5);
        w.insert(2, 5 + WHEEL_SLOTS as u64);
        assert_eq!(drain(&mut w, 5), vec![1]);
        assert_eq!(w.len(), 1, "next-revolution entry must survive");
        assert_eq!(drain(&mut w, 5 + WHEEL_SLOTS as u64), vec![2]);
    }

    #[test]
    fn past_deadlines_pop_immediately() {
        let mut w = TimerWheel::new();
        w.advance(100, &mut Vec::new());
        w.insert(9, 3); // already past — clamped to the cursor
        assert_eq!(drain(&mut w, 101), vec![9]);
    }

    #[test]
    fn large_jump_drains_everything_once() {
        let mut w = TimerWheel::new();
        for t in 0..200u64 {
            w.insert(t as usize, t);
        }
        let popped = drain(&mut w, 1_000);
        assert_eq!(popped.len(), 200);
        assert!(w.is_empty());
    }
}
