//! # hybrids-server — a cache front end over the native memory backend
//!
//! This crate turns the reproduction's [`HybridHashMap`] into a running
//! network service: a memcached-text-protocol server whose connection
//! workers are host threads of a [`nmp_sim::NativeRun`], executing the
//! *same* offload-client code the cycle-accurate simulator verifies — but
//! over real atomics at hardware speed (see `DESIGN.md` §4.11 for the
//! backend boundary).
//!
//! The pieces:
//!
//! * [`proto`] — incremental memcached text parser (pipelining,
//!   partial-frame buffering, malformed-input tolerance) and the
//!   reference response encoders,
//! * [`service`] — the shared request-execution layer both runtimes
//!   funnel through (byte-identical responses by construction),
//! * [`ttl`] — memcached `exptime` semantics: absolute-expiry table,
//!   lazy expiry on `get`, injectable clock,
//! * [`runtime`] — the connection runtimes: the original blocking
//!   thread-per-connection topology and the evented epoll/poll reactor
//!   (connection state machines, idle timer wheel, write backpressure,
//!   graceful drain),
//! * [`server`] — the `hybrids-server` facade: acceptor + worker host
//!   threads + per-partition combiner daemons over one native machine,
//!   with `--runtime {blocking,evented}` selection,
//! * [`loadgen`] — the `hybrids-loadgen` client: deterministic
//!   workload-driven request streams, closed- and open-loop latency
//!   measurement, and the `BENCH_9.json` report,
//! * [`sweep`] — the blocking-vs-evented connection-scaling experiment
//!   behind `BENCH_10.json`.
//!
//! [`HybridHashMap`]: hybrids::hashmap::HybridHashMap
#![warn(missing_docs)]

pub mod loadgen;
pub mod proto;
pub mod runtime;
pub mod server;
pub mod service;
pub mod sweep;
pub mod ttl;

pub use loadgen::{LoadReport, LoadgenOpts};
pub use proto::{Command, Parsed, Parser};
pub use runtime::{EventedOpts, PollerKind, RuntimeKind};
pub use server::{max_viable_workers, Server, ServerOpts};
pub use service::{ServeCounters, Service};
pub use sweep::{SweepOpts, SweepPoint, SweepReport, SweepSummary};
pub use ttl::{Clock, TtlTable};
