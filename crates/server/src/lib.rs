//! # hybrids-server — a cache front end over the native memory backend
//!
//! This crate turns the reproduction's [`HybridHashMap`] into a running
//! network service: a memcached-text-protocol server whose connection
//! workers are host threads of a [`nmp_sim::NativeRun`], executing the
//! *same* offload-client code the cycle-accurate simulator verifies — but
//! over real atomics at hardware speed (see `DESIGN.md` §4.11 for the
//! backend boundary).
//!
//! Three pieces:
//!
//! * [`proto`] — incremental memcached text parser (pipelining,
//!   partial-frame buffering, malformed-input tolerance) and the
//!   reference response encoders,
//! * [`server`] — the `hybrids-server` runtime: acceptor + N worker host
//!   threads + per-partition combiner daemons over one native machine,
//! * [`loadgen`] — the `hybrids-loadgen` client: deterministic
//!   workload-driven request streams, closed-loop latency measurement,
//!   and the `BENCH_9.json` throughput/percentile report.
//!
//! [`HybridHashMap`]: hybrids::hashmap::HybridHashMap
#![warn(missing_docs)]

pub mod loadgen;
pub mod proto;
pub mod server;

pub use loadgen::{LoadReport, LoadgenOpts};
pub use proto::{Command, Parsed, Parser};
pub use server::{ServeCounters, Server, ServerOpts};
