//! The `hybrids-loadgen` client: drives a running `hybrids-server` with
//! deterministic request streams and reports throughput and latency
//! percentiles.
//!
//! Request streams come from [`workloads::RequestSpec`] — a pure function
//! of the seed — so two runs against the same server state issue identical
//! byte sequences. Each connection runs on its own OS thread in one of
//! two modes:
//!
//! * **closed-loop** (default) — send one request, read its full
//!   response, repeat; latency is the request round trip, and the
//!   offered load self-limits to the service rate.
//! * **open-loop** (`rate: Some(_)`) — a paced writer sends each request
//!   at its [`workloads::OpenLoop`] due time regardless of outstanding
//!   responses, while a reader consumes responses in order; latency is
//!   measured from the *due* time, so queueing delay shows up in the
//!   percentiles instead of silently throttling the arrival process.
//!
//! Closed-loop runs can additionally multiplex connections over a small
//! client-thread pool (`client_threads`): each thread drives its shard
//! of connections in lockstep with one outstanding request per
//! connection, keeping the generator cheap at connection counts where a
//! thread-per-connection client would itself be the bottleneck.
//!
//! Per-request latencies are merged across connections for the percentile
//! summary, and throughput is total requests over wall-clock time.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use workloads::{CacheMix, CacheRequest, Key, KeyDist, KeySpace, OpenLoop, RequestSpec};

use crate::proto::{encode_request, Command};

/// Load-generation options.
#[derive(Debug, Clone)]
pub struct LoadgenOpts {
    /// Server address, e.g. `127.0.0.1:11211`.
    pub addr: String,
    /// Concurrent connections (one OS thread each).
    pub conns: u32,
    /// Timed requests per connection.
    pub per_conn: u32,
    /// Root seed for the request streams.
    pub seed: u64,
    /// get/set/delete percentages.
    pub mix: CacheMix,
    /// Key popularity for get/set/delete targets.
    pub dist: KeyDist,
    /// Size of the key universe (initial keys; multiple of 4).
    pub keys: u32,
    /// Pre-populate the universe with `set`s before the timed phase.
    pub preload: bool,
    /// Send `shutdown` after the run (CI teardown).
    pub shutdown: bool,
    /// Open-loop total offered rate in requests/second across all
    /// connections; `None` runs closed-loop.
    pub rate: Option<u32>,
    /// Closed-loop only: drive all connections from this many client
    /// threads instead of one thread per connection (`0` = thread per
    /// connection). Each thread owns a shard of connections and runs
    /// them in lockstep — a bounded window of outstanding requests per
    /// connection — so the *client* stays cheap at connection counts
    /// where a thread-per-connection generator becomes the benchmark
    /// bottleneck.
    pub client_threads: u32,
    /// Outstanding requests per connection in the multiplexed client
    /// (memcached pipelining; clamped to at least 1). Matching the
    /// server's `max_inflight` keeps every connection's lane busy.
    pub pipeline: u32,
    /// Multiplexed client only: a connection whose *first* response has
    /// not arrived within this deadline is declared starved — the server
    /// never adopted it — and is closed with its remaining requests
    /// counted unserved (`starved_conns` in the report). Thread-capped
    /// blocking servers genuinely never serve surplus connections, so
    /// without this probe the run would hang forever.
    pub starve_timeout_ms: u64,
}

impl Default for LoadgenOpts {
    fn default() -> Self {
        LoadgenOpts {
            addr: "127.0.0.1:11211".into(),
            conns: 4,
            per_conn: 5_000,
            seed: 42,
            mix: CacheMix::read_heavy(),
            dist: KeyDist::Zipfian,
            keys: 4096,
            preload: true,
            shutdown: false,
            rate: None,
            client_threads: 0,
            pipeline: 1,
            starve_timeout_ms: 250,
        }
    }
}

/// The run summary written to `BENCH_9.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Artifact tag (`serve_throughput`).
    pub experiment: String,
    /// Memory backend serving the requests (`native`).
    pub backend: String,
    /// Connections driven.
    pub conns: u32,
    /// Timed requests per connection.
    pub per_conn: u32,
    /// Total timed requests completed.
    pub total_ops: u64,
    /// Wall-clock seconds of the timed phase.
    pub elapsed_s: f64,
    /// Served requests per second.
    pub ops_per_sec: f64,
    /// Median round-trip latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile round-trip latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile round-trip latency, microseconds.
    pub p99_us: f64,
    /// `get` requests that returned a value.
    pub get_hits: u64,
    /// `get` requests that missed.
    pub get_misses: u64,
    /// get/set/delete mix label.
    pub mix: String,
    /// Root seed.
    pub seed: u64,
    /// `closed` or `open` (paced arrivals).
    pub mode: String,
    /// Open-loop total offered rate (requests/second); `None` when
    /// closed-loop.
    pub offered_rate: Option<u32>,
    /// Connections the server answered at least once.
    pub served_conns: u32,
    /// Connections whose first response missed the starve deadline
    /// (thread-capped servers never adopt surplus connections); their
    /// remaining requests are excluded from `total_ops`.
    pub starved_conns: u32,
}

/// Per-connection tallies folded into the report.
#[derive(Debug, Default)]
struct ConnStats {
    latencies_ns: Vec<u64>,
    get_hits: u64,
    get_misses: u64,
    starved_conns: u32,
}

/// Consecutive read-timeout retries granted to a connection the server
/// has already answered at least once (a served connection that stays
/// silent this long is a wedged server, not a scheduling hiccup).
const SERVED_TIMEOUT_RETRIES: u32 = 40;

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// A line-framed client connection.
struct Conn {
    reader: BufReader<TcpStream>,
    line: String,
    /// Tolerate transient read timeouts (sockets with a read deadline
    /// set). `false` makes the first timeout surface immediately — the
    /// muxed client's starvation probe.
    lenient: bool,
}

impl Conn {
    fn connect(addr: &str) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn { reader: BufReader::new(stream), line: String::new(), lenient: true })
    }

    /// Read one line, retrying transient timeouts (when `lenient`)
    /// without losing bytes already pulled into `line`.
    fn read_line(&mut self) -> io::Result<&str> {
        self.line.clear();
        let mut retries = 0u32;
        loop {
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed")),
                Ok(_) => return Ok(self.line.trim_end_matches(['\r', '\n'])),
                // On timeout, bytes already read stay appended to
                // `line`; looping continues the same logical read.
                Err(e) if is_timeout(&e) && self.lenient && retries < SERVED_TIMEOUT_RETRIES => {
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, cmd: &Command) -> io::Result<()> {
        self.reader.get_mut().write_all(&encode_request(cmd))
    }

    /// Read a full `get` response; returns the number of VALUE stanzas.
    fn read_get_response(&mut self) -> io::Result<u32> {
        let mut hits = 0;
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(hits);
            }
            if line.starts_with("VALUE ") {
                hits += 1;
                // The data block is one line (decimal u32).
                self.read_line()?;
            } else if line.starts_with("ERROR") || line.contains("_ERROR") {
                return Err(io::Error::other(format!("server error: {line}")));
            } else {
                return Err(io::Error::other(format!("unexpected get reply: {line}")));
            }
        }
    }

    /// Read and validate the complete response to `req`; records hit/miss
    /// for gets.
    fn read_response(&mut self, req: &CacheRequest, stats: &mut ConnStats) -> io::Result<()> {
        match *req {
            CacheRequest::Get(_) => {
                if self.read_get_response()? > 0 {
                    stats.get_hits += 1;
                } else {
                    stats.get_misses += 1;
                }
            }
            CacheRequest::Set(..) => {
                let line = self.read_line()?;
                if line != "STORED" {
                    return Err(io::Error::other(format!("set failed: {line}")));
                }
            }
            CacheRequest::Delete(_) => {
                let line = self.read_line()?;
                if line != "DELETED" && line != "NOT_FOUND" {
                    return Err(io::Error::other(format!("delete failed: {line}")));
                }
            }
        }
        Ok(())
    }

    /// Issue one request, wait for its complete response; records hit/miss
    /// for gets.
    fn round_trip(&mut self, req: &CacheRequest, stats: &mut ConnStats) -> io::Result<()> {
        self.send(&request_command(req))?;
        self.read_response(req, stats)
    }
}

/// The wire command for one generated request.
fn request_command(req: &CacheRequest) -> Command {
    match *req {
        CacheRequest::Get(key) => Command::Get(vec![key]),
        CacheRequest::Set(key, value) => Command::Set { key, value, exptime: 0, noreply: false },
        CacheRequest::Delete(key) => Command::Delete { key, noreply: false },
    }
}

/// The key universe the generator draws from.
pub fn keyspace(keys: u32) -> KeySpace {
    KeySpace::new(keys, 4, 64)
}

/// Pre-populate every initial key over one connection (`set k 0 0 …`).
fn preload(addr: &str, ks: &KeySpace) -> io::Result<()> {
    let mut conn = Conn::connect(addr)?;
    for i in 0..ks.total_initial() {
        let key: Key = ks.initial_key(i);
        conn.send(&Command::Set { key, value: key ^ 0x5aa5_5aa5, exptime: 0, noreply: false })?;
        let line = conn.read_line()?;
        if line != "STORED" {
            return Err(io::Error::other(format!("preload set failed: {line}")));
        }
    }
    Ok(())
}

/// One connection's closed loop: send, await the response, repeat.
/// Latency is the full round trip.
fn run_conn_closed(addr: &str, stream: &[CacheRequest]) -> io::Result<ConnStats> {
    let mut conn = Conn::connect(addr)?;
    let mut stats =
        ConnStats { latencies_ns: Vec::with_capacity(stream.len()), ..Default::default() };
    for req in stream {
        let t0 = Instant::now();
        conn.round_trip(req, &mut stats)?;
        stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(stats)
}

/// One client thread's sliding-window loop over a shard of connections:
/// every connection keeps up to `window` requests outstanding
/// (memcached pipelining), and each round the thread reads one response
/// and tops the window back up on every connection in turn. Still
/// closed-loop per connection (bounded outstanding), but many
/// connections share one client thread, so the generator stays off the
/// scheduler's back at connection counts where thread-per-connection
/// clients would themselves be the bottleneck.
///
/// Because every connection is held open for the whole run, a server
/// whose worker pool is smaller than the connection count never serves
/// the surplus: a connection whose *first* response misses the starve
/// deadline is closed and counted in `starved_conns`, and its remaining
/// requests go unserved. Served connections keep a generous retry
/// allowance so a scheduling hiccup is not misread as starvation.
fn run_conns_muxed(
    addr: &str,
    streams: &[Vec<CacheRequest>],
    window: u32,
    starve_timeout: Duration,
) -> io::Result<ConnStats> {
    let window = window.max(1) as usize;
    let mut conns = Vec::with_capacity(streams.len());
    for _ in streams {
        let mut conn = Conn::connect(addr)?;
        conn.reader.get_ref().set_read_timeout(Some(starve_timeout))?;
        conn.lenient = false; // first response decides adoption
        conns.push(conn);
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut stats = ConnStats { latencies_ns: Vec::with_capacity(total), ..Default::default() };
    // Per-connection cursors, in-flight send timestamps, and liveness.
    let mut next_send = vec![0usize; streams.len()];
    let mut next_read = vec![0usize; streams.len()];
    let mut sent_at: Vec<std::collections::VecDeque<Instant>> =
        streams.iter().map(|_| std::collections::VecDeque::with_capacity(window)).collect();
    let mut starved = vec![false; streams.len()];
    // Fill every connection's window.
    for (i, stream) in streams.iter().enumerate() {
        while next_send[i] < stream.len().min(window) {
            sent_at[i].push_back(Instant::now());
            conns[i].send(&request_command(&stream[next_send[i]]))?;
            next_send[i] += 1;
        }
    }
    let mut done = 0;
    let mut remaining = total;
    while done < remaining {
        for (i, stream) in streams.iter().enumerate() {
            if starved[i] || next_read[i] == next_send[i] {
                continue; // dead, or nothing in flight
            }
            match conns[i].read_response(&stream[next_read[i]], &mut stats) {
                Ok(()) => {}
                Err(e) if is_timeout(&e) && !conns[i].lenient => {
                    // Never answered: the server's worker pool is full
                    // and this connection will not be adopted. Close it;
                    // its unserved requests leave the denominator.
                    starved[i] = true;
                    stats.starved_conns += 1;
                    remaining -= stream.len() - next_read[i];
                    let _ = conns[i].reader.get_ref().shutdown(std::net::Shutdown::Both);
                    continue;
                }
                Err(e) => return Err(e),
            }
            conns[i].lenient = true; // adopted: timeouts are hiccups now
            let t0 = sent_at[i].pop_front().expect("in-flight timestamp");
            stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
            next_read[i] += 1;
            done += 1;
            if next_send[i] < stream.len() {
                sent_at[i].push_back(Instant::now());
                conns[i].send(&request_command(&stream[next_send[i]]))?;
                next_send[i] += 1;
            }
        }
    }
    Ok(stats)
}

/// One connection's open loop: a writer thread sends each request at its
/// scheduled due time whether or not earlier responses have arrived; this
/// thread reads responses in order. Latency runs from the request's *due*
/// time to its response, so falling behind schedule is charged to the
/// server, not hidden by a stalled arrival process.
fn run_conn_open(addr: &str, stream: Vec<CacheRequest>, pace: OpenLoop) -> io::Result<ConnStats> {
    let sock = TcpStream::connect(addr)?;
    sock.set_nodelay(true)?;
    let mut wr = sock.try_clone()?;
    let reqs = Arc::new(stream);
    let start = Instant::now();
    let writer = {
        let reqs = Arc::clone(&reqs);
        std::thread::spawn(move || -> io::Result<()> {
            for (i, req) in reqs.iter().enumerate() {
                let due = Duration::from_nanos(pace.offset_ns(i as u32));
                let elapsed = start.elapsed();
                if elapsed < due {
                    std::thread::sleep(due - elapsed);
                }
                wr.write_all(&encode_request(&request_command(req)))?;
            }
            Ok(())
        })
    };
    let mut conn = Conn { reader: BufReader::new(sock), line: String::new(), lenient: true };
    let mut stats =
        ConnStats { latencies_ns: Vec::with_capacity(reqs.len()), ..Default::default() };
    for (i, req) in reqs.iter().enumerate() {
        conn.read_response(req, &mut stats)?;
        let due_ns = pace.offset_ns(i as u32);
        let lat = (start.elapsed().as_nanos() as u64).saturating_sub(due_ns);
        stats.latencies_ns.push(lat);
    }
    writer.join().expect("open-loop writer panicked")?;
    Ok(stats)
}

/// Run the workload and assemble the report.
pub fn run(opts: &LoadgenOpts) -> io::Result<LoadReport> {
    let ks = keyspace(opts.keys);
    if opts.preload {
        preload(&opts.addr, &ks)?;
    }
    let spec = RequestSpec {
        seed: opts.seed,
        conns: opts.conns,
        per_conn: opts.per_conn,
        dist: opts.dist,
        mix: opts.mix,
    };
    let mut streams = spec.generate(&ks);
    let pace = opts.rate.and_then(|total| OpenLoop::split_total(total, opts.conns));
    let mux = pace.is_none() && opts.client_threads > 0 && opts.client_threads < opts.conns;

    let started = Instant::now();
    let mut handles = Vec::new();
    if mux {
        let shard = streams.len().div_ceil(opts.client_threads as usize);
        for (t, chunk) in streams.chunks(shard).enumerate() {
            let addr = opts.addr.clone();
            let chunk = chunk.to_vec();
            let window = opts.pipeline;
            let starve = Duration::from_millis(opts.starve_timeout_ms.max(1));
            handles.push(
                std::thread::Builder::new()
                    .name(format!("loadgen-mux-{t}"))
                    .spawn(move || run_conns_muxed(&addr, &chunk, window, starve))
                    .expect("spawn loadgen thread"),
            );
        }
    } else {
        for (c, stream) in streams.drain(..).enumerate() {
            let addr = opts.addr.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("loadgen-{c}"))
                    .spawn(move || -> io::Result<ConnStats> {
                        match pace {
                            Some(p) => run_conn_open(&addr, stream, p),
                            None => run_conn_closed(&addr, &stream),
                        }
                    })
                    .expect("spawn loadgen thread"),
            );
        }
    }
    let mut latencies = Vec::new();
    let mut get_hits = 0u64;
    let mut get_misses = 0u64;
    let mut starved_conns = 0u32;
    for h in handles {
        let stats = h.join().expect("loadgen thread panicked")?;
        latencies.extend_from_slice(&stats.latencies_ns);
        get_hits += stats.get_hits;
        get_misses += stats.get_misses;
        starved_conns += stats.starved_conns;
    }
    let elapsed_s = started.elapsed().as_secs_f64();

    if opts.shutdown {
        let mut conn = Conn::connect(&opts.addr)?;
        conn.send(&Command::Shutdown)?;
        let _ = conn.read_line(); // "OK"
    }

    latencies.sort_unstable();
    let total_ops = latencies.len() as u64;
    Ok(LoadReport {
        experiment: "serve_throughput".into(),
        backend: "native".into(),
        conns: opts.conns,
        per_conn: opts.per_conn,
        total_ops,
        elapsed_s,
        ops_per_sec: if elapsed_s > 0.0 { total_ops as f64 / elapsed_s } else { 0.0 },
        p50_us: percentile_us(&latencies, 50.0),
        p95_us: percentile_us(&latencies, 95.0),
        p99_us: percentile_us(&latencies, 99.0),
        get_hits,
        get_misses,
        mix: opts.mix.label(),
        seed: opts.seed,
        mode: if pace.is_some() { "open".into() } else { "closed".into() },
        offered_rate: opts.rate,
        served_conns: opts.conns - starved_conns,
        starved_conns,
    })
}

/// Nearest-rank percentile over sorted nanosecond samples, in µs.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_us(&ns, 50.0), 50.0);
        assert_eq!(percentile_us(&ns, 95.0), 95.0);
        assert_eq!(percentile_us(&ns, 99.0), 99.0);
        assert_eq!(percentile_us(&ns, 100.0), 100.0);
        assert_eq!(percentile_us(&[], 50.0), 0.0);
        assert_eq!(percentile_us(&[7_500], 50.0), 7.5);
    }

    #[test]
    fn report_serializes() {
        let r = LoadReport {
            experiment: "serve_throughput".into(),
            backend: "native".into(),
            conns: 2,
            per_conn: 10,
            total_ops: 20,
            elapsed_s: 0.5,
            ops_per_sec: 40.0,
            p50_us: 1.0,
            p95_us: 2.0,
            p99_us: 3.0,
            get_hits: 5,
            get_misses: 6,
            mix: "90-9-1".into(),
            seed: 42,
            mode: "closed".into(),
            offered_rate: None,
            served_conns: 2,
            starved_conns: 0,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"backend\":\"native\""));
        assert!(json.contains("\"ops_per_sec\""));
    }
}
