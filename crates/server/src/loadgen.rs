//! The `hybrids-loadgen` client: drives a running `hybrids-server` with
//! deterministic request streams and reports throughput and latency
//! percentiles.
//!
//! Request streams come from [`workloads::RequestSpec`] — a pure function
//! of the seed — so two runs against the same server state issue identical
//! byte sequences. Each connection runs closed-loop (send one request,
//! read its full response, repeat) on its own OS thread; per-request
//! round-trip latencies are merged across connections for the percentile
//! summary, and throughput is total requests over wall-clock time.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use workloads::{CacheMix, CacheRequest, Key, KeyDist, KeySpace, RequestSpec};

use crate::proto::{encode_request, Command};

/// Load-generation options.
#[derive(Debug, Clone)]
pub struct LoadgenOpts {
    /// Server address, e.g. `127.0.0.1:11211`.
    pub addr: String,
    /// Concurrent connections (one OS thread each).
    pub conns: u32,
    /// Timed requests per connection.
    pub per_conn: u32,
    /// Root seed for the request streams.
    pub seed: u64,
    /// get/set/delete percentages.
    pub mix: CacheMix,
    /// Key popularity for get/set/delete targets.
    pub dist: KeyDist,
    /// Size of the key universe (initial keys; multiple of 4).
    pub keys: u32,
    /// Pre-populate the universe with `set`s before the timed phase.
    pub preload: bool,
    /// Send `shutdown` after the run (CI teardown).
    pub shutdown: bool,
}

impl Default for LoadgenOpts {
    fn default() -> Self {
        LoadgenOpts {
            addr: "127.0.0.1:11211".into(),
            conns: 4,
            per_conn: 5_000,
            seed: 42,
            mix: CacheMix::read_heavy(),
            dist: KeyDist::Zipfian,
            keys: 4096,
            preload: true,
            shutdown: false,
        }
    }
}

/// The run summary written to `BENCH_9.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Artifact tag (`serve_throughput`).
    pub experiment: String,
    /// Memory backend serving the requests (`native`).
    pub backend: String,
    /// Connections driven.
    pub conns: u32,
    /// Timed requests per connection.
    pub per_conn: u32,
    /// Total timed requests completed.
    pub total_ops: u64,
    /// Wall-clock seconds of the timed phase.
    pub elapsed_s: f64,
    /// Served requests per second.
    pub ops_per_sec: f64,
    /// Median round-trip latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile round-trip latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile round-trip latency, microseconds.
    pub p99_us: f64,
    /// `get` requests that returned a value.
    pub get_hits: u64,
    /// `get` requests that missed.
    pub get_misses: u64,
    /// get/set/delete mix label.
    pub mix: String,
    /// Root seed.
    pub seed: u64,
}

/// Per-connection tallies folded into the report.
#[derive(Debug, Default)]
struct ConnStats {
    latencies_ns: Vec<u64>,
    get_hits: u64,
    get_misses: u64,
}

/// A line-framed client connection.
struct Conn {
    reader: BufReader<TcpStream>,
    line: String,
}

impl Conn {
    fn connect(addr: &str) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn { reader: BufReader::new(stream), line: String::new() })
    }

    fn send(&mut self, cmd: &Command) -> io::Result<()> {
        self.reader.get_mut().write_all(&encode_request(cmd))
    }

    fn read_line(&mut self) -> io::Result<&str> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(self.line.trim_end_matches(['\r', '\n']))
    }

    /// Read a full `get` response; returns the number of VALUE stanzas.
    fn read_get_response(&mut self) -> io::Result<u32> {
        let mut hits = 0;
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(hits);
            }
            if line.starts_with("VALUE ") {
                hits += 1;
                // The data block is one line (decimal u32).
                self.read_line()?;
            } else if line.starts_with("ERROR") || line.contains("_ERROR") {
                return Err(io::Error::other(format!("server error: {line}")));
            } else {
                return Err(io::Error::other(format!("unexpected get reply: {line}")));
            }
        }
    }

    /// Issue one request, wait for its complete response; records hit/miss
    /// for gets.
    fn round_trip(&mut self, req: &CacheRequest, stats: &mut ConnStats) -> io::Result<()> {
        match *req {
            CacheRequest::Get(key) => {
                self.send(&Command::Get(vec![key]))?;
                if self.read_get_response()? > 0 {
                    stats.get_hits += 1;
                } else {
                    stats.get_misses += 1;
                }
            }
            CacheRequest::Set(key, value) => {
                self.send(&Command::Set { key, value, noreply: false })?;
                let line = self.read_line()?;
                if line != "STORED" {
                    return Err(io::Error::other(format!("set failed: {line}")));
                }
            }
            CacheRequest::Delete(key) => {
                self.send(&Command::Delete { key, noreply: false })?;
                let line = self.read_line()?;
                if line != "DELETED" && line != "NOT_FOUND" {
                    return Err(io::Error::other(format!("delete failed: {line}")));
                }
            }
        }
        Ok(())
    }
}

/// The key universe the generator draws from.
pub fn keyspace(keys: u32) -> KeySpace {
    KeySpace::new(keys, 4, 64)
}

/// Pre-populate every initial key over one connection (`set k 0 0 …`).
fn preload(addr: &str, ks: &KeySpace) -> io::Result<()> {
    let mut conn = Conn::connect(addr)?;
    for i in 0..ks.total_initial() {
        let key: Key = ks.initial_key(i);
        conn.send(&Command::Set { key, value: key ^ 0x5aa5_5aa5, noreply: false })?;
        let line = conn.read_line()?;
        if line != "STORED" {
            return Err(io::Error::other(format!("preload set failed: {line}")));
        }
    }
    Ok(())
}

/// Run the workload and assemble the report.
pub fn run(opts: &LoadgenOpts) -> io::Result<LoadReport> {
    let ks = keyspace(opts.keys);
    if opts.preload {
        preload(&opts.addr, &ks)?;
    }
    let spec = RequestSpec {
        seed: opts.seed,
        conns: opts.conns,
        per_conn: opts.per_conn,
        dist: opts.dist,
        mix: opts.mix,
    };
    let streams = spec.generate(&ks);

    let started = Instant::now();
    let mut handles = Vec::new();
    for (c, stream) in streams.into_iter().enumerate() {
        let addr = opts.addr.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{c}"))
                .spawn(move || -> io::Result<ConnStats> {
                    let mut conn = Conn::connect(&addr)?;
                    let mut stats = ConnStats {
                        latencies_ns: Vec::with_capacity(stream.len()),
                        ..Default::default()
                    };
                    for req in &stream {
                        let t0 = Instant::now();
                        conn.round_trip(req, &mut stats)?;
                        stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    }
                    Ok(stats)
                })
                .expect("spawn loadgen thread"),
        );
    }
    let mut latencies = Vec::new();
    let mut get_hits = 0u64;
    let mut get_misses = 0u64;
    for h in handles {
        let stats = h.join().expect("loadgen thread panicked")?;
        latencies.extend_from_slice(&stats.latencies_ns);
        get_hits += stats.get_hits;
        get_misses += stats.get_misses;
    }
    let elapsed_s = started.elapsed().as_secs_f64();

    if opts.shutdown {
        let mut conn = Conn::connect(&opts.addr)?;
        conn.send(&Command::Shutdown)?;
        let _ = conn.read_line(); // "OK"
    }

    latencies.sort_unstable();
    let total_ops = latencies.len() as u64;
    Ok(LoadReport {
        experiment: "serve_throughput".into(),
        backend: "native".into(),
        conns: opts.conns,
        per_conn: opts.per_conn,
        total_ops,
        elapsed_s,
        ops_per_sec: if elapsed_s > 0.0 { total_ops as f64 / elapsed_s } else { 0.0 },
        p50_us: percentile_us(&latencies, 50.0),
        p95_us: percentile_us(&latencies, 95.0),
        p99_us: percentile_us(&latencies, 99.0),
        get_hits,
        get_misses,
        mix: opts.mix.label(),
        seed: opts.seed,
    })
}

/// Nearest-rank percentile over sorted nanosecond samples, in µs.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_us(&ns, 50.0), 50.0);
        assert_eq!(percentile_us(&ns, 95.0), 95.0);
        assert_eq!(percentile_us(&ns, 99.0), 99.0);
        assert_eq!(percentile_us(&ns, 100.0), 100.0);
        assert_eq!(percentile_us(&[], 50.0), 0.0);
        assert_eq!(percentile_us(&[7_500], 50.0), 7.5);
    }

    #[test]
    fn report_serializes() {
        let r = LoadReport {
            experiment: "serve_throughput".into(),
            backend: "native".into(),
            conns: 2,
            per_conn: 10,
            total_ops: 20,
            elapsed_s: 0.5,
            ops_per_sec: 40.0,
            p50_us: 1.0,
            p95_us: 2.0,
            p99_us: 3.0,
            get_hits: 5,
            get_misses: 6,
            mix: "90-9-1".into(),
            seed: 42,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"backend\":\"native\""));
        assert!(json.contains("\"ops_per_sec\""));
    }
}
