//! Key expiry (`exptime`) for the memcached front end.
//!
//! The hash map under the cache stores bare `u32` values, so expiry
//! metadata lives beside it in a sharded host-side table mapping each key
//! to its **absolute** expiry time (unix seconds). memcached's `exptime`
//! encoding is honored exactly: `0` means never expire, values up to
//! 30 days are relative seconds from now, anything larger is an absolute
//! unix timestamp.
//!
//! Expiry is *lazy*, as in memcached: nothing scans for dead keys. A
//! `get`/`gets` that touches an expired key treats it as a miss, removes
//! the key from the map and the table, and bumps the `serve_expired`
//! counter. Both the blocking and the evented runtime route every request
//! through [`crate::service::Service`], so TTL behavior is identical
//! across runtimes by construction.
//!
//! The clock is injectable ([`Clock::Manual`]) so tests can advance time
//! deterministically instead of sleeping.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use workloads::Key;

/// memcached's relative/absolute `exptime` pivot: 30 days in seconds.
pub const EXPTIME_PIVOT: u32 = 60 * 60 * 24 * 30;

/// Shard count for the expiry table (keys hash across shards so the hot
/// `get` path never funnels through one lock).
const SHARDS: usize = 16;

/// Time source for expiry decisions.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Real wall-clock unix time.
    System,
    /// A test clock read from a shared counter of unix seconds.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A manual clock starting at `now` unix seconds, plus the handle that
    /// advances it.
    pub fn manual(now: u64) -> (Clock, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(now));
        (Clock::Manual(Arc::clone(&cell)), cell)
    }

    /// Current unix time in whole seconds.
    pub fn now(&self) -> u64 {
        match self {
            Clock::System => {
                SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
            }
            Clock::Manual(cell) => cell.load(Ordering::Acquire),
        }
    }
}

/// Sharded key → absolute-expiry table.
pub struct TtlTable {
    shards: Vec<Mutex<HashMap<Key, u64>>>,
    clock: Clock,
}

impl TtlTable {
    /// Empty table over the given clock.
    pub fn new(clock: Clock) -> Self {
        TtlTable { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(), clock }
    }

    fn shard(&self, key: Key) -> &Mutex<HashMap<Key, u64>> {
        // Fibonacci hash of the key picks the shard; the table is small,
        // the point is only to spread lock traffic.
        let h = (key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % SHARDS]
    }

    /// Decode a raw memcached `exptime` into an absolute unix-seconds
    /// expiry (`None` = never expires).
    pub fn absolute_expiry(&self, exptime: u32) -> Option<u64> {
        match exptime {
            0 => None,
            e if e <= EXPTIME_PIVOT => Some(self.clock.now() + e as u64),
            e => Some(e as u64),
        }
    }

    /// Record the expiry of a freshly stored key (a `set` with
    /// `exptime = 0` clears any previous expiry, as in memcached).
    pub fn on_set(&self, key: Key, exptime: u32) {
        let mut shard = self.shard(key).lock();
        match self.absolute_expiry(exptime) {
            Some(at) => {
                shard.insert(key, at);
            }
            None => {
                shard.remove(&key);
            }
        }
    }

    /// Forget a key's expiry (on `delete`, or after lazy expiry).
    pub fn on_remove(&self, key: Key) {
        self.shard(key).lock().remove(&key);
    }

    /// Whether `key` has an expiry that has already passed. memcached
    /// expires at the boundary second: a key set with `exptime = 1`
    /// is dead once `now >= stored_at + 1`.
    pub fn is_expired(&self, key: Key) -> bool {
        let shard = self.shard(key).lock();
        match shard.get(&key) {
            Some(&at) => self.clock.now() >= at,
            None => false,
        }
    }

    /// Number of keys currently carrying an expiry (observability only).
    pub fn tracked(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exptime_decoding_follows_memcached() {
        let (clock, cell) = Clock::manual(1_000_000);
        let t = TtlTable::new(clock);
        assert_eq!(t.absolute_expiry(0), None);
        assert_eq!(t.absolute_expiry(5), Some(1_000_005));
        assert_eq!(t.absolute_expiry(EXPTIME_PIVOT), Some(1_000_000 + EXPTIME_PIVOT as u64));
        // Past the pivot the field is an absolute unix timestamp.
        assert_eq!(t.absolute_expiry(EXPTIME_PIVOT + 1), Some(EXPTIME_PIVOT as u64 + 1));
        cell.store(2_000_000, Ordering::Release);
        assert_eq!(t.absolute_expiry(5), Some(2_000_005));
    }

    #[test]
    fn lazy_expiry_at_the_boundary_second() {
        let (clock, cell) = Clock::manual(100);
        let t = TtlTable::new(clock);
        t.on_set(7, 10);
        assert!(!t.is_expired(7));
        cell.store(109, Ordering::Release);
        assert!(!t.is_expired(7), "one second early");
        cell.store(110, Ordering::Release);
        assert!(t.is_expired(7), "expires at the boundary");
        // Untracked keys never expire.
        assert!(!t.is_expired(8));
    }

    #[test]
    fn set_zero_clears_and_remove_forgets() {
        let (clock, cell) = Clock::manual(100);
        let t = TtlTable::new(clock);
        t.on_set(7, 10);
        assert_eq!(t.tracked(), 1);
        // Overwriting with exptime 0 must clear the old expiry.
        t.on_set(7, 0);
        assert_eq!(t.tracked(), 0);
        cell.store(1_000, Ordering::Release);
        assert!(!t.is_expired(7));

        t.on_set(9, 5);
        t.on_remove(9);
        assert_eq!(t.tracked(), 0);
    }

    #[test]
    fn absolute_past_expiry_is_immediately_dead() {
        // An absolute timestamp in the past (the CI smoke's trick for a
        // deterministic expiring key) is expired from the first get.
        let t = TtlTable::new(Clock::System);
        t.on_set(3, EXPTIME_PIVOT + 1); // unix second 2_592_001 ≈ 1970
        assert!(t.is_expired(3));
    }

    #[test]
    fn shards_spread_keys() {
        let (clock, _) = Clock::manual(0);
        let t = TtlTable::new(clock);
        for k in 1..=1_000u32 {
            t.on_set(k, 60);
        }
        assert_eq!(t.tracked(), 1_000);
        let nonempty = t.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(nonempty > SHARDS / 2, "keys concentrated in {nonempty} shards");
    }
}
