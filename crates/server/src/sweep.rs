//! Connection-scaling sweep: blocking vs evented runtime, same machine,
//! same workload, increasing connection counts.
//!
//! For each connection count the sweep starts a fresh in-process server
//! per runtime, drives it with the deterministic loadgen mix over
//! held-open connections (the multiplexed client), and records a
//! [`SweepPoint`]. The thread-count asymmetry is the experiment:
//!
//! * **blocking** needs one worker (one host thread of the native
//!   machine) *per connection* — a worker owns its connection until it
//!   closes — but workers are publication-list clients, and the
//!   machine's fixed scratchpad caps them at
//!   [`max_viable_workers`] (32 on
//!   the default machine at 4 lanes). Its point records
//!   `workers == min(conns, max_viable)`: past the cap, surplus
//!   connections are *never adopted* and show up as `starved_conns`,
//!   with only the adopted connections' requests completing.
//! * **evented** serves every connection count with the same small fixed
//!   worker pool behind two reactors — multiplexing is exactly what
//!   frees it from the scratchpad ceiling.
//!
//! The [`SweepSummary`] compares the two at the largest swept connection
//! count; `BENCH_10.json` is this report serialized.

use std::io;

use serde::{Deserialize, Serialize};

use workloads::{CacheMix, KeyDist};

use nmp_sim::Config;

use crate::loadgen::{self, LoadgenOpts};
use crate::runtime::{EventedOpts, RuntimeKind};
use crate::server::{max_viable_workers, Server, ServerOpts};
use crate::ttl::Clock;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Connection counts to sweep (each measured for both runtimes).
    pub conn_counts: Vec<u32>,
    /// Total timed requests per point, split evenly across connections.
    pub total_ops: u32,
    /// Key universe size.
    pub keys: u32,
    /// Root seed for the request streams.
    pub seed: u64,
    /// Worker pool size for the evented runtime (blocking always uses
    /// one worker per connection).
    pub evented_workers: usize,
    /// Optional open-loop offered rate (requests/second, total); `None`
    /// runs closed-loop.
    pub rate: Option<u32>,
    /// Closed-loop client threads multiplexing the connections (`0` =
    /// one client thread per connection). The sweep defaults to a small
    /// pool so the *generator* stays off the scheduler's back and the
    /// measured difference is the server runtimes', not the client's.
    pub client_threads: u32,
    /// Outstanding requests per connection (memcached pipelining) in the
    /// multiplexed client; matching the server's `max_inflight` keeps
    /// every connection's offload lanes busy.
    pub pipeline: u32,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            conn_counts: vec![4, 64, 512],
            total_ops: 25_600,
            keys: 4096,
            seed: 42,
            evented_workers: 4,
            rate: None,
            client_threads: 8,
            pipeline: 4,
        }
    }
}

/// One (runtime, connection count) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// `blocking` or `evented`.
    pub runtime: String,
    /// Concurrent client connections driven.
    pub conns: u32,
    /// Server worker threads (host cores of the native machine).
    pub workers: usize,
    /// Timed requests completed (starved connections' requests excluded).
    pub total_ops: u64,
    /// Connections the server answered at least once.
    pub served_conns: u32,
    /// Connections never adopted by the server (its worker pool was
    /// full); their requests went unserved.
    pub starved_conns: u32,
    /// Wall-clock seconds of the timed phase.
    pub elapsed_s: f64,
    /// Served requests per second.
    pub ops_per_sec: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

/// Blocking-vs-evented comparison at the largest swept connection count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSummary {
    /// The connection count the comparison is taken at.
    pub conns: u32,
    /// Blocking's worker (thread) count at that point — its max viable
    /// (capped by the machine's publication-list scratchpad).
    pub blocking_workers: usize,
    /// Blocking throughput there.
    pub blocking_ops_per_sec: f64,
    /// Connections blocking never served at that point.
    pub blocking_starved_conns: u32,
    /// Evented's worker count.
    pub evented_workers: usize,
    /// Evented throughput there.
    pub evented_ops_per_sec: f64,
    /// `evented_ops_per_sec / blocking_ops_per_sec`.
    pub evented_vs_blocking: f64,
}

/// The artifact written to `BENCH_10.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Artifact tag (`conn_scaling`).
    pub experiment: String,
    /// The PR that introduced the artifact.
    pub pr: u32,
    /// Memory backend serving the requests (`native`).
    pub backend: String,
    /// get/set/delete mix label.
    pub mix: String,
    /// `closed` or `open` loadgen arrivals.
    pub mode: String,
    /// Client threads multiplexing the connections (`0` = one per
    /// connection).
    pub client_threads: u32,
    /// Outstanding requests per connection in the multiplexed client.
    pub pipeline: u32,
    /// Every (runtime, conns) measurement.
    pub points: Vec<SweepPoint>,
    /// Head-to-head at the largest connection count.
    pub summary: SweepSummary,
}

/// Measure one (runtime, conns, workers) point on a fresh server.
fn run_point(
    runtime: RuntimeKind,
    conns: u32,
    workers: usize,
    opts: &SweepOpts,
) -> io::Result<SweepPoint> {
    let server = Server::start(&ServerOpts {
        addr: "127.0.0.1:0".into(),
        workers,
        buckets: 1024,
        max_inflight: 4,
        seed: opts.seed,
        runtime,
        evented: EventedOpts::default(),
        clock: Clock::System,
    })?;
    let report = loadgen::run(&LoadgenOpts {
        addr: server.addr().to_string(),
        conns,
        per_conn: (opts.total_ops / conns).max(1),
        seed: opts.seed,
        mix: CacheMix::read_heavy(),
        dist: KeyDist::Zipfian,
        keys: opts.keys,
        preload: true,
        shutdown: true,
        rate: opts.rate,
        client_threads: opts.client_threads,
        pipeline: opts.pipeline,
        starve_timeout_ms: 250,
    })?;
    server.wait();
    Ok(SweepPoint {
        runtime: match runtime {
            RuntimeKind::Blocking => "blocking".into(),
            RuntimeKind::Evented => "evented".into(),
        },
        conns,
        workers,
        total_ops: report.total_ops,
        served_conns: report.served_conns,
        starved_conns: report.starved_conns,
        elapsed_s: report.elapsed_s,
        ops_per_sec: report.ops_per_sec,
        p50_us: report.p50_us,
        p95_us: report.p95_us,
        p99_us: report.p99_us,
    })
}

/// Run the full sweep and assemble the report.
pub fn run(opts: &SweepOpts) -> io::Result<SweepReport> {
    assert!(!opts.conn_counts.is_empty(), "sweep needs at least one connection count");
    let mut points = Vec::new();
    // The machine's publication-list ceiling: blocking cannot field more
    // host threads than this no matter the connection count.
    let cap = max_viable_workers(&Config::default_scaled(), 4);
    for &conns in &opts.conn_counts {
        for runtime in [RuntimeKind::Blocking, RuntimeKind::Evented] {
            let workers = match runtime {
                RuntimeKind::Blocking => (conns as usize).min(cap),
                RuntimeKind::Evented => opts.evented_workers,
            };
            eprintln!("sweep: {runtime:?} conns={conns} workers={workers}…");
            points.push(run_point(runtime, conns, workers, opts)?);
        }
    }

    let max_conns = *opts.conn_counts.iter().max().unwrap();
    let at = |rt: &str| {
        points.iter().find(|p| p.runtime == rt && p.conns == max_conns).expect("sweep point exists")
    };
    let blocking = at("blocking");
    let evented = at("evented");
    let summary = SweepSummary {
        conns: max_conns,
        blocking_workers: blocking.workers,
        blocking_ops_per_sec: blocking.ops_per_sec,
        blocking_starved_conns: blocking.starved_conns,
        evented_workers: evented.workers,
        evented_ops_per_sec: evented.ops_per_sec,
        evented_vs_blocking: if blocking.ops_per_sec > 0.0 {
            evented.ops_per_sec / blocking.ops_per_sec
        } else {
            0.0
        },
    };
    Ok(SweepReport {
        experiment: "conn_scaling".into(),
        pr: 10,
        backend: "native".into(),
        mix: CacheMix::read_heavy().label(),
        mode: if opts.rate.is_some() { "open".into() } else { "closed".into() },
        client_threads: opts.client_threads,
        pipeline: opts.pipeline,
        points,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_summary() {
        let p = SweepPoint {
            runtime: "evented".into(),
            conns: 4,
            workers: 2,
            total_ops: 100,
            served_conns: 4,
            starved_conns: 0,
            elapsed_s: 0.5,
            ops_per_sec: 200.0,
            p50_us: 10.0,
            p95_us: 20.0,
            p99_us: 30.0,
        };
        let r = SweepReport {
            experiment: "conn_scaling".into(),
            pr: 10,
            backend: "native".into(),
            mix: "90-9-1".into(),
            mode: "closed".into(),
            client_threads: 8,
            pipeline: 4,
            points: vec![p],
            summary: SweepSummary {
                conns: 4,
                blocking_workers: 4,
                blocking_ops_per_sec: 100.0,
                blocking_starved_conns: 0,
                evented_workers: 2,
                evented_ops_per_sec: 200.0,
                evented_vs_blocking: 2.0,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"experiment\":\"conn_scaling\""));
        assert!(json.contains("\"evented_vs_blocking\":"));
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.summary.evented_vs_blocking, 2.0);
        assert_eq!(back.points.len(), 1);
    }
}
