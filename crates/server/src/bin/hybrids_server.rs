//! `hybrids-server` — serve a `HybridHashMap` over the memcached text
//! protocol, on the native memory backend.
//!
//! ```text
//! hybrids-server [--addr 127.0.0.1:11211] [--workers 4]
//!                [--buckets 1024] [--max-inflight 4] [--seed 42]
//!                [--runtime blocking|evented] [--reactors 2]
//!                [--poller epoll|poll] [--idle-timeout-ms 60000]
//! ```
//!
//! `--runtime blocking` (the default) serves one connection per worker
//! thread; `--runtime evented` multiplexes all connections over epoll
//! reactors while the same workers execute requests (DESIGN.md §4.12).
//!
//! The process runs until a client sends the `shutdown` verb (or the
//! process is killed). On clean shutdown it prints a one-line summary of
//! served traffic to stdout.

use std::process::exit;
use std::sync::atomic::Ordering;

use hybrids_server::{PollerKind, RuntimeKind, Server, ServerOpts};

fn usage() -> ! {
    eprintln!(
        "usage: hybrids-server [--addr HOST:PORT] [--workers N] [--buckets N] \
         [--max-inflight N] [--seed N] [--runtime blocking|evented] [--reactors N] \
         [--poller epoll|poll] [--idle-timeout-ms MS]"
    );
    exit(2)
}

fn main() {
    let mut opts = ServerOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = val("--addr"),
            "--workers" => opts.workers = val("--workers").parse().expect("--workers: usize"),
            "--buckets" => opts.buckets = val("--buckets").parse().expect("--buckets: u32"),
            "--max-inflight" => {
                opts.max_inflight = val("--max-inflight").parse().expect("--max-inflight: usize")
            }
            "--seed" => opts.seed = val("--seed").parse().expect("--seed: u64"),
            "--runtime" => {
                opts.runtime = RuntimeKind::parse(&val("--runtime"))
                    .unwrap_or_else(|| panic!("--runtime: blocking|evented"))
            }
            "--reactors" => {
                opts.evented.reactors = val("--reactors").parse().expect("--reactors: usize")
            }
            "--poller" => {
                opts.evented.poller = PollerKind::parse(&val("--poller"))
                    .unwrap_or_else(|| panic!("--poller: epoll|poll"))
            }
            "--idle-timeout-ms" => {
                opts.evented.idle_timeout_ms =
                    val("--idle-timeout-ms").parse().expect("--idle-timeout-ms: u64")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }

    let server = match Server::start(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hybrids-server: bind {} failed: {e}", opts.addr);
            exit(1)
        }
    };
    println!(
        "hybrids-server listening on {} ({} workers, {} buckets, runtime {:?}, backend native)",
        server.addr(),
        opts.workers,
        opts.buckets,
        opts.runtime,
    );
    let (map, counters) = server.wait();
    map.check_invariants();
    println!(
        "hybrids-server done: {} conns, {} get hits, {} get misses, {} sets, \
         {} deletes, {} protocol errors, {} expired serves, {} resident keys",
        counters.conns.load(Ordering::Relaxed),
        counters.get_hits.load(Ordering::Relaxed),
        counters.get_misses.load(Ordering::Relaxed),
        counters.sets.load(Ordering::Relaxed),
        counters.deletes.load(Ordering::Relaxed),
        counters.proto_errors.load(Ordering::Relaxed),
        counters.serve_expired.load(Ordering::Relaxed),
        map.collect().len(),
    );
}
