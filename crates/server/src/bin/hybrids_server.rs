//! `hybrids-server` — serve a `HybridHashMap` over the memcached text
//! protocol, on the native memory backend.
//!
//! ```text
//! hybrids-server [--addr 127.0.0.1:11211] [--workers 4]
//!                [--buckets 1024] [--max-inflight 4] [--seed 42]
//! ```
//!
//! The process runs until a client sends the `shutdown` verb (or the
//! process is killed). On clean shutdown it prints a one-line summary of
//! served traffic to stdout.

use std::process::exit;
use std::sync::atomic::Ordering;

use hybrids_server::{Server, ServerOpts};

fn usage() -> ! {
    eprintln!(
        "usage: hybrids-server [--addr HOST:PORT] [--workers N] [--buckets N] \
         [--max-inflight N] [--seed N]"
    );
    exit(2)
}

fn main() {
    let mut opts = ServerOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = val("--addr"),
            "--workers" => opts.workers = val("--workers").parse().expect("--workers: usize"),
            "--buckets" => opts.buckets = val("--buckets").parse().expect("--buckets: u32"),
            "--max-inflight" => {
                opts.max_inflight = val("--max-inflight").parse().expect("--max-inflight: usize")
            }
            "--seed" => opts.seed = val("--seed").parse().expect("--seed: u64"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }

    let server = match Server::start(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hybrids-server: bind {} failed: {e}", opts.addr);
            exit(1)
        }
    };
    println!(
        "hybrids-server listening on {} ({} workers, {} buckets, backend native)",
        server.addr(),
        opts.workers,
        opts.buckets
    );
    let (map, counters) = server.wait();
    map.check_invariants();
    println!(
        "hybrids-server done: {} conns, {} get hits, {} get misses, {} sets, \
         {} deletes, {} protocol errors, {} resident keys",
        counters.conns.load(Ordering::Relaxed),
        counters.get_hits.load(Ordering::Relaxed),
        counters.get_misses.load(Ordering::Relaxed),
        counters.sets.load(Ordering::Relaxed),
        counters.deletes.load(Ordering::Relaxed),
        counters.proto_errors.load(Ordering::Relaxed),
        map.collect().len(),
    );
}
