//! `hybrids-loadgen` — drive a running `hybrids-server` with a
//! deterministic get/set/delete mix and write the throughput/latency
//! report to `BENCH_9.json`, or run the blocking-vs-evented
//! connection-scaling sweep into `BENCH_10.json`.
//!
//! ```text
//! hybrids-loadgen [--addr 127.0.0.1:11211] [--conns 4] [--ops 5000]
//!                 [--mix 90/9/1] [--dist zipfian|uniform] [--keys 4096]
//!                 [--seed 42] [--rate OPS_PER_SEC] [--no-preload]
//!                 [--shutdown] [--out BENCH_9.json]
//!
//! hybrids-loadgen --sweep [--sweep-conns 4,64,512] [--sweep-ops 25600]
//!                 [--evented-workers 4] [--rate OPS_PER_SEC]
//!                 [--keys 4096] [--seed 42] [--out BENCH_10.json]
//! ```
//!
//! `--ops` is per connection; `--rate` switches to open-loop arrivals
//! (total requests/second across connections, latency measured from each
//! request's scheduled due time). `--client-threads` multiplexes the
//! connections over a small client pool (closed-loop only; `0` = one
//! thread per connection). `--shutdown` sends the server the
//! `shutdown` verb after the run (CI teardown). `--sweep` starts its own
//! servers in-process — `--addr` is ignored. `--out -` prints the JSON to
//! stdout only.

use std::process::exit;

use hybrids_server::loadgen::{self, LoadgenOpts};
use hybrids_server::sweep::{self, SweepOpts};
use workloads::{CacheMix, KeyDist};

fn usage() -> ! {
    eprintln!(
        "usage: hybrids-loadgen [--addr HOST:PORT] [--conns N] [--ops N] [--mix G/S/D] \
         [--dist zipfian|uniform] [--keys N] [--seed N] [--rate N] [--client-threads N] \
         [--pipeline N] [--no-preload] [--shutdown] [--out PATH]\n       hybrids-loadgen --sweep \
         [--sweep-conns A,B,C] [--sweep-ops N] [--evented-workers N] [--rate N] \
         [--client-threads N] [--pipeline N] [--keys N] [--seed N] [--out PATH]"
    );
    exit(2)
}

fn main() {
    let mut opts = LoadgenOpts::default();
    let mut sweep_opts = SweepOpts::default();
    let mut do_sweep = false;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = val("--addr"),
            "--conns" => opts.conns = val("--conns").parse().expect("--conns: u32"),
            "--ops" => opts.per_conn = val("--ops").parse().expect("--ops: u32"),
            "--seed" => {
                let seed = val("--seed").parse().expect("--seed: u64");
                opts.seed = seed;
                sweep_opts.seed = seed;
            }
            "--keys" => {
                let keys = val("--keys").parse().expect("--keys: u32");
                opts.keys = keys;
                sweep_opts.keys = keys;
            }
            "--rate" => {
                let rate = val("--rate").parse().expect("--rate: u32");
                opts.rate = Some(rate);
                sweep_opts.rate = Some(rate);
            }
            "--client-threads" => {
                let n = val("--client-threads").parse().expect("--client-threads: u32");
                opts.client_threads = n;
                sweep_opts.client_threads = n;
            }
            "--pipeline" => {
                let n = val("--pipeline").parse().expect("--pipeline: u32");
                opts.pipeline = n;
                sweep_opts.pipeline = n;
            }
            "--mix" => {
                let s = val("--mix");
                opts.mix = CacheMix::parse(&s).unwrap_or_else(|| {
                    eprintln!("--mix wants get/set/delete percentages summing to 100, e.g. 90/9/1");
                    exit(2)
                });
            }
            "--dist" => {
                opts.dist = match val("--dist").as_str() {
                    "zipfian" => KeyDist::Zipfian,
                    "uniform" => KeyDist::Uniform,
                    other => {
                        eprintln!("--dist wants zipfian or uniform, got {other}");
                        exit(2)
                    }
                }
            }
            "--no-preload" => opts.preload = false,
            "--shutdown" => opts.shutdown = true,
            "--sweep" => do_sweep = true,
            "--sweep-conns" => {
                sweep_opts.conn_counts = val("--sweep-conns")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sweep-conns: comma-separated u32"))
                    .collect();
            }
            "--sweep-ops" => {
                sweep_opts.total_ops = val("--sweep-ops").parse().expect("--sweep-ops: u32")
            }
            "--evented-workers" => {
                sweep_opts.evented_workers =
                    val("--evented-workers").parse().expect("--evented-workers: usize")
            }
            "--out" => out_path = Some(val("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }

    let (json, line, out_path) = if do_sweep {
        let report = match sweep::run(&sweep_opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hybrids-loadgen: sweep failed: {e}");
                exit(1)
            }
        };
        let s = &report.summary;
        (
            serde_json::to_string_pretty(&report).expect("serialize sweep report"),
            format!(
                "hybrids-loadgen: at {} conns evented {:.0} ops/s vs blocking {:.0} ops/s \
                 ({:.1}x, blocking workers {}, blocking starved {} conns)",
                s.conns,
                s.evented_ops_per_sec,
                s.blocking_ops_per_sec,
                s.evented_vs_blocking,
                s.blocking_workers,
                s.blocking_starved_conns
            ),
            out_path.unwrap_or_else(|| "BENCH_10.json".into()),
        )
    } else {
        let report = match loadgen::run(&opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hybrids-loadgen: run against {} failed: {e}", opts.addr);
                exit(1)
            }
        };
        (
            serde_json::to_string(&report).expect("serialize report"),
            format!(
                "hybrids-loadgen: {:.0} ops/s, p50 {:.1}us p95 {:.1}us p99 {:.1}us",
                report.ops_per_sec, report.p50_us, report.p95_us, report.p99_us
            ),
            out_path.unwrap_or_else(|| "BENCH_9.json".into()),
        )
    };
    println!("{json}");
    if out_path != "-" {
        if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
            eprintln!("hybrids-loadgen: writing {out_path} failed: {e}");
            exit(1)
        }
        eprintln!("{line} -> {out_path}");
    }
}
