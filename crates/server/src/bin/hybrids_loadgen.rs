//! `hybrids-loadgen` — drive a running `hybrids-server` with a
//! deterministic get/set/delete mix and write the throughput/latency
//! report to `BENCH_9.json`.
//!
//! ```text
//! hybrids-loadgen [--addr 127.0.0.1:11211] [--conns 4] [--ops 5000]
//!                 [--mix 90/9/1] [--dist zipfian|uniform] [--keys 4096]
//!                 [--seed 42] [--no-preload] [--shutdown]
//!                 [--out BENCH_9.json]
//! ```
//!
//! `--ops` is per connection. `--shutdown` sends the server the
//! `shutdown` verb after the run (CI teardown). `--out -` prints the JSON
//! to stdout only.

use std::process::exit;

use hybrids_server::loadgen::{self, LoadgenOpts};
use workloads::{CacheMix, KeyDist};

fn usage() -> ! {
    eprintln!(
        "usage: hybrids-loadgen [--addr HOST:PORT] [--conns N] [--ops N] [--mix G/S/D] \
         [--dist zipfian|uniform] [--keys N] [--seed N] [--no-preload] [--shutdown] [--out PATH]"
    );
    exit(2)
}

fn main() {
    let mut opts = LoadgenOpts::default();
    let mut out_path = String::from("BENCH_9.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = val("--addr"),
            "--conns" => opts.conns = val("--conns").parse().expect("--conns: u32"),
            "--ops" => opts.per_conn = val("--ops").parse().expect("--ops: u32"),
            "--seed" => opts.seed = val("--seed").parse().expect("--seed: u64"),
            "--keys" => opts.keys = val("--keys").parse().expect("--keys: u32"),
            "--mix" => {
                let s = val("--mix");
                opts.mix = CacheMix::parse(&s).unwrap_or_else(|| {
                    eprintln!("--mix wants get/set/delete percentages summing to 100, e.g. 90/9/1");
                    exit(2)
                });
            }
            "--dist" => {
                opts.dist = match val("--dist").as_str() {
                    "zipfian" => KeyDist::Zipfian,
                    "uniform" => KeyDist::Uniform,
                    other => {
                        eprintln!("--dist wants zipfian or uniform, got {other}");
                        exit(2)
                    }
                }
            }
            "--no-preload" => opts.preload = false,
            "--shutdown" => opts.shutdown = true,
            "--out" => out_path = val("--out"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }

    let report = match loadgen::run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hybrids-loadgen: run against {} failed: {e}", opts.addr);
            exit(1)
        }
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    println!("{json}");
    if out_path != "-" {
        if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
            eprintln!("hybrids-loadgen: writing {out_path} failed: {e}");
            exit(1)
        }
        eprintln!(
            "hybrids-loadgen: {:.0} ops/s, p50 {:.1}us p95 {:.1}us p99 {:.1}us -> {out_path}",
            report.ops_per_sec, report.p50_us, report.p95_us, report.p99_us
        );
    }
}
