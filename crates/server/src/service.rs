//! The shared request-execution layer: one code path from a parsed
//! [`Command`] to response bytes, used by **both** the blocking and the
//! evented runtime.
//!
//! Keeping this in one place is what makes the blocking-vs-evented
//! differential tests meaningful: for an identical request stream the two
//! runtimes produce byte-identical response streams because every
//! `get`/`set`/`delete` funnels through [`Service::execute`] — the
//! runtimes differ only in how sockets are multiplexed, never in
//! semantics. TTL (`exptime`) handling lives here too, so expiry behaves
//! identically across runtimes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hybrids::hashmap::HybridHashMap;
use hybrids::SimIndex;
use nmp_sim::ThreadCtx;
use workloads::{Key, Op, Value};

use crate::proto::{self, Command};
use crate::ttl::TtlTable;

/// How a `set` that keeps losing insert/update races reports failure
/// before giving up (never observed in practice; bounded for safety).
const SET_RETRIES: usize = 16;

/// Aggregate served-request counters (relaxed; read after the server's
/// `wait`).
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// `get` keys that hit.
    pub get_hits: AtomicU64,
    /// `get` keys that missed.
    pub get_misses: AtomicU64,
    /// Successful `set`s.
    pub sets: AtomicU64,
    /// `delete`s that removed a key.
    pub deletes: AtomicU64,
    /// Connections served to completion.
    pub conns: AtomicU64,
    /// Protocol errors reported to clients.
    pub proto_errors: AtomicU64,
    /// `get` keys answered as misses because their `exptime` had passed
    /// (the key was lazily removed on that get).
    pub serve_expired: AtomicU64,
    /// Times a connection's read interest was parked because its write
    /// queue exceeded the high-water mark (evented runtime only).
    pub backpressure_pauses: AtomicU64,
    /// Connections closed by the idle timeout (evented runtime only).
    pub idle_evicted: AtomicU64,
}

/// The map, its TTL table, and the counters — everything a worker thread
/// needs to serve requests.
pub struct Service {
    /// The hash map being served.
    pub map: Arc<HybridHashMap>,
    /// Key-expiry table (`exptime` support).
    pub ttl: TtlTable,
    /// Served-traffic counters.
    pub counters: Arc<ServeCounters>,
}

impl Service {
    /// Execute one map-touching command (`get`/`gets`, `set`, `delete`)
    /// and append its wire response to `out`. `quit`/`shutdown` are
    /// connection-lifecycle commands and are handled by the runtimes, not
    /// here.
    pub fn execute(&self, ctx: &mut ThreadCtx, cmd: &Command, out: &mut Vec<u8>) {
        match cmd {
            Command::Get(keys) => {
                let mut hits: Vec<(Key, Value)> = Vec::with_capacity(keys.len());
                for &key in keys {
                    if self.ttl.is_expired(key) {
                        // Lazy expiry: the key dies on the get that finds
                        // it stale, exactly as in memcached.
                        self.map.execute(ctx, Op::Remove(key));
                        self.ttl.on_remove(key);
                        self.counters.serve_expired.fetch_add(1, Ordering::Relaxed);
                        self.counters.get_misses.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let r = self.map.execute(ctx, Op::Read(key));
                    if r.ok {
                        self.counters.get_hits.fetch_add(1, Ordering::Relaxed);
                        hits.push((key, r.value));
                    } else {
                        self.counters.get_misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
                out.extend_from_slice(&proto::encode_get(&hits));
            }
            Command::Set { key, value, exptime, noreply } => {
                let stored = self.do_set(ctx, *key, *value);
                if stored {
                    self.ttl.on_set(*key, *exptime);
                    self.counters.sets.fetch_add(1, Ordering::Relaxed);
                }
                if !noreply {
                    if stored {
                        out.extend_from_slice(proto::encode_stored());
                    } else {
                        out.extend_from_slice(b"SERVER_ERROR store failed\r\n");
                    }
                }
            }
            Command::Delete { key, noreply } => {
                let removed = self.map.execute(ctx, Op::Remove(*key)).ok;
                self.ttl.on_remove(*key);
                if removed {
                    self.counters.deletes.fetch_add(1, Ordering::Relaxed);
                }
                if !noreply {
                    out.extend_from_slice(if removed {
                        proto::encode_deleted()
                    } else {
                        proto::encode_not_found()
                    });
                }
            }
            Command::Quit | Command::Shutdown => {
                unreachable!("lifecycle commands are handled by the runtime, not the service")
            }
        }
    }

    /// memcached `set` is insert-or-overwrite; the map's `Insert` fails on
    /// duplicates and `Update` fails on absent keys, so race the two until
    /// one lands (a concurrent delete can void an `Update` between our
    /// attempts).
    fn do_set(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> bool {
        for _ in 0..SET_RETRIES {
            if self.map.execute(ctx, Op::Insert(key, value)).ok {
                return true;
            }
            if self.map.execute(ctx, Op::Update(key, value)).ok {
                return true;
            }
        }
        false
    }
}
