//! The `hybrids-server` runtime: a listener plus N worker threads serving
//! the memcached text protocol over a [`HybridHashMap`] running on the
//! native memory backend.
//!
//! Topology: an acceptor OS thread `accept()`s connections and feeds them
//! through a channel to `workers` connection workers. Each worker is a
//! *host thread of the native run* (a distinct host core of the machine
//! model), so its [`ThreadCtx`] can drive the publication-list offload
//! client directly — the exact same `HybridHashMap::execute` path the
//! simulator verifies, now over real atomics at hardware speed. The NMP
//! combiners run as native daemons, one per partition, just as they do
//! under simulation.
//!
//! Shutdown: the `shutdown` protocol verb (or [`Server::stop`]) raises a
//! flag; the acceptor stops accepting and drops the channel sender, the
//! workers drain and exit, and [`Server::wait`] joins the native run
//! (stopping the combiner daemons) before returning the map for
//! inspection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use hybrids::hashmap::HybridHashMap;
use hybrids::SimIndex;
use nmp_sim::{Config, Machine, NativeRun, ThreadCtx, ThreadKind};
use workloads::Op;

use crate::proto::{self, Command, Parsed, Parser};

/// How a `set` that keeps losing insert/update races reports failure
/// before giving up (never observed in practice; bounded for safety).
const SET_RETRIES: usize = 16;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Bind address, e.g. `127.0.0.1:11211` (port 0 picks a free port).
    pub addr: String,
    /// Connection workers — each is one host core of the machine model.
    pub workers: usize,
    /// Hash-map buckets (multiple of the machine's partition count).
    pub buckets: u32,
    /// Offload lanes per host core.
    pub max_inflight: usize,
    /// Hash seed for the map.
    pub seed: u64,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            addr: "127.0.0.1:11211".into(),
            workers: 4,
            buckets: 1024,
            max_inflight: 4,
            seed: 42,
        }
    }
}

/// Aggregate served-request counters (relaxed; read after [`Server::wait`]).
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// `get` keys that hit.
    pub get_hits: AtomicU64,
    /// `get` keys that missed.
    pub get_misses: AtomicU64,
    /// Successful `set`s.
    pub sets: AtomicU64,
    /// `delete`s that removed a key.
    pub deletes: AtomicU64,
    /// Connections served to completion.
    pub conns: AtomicU64,
    /// Protocol errors reported to clients.
    pub proto_errors: AtomicU64,
}

/// A running server (listener + native run).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    run: NativeRun,
    map: Arc<HybridHashMap>,
    counters: Arc<ServeCounters>,
}

impl Server {
    /// Build the native machine, the map, the combiner daemons, and the
    /// worker pool; bind the listener and start accepting.
    pub fn start(opts: &ServerOpts) -> io::Result<Server> {
        assert!(opts.workers >= 1, "need at least one worker");
        let mut cfg = Config::default_scaled();
        cfg.host_cores = opts.workers;
        let machine = Machine::new_native(cfg);
        let map =
            HybridHashMap::new(Arc::clone(&machine), opts.buckets, opts.seed, opts.max_inflight);

        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServeCounters::default());
        let mut run = machine.native_run();
        map.spawn_services_on(&mut run);

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        for core in 0..opts.workers {
            let rx = Arc::clone(&rx);
            let map = Arc::clone(&map);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            run.spawn(format!("conn-{core}"), ThreadKind::Host { core }, move |ctx| {
                worker_loop(ctx, &map, &rx, &shutdown, &counters);
            });
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("acceptor".into())
                .spawn(move || accept_loop(listener, tx, &shutdown))
                .expect("spawn acceptor")
        };

        Ok(Server { addr, shutdown, acceptor, run, map, counters })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown from outside the protocol.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Block until shutdown, join every thread, and hand back the map and
    /// counters for inspection.
    pub fn wait(self) -> (Arc<HybridHashMap>, Arc<ServeCounters>) {
        let Server { acceptor, run, map, counters, .. } = self;
        acceptor.join().expect("acceptor panicked");
        // Workers exit once the acceptor drops the sender and the queue
        // drains; finish() then stops the combiner daemons.
        run.finish();
        (map, counters)
    }
}

fn accept_loop(listener: TcpListener, tx: mpsc::Sender<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    break; // all workers gone
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here disconnects the workers' queue.
}

fn worker_loop(
    ctx: &mut ThreadCtx,
    map: &Arc<HybridHashMap>,
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    counters: &ServeCounters,
) {
    loop {
        // Take the lock only long enough to pull one connection.
        let next = rx.lock().recv_timeout(Duration::from_millis(20));
        match next {
            Ok(stream) => {
                if serve_conn(ctx, map, stream, shutdown, counters).unwrap_or(false) {
                    shutdown.store(true, Ordering::Release);
                }
                counters.conns.fetch_add(1, Ordering::Relaxed);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection to completion. Returns `Ok(true)` if the client
/// asked for server shutdown.
fn serve_conn(
    ctx: &mut ThreadCtx,
    map: &Arc<HybridHashMap>,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    counters: &ServeCounters,
) -> io::Result<bool> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut parser = Parser::new();
    let mut rdbuf = [0u8; 4096];
    let mut out = Vec::new();
    loop {
        let n = match stream.read(&mut rdbuf) {
            Ok(0) => return Ok(false), // client hung up
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(false);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        parser.push(&rdbuf[..n]);
        out.clear();
        // Drain every command completed by this read (pipelining), then
        // flush one combined write.
        for step in parser.by_ref() {
            match step {
                Parsed::Cmd(Command::Get(keys)) => {
                    let mut hits = Vec::with_capacity(keys.len());
                    for key in keys {
                        let r = map.execute(ctx, Op::Read(key));
                        if r.ok {
                            counters.get_hits.fetch_add(1, Ordering::Relaxed);
                            hits.push((key, r.value));
                        } else {
                            counters.get_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    out.extend_from_slice(&proto::encode_get(&hits));
                }
                Parsed::Cmd(Command::Set { key, value, noreply }) => {
                    let stored = do_set(ctx, map, key, value);
                    if stored {
                        counters.sets.fetch_add(1, Ordering::Relaxed);
                    }
                    if !noreply {
                        if stored {
                            out.extend_from_slice(proto::encode_stored());
                        } else {
                            out.extend_from_slice(b"SERVER_ERROR store failed\r\n");
                        }
                    }
                }
                Parsed::Cmd(Command::Delete { key, noreply }) => {
                    let removed = map.execute(ctx, Op::Remove(key)).ok;
                    if removed {
                        counters.deletes.fetch_add(1, Ordering::Relaxed);
                    }
                    if !noreply {
                        out.extend_from_slice(if removed {
                            proto::encode_deleted()
                        } else {
                            proto::encode_not_found()
                        });
                    }
                }
                Parsed::Cmd(Command::Quit) => {
                    stream.write_all(&out)?;
                    return Ok(false);
                }
                Parsed::Cmd(Command::Shutdown) => {
                    out.extend_from_slice(proto::encode_ok());
                    stream.write_all(&out)?;
                    return Ok(true);
                }
                Parsed::Error { line, fatal } => {
                    counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    out.extend_from_slice(&proto::encode_error_line(&line));
                    if fatal {
                        stream.write_all(&out)?;
                        return Ok(false);
                    }
                }
            }
        }
        if !out.is_empty() {
            stream.write_all(&out)?;
        }
    }
}

/// memcached `set` is insert-or-overwrite; the map's `Insert` fails on
/// duplicates and `Update` fails on absent keys, so race the two until one
/// lands (a concurrent delete can void an `Update` between our attempts).
fn do_set(ctx: &mut ThreadCtx, map: &Arc<HybridHashMap>, key: u32, value: u32) -> bool {
    for _ in 0..SET_RETRIES {
        if map.execute(ctx, Op::Insert(key, value)).ok {
            return true;
        }
        if map.execute(ctx, Op::Update(key, value)).ok {
            return true;
        }
    }
    false
}
