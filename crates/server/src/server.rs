//! The `hybrids-server` runtime: a listener plus worker threads serving
//! the memcached text protocol over a [`HybridHashMap`] running on the
//! native memory backend.
//!
//! Two selectable connection runtimes share this facade (see
//! [`RuntimeKind`] and `DESIGN.md` §4.12):
//!
//! * **blocking** — an acceptor OS thread `accept()`s connections and
//!   feeds them through a channel to `workers` connection workers; each
//!   worker owns one connection at a time, blocking on its socket.
//! * **evented** — reactor threads multiplex all connections over
//!   epoll/poll and feed parsed requests to the same workers through a
//!   work queue (see [`crate::runtime`]).
//!
//! In both, each worker is a *host thread of the native run* (a distinct
//! host core of the machine model), so its [`ThreadCtx`] can drive the
//! publication-list offload client directly — the exact same
//! `HybridHashMap::execute` path the simulator verifies, now over real
//! atomics at hardware speed. The NMP combiners run as native daemons,
//! one per partition, just as they do under simulation. Requests execute
//! through the shared [`Service`] layer, so the two runtimes produce
//! byte-identical responses for identical request streams.
//!
//! Shutdown: the `shutdown` protocol verb (or [`Server::stop`]) raises a
//! flag; accepting stops, in-flight requests drain, and [`Server::wait`]
//! joins every thread (stopping the combiner daemons) before returning
//! the map for inspection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use hybrids::hashmap::HybridHashMap;
use hybrids::publist;
use nmp_sim::{Config, Machine, NativeRun, ThreadCtx, ThreadKind};

use crate::proto::{self, Command, Parsed, Parser};
use crate::runtime::{self, EventedOpts, RuntimeKind};
use crate::service::{ServeCounters, Service};
use crate::ttl::{Clock, TtlTable};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Bind address, e.g. `127.0.0.1:11211` (port 0 picks a free port).
    pub addr: String,
    /// Request workers — each is one host core of the machine model.
    pub workers: usize,
    /// Hash-map buckets (multiple of the machine's partition count).
    pub buckets: u32,
    /// Offload lanes per host core.
    pub max_inflight: usize,
    /// Hash seed for the map.
    pub seed: u64,
    /// Which connection runtime drives the sockets.
    pub runtime: RuntimeKind,
    /// Evented-runtime tuning (ignored under [`RuntimeKind::Blocking`]).
    pub evented: EventedOpts,
    /// Time source for `exptime` expiry (manual in tests).
    pub clock: Clock,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            addr: "127.0.0.1:11211".into(),
            workers: 4,
            buckets: 1024,
            max_inflight: 4,
            seed: 42,
            runtime: RuntimeKind::Blocking,
            evented: EventedOpts::default(),
            clock: Clock::System,
        }
    }
}

/// The largest worker pool the machine's publication lists can carry at
/// `max_inflight` lanes per worker: every worker owns `max_inflight`
/// 64-byte slots in each partition's scratchpad, and the scratchpad is a
/// fixed architectural parameter. This is the blocking runtime's *max
/// viable thread count* — past it, a thread-per-connection server cannot
/// add host threads no matter how many connections arrive.
pub fn max_viable_workers(cfg: &Config, max_inflight: usize) -> usize {
    (cfg.scratchpad_bytes / (publist::SLOT_BYTES * max_inflight.max(1) as u32)) as usize
}

/// Runtime-specific thread handles behind the [`Server`] facade.
enum Inner {
    Blocking { acceptor: JoinHandle<()> },
    Evented(runtime::Evented),
}

/// A running server (listener + native run), either runtime.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    inner: Inner,
    run: NativeRun,
    map: Arc<HybridHashMap>,
    counters: Arc<ServeCounters>,
}

impl Server {
    /// Build the native machine, the map, the combiner daemons, and the
    /// chosen connection runtime; bind the listener and start accepting.
    pub fn start(opts: &ServerOpts) -> io::Result<Server> {
        assert!(opts.workers >= 1, "need at least one worker");
        let mut cfg = Config::default_scaled();
        cfg.host_cores = opts.workers;
        // Workers are publication-list clients: each needs `max_inflight`
        // scratchpad slots per partition, and the scratchpad is a fixed
        // architectural parameter of the machine — it does not grow to
        // absorb bigger thread pools. Surface the ceiling as a server
        // error instead of the publication list's deeper panic.
        let cap = max_viable_workers(&cfg, opts.max_inflight);
        if opts.workers > cap {
            return Err(io::Error::other(format!(
                "{} workers need {} B of publication-list scratchpad, machine has {} B \
                 (max viable {} workers at inflight {})",
                opts.workers,
                (opts.workers * opts.max_inflight) as u32 * publist::SLOT_BYTES,
                cfg.scratchpad_bytes,
                cap,
                opts.max_inflight,
            )));
        }
        let machine = Machine::new_native(cfg);
        let map =
            HybridHashMap::new(Arc::clone(&machine), opts.buckets, opts.seed, opts.max_inflight);

        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServeCounters::default());
        let service = Arc::new(Service {
            map: Arc::clone(&map),
            ttl: TtlTable::new(opts.clock.clone()),
            counters: Arc::clone(&counters),
        });
        let mut run = machine.native_run();
        map.spawn_services_on(&mut run);

        let inner = match opts.runtime {
            RuntimeKind::Blocking => {
                let (tx, rx) = mpsc::channel::<TcpStream>();
                let rx = Arc::new(Mutex::new(rx));
                for core in 0..opts.workers {
                    let rx = Arc::clone(&rx);
                    let service = Arc::clone(&service);
                    let shutdown = Arc::clone(&shutdown);
                    run.spawn(format!("conn-{core}"), ThreadKind::Host { core }, move |ctx| {
                        blocking_worker_loop(ctx, &service, &rx, &shutdown);
                    });
                }
                let acceptor = {
                    let shutdown = Arc::clone(&shutdown);
                    std::thread::Builder::new()
                        .name("acceptor".into())
                        .spawn(move || blocking_accept_loop(listener, tx, &shutdown))
                        .expect("spawn acceptor")
                };
                Inner::Blocking { acceptor }
            }
            RuntimeKind::Evented => Inner::Evented(runtime::start_evented(
                listener,
                Arc::clone(&service),
                &mut run,
                opts.workers,
                Arc::clone(&shutdown),
                &opts.evented,
            )?),
        };

        Ok(Server { addr, shutdown, inner, run, map, counters })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live served-traffic counters (also returned by [`Server::wait`]).
    pub fn counters(&self) -> Arc<ServeCounters> {
        Arc::clone(&self.counters)
    }

    /// Request shutdown from outside the protocol.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Block until shutdown, join every thread, and hand back the map and
    /// counters for inspection.
    pub fn wait(self) -> (Arc<HybridHashMap>, Arc<ServeCounters>) {
        let Server { inner, run, map, counters, .. } = self;
        match inner {
            Inner::Blocking { acceptor } => {
                acceptor.join().expect("acceptor panicked");
                // Workers exit once the acceptor drops the sender and the
                // queue drains.
            }
            Inner::Evented(evented) => evented.join(),
        }
        // finish() then stops the combiner daemons.
        run.finish();
        (map, counters)
    }
}

fn blocking_accept_loop(listener: TcpListener, tx: mpsc::Sender<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    break; // all workers gone
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here disconnects the workers' queue.
}

fn blocking_worker_loop(
    ctx: &mut ThreadCtx,
    service: &Service,
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    shutdown: &AtomicBool,
) {
    loop {
        // Take the lock only long enough to pull one connection.
        let next = rx.lock().recv_timeout(Duration::from_millis(20));
        match next {
            Ok(stream) => {
                if serve_conn(ctx, service, stream, shutdown).unwrap_or(false) {
                    shutdown.store(true, Ordering::Release);
                }
                service.counters.conns.fetch_add(1, Ordering::Relaxed);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection to completion (blocking runtime). Returns
/// `Ok(true)` if the client asked for server shutdown.
fn serve_conn(
    ctx: &mut ThreadCtx,
    service: &Service,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
) -> io::Result<bool> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut parser = Parser::new();
    let mut rdbuf = [0u8; 4096];
    let mut out = Vec::new();
    loop {
        let n = match stream.read(&mut rdbuf) {
            Ok(0) => return Ok(false), // client hung up
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(false);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        parser.push(&rdbuf[..n]);
        out.clear();
        // Drain every command completed by this read (pipelining), then
        // flush one combined write.
        for step in parser.by_ref() {
            match step {
                Parsed::Cmd(Command::Quit) => {
                    stream.write_all(&out)?;
                    return Ok(false);
                }
                Parsed::Cmd(Command::Shutdown) => {
                    out.extend_from_slice(proto::encode_ok());
                    stream.write_all(&out)?;
                    return Ok(true);
                }
                Parsed::Cmd(cmd) => service.execute(ctx, &cmd, &mut out),
                Parsed::Error { line, fatal } => {
                    service.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    out.extend_from_slice(&proto::encode_error_line(&line));
                    if fatal {
                        stream.write_all(&out)?;
                        return Ok(false);
                    }
                }
            }
        }
        if !out.is_empty() {
            stream.write_all(&out)?;
        }
    }
}
