//! `cargo xtask lint` — run the repository's memory-effect source lint.
//!
//! Exit status 0 when clean, 1 when violations are found (or on usage
//! errors), so CI can gate on it directly.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n\nusage: cargo xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    // crates/xtask/ -> repo root, independent of the invocation directory.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a grandparent")
        .to_path_buf();
    match xtask::lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}
