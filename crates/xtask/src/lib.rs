//! Source-level lint pass enforcing the repository's memory-effect
//! discipline (DESIGN.md §4.8).
//!
//! The dynamic analysis layer (`nmp_sim::analysis`) checks what code *does*
//! at run time; this crate checks what code *says* at the source level, so
//! that the effect specs registered with the simulator stay trustworthy:
//!
//! * **raw-mem** — raw `SimRam` access (`ram.read_u*` / `ram.write_u*`,
//!   untimed and invisible to the race detector) is only allowed inside
//!   modules annotated `// xtask: accessor-module`. Everything else must go
//!   through the typed accessors those modules export.
//! * **atomic-ordering** — data-structure code may not use host
//!   `std::sync::atomic::Ordering` directly; synchronization must be
//!   expressed through the simulator's timed acquire/release/CAS accessors
//!   so it is visible to the race detector and to effect specs. The bench
//!   driver's measurement barrier is the one sanctioned exception
//!   (`// xtask: allow(atomic-ordering)`).
//! * **mmio-confinement** — `mmio_read_u*` / `mmio_write_u*` (the host↔
//!   scratchpad channel) may only appear in the offload runtime
//!   (`publist.rs`); data structures are not allowed to invent side
//!   channels to NMP cores.
//! * **opcode-coverage** — in any file implementing `NmpExec`, every
//!   `OpCode::X` variant mentioned outside `fn effect_spec` must also be
//!   mentioned inside one, so an op handled (or posted) by the file cannot
//!   silently miss its effect declaration.
//! * **shard-ownership** — the sharded engine's cross-shard state is only
//!   touchable through its accessor modules: per-vault DRAM timing state
//!   (`parts_t` / `host_t` / `PartTiming` / `HostTiming`) belongs to
//!   `mem.rs`, and the scheduler's frontier/stop words (`frontiers`,
//!   `nd_live`, `nd_last_key`, `after_stop`) belong to `engine/barrier.rs`
//!   (`ShardCtl`'s methods are the API). Any other simulator file naming
//!   these fields is bypassing the ownership discipline that makes sharded
//!   runs byte-identical to sequential ones (DESIGN.md §4.9).
//! * **policy-confinement** — the self-tuning offload policy's state
//!   machines (`CombinerControl`, `LaneGovernor`) and decisions
//!   (`sort_batch`, `coalesce_run_len`, `config().policy` branches) live
//!   only in the offload layer (`offload/policy.rs`, `publist.rs`,
//!   `driver.rs`). Data structures declare *what* may be coalesced
//!   (`NmpExec::coalescible_ops`) and forward occupancy feedback; they
//!   never embed tuning state, so `Policy::Fixed` runs stay bit-identical
//!   to the pre-policy protocol by construction.
//! * **net-confinement** — socket code (`std::net`, `TcpListener`,
//!   `TcpStream`, …) lives only in the server crate (`crates/server/`).
//!   The simulator, the structures, the workload generator, and the bench
//!   harness are deterministic, network-free layers; a socket anywhere
//!   else is an architecture violation (DESIGN.md §4.11).
//! * **sys-confinement** — raw readiness/socket syscall vocabulary
//!   (`epoll_create1` / `epoll_ctl` / `epoll_wait`, `epoll_event`,
//!   `EPOLL*` / `POLL*` flag constants, `pollfd`, `nfds_t`,
//!   `setsockopt`, `fcntl`) lives only in the evented runtime
//!   (`crates/server/src/runtime/`), behind its `Poller` trait. The rest
//!   of the server crate — and everything below it — talks `std::net`
//!   and the runtime's queue API, never raw FFI (DESIGN.md §4.12).
//! * **marker-location** — the `// xtask:` markers above may only appear in
//!   an explicit allow-list of files, so the lint cannot be silenced by
//!   sprinkling new markers.
//!
//! The scanner is deliberately lexical: it strips comments, string/char
//! literals and `#[cfg(test)]` modules, then looks for tokens. No syntax
//! tree, no dependencies — cheap enough to run on every CI build, robust
//! enough that a token inside a doc comment or a test never trips it.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired (`raw-mem`, `atomic-ordering`, `mmio-confinement`,
    /// `opcode-coverage`, `policy-confinement`, `net-confinement`,
    /// `sys-confinement`, `marker-location`).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

// ---------------------------------------------------------------------------
// Allow-lists: the only places markers may appear. Extending the effect
// discipline to a new accessor module means adding it HERE, in review.
// ---------------------------------------------------------------------------

/// Files allowed to carry the `// xtask: accessor-module` marker (and hence
/// to contain raw `SimRam` access).
pub const ACCESSOR_MODULES: &[&str] = &[
    "crates/hybrids/src/hashmap/node.rs",
    "crates/hybrids/src/pqueue/cells.rs",
    "crates/hybrids/src/btree/node.rs",
    "crates/hybrids/src/skiplist/node.rs",
];

/// Files allowed to carry `// xtask: allow(atomic-ordering)`.
pub const ORDERING_EXCEPTIONS: &[&str] = &["crates/hybrids/src/driver.rs"];

/// Files allowed to carry line-level `// xtask: allow(raw-mem)` markers.
pub const RAW_MEM_EXCEPTIONS: &[&str] = &["crates/hybrids/src/publist.rs"];

/// The one file allowed to perform MMIO (the offload runtime).
pub const MMIO_MODULE: &str = "crates/hybrids/src/publist.rs";

/// The offload policy layer: the only hybrids files allowed to hold
/// adaptive-policy state or branch on the configured `Policy`: the policy
/// module itself, the combiner loop that applies coalescing, and the driver
/// pipeline that hosts the lane governor.
pub const POLICY_MODULES: &[&str] = &[
    "crates/hybrids/src/offload/policy.rs",
    "crates/hybrids/src/publist.rs",
    "crates/hybrids/src/driver.rs",
];

/// The one file allowed to name the per-vault DRAM timing state (`parts_t`
/// / `host_t` and the `PartTiming` / `HostTiming` types): the memory system
/// that owns those locks and routes every access through the owning shard.
pub const VAULT_STATE_MODULE: &str = "crates/nmp-sim/src/mem.rs";

/// The one file allowed to name the cross-shard scheduler words
/// (`frontiers`, `nd_live`, `nd_last_key`, `after_stop`): the barrier
/// module whose `ShardCtl` methods are the sanctioned accessor API.
pub const SHARD_CTL_MODULE: &str = "crates/nmp-sim/src/engine/barrier.rs";

/// The only crate allowed to touch sockets: the cache-server front end
/// (its runtime, loadgen, bins, and tests). Everything else in the tree is
/// a deterministic, network-free layer.
pub const NET_SCOPE: &str = "crates/server/";

/// The only directory allowed to speak raw syscall vocabulary (epoll/poll
/// FFI, `setsockopt`, `fcntl`): the evented connection runtime, which wraps
/// it behind the `Poller` trait and socket-option helpers.
pub const SYS_SCOPE: &str = "crates/server/src/runtime/";

/// Directories scanned by [`lint_tree`], relative to the repo root. The
/// simulator crate (`nmp-sim` implements `SimRam` and the memory model) is
/// exempt from the effect-discipline rules but IS scanned for the
/// `shard-ownership` rule; the vendored stand-in crates are out of scope
/// entirely.
pub const SCAN_ROOTS: &[&str] = &[
    "src",
    "examples",
    "tests",
    "crates/hybrids/src",
    "crates/workloads/src",
    "crates/bench/src",
    "crates/bench/benches",
    "crates/nmp-sim/src",
    "crates/server/src",
    "crates/server/tests",
];

// ---------------------------------------------------------------------------
// Lexical preprocessing
// ---------------------------------------------------------------------------

/// Blank out comments and string/char literals, preserving byte offsets and
/// line structure (newlines survive). Handles nested block comments, raw
/// strings (`r"…"`, `r#"…"#`), escapes, and the char-literal/lifetime
/// ambiguity well enough for token scanning.
pub fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for p in range {
            if out[p] != b'\n' {
                out[p] = b' ';
            }
        }
    };
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start..i);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start..i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                // keep the delimiting quotes, blank the contents
                blank(&mut out, start + 1..i.saturating_sub(1).max(start + 1));
            }
            b'r' if matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // candidate raw string: r"…" or r#"…"#
                let mut j = i + 1;
                let mut hashes = 0usize;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    let start = j;
                    j += 1;
                    'outer: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while h < hashes && b.get(k) == Some(&b'#') {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                j = k;
                                break 'outer;
                            }
                        }
                        j += 1;
                    }
                    blank(&mut out, start + 1..j.saturating_sub(1 + hashes).max(start + 1));
                    i = j;
                } else {
                    i += 1; // raw identifier like r#match
                }
            }
            b'\'' => {
                if b.get(i + 1) == Some(&b'\\') {
                    // escaped char literal '\n', '\'', '\u{…}'
                    let start = i;
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    blank(&mut out, start + 1..j);
                    i = j + 1;
                } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                    // plain ASCII char literal 'x'
                    out[i + 1] = b' ';
                    i += 3;
                } else {
                    i += 1; // lifetime (or multibyte char literal — harmless)
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking preserves UTF-8")
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

/// Scan from `start` (just past an opening delimiter) to just past the
/// matching closing delimiter. Input must already be masked.
fn match_delim(b: &[u8], start: usize, open: u8, close: u8) -> usize {
    let mut depth = 1usize;
    let mut i = start;
    while i < b.len() && depth > 0 {
        if b[i] == open {
            depth += 1;
        } else if b[i] == close {
            depth -= 1;
        }
        i += 1;
    }
    i
}

/// Blank out every `#[cfg(test)] mod … { … }` body in already-masked
/// source. Test code may use raw access and host atomics freely.
pub fn strip_test_mods(masked: &str) -> String {
    let b = masked.as_bytes();
    let mut out = b.to_vec();
    let needle = b"#[cfg(test)]";
    let mut from = 0usize;
    while let Some(pos) = find_from(b, needle, from) {
        from = pos + needle.len();
        let mut j = from;
        // skip whitespace and any further attributes
        loop {
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b[j..].starts_with(b"#[") {
                j = match_delim(b, j + 2, b'[', b']');
            } else {
                break;
            }
        }
        if b[j..].starts_with(b"pub") {
            j += 3;
            if b.get(j) == Some(&b'(') {
                j = match_delim(b, j + 1, b'(', b')');
            }
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
        }
        if !b[j..].starts_with(b"mod") {
            continue; // cfg(test) on a use/fn/etc. — leave it
        }
        while j < b.len() && b[j] != b'{' && b[j] != b';' {
            j += 1;
        }
        if b.get(j) == Some(&b'{') {
            let end = match_delim(b, j + 1, b'{', b'}');
            for byte in &mut out[pos..end] {
                if *byte != b'\n' {
                    *byte = b' ';
                }
            }
        }
    }
    String::from_utf8(out).expect("stripping preserves UTF-8")
}

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset].iter().filter(|&&c| c == b'\n').count() + 1
}

/// Byte ranges of every `fn effect_spec … { … }` body in masked source.
fn effect_spec_ranges(masked: &str) -> Vec<std::ops::Range<usize>> {
    let b = masked.as_bytes();
    let needle = b"fn effect_spec";
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(b, needle, from) {
        from = pos + needle.len();
        let mut j = from;
        while j < b.len() && b[j] != b'{' {
            j += 1;
        }
        if j < b.len() {
            let end = match_delim(b, j + 1, b'{', b'}');
            out.push(pos..end);
            from = end;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Markers
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Markers {
    /// (line, marker-name) for every `// xtask: <marker>` found.
    all: Vec<(usize, String)>,
}

impl Markers {
    fn has_module(&self, name: &str) -> bool {
        self.all.iter().any(|(_, m)| m == name)
    }
    /// `allow(raw-mem)` exempts the marker line and the line after it.
    fn line_allows_raw(&self, line: usize) -> bool {
        self.all.iter().any(|(l, m)| m == "allow(raw-mem)" && (line == *l || line == *l + 1))
    }
}

const KNOWN_MARKERS: &[&str] = &["accessor-module", "allow(atomic-ordering)", "allow(raw-mem)"];

/// Markers live in comments, so collect them from the *raw* source.
fn collect_markers(src: &str) -> Markers {
    let mut markers = Markers::default();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("xtask:") else { continue };
        let rest = line[pos + "xtask:".len()..].trim_start();
        let name = KNOWN_MARKERS
            .iter()
            .find(|m| rest.starts_with(**m))
            .map(|m| m.to_string())
            .unwrap_or_else(|| {
                // record the unknown token so marker-location can flag it
                rest.split([' ', '\t']).next().unwrap_or("").to_string()
            });
        markers.all.push((idx + 1, name));
    }
    markers
}

fn marker_allowed(rel: &str, marker: &str) -> bool {
    match marker {
        "accessor-module" => ACCESSOR_MODULES.contains(&rel),
        "allow(atomic-ordering)" => ORDERING_EXCEPTIONS.contains(&rel),
        "allow(raw-mem)" => RAW_MEM_EXCEPTIONS.contains(&rel),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Raw `SimRam` access tokens: untimed, race-detector-invisible memory.
const RAW_MEM_TOKENS: &[&str] =
    &["ram.read_u", "ram.write_u", "ram().read_u", "ram().write_u", "SimRam::"];

/// MMIO channel tokens (matches `mmio_write_u64_release` etc.).
const MMIO_TOKENS: &[&str] = &["mmio_read_u", "mmio_write_u"];

/// Per-vault DRAM timing state: fields and types owned by
/// [`VAULT_STATE_MODULE`].
const VAULT_STATE_TOKENS: &[&str] = &["parts_t", "host_t", "PartTiming", "HostTiming"];

/// Cross-shard scheduler words owned by [`SHARD_CTL_MODULE`]; everything
/// else goes through `ShardCtl`'s publish/gate/stop methods.
const SHARD_CTL_TOKENS: &[&str] =
    &["frontiers", "nd_frontier", "nd_live", "nd_last_key", "after_stop"];

/// Socket vocabulary confined to [`NET_SCOPE`]. Identifier-boundary
/// matched, so e.g. `TcpStreamLike` in a doc example would still trip —
/// deliberately strict.
const NET_TOKENS: &[&str] =
    &["std::net", "TcpListener", "TcpStream", "UdpSocket", "UnixListener", "UnixStream"];

/// Raw syscall vocabulary confined to [`SYS_SCOPE`]: the epoll interface,
/// the poll(2) fallback's types, and the socket-option/flag syscalls the
/// runtime wraps. Identifier-boundary matched.
const SYS_TOKENS: &[&str] = &[
    "epoll_create1",
    "epoll_ctl",
    "epoll_wait",
    "epoll_event",
    "pollfd",
    "nfds_t",
    "setsockopt",
    "fcntl",
];

/// Flag-constant prefixes confined to [`SYS_SCOPE`] (`EPOLLIN`,
/// `EPOLL_CTL_ADD`, `POLLHUP`, …). Matched with an identifier boundary
/// before and any identifier tail after, so the whole constant family is
/// covered without enumerating it.
const SYS_PREFIX_TOKENS: &[&str] = &["EPOLL", "POLL"];

/// Adaptive-policy state machines and helpers owned by [`POLICY_MODULES`].
const POLICY_TOKENS: &[&str] =
    &["CombinerControl", "LaneGovernor", "sort_batch", "coalesce_run_len"];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Like [`find_from`] but requiring identifier boundaries on both sides, so
/// `host_t` does not match inside `host_total`.
fn find_ident_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let mut at = from;
    while let Some(pos) = find_from(haystack, needle, at) {
        at = pos + 1;
        let before_ok = pos == 0 || !is_ident_byte(haystack[pos - 1]);
        let after = pos + needle.len();
        let after_ok = after >= haystack.len() || !is_ident_byte(haystack[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
    }
    None
}

/// Like [`find_ident_from`] but only requiring an identifier boundary
/// *before* the needle: matches `EPOLL` at the head of `EPOLL_CTL_ADD`.
fn find_ident_prefix_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let mut at = from;
    while let Some(pos) = find_from(haystack, needle, at) {
        at = pos + 1;
        if pos == 0 || !is_ident_byte(haystack[pos - 1]) {
            return Some(pos);
        }
    }
    None
}

fn in_ordering_scope(rel: &str) -> bool {
    rel.starts_with("crates/hybrids/src") || rel.starts_with("crates/workloads/src")
}

/// Lint one file's source as if it lived at repo-relative `rel`. Exposed so
/// the fixture tests can feed known-bad sources under pretend paths.
pub fn check_source(rel: &str, src: &str) -> Vec<Violation> {
    let rel = rel.replace('\\', "/");
    let mut out = Vec::new();
    let markers = collect_markers(src);

    // marker-location: markers only where the allow-lists say.
    for (line, name) in &markers.all {
        if !KNOWN_MARKERS.contains(&name.as_str()) {
            out.push(Violation {
                rule: "marker-location",
                path: rel.clone(),
                line: *line,
                msg: format!("unknown xtask marker `{name}`"),
            });
        } else if !marker_allowed(&rel, name) {
            out.push(Violation {
                rule: "marker-location",
                path: rel.clone(),
                line: *line,
                msg: format!(
                    "marker `{name}` is not allowed in this file; extend the allow-list in \
                     crates/xtask/src/lib.rs if this is intentional"
                ),
            });
        }
    }

    let masked = strip_test_mods(&mask_source(src));

    // A marker only grants its exemption where the allow-list sanctions it;
    // an out-of-place marker is flagged above AND buys nothing.
    let is_accessor =
        markers.has_module("accessor-module") && marker_allowed(&rel, "accessor-module");
    let ordering_ok = markers.has_module("allow(atomic-ordering)")
        && marker_allowed(&rel, "allow(atomic-ordering)");
    let raw_lines_ok = RAW_MEM_EXCEPTIONS.contains(&rel.as_str());

    // net-confinement: sockets only in the server crate. Checked before
    // the sim-internal early return — the simulator itself must stay
    // network-free too.
    if !rel.starts_with(NET_SCOPE) {
        let b = masked.as_bytes();
        for tok in NET_TOKENS {
            let mut from = 0usize;
            while let Some(pos) = find_ident_from(b, tok.as_bytes(), from) {
                from = pos + 1;
                out.push(Violation {
                    rule: "net-confinement",
                    path: rel.clone(),
                    line: line_of(&masked, pos),
                    msg: format!(
                        "`{tok}` outside the server crate ({NET_SCOPE}); every layer below \
                         the cache front end is deterministic and network-free — serve \
                         traffic through hybrids-server instead"
                    ),
                });
            }
        }
    }

    // sys-confinement: raw syscall vocabulary only in the evented runtime.
    // Like net-confinement, this applies to every scanned layer — the rest
    // of the server crate included — so readiness FFI cannot leak out from
    // behind the Poller trait.
    if !rel.starts_with(SYS_SCOPE) {
        let b = masked.as_bytes();
        let hit = |tok: &str, pos: usize, out: &mut Vec<Violation>| {
            out.push(Violation {
                rule: "sys-confinement",
                path: rel.clone(),
                line: line_of(&masked, pos),
                msg: format!(
                    "`{tok}` (raw syscall vocabulary) outside the evented runtime \
                     ({SYS_SCOPE}); use std::net and the runtime's Poller/queue API \
                     instead of raw FFI"
                ),
            });
        };
        for tok in SYS_TOKENS {
            let mut from = 0usize;
            while let Some(pos) = find_ident_from(b, tok.as_bytes(), from) {
                from = pos + 1;
                hit(tok, pos, &mut out);
            }
        }
        for tok in SYS_PREFIX_TOKENS {
            let mut from = 0usize;
            while let Some(pos) = find_ident_prefix_from(b, tok.as_bytes(), from) {
                from = pos + tok.len();
                // skip the identifier tail so EPOLL_CTL_ADD is one finding
                while from < b.len() && is_ident_byte(b[from]) {
                    from += 1;
                }
                hit(tok, pos, &mut out);
            }
        }
    }

    // The simulator crate implements SimRam, the MMIO channel and the
    // memory model, so the effect-discipline rules don't apply to it; it is
    // scanned only for shard-ownership (below).
    let sim_internal = rel.starts_with("crates/nmp-sim/");

    // shard-ownership: cross-shard state only in its accessor modules.
    if sim_internal {
        let checks: [(&[&str], &str, &str); 2] = [
            (VAULT_STATE_TOKENS, VAULT_STATE_MODULE, "per-vault DRAM timing state"),
            (SHARD_CTL_TOKENS, SHARD_CTL_MODULE, "cross-shard scheduler state"),
        ];
        for (tokens, owner, what) in checks {
            if rel == owner {
                continue;
            }
            for tok in tokens {
                let b = masked.as_bytes();
                let mut from = 0usize;
                while let Some(pos) = find_ident_from(b, tok.as_bytes(), from) {
                    from = pos + 1;
                    out.push(Violation {
                        rule: "shard-ownership",
                        path: rel.clone(),
                        line: line_of(&masked, pos),
                        msg: format!(
                            "`{tok}` ({what}) referenced outside its owner module {owner}; go \
                             through that module's accessor API so shard ownership stays \
                             auditable"
                        ),
                    });
                }
            }
        }
        return out;
    }

    // raw-mem: raw SimRam access only inside accessor modules.
    if !is_accessor {
        for tok in RAW_MEM_TOKENS {
            let b = masked.as_bytes();
            let mut from = 0usize;
            while let Some(pos) = find_from(b, tok.as_bytes(), from) {
                from = pos + 1;
                let line = line_of(&masked, pos);
                if raw_lines_ok && markers.line_allows_raw(line) {
                    continue;
                }
                out.push(Violation {
                    rule: "raw-mem",
                    path: rel.clone(),
                    line,
                    msg: format!(
                        "raw SimRam access (`{tok}…`) outside an accessor module; go through \
                         the typed accessors, or move this into a `// xtask: accessor-module` file"
                    ),
                });
            }
        }
    }

    // atomic-ordering: no host atomics in data-structure code.
    if in_ordering_scope(&rel) && !ordering_ok {
        let b = masked.as_bytes();
        let mut from = 0usize;
        while let Some(pos) = find_from(b, b"Ordering::", from) {
            from = pos + 1;
            out.push(Violation {
                rule: "atomic-ordering",
                path: rel.clone(),
                line: line_of(&masked, pos),
                msg: "host `Ordering::` in data-structure code; express synchronization \
                      through the simulator's acquire/release/CAS accessors"
                    .to_string(),
            });
        }
    }

    // mmio-confinement: MMIO only in the offload runtime.
    if rel != MMIO_MODULE {
        for tok in MMIO_TOKENS {
            let b = masked.as_bytes();
            let mut from = 0usize;
            while let Some(pos) = find_from(b, tok.as_bytes(), from) {
                from = pos + 1;
                out.push(Violation {
                    rule: "mmio-confinement",
                    path: rel.clone(),
                    line: line_of(&masked, pos),
                    msg: format!(
                        "`{tok}…` outside the offload runtime ({MMIO_MODULE}); post requests \
                         through PubLists instead of opening a private MMIO channel"
                    ),
                });
            }
        }
    }

    // policy-confinement: tuning state stays in the offload policy layer.
    if rel.starts_with("crates/hybrids/src") && !POLICY_MODULES.contains(&rel.as_str()) {
        let b = masked.as_bytes();
        for tok in POLICY_TOKENS {
            let mut from = 0usize;
            while let Some(pos) = find_ident_from(b, tok.as_bytes(), from) {
                from = pos + 1;
                out.push(Violation {
                    rule: "policy-confinement",
                    path: rel.clone(),
                    line: line_of(&masked, pos),
                    msg: format!(
                        "`{tok}` (adaptive-policy state) outside the offload policy layer; \
                         structures declare coalescible ops and forward occupancy feedback, \
                         tuning lives in offload/policy.rs / publist.rs / driver.rs"
                    ),
                });
            }
        }
        // `.policy` field reads: branching a structure on the configured
        // policy smuggles tuning decisions out of the policy layer (and
        // breaks the Fixed-mode bit-identity argument).
        let mut from = 0usize;
        while let Some(pos) = find_from(b, b".policy", from) {
            from = pos + 1;
            let after = pos + ".policy".len();
            if after < b.len() && is_ident_byte(b[after]) {
                continue;
            }
            out.push(Violation {
                rule: "policy-confinement",
                path: rel.clone(),
                line: line_of(&masked, pos),
                msg: "`.policy` read outside the offload policy layer; only \
                      offload/policy.rs, publist.rs, and driver.rs may branch on the \
                      configured policy"
                    .to_string(),
            });
        }
    }

    // opcode-coverage: every OpCode mentioned in an NmpExec file must be
    // covered by an effect_spec in that file.
    if masked.contains("impl NmpExec for") {
        let ranges = effect_spec_ranges(&masked);
        let b = masked.as_bytes();
        let mut inside: Vec<String> = Vec::new();
        let mut outside: Vec<(String, usize)> = Vec::new();
        let mut from = 0usize;
        while let Some(pos) = find_from(b, b"OpCode::", from) {
            let start = pos + "OpCode::".len();
            let mut end = start;
            while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_') {
                end += 1;
            }
            from = end.max(pos + 1);
            if start == end {
                continue;
            }
            let name = masked[start..end].to_string();
            if ranges.iter().any(|r| r.contains(&pos)) {
                inside.push(name);
            } else {
                outside.push((name, line_of(&masked, pos)));
            }
        }
        let mut reported: Vec<String> = Vec::new();
        for (name, line) in outside {
            if !inside.contains(&name) && !reported.contains(&name) {
                reported.push(name.clone());
                out.push(Violation {
                    rule: "opcode-coverage",
                    path: rel.clone(),
                    line,
                    msg: format!(
                        "`OpCode::{name}` is used in this NmpExec file but not declared by any \
                         `fn effect_spec` here"
                    ),
                });
            }
        }
    }

    out
}

// ---------------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------------

fn walk(dir: &Path, files: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under [`SCAN_ROOTS`], rooted at `root`.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for scope in SCAN_ROOTS {
        let dir = root.join(scope);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        out.extend(check_source(&rel, &src));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"ram.read_u64\"; // ram.read_u64\n/* ram.read_u64 */ let b = 1;\n";
        let m = mask_source(src);
        assert!(!m.contains("ram.read_u64"));
        assert!(m.contains("let a ="));
        assert!(m.contains("let b = 1;"));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"Ordering::Relaxed\"#; let c = 'x'; let l: &'static str = s;\n";
        let m = mask_source(src);
        assert!(!m.contains("Ordering::"));
        assert!(m.contains("'static"), "lifetimes must survive masking");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let m = mask_source(src);
        assert!(m.contains("let x = 1;"));
        assert!(!m.contains("outer"));
        assert!(!m.contains("still"));
    }

    #[test]
    fn strips_test_modules() {
        let src = "fn live() { touch(); }\n#[cfg(test)]\nmod tests {\n    fn t() { \
                   ram.read_u64(0); }\n}\nfn also_live() {}\n";
        let m = strip_test_mods(&mask_source(src));
        assert!(!m.contains("ram.read_u64"));
        assert!(m.contains("fn live()"));
        assert!(m.contains("fn also_live()"));
    }

    #[test]
    fn effect_spec_range_detection() {
        let src = "impl NmpExec for X {\n    fn exec(&self) { OpCode::Read; }\n    fn \
                   effect_spec(&self) -> EffectSpec { OpCode::Read; }\n}\n";
        let m = mask_source(src);
        let ranges = effect_spec_ranges(&m);
        assert_eq!(ranges.len(), 1);
        let v = check_source("crates/hybrids/src/x.rs", src);
        assert!(v.is_empty(), "covered opcode should not fire: {v:?}");
    }

    #[test]
    fn line_marker_scope_is_two_lines() {
        let src = "// xtask: allow(raw-mem) — init\nram.write_u64(0, 0);\nram.write_u64(8, 0);\n";
        let v = check_source("crates/hybrids/src/publist.rs", src);
        // line 2 is exempt (marker on line 1), line 3 is not
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }
}
