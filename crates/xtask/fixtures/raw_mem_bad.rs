//! Known-bad fixture: raw SimRam access outside an accessor module.

use nmp_sim::{Addr, SimRam};

pub fn peek(ram: &SimRam, addr: Addr) -> u64 {
    // untimed read, invisible to the race detector — must be flagged
    ram.read_u64(addr)
}

pub fn poke(ram: &SimRam, addr: Addr, w: u64) {
    ram.write_u64(addr, w);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_access_in_tests_is_fine() {
        let ram = SimRam::new(4096);
        ram.write_u64(0, 7);
        assert_eq!(ram.read_u64(0), 7);
    }
}
