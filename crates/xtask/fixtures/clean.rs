//! Known-good fixture: everything the lint checks for, done the
//! sanctioned way. `check_source` must return no violations for this file
//! under a data-structure path.

use hybrids::publist::{NmpExec, OpCode, Request, Response};
use nmp_sim::{EffectSpec, ThreadCtx};

/// Mentions in docs are fine: ram.read_u64, Ordering::SeqCst, mmio_write_u64.
pub struct Covered;

impl NmpExec for Covered {
    type SlotState = ();

    fn exec(&self, ctx: &mut ThreadCtx, _part: usize, req: &Request, _s: &mut ()) -> Response {
        match req.op_code() {
            OpCode::Read => {
                let w = ctx.read_u64(req.key as u64 as u32);
                Response::ok_value(w as u32)
            }
            OpCode::Insert => {
                ctx.write_u64_release(req.key, req.value as u64);
                Response::ok_value(0)
            }
            _ => Response::fail(),
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        EffectSpec::new("covered")
            .op(hybrids::effects::protocol_op(OpCode::Read, "Read"))
            .op(hybrids::effects::protocol_op(OpCode::Insert, "Insert"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_sim::SimRam;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn tests_may_do_anything() {
        let ram = SimRam::new(4096);
        ram.write_u64(0, 1);
        let flag = AtomicU64::new(0);
        flag.store(ram.read_u64(0), Ordering::Release);
        assert_eq!(flag.load(Ordering::Acquire), 1);
    }
}
