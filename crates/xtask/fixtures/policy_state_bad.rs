//! Known-bad fixture: a data structure embedding adaptive-policy state and
//! branching on the configured policy instead of leaving tuning to the
//! offload layer. Mentions of LaneGovernor in comments or strings must not
//! count.

use crate::offload::policy::LaneGovernor;

pub struct Widget {
    gov: LaneGovernor,
}

impl Widget {
    pub fn tune(&mut self, m: &Machine) -> bool {
        // the name "LaneGovernor" in a comment or string is fine:
        let label = "LaneGovernor";
        let _ = label;
        m.config().policy == Policy::Adaptive
    }

    pub fn serve(&self, batch: &mut Vec<(usize, Request)>) {
        sort_batch(batch);
        let _ = coalesce_run_len(batch, 0, &[]);
    }
}
