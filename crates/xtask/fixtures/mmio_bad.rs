//! Known-bad fixture: a data structure opening its own MMIO side channel
//! instead of posting through the offload runtime.

use nmp_sim::{Addr, ThreadCtx};

pub fn sneak_request(ctx: &mut ThreadCtx, slot: Addr, payload: u64) -> u64 {
    ctx.mmio_write_u64(slot + 8, payload);
    ctx.mmio_write_u64_release(slot, 1);
    ctx.mmio_read_u64_acquire(slot + 16)
}
