//! Known-bad fixture: an NmpExec that handles `OpCode::Remove` but whose
//! effect spec only declares `OpCode::Read`.

use hybrids::publist::{NmpExec, OpCode, Request, Response};
use nmp_sim::{EffectSpec, ThreadCtx};

pub struct Partial;

impl NmpExec for Partial {
    type SlotState = ();

    fn exec(&self, ctx: &mut ThreadCtx, _part: usize, req: &Request, _s: &mut ()) -> Response {
        match req.op_code() {
            OpCode::Read => Response::ok_value(0),
            OpCode::Remove => {
                ctx.advance(1);
                Response::ok_value(1)
            }
            _ => Response::fail(),
        }
    }

    fn effect_spec(&self) -> EffectSpec {
        EffectSpec::new("partial").op(hybrids::effects::protocol_op(OpCode::Read, "Read"))
    }
}
