//! Known-bad fixture: host atomics in data-structure code. The string and
//! comment below must NOT count; only the live uses must be flagged.

use std::sync::atomic::{AtomicU64, Ordering};

// Ordering::Relaxed in a comment is fine.
pub const DOC: &str = "Ordering::Relaxed in a string is fine";

pub fn sneak_sync(flag: &AtomicU64) -> u64 {
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}
