//! Known-bad fixture: raw epoll/poll syscall vocabulary outside the
//! evented runtime. A mention of epoll_wait in this doc comment must NOT
//! count; each live token below must be flagged.

#[repr(C)]
struct epoll_event {
    events: u32,
    u64: u64,
}

const EPOLLIN: u32 = 0x001;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

fn sneak_a_reactor() -> i32 {
    // "epoll_ctl in a comment is fine"
    let msg = "pollfd in a string is fine too";
    let _ = msg;
    let _ = EPOLLIN;
    unsafe {
        let ep = epoll_create1(0);
        fcntl(ep, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    // Test modules are stripped: this must not count.
    extern "C" {
        fn epoll_wait(ep: i32, evs: *mut u8, n: i32, ms: i32) -> i32;
    }
}
