//! Known-bad fixture: socket code outside the server crate. A mention of
//! TcpListener in this doc comment must NOT count; the live uses below
//! must each be flagged.

use std::net::TcpListener;

fn sneak_a_server() -> std::io::Result<()> {
    // "TcpStream in a comment is fine"
    let msg = "TcpStream in a string is fine too";
    let _ = msg;
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let (_stream, _addr) = listener.accept()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    // Test modules are stripped: this use must not count.
    use std::net::TcpStream;

    fn t() {
        let _ = TcpStream::connect("127.0.0.1:1");
    }
}
