//! Known-bad fixture: simulator code reaching into another shard's state
//! instead of going through the owner module's accessor API.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct PeerPeek<'a> {
    /// Direct alias of `ShardCtl`'s frontier words — must be flagged.
    pub frontiers: &'a [AtomicU64],
}

pub fn spin_on_peer(p: &PeerPeek<'_>, shard: usize) -> u64 {
    // reading a foreign shard's frontier directly bypasses gate_wait()
    p.frontiers[shard].load(Ordering::Acquire)
}

pub fn fake_stop(nd_live: &AtomicU64) -> bool {
    // hand-rolled stop check instead of ShardCtl::stop_query
    nd_live.load(Ordering::Acquire) == 0
}

pub struct VaultPoke {
    /// Alias of the memory system's per-vault timing lock vector.
    pub parts_t: Vec<u64>,
}
