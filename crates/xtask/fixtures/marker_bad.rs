//! Known-bad fixture: silencing the lint by declaring yourself an accessor
//! module in a file the allow-list does not sanction.

// xtask: accessor-module — nice try

use nmp_sim::{Addr, SimRam};

pub fn peek(ram: &SimRam, addr: Addr) -> u64 {
    ram.read_u64(addr)
}
