//! Drive the lint over the known-bad fixture suite: each fixture must fail
//! with exactly its intended rule, the clean fixture must pass, and the
//! real tree must be clean.

use xtask::{check_source, lint_tree, Violation};

/// Lint fixture text as if it lived at `rel` inside the repo.
fn lint_as(rel: &str, src: &str) -> Vec<Violation> {
    check_source(rel, src)
}

fn rules(v: &[Violation]) -> Vec<&'static str> {
    let mut r: Vec<&'static str> = v.iter().map(|v| v.rule).collect();
    r.dedup();
    r
}

#[test]
fn raw_mem_fixture_fails_only_raw_mem() {
    let v = lint_as("crates/hybrids/src/widget.rs", include_str!("../fixtures/raw_mem_bad.rs"));
    assert_eq!(rules(&v), ["raw-mem"], "{v:?}");
    // one read + one write in live code; the test-module uses are stripped
    assert_eq!(v.len(), 2, "{v:?}");
}

#[test]
fn raw_mem_fixture_passes_in_an_accessor_module_path() {
    // Same source, but the file claims accessor-module status in an
    // allow-listed location — then raw access is its job.
    let marked =
        format!("// xtask: accessor-module\n{}", include_str!("../fixtures/raw_mem_bad.rs"));
    let v = lint_as("crates/hybrids/src/hashmap/node.rs", &marked);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn atomic_ordering_fixture_fails_only_in_ds_scope() {
    let src = include_str!("../fixtures/atomic_ordering_bad.rs");
    let v = lint_as("crates/hybrids/src/widget.rs", src);
    assert_eq!(rules(&v), ["atomic-ordering"], "{v:?}");
    // store + load; the comment and string mentions must not count
    assert_eq!(v.len(), 2, "{v:?}");
    // the same source is fine in bench-harness scope
    let v = lint_as("crates/bench/benches/probe.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn mmio_fixture_fails_everywhere_but_the_runtime() {
    let src = include_str!("../fixtures/mmio_bad.rs");
    let v = lint_as("crates/hybrids/src/hashmap/mod.rs", src);
    assert_eq!(rules(&v), ["mmio-confinement"], "{v:?}");
    assert_eq!(v.len(), 3, "{v:?}");
    let v = lint_as("crates/hybrids/src/publist.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn opcode_coverage_fixture_flags_the_undeclared_op() {
    let v =
        lint_as("crates/hybrids/src/widget.rs", include_str!("../fixtures/opcode_coverage_bad.rs"));
    assert_eq!(rules(&v), ["opcode-coverage"], "{v:?}");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("OpCode::Remove"), "{v:?}");
}

#[test]
fn marker_fixture_flags_the_marker_and_still_raw_mem() {
    // An unsanctioned accessor-module claim is itself a violation, and it
    // must NOT exempt the file from raw-mem.
    let v = lint_as("crates/hybrids/src/widget.rs", include_str!("../fixtures/marker_bad.rs"));
    let mut r = rules(&v);
    r.sort_unstable();
    assert_eq!(r, ["marker-location", "raw-mem"], "{v:?}");
}

#[test]
fn marker_fixture_raw_mem_exempt_where_sanctioned() {
    // In an allow-listed path the very same file is fully clean.
    let v = lint_as("crates/hybrids/src/btree/node.rs", include_str!("../fixtures/marker_bad.rs"));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn shard_ownership_fixture_fails_outside_owner_modules() {
    let src = include_str!("../fixtures/shard_ownership_bad.rs");
    // In a generic engine file both token families are foreign: frontiers
    // (decl + use), nd_live (param + use), parts_t (field decl).
    let v = lint_as("crates/nmp-sim/src/engine/shard.rs", src);
    assert_eq!(rules(&v), ["shard-ownership"], "{v:?}");
    assert_eq!(v.len(), 5, "{v:?}");
    // The barrier module owns the scheduler words but not the vault state.
    let v = lint_as("crates/nmp-sim/src/engine/barrier.rs", src);
    assert_eq!(rules(&v), ["shard-ownership"], "{v:?}");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("parts_t"), "{v:?}");
    // The memory system owns the vault state but not the scheduler words.
    let v = lint_as("crates/nmp-sim/src/mem.rs", src);
    assert_eq!(v.len(), 4, "{v:?}");
    // Outside the simulator crate the rule does not apply at all (the
    // host-atomics one fires instead, in data-structure scope).
    let v = lint_as("crates/hybrids/src/widget.rs", src);
    assert!(v.iter().all(|v| v.rule == "atomic-ordering"), "{v:?}");
}

#[test]
fn simulator_files_are_exempt_from_effect_rules() {
    // nmp-sim implements SimRam and the MMIO channel; its own use of those
    // tokens is not a violation.
    let src = "pub fn mmio_read_u64(&self) -> u64 { self.ram.read_u64(0) }\n";
    let v = lint_as("crates/nmp-sim/src/mem.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn policy_state_fixture_fails_outside_the_policy_layer() {
    let src = include_str!("../fixtures/policy_state_bad.rs");
    // In structure code every embedded-tuning token fires: the use path,
    // the field type, the two helper calls, and the `.policy` read —
    // comment/string mentions do not count.
    let v = lint_as("crates/hybrids/src/hashmap/mod.rs", src);
    assert_eq!(rules(&v), ["policy-confinement"], "{v:?}");
    assert_eq!(v.len(), 5, "{v:?}");
    assert!(v.iter().any(|v| v.msg.contains(".policy")), "{v:?}");
    // The same source is the policy layer's job in its own modules.
    for ok in ["crates/hybrids/src/offload/policy.rs", "crates/hybrids/src/driver.rs"] {
        let v = lint_as(ok, src);
        assert!(v.is_empty(), "{ok}: {v:?}");
    }
    // Outside the hybrids crate the rule does not apply (bench code
    // selects policies legitimately).
    let v = lint_as("crates/bench/src/lib.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn net_fixture_fails_everywhere_but_the_server_crate() {
    let src = include_str!("../fixtures/net_bad.rs");
    // Live code holds three socket mentions (`std::net` + `TcpListener` in
    // the use, `TcpListener::bind`); the doc comment, the inline comment,
    // the string literal, and the test module must not count.
    for bad in [
        "crates/hybrids/src/widget.rs",
        "crates/bench/src/lib.rs",
        "crates/nmp-sim/src/machine.rs",
        "src/lib.rs",
    ] {
        let v = lint_as(bad, src);
        assert!(v.iter().all(|v| v.rule == "net-confinement"), "{bad}: {v:?}");
        assert_eq!(v.iter().filter(|v| v.rule == "net-confinement").count(), 3, "{bad}: {v:?}");
    }
    // Inside the server crate sockets are the whole point.
    for ok in ["crates/server/src/server.rs", "crates/server/tests/server_e2e.rs"] {
        let v = lint_as(ok, src);
        assert!(v.is_empty(), "{ok}: {v:?}");
    }
}

#[test]
fn epoll_fixture_fails_everywhere_but_the_evented_runtime() {
    let src = include_str!("../fixtures/epoll_bad.rs");
    // Live code holds seven syscall-vocabulary tokens: the epoll_event
    // struct, the EPOLLIN const (decl + use), the epoll_create1 and fcntl
    // extern decls and their calls. The doc comment, the inline comment,
    // the string literal, and the test module must not count.
    for bad in [
        "crates/server/src/server.rs",
        "crates/server/src/loadgen.rs",
        "crates/hybrids/src/widget.rs",
        "crates/nmp-sim/src/machine.rs",
    ] {
        let v = lint_as(bad, src);
        assert!(v.iter().all(|v| v.rule == "sys-confinement"), "{bad}: {v:?}");
        assert_eq!(v.len(), 7, "{bad}: {v:?}");
    }
    // Inside the evented runtime the raw FFI is the module's job.
    for ok in ["crates/server/src/runtime/sys.rs", "crates/server/src/runtime/poller.rs"] {
        let v = lint_as(ok, src);
        assert!(v.is_empty(), "{ok}: {v:?}");
    }
}

#[test]
fn clean_fixture_passes_in_strictest_scope() {
    let v = lint_as("crates/hybrids/src/widget.rs", include_str!("../fixtures/clean.rs"));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn real_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
    let v = lint_tree(root).expect("lint walks the tree");
    assert!(
        v.is_empty(),
        "the tree must pass its own lint:\n{}",
        v.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
