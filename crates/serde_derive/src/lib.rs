//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (the `Value`-tree pair, not real serde's visitor API). Because the
//! environment has no crates.io access, this macro parses the item with a
//! small hand-rolled token walker instead of `syn`, and emits code by
//! string-building instead of `quote`.
//!
//! Supported shapes — exactly what this workspace derives on:
//! - structs with named fields (no generics),
//! - enums whose variants are unit or struct variants (externally tagged,
//!   matching real serde's default representation: a unit variant encodes
//!   as its name string, a struct variant as `{"Variant": {fields...}}`).
//!
//! Of the `#[serde(...)]` attributes, only `#[serde(default)]` on a named
//! struct field is interpreted (a missing field deserializes via
//! `Default::default()`); others are ignored. Tuple variants, tuple structs,
//! and generics produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct field: its name, and whether `#[serde(default)]` lets it
/// fall back to `Default::default()` when absent from the input.
struct Field {
    name: String,
    default: bool,
}

enum Shape {
    /// Named-field struct: fields in declaration order.
    Struct { name: String, fields: Vec<Field> },
    /// Enum of unit and struct variants.
    Enum { name: String, variants: Vec<(String, Option<Vec<Field>>)> },
}

/// Derive `serde::Serialize` (the vendored Value-tree trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (the vendored Value-tree trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Skip `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Like [`skip_attrs`], but also reports whether one of the skipped
/// attributes is `#[serde(default)]`.
fn scan_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        default |= args.stream().into_iter().any(
                            |t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"),
                        );
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, default)
}

/// Skip a `pub` / `pub(...)` visibility prefix at `i`; returns the new index.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive: generics on `{name}` are not supported by the vendored derive"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde derive: `{name}` must have a braced body (tuple/unit structs unsupported)"
            ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Shape::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Shape::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("serde derive: cannot derive on `{other}` items")),
    }
}

/// Parse `name: Type, ...` named fields, returning name plus whether the
/// field carries `#[serde(default)]`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, default) = scan_attrs(&tokens, i);
        i = skip_vis(&tokens, j);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde derive: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde derive: expected `:` after field `{fname}`")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name: fname, default });
    }
    Ok(fields)
}

/// A parsed variant: name plus `Some(fields)` for struct variants.
type Variant = (String, Option<Vec<Field>>);

/// Parse enum variants: `Name` (unit) or `Name { fields }` (struct variant).
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde derive: expected variant name, got {other:?}")),
        };
        i += 1;
        let mut fields = None;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_named_fields(g.stream())?);
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde derive: tuple variant `{vname}` unsupported by the vendored derive"
                ));
            }
            _ => {}
        }
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((vname, fields));
    }
    Ok(variants)
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let f = &f.name;
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, vfields) in variants {
                match vfields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),\n"
                    )),
                    Some(fs) => {
                        let binds =
                            fs.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        let mut pushes = String::new();
                        for f in fs {
                            let f = &f.name;
                            pushes.push_str(&format!(
                                "fields.push((::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                                     = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Object(::std::vec::Vec::from([(\
                                     ::std::string::String::from({vname:?}), \
                                     ::serde::Value::Object(fields))]))\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let (f, default) = (&f.name, f.default);
                if default {
                    inits.push_str(&format!(
                        "{f}: match v.field({f:?}) {{\n\
                             ::std::result::Result::Ok(fv) => \
                                 ::serde::Deserialize::from_value(fv)?,\n\
                             ::std::result::Result::Err(_) => \
                                 ::std::default::Default::default(),\n\
                         }},\n"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, vfields) in variants {
                match vfields {
                    None => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Some(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            let f = &f.name;
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(inner.field({f:?})?)?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     ::std::format!(\
                                         \"unknown unit variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => ::std::result::Result::Err(::serde::Error::msg(\
                                         ::std::format!(\
                                             \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\
                                     \"expected {name} variant, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
