//! Simulated physical memory: address map, backing RAM, and the timed
//! access paths (host cache hierarchy, NMP direct-to-vault, host MMIO).
//!
//! Addresses are 32-bit, as in the paper (4-byte pointers). The map is:
//!
//! ```text
//! [64, 64+host_heap)                      host heap  (interleaved over main vaults)
//! [part_base(p), +part_heap) per p        NMP partition p   (vault main_vaults+p)
//! [spad_base(p), +spad_size) per p        scratchpad of NMP core p (publication list)
//! ```
//!
//! Address 0 is reserved as the null pointer. The *data plane* (what bytes
//! hold) is [`SimRam`]; the *timing plane* (what an access costs and which
//! cache/DRAM state it touches) is [`MemorySystem`]. The engine's
//! [`crate::engine::ThreadCtx`] combines both.

use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(any(feature = "analysis", feature = "trace"))]
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

#[cfg(feature = "analysis")]
use crate::analysis::Analysis;
use crate::backend::{BackendKind, MemBackend, NativeRam};
use crate::cache::{Access, Cache};
use crate::config::Config;
use crate::dram::{DramTiming, Vault};
use crate::stats::{OffloadStats, StatsSnapshot};
#[cfg(feature = "trace")]
use crate::trace::Tracer;

/// Simulated 32-bit address.
pub type Addr = u32;

/// The null simulated pointer.
pub const NULL: Addr = 0;

/// Which architectural region an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Host-accessible main memory.
    Host,
    /// NMP partition `p` — accessible only by NMP core `p`.
    Part(usize),
    /// Scratchpad of NMP core `p` — local to that core, memory-mapped into
    /// the host address space (MMIO).
    Spad(usize),
}

/// The static address map. Regions are laid out contiguously:
/// `[null page | host heap | partition 0..p | scratchpad 0..p]`.
#[derive(Debug, Clone, Copy)]
pub struct MemMap {
    /// First valid address (everything below is the null page).
    pub host_base: Addr,
    /// Bytes of host main memory.
    pub host_size: u32,
    /// Number of NMP partitions (= NMP cores).
    pub parts: usize,
    part_base0: Addr,
    /// Bytes per NMP partition.
    pub part_size: u32,
    spad_base0: Addr,
    /// Bytes per NMP scratchpad.
    pub spad_size: u32,
    /// One past the highest valid address.
    pub total_bytes: u32,
}

impl MemMap {
    /// Lay out the address map for `cfg`.
    pub fn new(cfg: &Config) -> Self {
        let parts = cfg.nmp_partitions();
        // Region bases are block-aligned so cache-block and NMP-buffer
        // alignment arithmetic holds across region boundaries.
        let host_base: Addr = cfg.l1.block_bytes.max(cfg.nmp_buffer_bytes).max(64);
        let part_base0 = host_base + cfg.host_heap_bytes;
        let spad_base0 = part_base0 + (parts as u32) * cfg.part_heap_bytes;
        let total = spad_base0 + (parts as u32) * cfg.scratchpad_bytes;
        MemMap {
            host_base,
            host_size: cfg.host_heap_bytes,
            parts,
            part_base0,
            part_size: cfg.part_heap_bytes,
            spad_base0,
            spad_size: cfg.scratchpad_bytes,
            total_bytes: total,
        }
    }

    /// Base address of NMP partition `p`.
    pub fn part_base(&self, p: usize) -> Addr {
        assert!(p < self.parts);
        self.part_base0 + (p as u32) * self.part_size
    }

    /// Base address of NMP core `p`'s scratchpad.
    pub fn spad_base(&self, p: usize) -> Addr {
        assert!(p < self.parts);
        self.spad_base0 + (p as u32) * self.spad_size
    }

    /// Classify an address. Panics on the null page or out-of-range
    /// addresses — in a simulator a wild pointer is a bug to surface loudly.
    pub fn region_of(&self, addr: Addr) -> Region {
        assert!(addr >= self.host_base, "null-page dereference at {addr:#x}");
        assert!(addr < self.total_bytes, "address {addr:#x} beyond simulated memory");
        if addr < self.part_base0 {
            Region::Host
        } else if addr < self.spad_base0 {
            Region::Part(((addr - self.part_base0) / self.part_size) as usize)
        } else {
            Region::Spad(((addr - self.spad_base0) / self.spad_size) as usize)
        }
    }
}

/// Backing storage for the simulated physical memory. All accesses are
/// untimed; sharing is safe because the engine runs one logical thread at a
/// time and engine handoffs establish happens-before edges.
pub struct SimRam {
    words: Vec<AtomicU64>,
}

impl SimRam {
    /// Allocate zeroed backing storage of `total_bytes` (rounded up to 8).
    pub fn new(total_bytes: u32) -> Self {
        let n = (total_bytes as usize).div_ceil(8);
        let mut words = Vec::with_capacity(n);
        words.resize_with(n, || AtomicU64::new(0));
        SimRam { words }
    }

    #[inline]
    fn word(&self, addr: Addr) -> &AtomicU64 {
        &self.words[(addr / 8) as usize]
    }

    /// Untimed 8-byte read; `addr` must be 8-aligned.
    #[inline]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 read at {addr:#x}");
        self.word(addr).load(Ordering::Relaxed)
    }

    /// Untimed 8-byte write; `addr` must be 8-aligned.
    #[inline]
    pub fn write_u64(&self, addr: Addr, value: u64) {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 write at {addr:#x}");
        self.word(addr).store(value, Ordering::Relaxed)
    }

    /// Untimed 4-byte read; `addr` must be 4-aligned.
    #[inline]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        debug_assert_eq!(addr % 4, 0, "unaligned u32 read at {addr:#x}");
        let w = self.word(addr & !7).load(Ordering::Relaxed);
        if addr.is_multiple_of(8) {
            w as u32
        } else {
            (w >> 32) as u32
        }
    }

    /// Untimed 4-byte write; `addr` must be 4-aligned.
    #[inline]
    pub fn write_u32(&self, addr: Addr, value: u32) {
        debug_assert_eq!(addr % 4, 0, "unaligned u32 write at {addr:#x}");
        let waddr = addr & !7;
        let w = self.word(waddr).load(Ordering::Relaxed);
        let nw = if addr.is_multiple_of(8) {
            (w & 0xFFFF_FFFF_0000_0000) | value as u64
        } else {
            (w & 0x0000_0000_FFFF_FFFF) | ((value as u64) << 32)
        };
        self.word(waddr).store(nw, Ordering::Relaxed)
    }

    /// Capacity in bytes (total simulated physical memory).
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Untimed 8-byte compare-and-swap; `addr` must be 8-aligned. Under the
    /// engine's one-thread-at-a-time execution this is equivalent to a
    /// read-then-write, but it is implemented atomically so the semantics
    /// match the native backend word for word.
    pub fn cas_u64(&self, addr: Addr, expect: u64, new: u64) -> Result<(), u64> {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 CAS at {addr:#x}");
        self.word(addr)
            .compare_exchange(expect, new, Ordering::Relaxed, Ordering::Relaxed)
            .map(|_| ())
    }

    /// Untimed 4-byte compare-and-swap on one half of the containing word;
    /// `addr` must be 4-aligned (see [`SimRam::cas_u64`]).
    pub fn cas_u32(&self, addr: Addr, expect: u32, new: u32) -> Result<(), u32> {
        let cur = self.read_u32(addr);
        if cur != expect {
            return Err(cur);
        }
        self.write_u32(addr, new);
        Ok(())
    }
}

/// The simulated data plane is the relaxed end of the backend contract:
/// the deterministic engine runs one logical thread at a time, so engine
/// handoffs establish every happens-before edge and the synchronization
/// variants need no hardware ordering of their own (the acquire/release
/// *annotations* at the [`crate::engine::ThreadCtx`] layer still feed the
/// race detector).
impl MemBackend for SimRam {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn len_bytes(&self) -> usize {
        SimRam::len_bytes(self)
    }

    fn read_u64(&self, addr: Addr) -> u64 {
        SimRam::read_u64(self, addr)
    }

    fn write_u64(&self, addr: Addr, value: u64) {
        SimRam::write_u64(self, addr, value)
    }

    fn read_u32(&self, addr: Addr) -> u32 {
        SimRam::read_u32(self, addr)
    }

    fn write_u32(&self, addr: Addr, value: u32) {
        SimRam::write_u32(self, addr, value)
    }

    fn read_u64_acquire(&self, addr: Addr) -> u64 {
        SimRam::read_u64(self, addr)
    }

    fn write_u64_release(&self, addr: Addr, value: u64) {
        SimRam::write_u64(self, addr, value)
    }

    fn read_u32_acquire(&self, addr: Addr) -> u32 {
        SimRam::read_u32(self, addr)
    }

    fn write_u32_release(&self, addr: Addr, value: u32) {
        SimRam::write_u32(self, addr, value)
    }

    fn cas_u64(&self, addr: Addr, expect: u64, new: u64) -> Result<(), u64> {
        SimRam::cas_u64(self, addr, expect, new)
    }

    fn cas_u32(&self, addr: Addr, expect: u32, new: u32) -> Result<(), u32> {
        SimRam::cas_u32(self, addr, expect, new)
    }
}

/// Combined-per-pass histogram buckets tracked per partition: bucket `i`
/// counts combiner scan passes that collected exactly `i` requests, with the
/// last bucket saturating (so `OFFLOAD_HIST_BUCKETS - 1` = "16 or more").
pub const OFFLOAD_HIST_BUCKETS: usize = 17;

/// Publication-list lanes tracked individually in the per-lane occupancy
/// counter; posts to higher lanes accumulate in the last element.
pub const OFFLOAD_LANE_CAP: usize = 16;

/// Lock-free offload-runtime counters, recorded by `hybrids::offload` (host
/// side) and its combiners (NMP side). Untimed and relaxed: recording never
/// perturbs simulated timing, so determinism is unaffected.
struct OffloadCounters {
    posted: Vec<AtomicU64>,
    completed: Vec<AtomicU64>,
    retries: Vec<AtomicU64>,
    lock_path: Vec<AtomicU64>,
    lane_posted: Vec<AtomicU64>,
    /// parts × OFFLOAD_HIST_BUCKETS, row-major.
    combined_hist: Vec<AtomicU64>,
    /// Pqueue minima-cache stale-empty probes per partition: extract-min legs
    /// that targeted a partition and found it empty (ROADMAP §4.6 follow-up).
    pq_stale: Vec<AtomicU64>,
    /// Requests served per partition by replicating a coalesced sibling's
    /// response (key-range coalescing, adaptive policy only).
    coalesced: Vec<AtomicU64>,
}

impl OffloadCounters {
    fn new(parts: usize) -> Self {
        let zeros = |n: usize| {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, || AtomicU64::new(0));
            v
        };
        OffloadCounters {
            posted: zeros(parts),
            completed: zeros(parts),
            retries: zeros(parts),
            lock_path: zeros(parts),
            lane_posted: zeros(OFFLOAD_LANE_CAP),
            combined_hist: zeros(parts * OFFLOAD_HIST_BUCKETS),
            pq_stale: zeros(parts),
            coalesced: zeros(parts),
        }
    }

    fn collect(&self) -> OffloadStats {
        let load = |v: &[AtomicU64]| v.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        OffloadStats {
            posted: load(&self.posted),
            completed: load(&self.completed),
            retries: load(&self.retries),
            lock_path: load(&self.lock_path),
            lane_posted: load(&self.lane_posted),
            combined_hist: load(&self.combined_hist),
            pq_stale: load(&self.pq_stale),
            coalesced: load(&self.coalesced),
        }
    }

    /// Zero the host-recorded counters (posts, retries, lock-path falls,
    /// lane occupancy, pqueue stale probes). Counters bumped by NMP
    /// combiners are reset per partition by
    /// [`OffloadCounters::reset_part_side`], so a sharded engine can apply
    /// each side's reset at its own canonical stream position.
    fn reset_host_side(&self) {
        for v in [&self.posted, &self.retries, &self.lock_path, &self.pq_stale] {
            for a in v.iter() {
                a.store(0, Ordering::Relaxed);
            }
        }
        for a in self.lane_posted.iter() {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Zero the combiner-recorded counters of partition `part` (completed
    /// requests, coalesced completions, and the combined-per-pass histogram
    /// row).
    fn reset_part_side(&self, part: usize) {
        self.completed[part].store(0, Ordering::Relaxed);
        self.coalesced[part].store(0, Ordering::Relaxed);
        for b in 0..OFFLOAD_HIST_BUCKETS {
            self.combined_hist[part * OFFLOAD_HIST_BUCKETS + b].store(0, Ordering::Relaxed);
        }
    }
}

/// Timing state owned by the host shard: the cache hierarchy, the host
/// main-memory vaults, and the host-side MMIO issue counters. Exactly one
/// shard (the host shard, or the single legacy loop) mutates this.
struct HostTiming {
    l1: Vec<Cache>,
    l2: Cache,
    /// The `main_vaults` host main-memory vaults (block-interleaved).
    vaults: Vec<Vault>,
    mmio_reads: u64,
    mmio_writes: u64,
}

/// Timing state owned by one NMP partition's vault shard: its DRAM vault
/// and the NMP core's single-block node-register buffer. Only the shard
/// that owns partition `p` (or the single legacy loop) mutates entry `p`.
struct PartTiming {
    vault: Vault,
    /// Last block resident in this NMP core's node-register buffer.
    nmp_buf: Option<Addr>,
    nmp_buffer_hits: u64,
}

/// The timed memory system shared by all logical threads of a simulation.
///
/// Timing state is partitioned by shard ownership: `HostTiming` behind one
/// lock, one `PartTiming` lock per NMP partition, and the immutable
/// [`DramTiming`] shared read-only. Under the legacy single loop the finer
/// locks are simply uncontended; under the sharded engine each shard only
/// ever takes the locks it owns, so cross-shard timing state is never
/// touched directly (cross-shard *data* travels through the engine inbox).
pub struct MemorySystem {
    backing: Box<dyn MemBackend>,
    map: MemMap,
    cfg: Config,
    mmio_read_cycles: u64,
    mmio_write_cycles: u64,
    host_link_cycles: u64,
    block_bytes: u32,
    offload: OffloadCounters,
    dram: DramTiming,
    host_t: Mutex<HostTiming>,
    parts_t: Vec<Mutex<PartTiming>>,
    /// Correctness checkers, attached at most once per machine (see
    /// [`crate::analysis`]). Empty = zero checking overhead.
    #[cfg(feature = "analysis")]
    analysis: OnceLock<Arc<Analysis>>,
    /// Cycle-level event tracer, attached at most once per machine (see
    /// [`crate::trace`]). Empty = zero tracing overhead.
    #[cfg(feature = "trace")]
    tracer: OnceLock<Arc<Tracer>>,
}

impl MemorySystem {
    /// Build the timed memory hierarchy (caches, vaults, MMIO) for `cfg`,
    /// backed by the cycle-accurate simulated data plane ([`SimRam`]).
    pub fn new(cfg: Config) -> Self {
        Self::new_with_backend(cfg, BackendKind::Sim)
    }

    /// Build the memory system for `cfg` on the chosen data-plane backend.
    /// The timing plane is constructed either way (the address map and
    /// configuration live there), but a [`BackendKind::Native`] machine is
    /// expected to run through [`crate::engine::NativeRun`], which bypasses
    /// the timed access paths entirely.
    pub fn new_with_backend(cfg: Config, backend: BackendKind) -> Self {
        cfg.validate();
        let map = MemMap::new(&cfg);
        let backing: Box<dyn MemBackend> = match backend {
            BackendKind::Sim => Box::new(SimRam::new(map.total_bytes)),
            BackendKind::Native => Box::new(NativeRam::new(map.total_bytes)),
        };
        let dram = DramTiming::from_config(&cfg);
        let host_t = HostTiming {
            l1: (0..cfg.host_cores).map(|_| Cache::new(&cfg.l1)).collect(),
            l2: Cache::new(&cfg.l2),
            vaults: (0..cfg.main_vaults).map(|_| Vault::new(&dram)).collect(),
            mmio_reads: 0,
            mmio_writes: 0,
        };
        let parts_t = (0..cfg.nmp_partitions())
            .map(|_| {
                Mutex::new(PartTiming {
                    vault: Vault::new(&dram),
                    nmp_buf: None,
                    nmp_buffer_hits: 0,
                })
            })
            .collect();
        MemorySystem {
            backing,
            map,
            mmio_read_cycles: cfg.cycles(cfg.mmio_read_ns),
            mmio_write_cycles: cfg.cycles(cfg.mmio_write_ns),
            host_link_cycles: cfg.cycles(cfg.host_link_ns),
            block_bytes: cfg.l1.block_bytes,
            offload: OffloadCounters::new(cfg.nmp_partitions()),
            cfg,
            dram,
            host_t: Mutex::new(host_t),
            parts_t,
            #[cfg(feature = "analysis")]
            analysis: OnceLock::new(),
            #[cfg(feature = "trace")]
            tracer: OnceLock::new(),
        }
    }

    /// Attach the engine-integrated checkers. The first attach wins;
    /// subsequent calls are ignored (use [`MemorySystem::analysis`] to get
    /// the attached instance).
    #[cfg(feature = "analysis")]
    pub fn attach_analysis(&self, a: Arc<Analysis>) {
        let _ = self.analysis.set(a);
    }

    /// The attached checkers, if any.
    #[cfg(feature = "analysis")]
    pub fn analysis(&self) -> Option<&Arc<Analysis>> {
        self.analysis.get()
    }

    /// Attach the event tracer. The first attach wins; subsequent calls are
    /// ignored (use [`MemorySystem::tracer`] to get the attached instance).
    #[cfg(feature = "trace")]
    pub fn attach_tracer(&self, t: Arc<Tracer>) {
        let _ = self.tracer.set(t);
    }

    /// The attached tracer, if any.
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.get()
    }

    /// Raw backing storage (untimed data plane). Dispatches through the
    /// [`MemBackend`] trait so population/collection helpers work on both
    /// the simulated and native substrates.
    pub fn ram(&self) -> &dyn MemBackend {
        &*self.backing
    }

    /// Which data-plane substrate this memory system is built on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backing.kind()
    }

    /// The static address map.
    pub fn map(&self) -> &MemMap {
        &self.map
    }

    /// The configuration this memory system was built from.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Map a host-region address to (main vault index, vault-local address).
    /// Host memory is interleaved across the main vaults at cache-block
    /// granularity, as HMC-style devices do.
    fn host_vault(&self, addr: Addr) -> (usize, Addr) {
        let block = (addr - self.map.host_base) / self.block_bytes;
        let vault = (block as usize) % self.cfg.main_vaults;
        let local = (block / self.cfg.main_vaults as u32) * self.block_bytes
            + (addr - self.map.host_base) % self.block_bytes;
        (vault, local)
    }

    /// Timed access by host core `core` at absolute cycle `now`.
    /// Returns the latency. Panics if the address is NMP-partition memory
    /// (architecturally unreachable from the host, §2 of the paper).
    pub fn host_access(&self, core: usize, now: u64, addr: Addr, is_write: bool) -> u64 {
        match self.map.region_of(addr) {
            Region::Host => {}
            Region::Part(p) => {
                panic!("host core {core} accessed NMP partition {p} memory at {addr:#x}; only NMP core {p} may touch it")
            }
            Region::Spad(_) => {
                panic!("host access to scratchpad {addr:#x} must use the MMIO path")
            }
        }
        // Vault busy window captured under the timing lock, recorded into the
        // tracer after releasing it (the tracer lock never nests inside it).
        let mut _vault_busy: Option<(usize, u64, u64)> = None;
        let lat = {
            let t = &mut *self.host_t.lock();
            let mut lat = t.l1[core].latency;
            let mut l1_hit = false;
            match t.l1[core].access(addr, is_write) {
                Access::Hit => l1_hit = true,
                Access::Miss { writeback } => {
                    if let Some(wb) = writeback {
                        // L1 dirty eviction drains into L2 off the critical path.
                        if let Access::Miss { writeback: Some(wb2) } = t.l2.access(wb, true) {
                            let (v, local) = self.host_vault(wb2);
                            t.vaults[v].post_write(now, local, &self.dram);
                        }
                    }
                }
            }
            if !l1_hit {
                lat += t.l2.latency;
                if let Access::Miss { writeback } = t.l2.access(addr, false) {
                    if let Some(wb2) = writeback {
                        let (v, local) = self.host_vault(wb2);
                        t.vaults[v].post_write(now, local, &self.dram);
                    }
                    let (v, local) = self.host_vault(addr);
                    // Off-chip link round trip: only host-side DRAM fills pay it.
                    lat += self.host_link_cycles;
                    let dlat = t.vaults[v].access(now + lat, local, false, &self.dram);
                    _vault_busy = Some((v, now + lat, now + lat + dlat));
                    lat += dlat;
                }
            }
            if is_write {
                Self::invalidate_peers(&mut t.l1, core, addr);
            }
            lat
        };
        #[cfg(feature = "trace")]
        if let Some(tr) = self.tracer.get() {
            if let Some((v, start, end)) = _vault_busy {
                tr.llc_miss(core, now);
                tr.vault_busy(v, start, end);
            }
        }
        lat
    }

    fn invalidate_peers(l1: &mut [Cache], writer: usize, addr: Addr) {
        for (i, c) in l1.iter_mut().enumerate() {
            if i != writer {
                let _ = c.invalidate(addr);
            }
        }
    }

    /// Timed access by NMP core `part`. The core has no cache, only a single
    /// node-register buffer of one block; everything else goes to its vault.
    /// Scratchpad accesses by the owning core are local (1 cycle).
    pub fn nmp_access(&self, part: usize, now: u64, addr: Addr, is_write: bool) -> u64 {
        match self.map.region_of(addr) {
            Region::Part(p) if p == part => {}
            Region::Spad(p) if p == part => return 1,
            r => panic!("NMP core {part} accessed foreign region {r:?} at {addr:#x}"),
        }
        let mut _vault_busy: Option<(usize, u64, u64)> = None;
        let lat = {
            let t = &mut *self.parts_t[part].lock();
            let block = addr & !(self.cfg.nmp_buffer_bytes - 1);
            if !is_write && t.nmp_buf == Some(block) {
                t.nmp_buffer_hits += 1;
                1
            } else {
                let local = addr - self.map.part_base(part);
                let lat = t.vault.access(now, local, is_write, &self.dram);
                _vault_busy = Some((self.cfg.main_vaults + part, now, now + lat));
                if is_write {
                    // Write-through; keep the buffer coherent if it holds this block.
                    if t.nmp_buf != Some(block) && t.nmp_buf.is_some() {
                        // leave buffer as-is: writes don't allocate
                    }
                } else {
                    t.nmp_buf = Some(block);
                }
                lat
            }
        };
        #[cfg(feature = "trace")]
        if let Some(tr) = self.tracer.get() {
            if let Some((v, start, end)) = _vault_busy {
                tr.vault_busy(v, start, end);
            }
        }
        lat
    }

    /// Host MMIO access to a scratchpad (publication list) word.
    pub fn mmio_access(&self, _now: u64, addr: Addr, is_write: bool) -> u64 {
        match self.map.region_of(addr) {
            Region::Spad(_) => {}
            r => panic!("MMIO access to non-scratchpad region {r:?} at {addr:#x}"),
        }
        let t = &mut *self.host_t.lock();
        if is_write {
            t.mmio_writes += 1;
            self.mmio_write_cycles
        } else {
            t.mmio_reads += 1;
            self.mmio_read_cycles
        }
    }

    /// Record a host post of an offload request to partition `part`, on
    /// publication-list lane `lane` of the posting thread.
    pub fn note_offload_post(&self, part: usize, lane: usize) {
        self.offload.posted[part].fetch_add(1, Ordering::Relaxed);
        self.offload.lane_posted[lane.min(OFFLOAD_LANE_CAP - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a retry response observed for partition `part`.
    pub fn note_offload_retry(&self, part: usize) {
        self.offload.retries[part].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a lock-path response observed for partition `part`.
    pub fn note_offload_lock_path(&self, part: usize) {
        self.offload.lock_path[part].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one combiner scan pass over partition `part`'s publication
    /// list that collected `combined` requests (0 = idle pass).
    pub fn note_offload_pass(&self, part: usize, combined: usize) {
        let bucket = combined.min(OFFLOAD_HIST_BUCKETS - 1);
        self.offload.combined_hist[part * OFFLOAD_HIST_BUCKETS + bucket]
            .fetch_add(1, Ordering::Relaxed);
        self.offload.completed[part].fetch_add(combined as u64, Ordering::Relaxed);
    }

    /// Record a request of partition `part` served by replicating a
    /// coalesced sibling's response instead of its own NMP descent
    /// (key-range coalescing, adaptive policy only).
    pub fn note_offload_coalesced(&self, part: usize) {
        self.offload.coalesced[part].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a pqueue minima-cache stale-empty probe: an extract-min leg
    /// targeted partition `part` (the cache said, or forced a check that, it
    /// might hold the minimum) and the partition turned out empty. `now` is
    /// the cycle the host observed the empty response; it stamps the trace
    /// counter track when a tracer is attached.
    pub fn note_pqueue_stale(&self, part: usize, now: u64) {
        self.offload.pq_stale[part].fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "trace")]
        if let Some(tr) = self.tracer.get() {
            let total: u64 = self.offload.pq_stale.iter().map(|a| a.load(Ordering::Relaxed)).sum();
            tr.counter("pq_stale_probes", now, total);
        }
        #[cfg(not(feature = "trace"))]
        let _ = now;
    }

    /// Snapshot every counter. L1 counters are aggregated across cores.
    /// The analysis counters (`races_detected`, `policy_violations`) are
    /// cumulative over the machine's lifetime — [`MemorySystem::reset_stats`]
    /// deliberately does not clear them.
    pub fn snapshot(&self) -> StatsSnapshot {
        // Under the sharded engine, wait until every other shard has run
        // past the caller's current cycle so the counters read here reflect
        // the same prefix of work the sequential engine would have applied.
        crate::engine::quiesce_for_global_mutation();
        #[cfg(feature = "analysis")]
        let (races_detected, policy_violations) =
            self.analysis.get().map_or((0, 0), |a| (a.race_count(), a.policy_count()));
        #[cfg(not(feature = "analysis"))]
        let (races_detected, policy_violations) = (0, 0);
        let (l1, l2, mut vaults, mmio_reads, mmio_writes) = {
            let t = self.host_t.lock();
            let mut l1 = crate::stats::CacheStats::default();
            for c in &t.l1 {
                l1.add(&c.stats);
            }
            let vaults: Vec<_> = t.vaults.iter().map(|v| v.stats).collect();
            (l1, t.l2.stats, vaults, t.mmio_reads, t.mmio_writes)
        };
        let mut nmp_buffer_hits = 0;
        for pt in &self.parts_t {
            let pt = pt.lock();
            vaults.push(pt.vault.stats);
            nmp_buffer_hits += pt.nmp_buffer_hits;
        }
        StatsSnapshot {
            l1,
            l2,
            vaults,
            mmio_reads,
            mmio_writes,
            nmp_buffer_hits,
            main_vaults: self.cfg.main_vaults,
            races_detected,
            policy_violations,
            offload: self.offload.collect(),
        }
    }

    /// Zero the host-owned counters (caches, host vaults, MMIO issue counts,
    /// host-side offload counters) while keeping cache/row state warm. Part
    /// of [`MemorySystem::reset_stats`], split out so a sharded engine can
    /// apply it at the host shard's canonical stream position.
    pub fn reset_host_stats(&self) {
        let t = &mut *self.host_t.lock();
        for c in &mut t.l1 {
            c.stats = Default::default();
        }
        t.l2.stats = Default::default();
        for v in &mut t.vaults {
            v.stats = Default::default();
        }
        t.mmio_reads = 0;
        t.mmio_writes = 0;
        self.offload.reset_host_side();
    }

    /// Zero the counters owned by partition `part`'s vault shard (its vault,
    /// its NMP-buffer hit count, its combiner-side offload counters) while
    /// keeping buffer/row state warm. Part of [`MemorySystem::reset_stats`],
    /// split out so a sharded engine can apply it at the owning shard's
    /// canonical stream position.
    pub fn reset_part_stats(&self, part: usize) {
        let t = &mut *self.parts_t[part].lock();
        t.vault.stats = Default::default();
        t.nmp_buffer_hits = 0;
        self.offload.reset_part_side(part);
    }

    /// Zero all counters while *keeping* cache/buffer/row state warm.
    /// Used to discard warm-up traffic before a measurement window.
    pub fn reset_stats(&self) {
        // Sharded engine: this mutates every shard's timing counters, so it
        // is only legal at quiescent points (the driver's measurement
        // barrier, where no offload is in flight). Wait for all other
        // shards to pass the caller's cycle first, which makes the reset
        // land at the same stream position as under the sequential engine.
        crate::engine::quiesce_for_global_mutation();
        self.reset_host_stats();
        for p in 0..self.parts_t.len() {
            self.reset_part_stats(p);
        }
    }

    /// Pre-load the block containing `addr` into the shared L2 (and the
    /// given core's L1) without charging time or counters. Used by
    /// structure constructors to model a steady state in which the
    /// host-managed portion is already cache-resident.
    pub fn warm(&self, core: usize, addr: Addr) {
        if self.map.region_of(addr) != Region::Host {
            return;
        }
        let t = &mut *self.host_t.lock();
        let _ = t.l2.access(addr, false);
        let _ = t.l1[core].access(addr, false);
        for c in &mut t.l1 {
            c.stats = Default::default();
        }
        t.l2.stats = Default::default();
        for v in &mut t.vaults {
            v.stats = Default::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(Config::tiny())
    }

    #[test]
    fn address_map_partitions_disjoint() {
        let m = MemMap::new(&Config::tiny());
        assert_eq!(m.region_of(m.host_base), Region::Host);
        assert_eq!(m.region_of(m.part_base(0)), Region::Part(0));
        assert_eq!(m.region_of(m.part_base(1)), Region::Part(1));
        assert_eq!(m.region_of(m.spad_base(0)), Region::Spad(0));
        assert_eq!(m.region_of(m.spad_base(1) + m.spad_size - 1), Region::Spad(1));
    }

    #[test]
    #[should_panic(expected = "null-page")]
    fn null_deref_detected() {
        let m = MemMap::new(&Config::tiny());
        let _ = m.region_of(0);
    }

    #[test]
    #[should_panic(expected = "null-page")]
    fn last_byte_of_null_page_detected() {
        let m = MemMap::new(&Config::tiny());
        let _ = m.region_of(m.host_base - 1);
    }

    #[test]
    #[should_panic(expected = "beyond simulated memory")]
    fn out_of_range_detected() {
        let m = MemMap::new(&Config::tiny());
        let _ = m.region_of(m.total_bytes);
    }

    #[test]
    #[should_panic(expected = "beyond simulated memory")]
    fn wild_high_pointer_detected() {
        let m = MemMap::new(&Config::tiny());
        let _ = m.region_of(Addr::MAX);
    }

    /// The first and last byte of every region must classify to that region:
    /// an off-by-one in the map arithmetic shows up exactly at these edges.
    #[test]
    fn region_first_and_last_bytes_classify_exactly() {
        let cfg = Config::tiny();
        let m = MemMap::new(&cfg);
        assert_eq!(m.region_of(m.host_base), Region::Host);
        assert_eq!(m.region_of(m.host_base + m.host_size - 1), Region::Host);
        for p in 0..m.parts {
            let pb = m.part_base(p);
            assert_eq!(m.region_of(pb), Region::Part(p));
            assert_eq!(m.region_of(pb + m.part_size - 1), Region::Part(p));
            let sb = m.spad_base(p);
            assert_eq!(m.region_of(sb), Region::Spad(p));
            assert_eq!(m.region_of(sb + m.spad_size - 1), Region::Spad(p));
        }
        // Regions tile the address space with no gaps: one past the last
        // host byte is partition 0, one past partition p is partition p+1,
        // one past the last partition is scratchpad 0, one past scratchpad
        // p is scratchpad p+1 (and one past the last scratchpad is out of
        // range — covered by `out_of_range_detected`).
        assert_eq!(m.region_of(m.host_base + m.host_size), Region::Part(0));
        for p in 0..m.parts - 1 {
            assert_eq!(m.region_of(m.part_base(p) + m.part_size), Region::Part(p + 1));
            assert_eq!(m.region_of(m.spad_base(p) + m.spad_size), Region::Spad(p + 1));
        }
        assert_eq!(m.region_of(m.part_base(m.parts - 1) + m.part_size), Region::Spad(0));
        assert_eq!(m.spad_base(m.parts - 1) + m.spad_size, m.total_bytes);
    }

    /// The same edge classification must hold for every stock
    /// configuration, not just `tiny` — the paper-scale map exercises much
    /// larger region sizes where 32-bit arithmetic overflows would hide.
    #[test]
    fn region_edges_classify_exactly_in_all_stock_configs() {
        for cfg in [Config::tiny(), Config::default_scaled(), Config::paper()] {
            let m = MemMap::new(&cfg);
            assert_eq!(m.region_of(m.host_base), Region::Host);
            assert_eq!(m.region_of(m.host_base + m.host_size - 1), Region::Host);
            for p in 0..m.parts {
                assert_eq!(m.region_of(m.part_base(p)), Region::Part(p));
                assert_eq!(m.region_of(m.part_base(p) + m.part_size - 1), Region::Part(p));
                assert_eq!(m.region_of(m.spad_base(p)), Region::Spad(p));
                assert_eq!(m.region_of(m.spad_base(p) + m.spad_size - 1), Region::Spad(p));
            }
            assert_eq!(m.spad_base(m.parts - 1) + m.spad_size, m.total_bytes);
        }
    }

    /// Classification is byte-granular: an address in the middle of a
    /// region (not block- or word-aligned) still classifies to it.
    #[test]
    fn region_of_is_byte_granular() {
        let m = MemMap::new(&Config::tiny());
        assert_eq!(m.region_of(m.host_base + 1), Region::Host);
        assert_eq!(m.region_of(m.part_base(1) + 3), Region::Part(1));
        assert_eq!(m.region_of(m.spad_base(0) + m.spad_size / 2 + 1), Region::Spad(0));
    }

    /// Every region base must be block-aligned so a cache block (and an NMP
    /// buffer) never straddles two regions.
    #[test]
    fn region_bases_are_block_aligned() {
        let cfg = Config::tiny();
        let m = MemMap::new(&cfg);
        let block = cfg.l1.block_bytes.max(cfg.nmp_buffer_bytes);
        assert_eq!(m.host_base % block, 0);
        for p in 0..m.parts {
            assert_eq!(m.part_base(p) % block, 0, "partition {p} base unaligned");
            assert_eq!(m.spad_base(p) % block, 0, "scratchpad {p} base unaligned");
        }
        // A block-sized access at the last block of the host region stays
        // inside it (block edges never cross into partition 0).
        let last_block = m.host_base + m.host_size - block;
        assert_eq!(m.region_of(last_block), Region::Host);
        assert_eq!(m.region_of(last_block + block - 1), Region::Host);
    }

    #[test]
    fn ram_u64_roundtrip() {
        let r = SimRam::new(1024);
        r.write_u64(64, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.read_u64(64), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn ram_u32_halves_independent() {
        let r = SimRam::new(1024);
        r.write_u32(64, 0x1111_1111);
        r.write_u32(68, 0x2222_2222);
        assert_eq!(r.read_u32(64), 0x1111_1111);
        assert_eq!(r.read_u32(68), 0x2222_2222);
        assert_eq!(r.read_u64(64), 0x2222_2222_1111_1111);
    }

    #[test]
    fn host_hit_after_miss() {
        let s = sys();
        let a = s.map().host_base;
        let cold = s.host_access(0, 0, a, false);
        let warm = s.host_access(0, 1000, a, false);
        assert!(cold > warm);
        assert_eq!(warm, s.config().l1.latency_cycles);
        let snap = s.snapshot();
        assert_eq!(snap.dram_reads(), 1);
        assert_eq!(snap.l1.hits, 1);
    }

    #[test]
    fn l2_shared_between_cores() {
        let s = sys();
        let a = s.map().host_base;
        let _ = s.host_access(0, 0, a, false);
        // Core 1 misses L1 but hits shared L2.
        let lat = s.host_access(1, 1000, a, false);
        assert_eq!(lat, s.config().l1.latency_cycles + s.config().l2.latency_cycles);
        assert_eq!(s.snapshot().dram_reads(), 1);
    }

    #[test]
    fn write_invalidates_peer_l1() {
        let s = sys();
        let a = s.map().host_base;
        let _ = s.host_access(0, 0, a, false);
        let _ = s.host_access(1, 100, a, false);
        let _ = s.host_access(1, 200, a, true); // core 1 writes: invalidates core 0
                                                // Core 0 must now miss L1 (hits L2).
        let lat = s.host_access(0, 300, a, false);
        assert_eq!(lat, s.config().l1.latency_cycles + s.config().l2.latency_cycles);
    }

    #[test]
    #[should_panic(expected = "accessed NMP partition")]
    fn host_cannot_touch_partition() {
        let s = sys();
        let _ = s.host_access(0, 0, s.map().part_base(0), false);
    }

    #[test]
    #[should_panic(expected = "foreign region")]
    fn nmp_core_cannot_touch_other_partition() {
        let s = sys();
        let _ = s.nmp_access(0, 0, s.map().part_base(1), false);
    }

    #[test]
    fn nmp_buffer_hit_is_one_cycle() {
        let s = sys();
        let a = s.map().part_base(0);
        let cold = s.nmp_access(0, 0, a, false);
        assert!(cold > 1);
        let hot = s.nmp_access(0, 1000, a + 64, false); // same 128B block
        assert_eq!(hot, 1);
        assert_eq!(s.snapshot().nmp_buffer_hits, 1);
        assert_eq!(s.snapshot().nmp_dram_reads(), 1);
    }

    #[test]
    fn nmp_spad_access_local() {
        let s = sys();
        assert_eq!(s.nmp_access(0, 0, s.map().spad_base(0), false), 1);
    }

    #[test]
    fn mmio_charges_fixed_cost_and_counts() {
        let s = sys();
        let a = s.map().spad_base(1);
        let w = s.mmio_access(0, a, true);
        let r = s.mmio_access(10, a, false);
        assert_eq!(w, s.config().cycles(s.config().mmio_write_ns));
        assert_eq!(r, s.config().cycles(s.config().mmio_read_ns));
        let snap = s.snapshot();
        assert_eq!((snap.mmio_reads, snap.mmio_writes), (1, 1));
    }

    #[test]
    #[should_panic(expected = "MMIO access to non-scratchpad")]
    fn mmio_rejects_host_region() {
        let s = sys();
        let _ = s.mmio_access(0, s.map().host_base, false);
    }

    #[test]
    fn reset_stats_keeps_cache_warm() {
        let s = sys();
        let a = s.map().host_base;
        let _ = s.host_access(0, 0, a, false);
        s.reset_stats();
        assert_eq!(s.snapshot().dram_reads(), 0);
        let lat = s.host_access(0, 100, a, false);
        assert_eq!(lat, s.config().l1.latency_cycles, "still cached after reset");
    }

    #[test]
    fn host_interleaves_blocks_across_main_vaults() {
        let s = sys();
        let base = s.map().host_base;
        // touch many distinct blocks; both main vaults should see traffic
        for i in 0..16u32 {
            let _ = s.host_access(0, (i * 500) as u64, base + i * 128, false);
        }
        let snap = s.snapshot();
        assert!(snap.vaults[0].reads > 0);
        assert!(snap.vaults[1].reads > 0);
    }

    #[test]
    fn offload_counters_snapshot_and_reset() {
        let s = sys();
        s.note_offload_post(0, 0);
        s.note_offload_post(0, 3);
        s.note_offload_post(1, 99); // lane beyond cap folds into last element
        s.note_offload_retry(0);
        s.note_offload_lock_path(1);
        s.note_offload_pass(0, 2);
        s.note_offload_pass(0, 0);
        s.note_offload_pass(1, 40); // saturates into the last bucket
        s.note_pqueue_stale(1, 123);
        s.note_pqueue_stale(1, 456);
        let o = s.snapshot().offload;
        assert_eq!(o.pq_stale, vec![0, 2]);
        assert_eq!(o.pq_stale_total(), 2);
        assert_eq!(o.posted, vec![2, 1]);
        assert_eq!(o.completed, vec![2, 40]);
        assert_eq!(o.retries, vec![1, 0]);
        assert_eq!(o.lock_path, vec![0, 1]);
        assert_eq!(o.lane_posted[0], 1);
        assert_eq!(o.lane_posted[3], 1);
        assert_eq!(o.lane_posted[OFFLOAD_LANE_CAP - 1], 1);
        assert_eq!(o.hist_buckets(), OFFLOAD_HIST_BUCKETS);
        assert_eq!(o.combined_hist[2], 1); // part 0, bucket 2
        assert_eq!(o.combined_hist[0], 1); // part 0, empty pass
        assert_eq!(o.combined_hist[OFFLOAD_HIST_BUCKETS + OFFLOAD_HIST_BUCKETS - 1], 1);
        assert_eq!(o.passes_with(1), 2);
        assert_eq!(o.passes_with(2), 2);
        assert_eq!(o.passes_with(17), 0);
        let d = o.delta_since(&OffloadStats::default());
        assert_eq!(d, o);
        s.reset_stats();
        let o2 = s.snapshot().offload;
        assert_eq!(o2.posted_total(), 0);
        assert_eq!(o2.passes_with(1), 0);
        assert_eq!(o2.pq_stale_total(), 0);
    }

    #[test]
    fn warm_preloads_without_counting() {
        let s = sys();
        let a = s.map().host_base + 4096;
        s.warm(0, a);
        assert_eq!(s.snapshot().dram_reads(), 0);
        let lat = s.host_access(0, 0, a, false);
        assert_eq!(lat, s.config().l1.latency_cycles);
    }
}
