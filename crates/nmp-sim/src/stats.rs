//! Simulation statistics: cache hit/miss counters, DRAM traffic per vault,
//! MMIO traffic, and a simple energy estimate.
//!
//! The "DRAM reads" counter is the metric plotted in Figs. 5b, 6b and 9 of
//! the paper: the number of read bursts serviced by the DRAM vaults.

use serde::{Deserialize, Serialize};

/// Counters for one cache level (aggregated across all caches of the level).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses satisfied by this level.
    pub hits: u64,
    /// Accesses forwarded to the next level.
    pub misses: u64,
    /// Dirty lines written back to the next level on eviction.
    pub writebacks: u64,
    /// Lines invalidated by coherence actions (stores from other cores).
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses that reached this level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that hit (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Accumulate another counter set into this one.
    pub fn add(&mut self, o: &CacheStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.writebacks += o.writebacks;
        self.invalidations += o.invalidations;
    }
}

/// Counters for one DRAM vault.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VaultStats {
    /// Read bursts serviced.
    pub reads: u64,
    /// Write bursts serviced.
    pub writes: u64,
    /// Accesses that found their DRAM row already open.
    pub row_hits: u64,
    /// Accesses that opened a row in an idle bank.
    pub row_misses: u64,
    /// Accesses that had to close another row first.
    pub row_conflicts: u64,
    /// Cycles an access had to wait for a busy bank.
    pub bank_wait_cycles: u64,
}

impl VaultStats {
    /// Accumulate another counter set into this one.
    pub fn add(&mut self, o: &VaultStats) {
        self.reads += o.reads;
        self.writes += o.writes;
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        self.row_conflicts += o.row_conflicts;
        self.bank_wait_cycles += o.bank_wait_cycles;
    }
}

/// Telemetry of the shared offload runtime: request-lifecycle counters the
/// memory system keeps on behalf of `hybrids::offload` (posted requests,
/// combiner batching, retries, lock-path falls). All vectors are empty when
/// no offload traffic occurred (e.g. host-only structures).
///
/// Recording is untimed and lock-free, so attaching these counters never
/// perturbs simulated timing or determinism.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadStats {
    /// Requests posted per NMP partition (host MMIO publications; includes
    /// retry re-posts and follow-up requests such as RESUME_INSERT).
    pub posted: Vec<u64>,
    /// Requests executed and completed per partition by its combiner.
    pub completed: Vec<u64>,
    /// Retry responses per partition (stale begin node, seqnum conflict,
    /// locked leaf).
    pub retries: Vec<u64>,
    /// LOCK_PATH responses per partition (B+ tree cross-boundary inserts
    /// falling back to the host-locked path).
    pub lock_path: Vec<u64>,
    /// Requests posted per publication-list lane, aggregated over
    /// partitions; lanes past the tracked cap accumulate in the last
    /// element. Shows pipeline lane occupancy.
    pub lane_posted: Vec<u64>,
    /// Combined-per-pass histogram, flattened row-major per partition:
    /// entry `part * buckets + i` counts combiner scan passes of partition
    /// `part` that collected exactly `i` requests, where `buckets =
    /// combined_hist.len() / posted.len()` and the last bucket saturates.
    /// Bucket 0 counts empty (idle) passes.
    pub combined_hist: Vec<u64>,
    /// Pqueue minima-cache stale-empty probes per partition: extract-min
    /// legs that probed a partition and found it empty (the host-side minima
    /// cache was stale, or the merge forced an untried-partition check).
    /// Empty/zero for non-pqueue structures.
    pub pq_stale: Vec<u64>,
    /// Requests served per partition by replicating another request's
    /// response within the same combining pass (key-range coalescing,
    /// `Policy::Adaptive` only): each counted request still completes, but
    /// without its own NMP descent. Always zero under `Policy::Fixed`.
    #[serde(default)]
    pub coalesced: Vec<u64>,
}

impl OffloadStats {
    /// Total requests posted across partitions.
    pub fn posted_total(&self) -> u64 {
        self.posted.iter().sum()
    }

    /// Total requests executed by combiners across partitions.
    pub fn completed_total(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Total retry responses across partitions.
    pub fn retries_total(&self) -> u64 {
        self.retries.iter().sum()
    }

    /// Total LOCK_PATH responses across partitions.
    pub fn lock_path_total(&self) -> u64 {
        self.lock_path.iter().sum()
    }

    /// Total pqueue stale-empty probes across partitions.
    pub fn pq_stale_total(&self) -> u64 {
        self.pq_stale.iter().sum()
    }

    /// Total requests served by response replication (coalesced descents)
    /// across partitions.
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced.iter().sum()
    }

    /// Histogram buckets tracked per partition (0 when no telemetry).
    pub fn hist_buckets(&self) -> usize {
        if self.posted.is_empty() {
            0
        } else {
            self.combined_hist.len() / self.posted.len()
        }
    }

    /// Scan passes (across all partitions) that collected at least
    /// `min_batch` requests. `passes_with(1)` = non-empty passes;
    /// `passes_with(2)` > 0 shows flat-combining batching in action.
    pub fn passes_with(&self, min_batch: usize) -> u64 {
        let buckets = self.hist_buckets();
        if buckets == 0 {
            return 0;
        }
        self.combined_hist
            .chunks(buckets)
            .map(|part| part.iter().skip(min_batch).sum::<u64>())
            .sum()
    }

    /// Mean requests combined per non-empty scan pass (0 when idle).
    pub fn mean_batch(&self) -> f64 {
        let nonempty = self.passes_with(1);
        if nonempty == 0 {
            0.0
        } else {
            self.completed_total() as f64 / nonempty as f64
        }
    }

    /// Counter-wise `self - earlier`, tolerating an `earlier` snapshot
    /// taken before any offload runtime existed (empty vectors read as
    /// all-zero).
    pub fn delta_since(&self, earlier: &OffloadStats) -> OffloadStats {
        fn dv(a: &[u64], b: &[u64]) -> Vec<u64> {
            a.iter().enumerate().map(|(i, &x)| x - b.get(i).copied().unwrap_or(0)).collect()
        }
        OffloadStats {
            posted: dv(&self.posted, &earlier.posted),
            completed: dv(&self.completed, &earlier.completed),
            retries: dv(&self.retries, &earlier.retries),
            lock_path: dv(&self.lock_path, &earlier.lock_path),
            lane_posted: dv(&self.lane_posted, &earlier.lane_posted),
            combined_hist: dv(&self.combined_hist, &earlier.combined_hist),
            pq_stale: dv(&self.pq_stale, &earlier.pq_stale),
            coalesced: dv(&self.coalesced, &earlier.coalesced),
        }
    }
}

/// A snapshot of every counter in the memory system, taken with
/// [`crate::mem::MemorySystem::snapshot`]. Subtract two snapshots with
/// [`StatsSnapshot::delta_since`] to isolate a measurement window.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// L1 counters, aggregated over all host cores.
    pub l1: CacheStats,
    /// Shared-L2 (LLC) counters.
    pub l2: CacheStats,
    /// Per-vault DRAM counters, indexed by vault id. Vaults
    /// `0..main_vaults` are host main memory; the rest are NMP vaults.
    pub vaults: Vec<VaultStats>,
    /// Host MMIO reads (scratchpad polling).
    pub mmio_reads: u64,
    /// Host MMIO writes (request publication).
    pub mmio_writes: u64,
    /// Hits in the NMP cores' single node-register buffers.
    pub nmp_buffer_hits: u64,
    /// How many of the vaults are host main-memory vaults.
    pub main_vaults: usize,
    /// Racy access pairs found by the attached race detector (0 when the
    /// `analysis` feature is off or no analysis is attached). Cumulative —
    /// not cleared by `reset_stats`.
    pub races_detected: u64,
    /// Region-policy violations recorded by the attached lint (same
    /// caveats as `races_detected`).
    pub policy_violations: u64,
    /// Offload-runtime telemetry (publication-list lifecycle counters).
    pub offload: OffloadStats,
}

impl StatsSnapshot {
    /// Total DRAM read bursts across all vaults (the Fig. 5b/6b/9 metric).
    pub fn dram_reads(&self) -> u64 {
        self.vaults.iter().map(|v| v.reads).sum()
    }

    /// Total DRAM write bursts across all vaults.
    pub fn dram_writes(&self) -> u64 {
        self.vaults.iter().map(|v| v.writes).sum()
    }

    /// DRAM reads serviced by the host-accessible main-memory vaults.
    pub fn host_dram_reads(&self) -> u64 {
        self.vaults[..self.main_vaults].iter().map(|v| v.reads).sum()
    }

    /// DRAM reads serviced by NMP vaults (issued by NMP cores).
    pub fn nmp_dram_reads(&self) -> u64 {
        self.vaults[self.main_vaults..].iter().map(|v| v.reads).sum()
    }

    /// Counter-wise `self - earlier`. Panics if `earlier` has more events
    /// (snapshots must come from the same run, in order).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        fn dc(a: &CacheStats, b: &CacheStats) -> CacheStats {
            CacheStats {
                hits: a.hits - b.hits,
                misses: a.misses - b.misses,
                writebacks: a.writebacks - b.writebacks,
                invalidations: a.invalidations - b.invalidations,
            }
        }
        assert_eq!(self.vaults.len(), earlier.vaults.len());
        StatsSnapshot {
            l1: dc(&self.l1, &earlier.l1),
            l2: dc(&self.l2, &earlier.l2),
            vaults: self
                .vaults
                .iter()
                .zip(&earlier.vaults)
                .map(|(a, b)| VaultStats {
                    reads: a.reads - b.reads,
                    writes: a.writes - b.writes,
                    row_hits: a.row_hits - b.row_hits,
                    row_misses: a.row_misses - b.row_misses,
                    row_conflicts: a.row_conflicts - b.row_conflicts,
                    bank_wait_cycles: a.bank_wait_cycles - b.bank_wait_cycles,
                })
                .collect(),
            mmio_reads: self.mmio_reads - earlier.mmio_reads,
            mmio_writes: self.mmio_writes - earlier.mmio_writes,
            nmp_buffer_hits: self.nmp_buffer_hits - earlier.nmp_buffer_hits,
            main_vaults: self.main_vaults,
            races_detected: self.races_detected - earlier.races_detected,
            policy_violations: self.policy_violations - earlier.policy_violations,
            offload: self.offload.delta_since(&earlier.offload),
        }
    }

    /// Simple energy estimate in nanojoules, using per-event energies in the
    /// range reported for HMC-class devices. The paper defers its energy
    /// analysis to the first author's dissertation; this extension lets the
    /// harness report the same directional claim (fewer DRAM accesses =>
    /// less energy).
    pub fn energy_nj(&self) -> f64 {
        const E_L1: f64 = 0.01; // nJ per L1 access
        const E_L2: f64 = 0.05; // nJ per L2 access
        const E_DRAM: f64 = 3.0; // nJ per DRAM burst (HMC-internal)
        const E_MMIO: f64 = 1.0; // nJ per off-chip MMIO transaction
        self.l1.accesses() as f64 * E_L1
            + self.l2.accesses() as f64 * E_L2
            + (self.dram_reads() + self.dram_writes()) as f64 * E_DRAM
            + (self.mmio_reads + self.mmio_writes) as f64 * E_MMIO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(reads0: u64, reads1: u64) -> StatsSnapshot {
        StatsSnapshot {
            vaults: vec![
                VaultStats { reads: reads0, ..Default::default() },
                VaultStats { reads: reads1, ..Default::default() },
            ],
            main_vaults: 1,
            ..Default::default()
        }
    }

    #[test]
    fn dram_read_split() {
        let s = snap(3, 5);
        assert_eq!(s.dram_reads(), 8);
        assert_eq!(s.host_dram_reads(), 3);
        assert_eq!(s.nmp_dram_reads(), 5);
    }

    #[test]
    fn delta_subtracts() {
        let a = snap(10, 20);
        let b = snap(4, 6);
        let d = a.delta_since(&b);
        assert_eq!(d.vaults[0].reads, 6);
        assert_eq!(d.vaults[1].reads, 14);
    }

    #[test]
    fn hit_rate_handles_empty() {
        let c = CacheStats::default();
        assert_eq!(c.hit_rate(), 0.0);
        let c = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn energy_monotone_in_dram() {
        let lo = snap(1, 0);
        let hi = snap(100, 0);
        assert!(hi.energy_nj() > lo.energy_nj());
    }

    #[test]
    #[should_panic]
    fn delta_rejects_reordered_snapshots() {
        let a = snap(1, 1);
        let b = snap(2, 2);
        let _ = a.delta_since(&b);
    }
}
