//! Simulator configuration.
//!
//! [`Config::paper`] reproduces Table 1 of the HybriDS paper (SPAA '22):
//! 8 out-of-order 2 GHz host cores, private L1 caches, a 1 MB shared L2,
//! one HMC device with 16 vaults (8 host-accessible main-memory vaults and
//! 8 NMP vaults), and one in-order single-cycle NMP core per NMP vault.
//!
//! [`Config::default_scaled`] is the same machine scaled down 16× in
//! structure/LLC size so that the structure-to-LLC ratio of the paper's
//! experiments is preserved while simulations finish quickly.

use serde::{Deserialize, Serialize};

/// Offload-runtime tuning policy (consumed by `hybrids::offload::policy`).
///
/// The simulator itself never branches on this knob: it only carries the
/// selection so every layer (driver, combiners, benches, serialized configs)
/// agrees on one value. `Fixed` runs the hand-tuned constants exactly as
/// configured (`host_pipeline_idle_cycles`, `nmp_idle_poll_cycles`, the
/// driver's `inflight`); `Adaptive` lets the offload runtime retune those
/// levers online — as a pure function of simulated state, so determinism
/// (including byte-identity across engine shard counts) is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Policy {
    /// Hand-tuned constants from the config, unchanged at run time.
    #[default]
    Fixed,
    /// Online self-tuning (batch coalescing, lane-depth and idle-cycle
    /// adaptation) driven by observed combiner occupancy.
    Adaptive,
}

impl Policy {
    /// Lower-case label used in CSV/JSONL columns and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Fixed => "fixed",
            Policy::Adaptive => "adaptive",
        }
    }

    /// Parse a CLI/env spelling (`fixed` / `adaptive`, case-insensitive).
    pub fn parse(s: &str) -> Option<Policy> {
        match s.to_ascii_lowercase().as_str() {
            "fixed" => Some(Policy::Fixed),
            "adaptive" => Some(Policy::Adaptive),
            _ => None,
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Block (line) size in bytes. Must be a power of two.
    pub block_bytes: u32,
    /// Access latency in cycles charged on a hit at this level.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        assert!(self.block_bytes.is_power_of_two(), "block size must be a power of two");
        let sets = self.size_bytes / (self.ways * self.block_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two (got {sets})");
        sets
    }
}

/// Full simulator configuration (host, memory, and NMP core parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Core clock frequency in GHz (host and NMP cores both run at this
    /// frequency in the paper's setup).
    pub clock_ghz: f64,
    /// Number of host cores; one host thread runs per core.
    pub host_cores: usize,
    /// Private per-core L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 (the last-level cache in the paper's two-level hierarchy).
    pub l2: CacheConfig,

    /// Total number of memory vaults in the device.
    pub num_vaults: usize,
    /// How many of the vaults form host-accessible main memory; the rest are
    /// NMP vaults (one NMP core each).
    pub main_vaults: usize,
    /// DRAM banks per vault.
    pub banks_per_vault: usize,
    /// DRAM row size per bank in bytes (open-row granularity).
    pub row_bytes: u32,
    /// Row-precharge time in nanoseconds.
    pub t_rp_ns: f64,
    /// Row-activate (RAS-to-CAS) time in nanoseconds.
    pub t_rcd_ns: f64,
    /// Column access (CAS) latency in nanoseconds.
    pub t_cl_ns: f64,
    /// Data burst time in nanoseconds.
    pub t_burst_ns: f64,
    /// Round-trip latency of the off-chip serial link between the host CPU
    /// and the memory device, paid by every host access that reaches DRAM.
    /// NMP cores sit inside the device and never pay it — the latency
    /// asymmetry at the heart of near-memory processing.
    pub host_link_ns: f64,

    /// Size of the single node-register buffer in each NMP core, bytes.
    /// Acts as a one-block cache (Choe et al., SPAA '19).
    pub nmp_buffer_bytes: u32,
    /// Scratchpad bytes per NMP core that are memory-mapped into the host
    /// address space (holds the publication list).
    pub scratchpad_bytes: u32,
    /// Latency of one host MMIO write into a scratchpad, nanoseconds.
    pub mmio_write_ns: f64,
    /// Latency of one host MMIO read from a scratchpad, nanoseconds.
    pub mmio_read_ns: f64,

    /// Cycles a host thread waits between polls of a publication-list flag.
    pub host_poll_interval_cycles: u64,
    /// Cycles an idle NMP core waits between publication-list scan rounds
    /// (charged by the combiner when a full scan pass finds no requests).
    pub nmp_idle_poll_cycles: u64,
    /// Cycles a pipelining host thread idles between lane sweeps when no
    /// lane made progress (the driver's non-blocking loop and its warm-up
    /// barrier).
    pub host_pipeline_idle_cycles: u64,
    /// Cycles charged per simulated "CPU step" (non-memory work between
    /// memory accesses, e.g. a key comparison). Out-of-order hosts hide most
    /// of this; the in-order sensitivity configuration charges more.
    pub cpu_step_cycles: u64,

    /// Bytes of simulated host heap actually backed by the simulator.
    /// (Architecturally the main-memory vaults are `main_vaults * vault
    /// capacity`; we only back what experiments allocate.)
    pub host_heap_bytes: u32,
    /// Backed heap bytes per NMP partition.
    pub part_heap_bytes: u32,

    /// Capacity (in events) of the `nmp_sim::trace` ring buffer when a
    /// tracer is attached; the oldest events are dropped beyond this. Unused
    /// (but still present, so configs serialize identically) when the
    /// `trace` feature is off or no tracer is attached.
    pub trace_buffer_events: usize,

    /// Simulation-engine shard workers: `0` = auto (one vault shard per NMP
    /// partition plus a host shard), `1` = the legacy single event loop, `n`
    /// = at most `n` vault shards (clamped to the partition count) plus the
    /// host shard. Results are byte-identical across all values; this knob
    /// only trades simulator wall-clock speed (see DESIGN.md §4.9). The
    /// `NMP_SIM_SHARDS` environment variable overrides it at run time.
    #[serde(default)]
    pub shards: usize,

    /// Offload-runtime tuning policy ([`Policy::Fixed`] reproduces the
    /// hand-tuned constants; [`Policy::Adaptive`] self-tunes online).
    /// Configs serialized before the knob existed deserialize to `Fixed`.
    #[serde(default)]
    pub policy: Policy,
}

impl Config {
    /// The configuration of Table 1 in the paper, with heap sizes large
    /// enough for the paper-scale structures (2^22-key skiplist / ~30M-key
    /// B+ tree).
    pub fn paper() -> Self {
        Config {
            clock_ghz: 2.0,
            host_cores: 8,
            l1: CacheConfig { size_bytes: 64 * 1024, ways: 2, block_bytes: 128, latency_cycles: 2 },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 8,
                block_bytes: 128,
                latency_cycles: 20,
            },
            num_vaults: 16,
            main_vaults: 8,
            banks_per_vault: 8,
            row_bytes: 4096,
            t_rp_ns: 13.75,
            t_rcd_ns: 13.75,
            t_cl_ns: 13.75,
            t_burst_ns: 3.2,
            host_link_ns: 16.0,
            nmp_buffer_bytes: 128,
            scratchpad_bytes: 8 * 1024,
            mmio_write_ns: 12.0,
            mmio_read_ns: 12.0,
            host_poll_interval_cycles: 40,
            nmp_idle_poll_cycles: 16,
            host_pipeline_idle_cycles: 16,
            cpu_step_cycles: 1,
            host_heap_bytes: 192 * 1024 * 1024,
            part_heap_bytes: 64 * 1024 * 1024,
            trace_buffer_events: 1 << 16,
            shards: 0,
            policy: Policy::Fixed,
        }
    }

    /// Paper machine scaled down 16× in LLC size; experiments scale their
    /// structures by the same factor so every size *ratio* of the paper's
    /// evaluation (structure ≈ 512× LLC for the skiplist) is preserved.
    pub fn default_scaled() -> Self {
        let mut c = Self::paper();
        c.l2.size_bytes = 64 * 1024; // 16x smaller LLC
        c.l1.size_bytes = 16 * 1024;
        c.host_heap_bytes = 24 * 1024 * 1024;
        c.part_heap_bytes = 8 * 1024 * 1024;
        c
    }

    /// A tiny configuration for unit tests: 4 host cores, 2 NMP partitions,
    /// small caches and heaps, fast polls.
    pub fn tiny() -> Self {
        let mut c = Self::paper();
        c.host_cores = 4;
        c.num_vaults = 4;
        c.main_vaults = 2;
        c.l1 = CacheConfig { size_bytes: 4 * 1024, ways: 2, block_bytes: 128, latency_cycles: 2 };
        c.l2 = CacheConfig { size_bytes: 16 * 1024, ways: 8, block_bytes: 128, latency_cycles: 20 };
        c.host_heap_bytes = 4 * 1024 * 1024;
        c.part_heap_bytes = 2 * 1024 * 1024;
        c.scratchpad_bytes = 4 * 1024;
        c
    }

    /// Switch host cores to the in-order model used for the paper's
    /// sensitivity experiments (§5.2): non-memory work is not hidden, so
    /// each simulated CPU step costs more.
    pub fn with_in_order_hosts(mut self) -> Self {
        self.cpu_step_cycles = 3;
        self
    }

    /// Number of NMP partitions (= NMP vaults = NMP cores).
    pub fn nmp_partitions(&self) -> usize {
        assert!(self.main_vaults < self.num_vaults, "need at least one NMP vault");
        self.num_vaults - self.main_vaults
    }

    /// Set the engine shard knob (`0` = auto, `1` = legacy single loop).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the offload-runtime tuning policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Every stock preset this crate ships, by name. Harnesses iterate this
    /// to prove all presets validate and serde-round-trip (the validation
    /// contract: every poll/idle knob is at least one cycle, which is also
    /// the floor the adaptive policy layer clamps its online choices to).
    pub fn stock_configs() -> Vec<(&'static str, Config)> {
        vec![
            ("paper", Config::paper()),
            ("paper-in-order", Config::paper().with_in_order_hosts()),
            ("scaled", Config::default_scaled()),
            ("tiny", Config::tiny()),
        ]
    }

    /// Resolve the `shards` knob to the number of *vault* shards the engine
    /// will run (the host shard is extra): `0` maps to one per NMP
    /// partition, anything else is clamped to the partition count. A result
    /// of `0` vault shards cannot occur (`shards == 1` selects the legacy
    /// loop before this is consulted).
    pub fn vault_shards(&self) -> usize {
        match self.shards {
            0 => self.nmp_partitions(),
            n => n.min(self.nmp_partitions()),
        }
    }

    /// Like [`Config::vault_shards`] but honoring the `NMP_SIM_SHARDS`
    /// environment override the engine consults, so harnesses can report
    /// the shard count a run will actually use. `1` = legacy single loop.
    pub fn resolved_vault_shards(&self) -> usize {
        match std::env::var("NMP_SIM_SHARDS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(0) => self.nmp_partitions(),
            Some(n) => n.min(self.nmp_partitions()),
            None => self.vault_shards(),
        }
    }

    /// Convert nanoseconds to clock cycles (rounded to nearest, min 1).
    pub fn cycles(&self, ns: f64) -> u64 {
        ((ns * self.clock_ghz).round() as u64).max(1)
    }

    /// Latency in cycles of an L2 (last-level cache) miss serviced by a
    /// fresh DRAM row activation — a useful yardstick (Table 2 compares
    /// offload delays against "1–2 LLC miss delays").
    pub fn llc_miss_cycles(&self) -> u64 {
        self.l1.latency_cycles
            + self.l2.latency_cycles
            + self.cycles(self.host_link_ns)
            + self.cycles(self.t_rcd_ns + self.t_cl_ns + self.t_burst_ns)
    }

    /// Validate internal consistency; panics with a descriptive message on
    /// an impossible configuration.
    pub fn validate(&self) {
        assert!(self.host_cores >= 1);
        assert!(self.main_vaults >= 1 && self.main_vaults < self.num_vaults);
        assert_eq!(self.l1.block_bytes, self.l2.block_bytes, "mixed block sizes unsupported");
        let _ = self.l1.sets();
        let _ = self.l2.sets();
        assert!(self.row_bytes.is_power_of_two());
        assert!(self.nmp_buffer_bytes.is_power_of_two());
        assert!(self.host_heap_bytes.is_multiple_of(8) && self.part_heap_bytes.is_multiple_of(8));
        assert!(self.scratchpad_bytes.is_multiple_of(8));
        assert!(
            self.host_poll_interval_cycles >= 1
                && self.nmp_idle_poll_cycles >= 1
                && self.host_pipeline_idle_cycles >= 1,
            "poll/idle intervals must be at least one cycle"
        );
        assert!(self.trace_buffer_events >= 1, "trace ring needs at least one slot");
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::default_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = Config::paper();
        c.validate();
        assert_eq!(c.host_cores, 8);
        assert_eq!(c.nmp_partitions(), 8);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l1.block_bytes, 128);
        assert_eq!(c.l2.latency_cycles, 20);
        // 13.75ns at 2GHz = 27.5 cycles -> rounds to 28
        assert_eq!(c.cycles(c.t_rp_ns), 28);
        assert_eq!(c.cycles(c.t_burst_ns), 6);
    }

    #[test]
    fn cache_geometry() {
        let c = Config::paper();
        assert_eq!(c.l1.sets(), 64 * 1024 / (2 * 128));
        assert_eq!(c.l2.sets(), 1024 * 1024 / (8 * 128));
    }

    #[test]
    fn scaled_preserves_ratios() {
        let p = Config::paper();
        let s = Config::default_scaled();
        assert_eq!(p.l2.size_bytes / s.l2.size_bytes, 16);
        s.validate();
    }

    #[test]
    fn llc_miss_is_tens_of_cycles() {
        let c = Config::paper();
        let m = c.llc_miss_cycles();
        assert!(m > 80 && m < 200, "llc miss = {m}");
    }

    #[test]
    fn cycles_rounds_and_clamps() {
        let c = Config::paper();
        assert_eq!(c.cycles(0.0), 1);
        assert_eq!(c.cycles(0.5), 1);
        assert_eq!(c.cycles(10.0), 20);
    }

    #[test]
    fn in_order_costs_more_per_step() {
        let c = Config::paper().with_in_order_hosts();
        assert!(c.cpu_step_cycles > Config::paper().cpu_step_cycles);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Config::paper();
        let j = serde_json::to_string(&c).unwrap();
        let back: Config = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn validate_rejects_zero_idle_interval() {
        let mut c = Config::paper();
        c.host_pipeline_idle_cycles = 0;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_no_nmp_vaults() {
        let mut c = Config::paper();
        c.main_vaults = c.num_vaults;
        c.validate();
    }

    #[test]
    fn tiny_is_valid() {
        let c = Config::tiny();
        c.validate();
        assert_eq!(c.nmp_partitions(), 2);
    }

    #[test]
    fn policy_knob_defaults_parses_and_roundtrips() {
        // Configs serialized before the knob existed deserialize to Fixed.
        let j = serde_json::to_string(&Config::paper()).unwrap();
        let pruned = j.replace(",\"policy\":\"Fixed\"", "");
        assert_ne!(j, pruned, "serialized config must carry the policy knob");
        let back: Config = serde_json::from_str(&pruned).unwrap();
        assert_eq!(back.policy, Policy::Fixed);
        // Adaptive survives a round trip.
        let a = Config::tiny().with_policy(Policy::Adaptive);
        let j = serde_json::to_string(&a).unwrap();
        let back: Config = serde_json::from_str(&j).unwrap();
        assert_eq!(back, a);
        // Label / parse are inverses, for CLI flags and CSV columns.
        for p in [Policy::Fixed, Policy::Adaptive] {
            assert_eq!(Policy::parse(p.label()), Some(p));
        }
        assert_eq!(Policy::parse("ADAPTIVE"), Some(Policy::Adaptive));
        assert_eq!(Policy::parse("bogus"), None);
        assert_eq!(Policy::default(), Policy::Fixed);
    }

    /// The satellite contract: every stock preset validates, serializes,
    /// deserializes back to itself, and keeps every poll/idle knob at or
    /// above the one-cycle floor `validate` enforces — under both policies.
    /// (The adaptive layer clamps its online idle choices to the same floor,
    /// so a valid config can never be driven invalid at run time.)
    #[test]
    fn stock_configs_validate_and_roundtrip() {
        let stock = Config::stock_configs();
        assert!(stock.len() >= 4);
        for (name, cfg) in stock {
            for policy in [Policy::Fixed, Policy::Adaptive] {
                let c = cfg.clone().with_policy(policy);
                c.validate();
                assert!(
                    c.host_poll_interval_cycles >= 1
                        && c.nmp_idle_poll_cycles >= 1
                        && c.host_pipeline_idle_cycles >= 1,
                    "stock config {name} has a sub-cycle idle knob"
                );
                let j = serde_json::to_string(&c).unwrap();
                let back: Config = serde_json::from_str(&j).unwrap();
                assert_eq!(back, c, "stock config {name} must round-trip");
                back.validate();
            }
        }
    }

    #[test]
    fn shards_knob_defaults_and_clamps() {
        // Configs serialized before the knob existed deserialize to auto.
        let j = serde_json::to_string(&Config::paper()).unwrap();
        let pruned = j.replace(",\"shards\":0", "");
        let back: Config = serde_json::from_str(&pruned).unwrap();
        assert_eq!(back.shards, 0);
        assert_eq!(Config::paper().vault_shards(), 8);
        assert_eq!(Config::paper().with_shards(4).vault_shards(), 4);
        assert_eq!(Config::tiny().with_shards(8).vault_shards(), 2);
    }
}
