//! Vaulted DRAM timing model.
//!
//! Each vault (an HMC-style memory partition) has `banks_per_vault` DRAM
//! banks with open-row (open-page) policy. An access is classified as a
//! *row hit* (row already open: tCL + tBURST), *row miss* (bank idle with no
//! open row: tRCD + tCL + tBURST) or *row conflict* (different row open:
//! tRP + tRCD + tCL + tBURST), using the Table 1 timing parameters. Banks
//! serialize: an access arriving while its bank is busy waits until the bank
//! frees up, which models bank-level contention inside a vault.

use crate::config::Config;
use crate::stats::VaultStats;

/// DRAM timing parameters pre-converted to clock cycles.
#[derive(Debug, Clone, Copy)]
pub struct DramTiming {
    /// Row precharge (close) time.
    pub t_rp: u64,
    /// Row-to-column delay (activate an open row).
    pub t_rcd: u64,
    /// Column access (CAS) latency.
    pub t_cl: u64,
    /// Data burst transfer time for one block.
    pub t_burst: u64,
    /// Bytes per DRAM row (open-page granularity).
    pub row_bytes: u32,
    /// Banks per vault.
    pub banks: usize,
}

impl DramTiming {
    /// Convert the nanosecond parameters in `c` to clock cycles.
    pub fn from_config(c: &Config) -> Self {
        DramTiming {
            t_rp: c.cycles(c.t_rp_ns),
            t_rcd: c.cycles(c.t_rcd_ns),
            t_cl: c.cycles(c.t_cl_ns),
            t_burst: c.cycles(c.t_burst_ns),
            row_bytes: c.row_bytes,
            banks: c.banks_per_vault,
        }
    }

    /// Latency of a row hit.
    pub fn hit(&self) -> u64 {
        self.t_cl + self.t_burst
    }

    /// Latency of an access to an idle bank (no open row).
    pub fn miss(&self) -> u64 {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Latency of a row conflict (precharge + activate + access).
    pub fn conflict(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u32>,
    busy_until: u64,
}

/// One memory vault: a set of banks plus traffic counters.
#[derive(Debug)]
pub struct Vault {
    banks: Vec<Bank>,
    /// Traffic counters for this vault.
    pub stats: VaultStats,
}

impl Vault {
    /// Build a vault with `t.banks` idle banks.
    pub fn new(t: &DramTiming) -> Self {
        Vault { banks: vec![Bank::default(); t.banks], stats: VaultStats::default() }
    }

    /// Simulate one access to `addr` (an address *within* this vault's
    /// backing space — the caller has already routed by vault) issued at
    /// absolute cycle `now`. Returns the latency observed by the requester,
    /// including any wait for a busy bank.
    pub fn access(&mut self, now: u64, addr: u32, is_write: bool, t: &DramTiming) -> u64 {
        let row = addr / t.row_bytes;
        let bank_idx = (row as usize) % self.banks.len();
        let bank = &mut self.banks[bank_idx];

        let start = now.max(bank.busy_until);
        let wait = start - now;
        self.stats.bank_wait_cycles += wait;

        let service = match bank.open_row {
            Some(r) if r == row => {
                self.stats.row_hits += 1;
                t.hit()
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                t.conflict()
            }
            None => {
                self.stats.row_misses += 1;
                t.miss()
            }
        };
        bank.open_row = Some(row);
        bank.busy_until = start + service;

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        wait + service
    }

    /// Record a write that is *not* on any requester's critical path
    /// (e.g. a dirty-line writeback drained by the cache). The bank still
    /// becomes busy and the row state changes, so later reads can conflict,
    /// but no latency is returned.
    pub fn post_write(&mut self, now: u64, addr: u32, t: &DramTiming) {
        let _ = self.access(now, addr, true, t);
    }

    /// Number of banks in this vault.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::from_config(&Config::paper())
    }

    #[test]
    fn first_access_is_row_miss() {
        let t = timing();
        let mut v = Vault::new(&t);
        let lat = v.access(0, 0x1000, false, &t);
        assert_eq!(lat, t.miss());
        assert_eq!(v.stats.row_misses, 1);
        assert_eq!(v.stats.reads, 1);
    }

    #[test]
    fn same_row_hits_after_open() {
        let t = timing();
        let mut v = Vault::new(&t);
        let _ = v.access(0, 0x1000, false, &t);
        let lat = v.access(1000, 0x1010, false, &t);
        assert_eq!(lat, t.hit());
        assert_eq!(v.stats.row_hits, 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let t = timing();
        let mut v = Vault::new(&t);
        let _ = v.access(0, 0, false, &t);
        // Same bank = row % banks equal. row_bytes=4096, banks=8:
        // rows 0 and 8 both map to bank 0.
        let addr2 = 8 * t.row_bytes;
        let lat = v.access(1000, addr2, false, &t);
        assert_eq!(lat, t.conflict());
        assert_eq!(v.stats.row_conflicts, 1);
    }

    #[test]
    fn busy_bank_delays_requester() {
        let t = timing();
        let mut v = Vault::new(&t);
        let lat1 = v.access(0, 0, false, &t);
        // Second access to the same bank before the first finishes.
        let lat2 = v.access(1, 64, false, &t);
        assert_eq!(lat2, (lat1 - 1) + t.hit());
        assert_eq!(v.stats.bank_wait_cycles, lat1 - 1);
    }

    #[test]
    fn different_banks_do_not_interfere() {
        let t = timing();
        let mut v = Vault::new(&t);
        let _ = v.access(0, 0, false, &t);
        let lat = v.access(0, t.row_bytes, false, &t); // row 1 -> bank 1
        assert_eq!(lat, t.miss());
        assert_eq!(v.stats.bank_wait_cycles, 0);
    }

    #[test]
    fn write_counts_separately() {
        let t = timing();
        let mut v = Vault::new(&t);
        let _ = v.access(0, 0, true, &t);
        assert_eq!(v.stats.writes, 1);
        assert_eq!(v.stats.reads, 0);
    }

    #[test]
    fn conflict_is_slowest_hit_fastest() {
        let t = timing();
        assert!(t.conflict() > t.miss());
        assert!(t.miss() > t.hit());
    }

    #[test]
    fn post_write_occupies_bank() {
        let t = timing();
        let mut v = Vault::new(&t);
        v.post_write(0, 0, &t);
        let lat = v.access(1, 64, false, &t);
        assert!(lat > t.hit(), "read should wait behind the posted write");
    }
}
