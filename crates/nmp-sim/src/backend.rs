//! The memory-substrate backends behind the simulator's data plane.
//!
//! Every structure in this repo talks to memory through two layers: the
//! *timing plane* ([`crate::mem::MemorySystem`], which prices accesses and
//! enforces the region policy) and the *data plane* (what bytes actually
//! hold). This module abstracts the data plane behind [`MemBackend`] so the
//! same structure code can run against two substrates:
//!
//! * [`crate::SimRam`] — the **verification backend**. All orderings are
//!   relaxed because the deterministic engine runs exactly one logical
//!   thread at a time; engine handoffs establish every happens-before edge.
//!   Races, region-policy violations, and cycle attribution are checked
//!   here.
//! * [`NativeRam`] — the **serving backend**. The same 32-bit word-addressed
//!   layout, but threads are real OS threads running concurrently, so the
//!   acquire/release annotations that were *documentation* for the race
//!   detector become *real* atomic orderings, and compare-and-swap becomes a
//!   real `compare_exchange`. There is no cycle accounting: the simulator
//!   remains the correctness oracle, the native backend serves traffic at
//!   hardware speed.
//!
//! Both backends store memory as an array of `AtomicU64` words with 32-bit
//! values packed into word halves, so a structure's layout (and its
//! populate/collect helpers) is byte-identical across backends.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::mem::Addr;

/// Which data-plane substrate a machine is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Cycle-accurate deterministic simulation (`SimRam`).
    Sim,
    /// Real-hardware execution with real atomics (`NativeRam`).
    Native,
}

impl BackendKind {
    /// Stable lower-case label, used in bench records and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }

    /// Parse a CLI/env spelling (`"sim"` or `"native"`, case-insensitive).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "sim" | "simulated" | "simulator" => Some(BackendKind::Sim),
            "native" => Some(BackendKind::Native),
            _ => None,
        }
    }
}

/// A word-addressed 32-bit memory substrate.
///
/// The contract mirrors `SimRam`'s historical inherent API (same method
/// names, same alignment rules) so `machine.ram()` call sites are unchanged:
/// `u64` accesses must be 8-aligned, `u32` accesses 4-aligned and packed in
/// the low (addr % 8 == 0) or high half of the containing word.
///
/// The plain accessors are relaxed; the `_acquire`/`_release` variants and
/// the CAS are the synchronization points of the publication-list ctrl-word
/// protocol. On the simulated backend those variants carry no extra
/// ordering (the engine serializes); on the native backend they are real.
pub trait MemBackend: Send + Sync {
    /// Which substrate this is (drives harness dispatch and labels).
    fn kind(&self) -> BackendKind;

    /// Capacity in bytes.
    fn len_bytes(&self) -> usize;

    /// Relaxed 8-byte read; `addr` must be 8-aligned.
    fn read_u64(&self, addr: Addr) -> u64;

    /// Relaxed 8-byte write; `addr` must be 8-aligned.
    fn write_u64(&self, addr: Addr, value: u64);

    /// Relaxed 4-byte read; `addr` must be 4-aligned.
    fn read_u32(&self, addr: Addr) -> u32;

    /// Relaxed 4-byte write; `addr` must be 4-aligned. Never clobbers the
    /// other half of the containing word, even under real concurrency.
    fn write_u32(&self, addr: Addr, value: u32);

    /// 8-byte read with acquire ordering.
    fn read_u64_acquire(&self, addr: Addr) -> u64;

    /// 8-byte write with release ordering.
    fn write_u64_release(&self, addr: Addr, value: u64);

    /// 4-byte read with acquire ordering.
    fn read_u32_acquire(&self, addr: Addr) -> u32;

    /// 4-byte write with release ordering.
    fn write_u32_release(&self, addr: Addr, value: u32);

    /// Atomic 8-byte compare-and-swap: `Ok(())` on success, `Err(actual)`
    /// on mismatch. Acquire on observe, release on success.
    fn cas_u64(&self, addr: Addr, expect: u64, new: u64) -> Result<(), u64>;

    /// Atomic 4-byte compare-and-swap on one half of the containing word.
    fn cas_u32(&self, addr: Addr, expect: u32, new: u32) -> Result<(), u32>;
}

#[inline]
fn split(addr: Addr) -> (usize, bool) {
    ((addr / 8) as usize, addr.is_multiple_of(8))
}

#[inline]
fn half_of(word: u64, lo: bool) -> u32 {
    if lo {
        word as u32
    } else {
        (word >> 32) as u32
    }
}

#[inline]
fn with_half(word: u64, lo: bool, value: u32) -> u64 {
    if lo {
        (word & 0xFFFF_FFFF_0000_0000) | value as u64
    } else {
        (word & 0x0000_0000_FFFF_FFFF) | ((value as u64) << 32)
    }
}

/// `Box`-backed native memory: the same `[AtomicU64]` word layout as
/// `SimRam`, but accessed by genuinely concurrent OS threads, so the
/// synchronization variants use real hardware orderings and sub-word writes
/// are read-modify-write loops (a plain load/store split would lose a
/// concurrent neighbour-half update).
pub struct NativeRam {
    words: Box<[AtomicU64]>,
}

impl NativeRam {
    /// Allocate zeroed native backing of `total_bytes` (rounded up to 8).
    pub fn new(total_bytes: u32) -> Self {
        let n = (total_bytes as usize).div_ceil(8);
        let mut words = Vec::with_capacity(n);
        words.resize_with(n, || AtomicU64::new(0));
        NativeRam { words: words.into_boxed_slice() }
    }

    #[inline]
    fn word(&self, addr: Addr) -> &AtomicU64 {
        &self.words[(addr / 8) as usize]
    }

    #[inline]
    fn store_half(&self, addr: Addr, value: u32, success: Ordering) {
        debug_assert_eq!(addr % 4, 0, "unaligned u32 write at {addr:#x}");
        let (_, lo) = split(addr);
        let w = self.word(addr & !7);
        let mut cur = w.load(Ordering::Relaxed);
        loop {
            match w.compare_exchange_weak(
                cur,
                with_half(cur, lo, value),
                success,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl MemBackend for NativeRam {
    fn kind(&self) -> BackendKind {
        BackendKind::Native
    }

    fn len_bytes(&self) -> usize {
        self.words.len() * 8
    }

    #[inline]
    fn read_u64(&self, addr: Addr) -> u64 {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 read at {addr:#x}");
        self.word(addr).load(Ordering::Relaxed)
    }

    #[inline]
    fn write_u64(&self, addr: Addr, value: u64) {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 write at {addr:#x}");
        self.word(addr).store(value, Ordering::Relaxed)
    }

    #[inline]
    fn read_u32(&self, addr: Addr) -> u32 {
        debug_assert_eq!(addr % 4, 0, "unaligned u32 read at {addr:#x}");
        let (_, lo) = split(addr);
        half_of(self.word(addr & !7).load(Ordering::Relaxed), lo)
    }

    #[inline]
    fn write_u32(&self, addr: Addr, value: u32) {
        self.store_half(addr, value, Ordering::Relaxed);
    }

    #[inline]
    fn read_u64_acquire(&self, addr: Addr) -> u64 {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 read at {addr:#x}");
        self.word(addr).load(Ordering::Acquire)
    }

    #[inline]
    fn write_u64_release(&self, addr: Addr, value: u64) {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 write at {addr:#x}");
        self.word(addr).store(value, Ordering::Release)
    }

    #[inline]
    fn read_u32_acquire(&self, addr: Addr) -> u32 {
        debug_assert_eq!(addr % 4, 0, "unaligned u32 read at {addr:#x}");
        let (_, lo) = split(addr);
        half_of(self.word(addr & !7).load(Ordering::Acquire), lo)
    }

    #[inline]
    fn write_u32_release(&self, addr: Addr, value: u32) {
        self.store_half(addr, value, Ordering::Release);
    }

    fn cas_u64(&self, addr: Addr, expect: u64, new: u64) -> Result<(), u64> {
        debug_assert_eq!(addr % 8, 0, "unaligned u64 CAS at {addr:#x}");
        self.word(addr)
            .compare_exchange(expect, new, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
    }

    fn cas_u32(&self, addr: Addr, expect: u32, new: u32) -> Result<(), u32> {
        debug_assert_eq!(addr % 4, 0, "unaligned u32 CAS at {addr:#x}");
        let (_, lo) = split(addr);
        let w = self.word(addr & !7);
        let mut cur = w.load(Ordering::Acquire);
        loop {
            if half_of(cur, lo) != expect {
                return Err(half_of(cur, lo));
            }
            match w.compare_exchange_weak(
                cur,
                with_half(cur, lo, new),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                // The containing word changed; our half may or may not
                // have — re-examine it.
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_labels_round_trip() {
        for k in [BackendKind::Sim, BackendKind::Native] {
            assert_eq!(BackendKind::parse(k.label()), Some(k));
        }
        assert_eq!(BackendKind::parse("NATIVE"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse("hw"), None);
    }

    #[test]
    fn native_u64_roundtrip() {
        let r = NativeRam::new(1024);
        r.write_u64(64, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.read_u64(64), 0xDEAD_BEEF_CAFE_F00D);
        r.write_u64_release(72, 7);
        assert_eq!(r.read_u64_acquire(72), 7);
    }

    #[test]
    fn native_u32_halves_independent() {
        let r = NativeRam::new(1024);
        r.write_u32(64, 0x1111_1111);
        r.write_u32(68, 0x2222_2222);
        assert_eq!(r.read_u32(64), 0x1111_1111);
        assert_eq!(r.read_u32(68), 0x2222_2222);
        assert_eq!(r.read_u64(64), 0x2222_2222_1111_1111);
        r.write_u32_release(68, 0x3333_3333);
        assert_eq!(r.read_u32_acquire(68), 0x3333_3333);
        assert_eq!(r.read_u32(64), 0x1111_1111, "neighbour half untouched");
    }

    #[test]
    fn native_cas_u64_succeeds_once() {
        let r = NativeRam::new(1024);
        assert_eq!(r.cas_u64(64, 0, 5), Ok(()));
        assert_eq!(r.cas_u64(64, 0, 9), Err(5));
        assert_eq!(r.read_u64(64), 5);
    }

    #[test]
    fn native_cas_u32_targets_one_half() {
        let r = NativeRam::new(1024);
        r.write_u32(64, 10);
        r.write_u32(68, 20);
        assert_eq!(r.cas_u32(68, 20, 21), Ok(()));
        assert_eq!(r.cas_u32(68, 20, 22), Err(21));
        assert_eq!(r.read_u32(64), 10);
        assert_eq!(r.read_u32(68), 21);
    }

    /// Concurrent writers to the two halves of one word must not lose
    /// updates (the sub-word write is a RMW loop, not load/store).
    #[test]
    fn native_concurrent_half_writes_do_not_clobber() {
        use std::sync::Arc;
        let r = Arc::new(NativeRam::new(64));
        let lo = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..10_000u32 {
                    r.write_u32(8, i);
                }
            })
        };
        let hi = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..10_000u32 {
                    r.write_u32(12, i);
                }
            })
        };
        lo.join().unwrap();
        hi.join().unwrap();
        assert_eq!(r.read_u32(8), 9_999);
        assert_eq!(r.read_u32(12), 9_999);
    }
}
