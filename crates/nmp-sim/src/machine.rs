//! A [`Machine`] bundles the simulated memory system with per-region
//! allocators — the substrate that data structures are built on.

use std::sync::Arc;

use crate::alloc::Arena;
use crate::config::Config;
use crate::engine::Simulation;
use crate::mem::{MemMap, MemorySystem, SimRam};

/// The simulated machine: memory system + allocators for every region.
pub struct Machine {
    mem: Arc<MemorySystem>,
    host_arena: Arena,
    part_arenas: Vec<Arena>,
}

impl Machine {
    /// Build a machine (memory system + arenas) for `cfg`.
    pub fn new(cfg: Config) -> Arc<Self> {
        let mem = Arc::new(MemorySystem::new(cfg));
        Arc::new(Self::from_memory(mem))
    }

    fn from_memory(mem: Arc<MemorySystem>) -> Machine {
        let map = *mem.map();
        let host_arena = Arena::new("host-heap", map.host_base, map.host_size);
        let part_arenas = (0..map.parts)
            .map(|p| Arena::new("nmp-partition", map.part_base(p), map.part_size))
            .collect();
        Machine { mem, host_arena, part_arenas }
    }

    /// The machine's memory system (timed access plane).
    pub fn mem(&self) -> &Arc<MemorySystem> {
        &self.mem
    }

    /// Raw backing storage (untimed data plane, e.g. for population).
    pub fn ram(&self) -> &SimRam {
        self.mem.ram()
    }

    /// The static address map of this machine.
    pub fn map(&self) -> &MemMap {
        self.mem.map()
    }

    /// The configuration the machine was built from.
    pub fn config(&self) -> &Config {
        self.mem.config()
    }

    /// Allocator for host main memory.
    pub fn host_arena(&self) -> &Arena {
        &self.host_arena
    }

    /// Allocator for NMP partition `p`.
    pub fn part_arena(&self, p: usize) -> &Arena {
        &self.part_arenas[p]
    }

    /// Number of NMP partitions.
    pub fn partitions(&self) -> usize {
        self.part_arenas.len()
    }

    /// Start building a simulation over this machine's memory.
    pub fn simulation(self: &Arc<Self>) -> Simulation {
        Simulation::with_memory(Arc::clone(&self.mem))
    }

    /// Attach the correctness checkers (race detector, region-policy lint)
    /// to this machine and return them. Idempotent: a second call returns
    /// the already-attached instance. Once attached, every timed memory
    /// access in every subsequent simulation over this machine is traced,
    /// and region-policy violations are recorded instead of panicking.
    #[cfg(feature = "analysis")]
    pub fn attach_analysis(&self) -> Arc<crate::analysis::Analysis> {
        if let Some(a) = self.mem.analysis() {
            return Arc::clone(a);
        }
        let a = crate::analysis::Analysis::new(*self.map());
        self.mem.attach_analysis(Arc::clone(&a));
        // `mem` may have raced another attach; wire the winning instance
        // into the arenas so `free` resets the right detector.
        let a = Arc::clone(self.mem.analysis().expect("just attached"));
        self.host_arena.attach_analysis(Arc::clone(&a));
        for arena in &self.part_arenas {
            arena.attach_analysis(Arc::clone(&a));
        }
        a
    }

    /// Attach the cycle-level event tracer (see [`crate::trace`]) to this
    /// machine and return it. Idempotent: a second call returns the
    /// already-attached instance. Once attached, every subsequent simulation
    /// over this machine records op-lifecycle spans and memory events —
    /// untimed, so simulated cycle counts are unchanged.
    #[cfg(feature = "trace")]
    pub fn attach_tracer(&self) -> Arc<crate::trace::Tracer> {
        if let Some(t) = self.mem.tracer() {
            return Arc::clone(t);
        }
        let t = Arc::new(crate::trace::Tracer::new(self.config().trace_buffer_events));
        self.mem.attach_tracer(t);
        // `mem` may have raced another attach; return the winning instance.
        Arc::clone(self.mem.tracer().expect("just attached"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ThreadKind;
    use crate::mem::Region;

    #[test]
    fn arenas_allocate_in_their_regions() {
        let m = Machine::new(Config::tiny());
        let h = m.host_arena().alloc(64);
        let p0 = m.part_arena(0).alloc(64);
        let p1 = m.part_arena(1).alloc(64);
        assert_eq!(m.map().region_of(h), Region::Host);
        assert_eq!(m.map().region_of(p0), Region::Part(0));
        assert_eq!(m.map().region_of(p1), Region::Part(1));
    }

    #[test]
    fn simulation_shares_machine_memory() {
        let m = Machine::new(Config::tiny());
        let addr = m.host_arena().alloc(8);
        m.ram().write_u64(addr, 123); // untimed population
        let mut sim = m.simulation();
        sim.spawn("t", ThreadKind::Host { core: 0 }, move |ctx| {
            assert_eq!(ctx.read_u64(addr), 123);
        });
        sim.run();
    }

    #[test]
    fn two_simulations_can_reuse_one_machine() {
        let m = Machine::new(Config::tiny());
        let addr = m.host_arena().alloc(8);
        for round in 1..=2u64 {
            let mut sim = m.simulation();
            sim.spawn("t", ThreadKind::Host { core: 0 }, move |ctx| {
                let v = ctx.read_u64(addr);
                ctx.write_u64(addr, v + round);
            });
            sim.run();
        }
        assert_eq!(m.ram().read_u64(addr), 3);
    }
}
