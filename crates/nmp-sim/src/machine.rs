//! A [`Machine`] bundles the simulated memory system with per-region
//! allocators — the substrate that data structures are built on.

use std::sync::Arc;

use crate::alloc::Arena;
use crate::backend::{BackendKind, MemBackend};
use crate::config::Config;
use crate::engine::{NativeRun, Simulation};
use crate::mem::{MemMap, MemorySystem};

/// The simulated machine: memory system + allocators for every region.
pub struct Machine {
    mem: Arc<MemorySystem>,
    host_arena: Arena,
    part_arenas: Vec<Arena>,
}

impl Machine {
    /// Build a machine (memory system + arenas) for `cfg` on the
    /// cycle-accurate simulated backend.
    pub fn new(cfg: Config) -> Arc<Self> {
        let mem = Arc::new(MemorySystem::new(cfg));
        Arc::new(Self::from_memory(mem))
    }

    /// Build a machine for `cfg` on the native backend: same address map
    /// and arenas, but the data plane is real memory with real atomics and
    /// threads run through [`Machine::native_run`] at hardware speed with
    /// no cycle accounting.
    pub fn new_native(cfg: Config) -> Arc<Self> {
        let mem = Arc::new(MemorySystem::new_with_backend(cfg, BackendKind::Native));
        Arc::new(Self::from_memory(mem))
    }

    fn from_memory(mem: Arc<MemorySystem>) -> Machine {
        let map = *mem.map();
        let host_arena = Arena::new("host-heap", map.host_base, map.host_size);
        let part_arenas = (0..map.parts)
            .map(|p| Arena::new("nmp-partition", map.part_base(p), map.part_size))
            .collect();
        Machine { mem, host_arena, part_arenas }
    }

    /// The machine's memory system (timed access plane).
    pub fn mem(&self) -> &Arc<MemorySystem> {
        &self.mem
    }

    /// Raw backing storage (untimed data plane, e.g. for population).
    pub fn ram(&self) -> &dyn MemBackend {
        self.mem.ram()
    }

    /// Which data-plane substrate this machine is built on.
    pub fn backend_kind(&self) -> BackendKind {
        self.mem.backend_kind()
    }

    /// The static address map of this machine.
    pub fn map(&self) -> &MemMap {
        self.mem.map()
    }

    /// The configuration the machine was built from.
    pub fn config(&self) -> &Config {
        self.mem.config()
    }

    /// Allocator for host main memory.
    pub fn host_arena(&self) -> &Arena {
        &self.host_arena
    }

    /// Allocator for NMP partition `p`.
    pub fn part_arena(&self, p: usize) -> &Arena {
        &self.part_arenas[p]
    }

    /// Number of NMP partitions.
    pub fn partitions(&self) -> usize {
        self.part_arenas.len()
    }

    /// Start building a simulation over this machine's memory. Requires
    /// the simulated backend: cycle accounting over native memory would be
    /// meaningless (and the determinism argument would not hold).
    pub fn simulation(self: &Arc<Self>) -> Simulation {
        assert_eq!(
            self.backend_kind(),
            BackendKind::Sim,
            "simulations need a simulated-backend machine (Machine::new); \
             use Machine::native_run on a native machine"
        );
        Simulation::with_memory(Arc::clone(&self.mem))
    }

    /// Start a native (real-thread) run over this machine's memory.
    /// Requires the native backend: real concurrent threads need the real
    /// atomic orderings `NativeRam` provides.
    pub fn native_run(self: &Arc<Self>) -> NativeRun {
        NativeRun::new(Arc::clone(&self.mem))
    }

    /// Attach the correctness checkers (race detector, region-policy lint)
    /// to this machine and return them. Idempotent: a second call returns
    /// the already-attached instance. Once attached, every timed memory
    /// access in every subsequent simulation over this machine is traced,
    /// and region-policy violations are recorded instead of panicking.
    #[cfg(feature = "analysis")]
    pub fn attach_analysis(&self) -> Arc<crate::analysis::Analysis> {
        if let Some(a) = self.mem.analysis() {
            return Arc::clone(a);
        }
        let a = crate::analysis::Analysis::new(*self.map());
        self.mem.attach_analysis(Arc::clone(&a));
        // `mem` may have raced another attach; wire the winning instance
        // into the arenas so `free` resets the right detector.
        let a = Arc::clone(self.mem.analysis().expect("just attached"));
        self.host_arena.attach_analysis(Arc::clone(&a));
        for arena in &self.part_arenas {
            arena.attach_analysis(Arc::clone(&a));
        }
        a
    }

    /// Attach the cycle-level event tracer (see [`crate::trace`]) to this
    /// machine and return it. Idempotent: a second call returns the
    /// already-attached instance. Once attached, every subsequent simulation
    /// over this machine records op-lifecycle spans and memory events —
    /// untimed, so simulated cycle counts are unchanged.
    #[cfg(feature = "trace")]
    pub fn attach_tracer(&self) -> Arc<crate::trace::Tracer> {
        if let Some(t) = self.mem.tracer() {
            return Arc::clone(t);
        }
        let t = Arc::new(crate::trace::Tracer::new(self.config().trace_buffer_events));
        self.mem.attach_tracer(t);
        // `mem` may have raced another attach; return the winning instance.
        Arc::clone(self.mem.tracer().expect("just attached"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ThreadKind;
    use crate::mem::Region;

    #[test]
    fn arenas_allocate_in_their_regions() {
        let m = Machine::new(Config::tiny());
        let h = m.host_arena().alloc(64);
        let p0 = m.part_arena(0).alloc(64);
        let p1 = m.part_arena(1).alloc(64);
        assert_eq!(m.map().region_of(h), Region::Host);
        assert_eq!(m.map().region_of(p0), Region::Part(0));
        assert_eq!(m.map().region_of(p1), Region::Part(1));
    }

    #[test]
    fn simulation_shares_machine_memory() {
        let m = Machine::new(Config::tiny());
        let addr = m.host_arena().alloc(8);
        m.ram().write_u64(addr, 123); // untimed population
        let mut sim = m.simulation();
        sim.spawn("t", ThreadKind::Host { core: 0 }, move |ctx| {
            assert_eq!(ctx.read_u64(addr), 123);
        });
        sim.run();
    }

    #[test]
    fn two_simulations_can_reuse_one_machine() {
        let m = Machine::new(Config::tiny());
        let addr = m.host_arena().alloc(8);
        for round in 1..=2u64 {
            let mut sim = m.simulation();
            sim.spawn("t", ThreadKind::Host { core: 0 }, move |ctx| {
                let v = ctx.read_u64(addr);
                ctx.write_u64(addr, v + round);
            });
            sim.run();
        }
        assert_eq!(m.ram().read_u64(addr), 3);
    }
}
