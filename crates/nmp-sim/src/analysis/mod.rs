//! Engine-integrated correctness checkers (the `analysis` cargo feature).
//!
//! The deterministic engine runs exactly one logical thread at a time and
//! every timed memory operation passes through a single serialization point
//! ([`crate::engine::ThreadCtx`]). This module instruments that point and
//! feeds three checkers:
//!
//! 1. **Race detector** ([`race`]): a vector-clock happens-before checker
//!    over simulated addresses. Synchronization operations — simulated CAS,
//!    acquire/release-annotated accesses, and the publication-slot handoff —
//!    establish happens-before edges; conflicting unordered plain accesses
//!    are reported with both access sites, thread kinds, and the address's
//!    [`Region`](crate::mem::Region).
//! 2. **Region-policy lint** ([`policy`]): flags host threads touching
//!    `Region::Part(p)` memory, NMP cores touching foreign partitions or
//!    scratchpads, and non-MMIO host scratchpad access. With an [`Analysis`]
//!    attached these are recorded (and the access charged a fallback
//!    latency) instead of panicking, so negative fixtures run to completion.
//! 3. **Linearizability checker** ([`history`]): records completed index
//!    operations and verifies the concurrent history against a sequential
//!    map oracle with a Wing & Gong search.
//!
//! Attach an [`Analysis`] with [`crate::Machine::attach_analysis`]; without
//! one the simulator behaves exactly as before (wild region accesses
//! panic, nothing is recorded). Results are surfaced through
//! [`Analysis::report`] and the `races_detected` / `policy_violations`
//! fields of [`crate::stats::StatsSnapshot`].

pub mod history;
pub mod policy;
pub mod race;

use std::fmt;
use std::panic::Location;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::ThreadKind;
use crate::mem::{Addr, MemMap};

pub use history::{HistEvent, HistOp, HistoryRecorder, LinearizabilityError};
pub use policy::{PolicyRule, PolicyViolation};
pub use race::{AccessSite, RaceKind, RaceReport};

/// How a timed memory operation participates in the happens-before model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Plain load: race-checked unless the cell is a sync cell (then it is
    /// treated as an atomic acquire load).
    Read,
    /// Plain store: race-checked unless the cell is a sync cell (then it is
    /// treated as an atomic release store).
    Write,
    /// Acquire load: marks the cell as a sync cell and joins its clock.
    ReadAcquire,
    /// Release store: marks the cell as a sync cell and publishes the
    /// thread's clock through it.
    WriteRelease,
    /// Compare-and-swap: always a sync operation — acquire, plus release on
    /// success.
    Cas {
        /// Whether the CAS succeeded (successful CAS also releases).
        success: bool,
    },
    /// Optimistic (seqlock-protected) load: never race-checked and
    /// establishes no ordering; validation happens through the seq word.
    ReadSpeculative,
}

/// Aggregated results of the engine-integrated checkers.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Deduplicated race reports (capped at [`race::MAX_STORED_REPORTS`]).
    pub races: Vec<RaceReport>,
    /// Total number of racy access pairs observed (uncapped).
    pub races_total: u64,
    /// Deduplicated region-policy violations (capped).
    pub policy_violations: Vec<PolicyViolation>,
    /// Total number of policy-violating accesses observed (uncapped).
    pub policy_total: u64,
}

impl Report {
    /// True when no races and no policy violations were observed.
    pub fn is_clean(&self) -> bool {
        self.races_total == 0 && self.policy_total == 0
    }

    /// Panic with a readable listing if the report is not clean.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "analysis report is not clean:\n{self}");
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} race(s), {} policy violation(s)", self.races_total, self.policy_total)?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        for v in &self.policy_violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

struct Inner {
    race: race::RaceDetector,
    policy: policy::PolicyChecker,
}

/// The attached checker state of one simulated machine. One logical thread
/// executes at a time, so the mutex is uncontended; it exists because
/// logical threads live on distinct OS threads.
pub struct Analysis {
    map: MemMap,
    inner: Mutex<Inner>,
}

impl Analysis {
    /// Build an analysis over the given address map.
    pub fn new(map: MemMap) -> Arc<Self> {
        Arc::new(Analysis {
            map,
            inner: Mutex::new(Inner {
                race: race::RaceDetector::new(),
                policy: policy::PolicyChecker::new(),
            }),
        })
    }

    /// Register the logical threads of a simulation about to run. Called by
    /// the engine; joins all prior clocks so that sequential simulations on
    /// one machine are ordered before the new threads.
    pub(crate) fn on_sim_start(&self, roster: &[(String, ThreadKind)]) {
        self.inner.lock().race.on_sim_start(roster);
    }

    /// Record one timed memory access (the engine's serialization point).
    pub(crate) fn on_access(
        &self,
        tid: usize,
        at: u64,
        addr: Addr,
        bytes: u32,
        op: MemOp,
        site: &'static Location<'static>,
    ) {
        self.inner.lock().race.on_access(&self.map, tid, at, addr, bytes, op, site);
    }

    /// Check the region policy for an access about to be routed. Returns
    /// `true` (and records a violation) when the access breaks the policy;
    /// the engine then charges a fallback latency instead of panicking.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check_policy(
        &self,
        tid: usize,
        kind: ThreadKind,
        addr: Addr,
        is_write: bool,
        mmio: bool,
        at: u64,
        site: &'static Location<'static>,
    ) -> bool {
        let region = self.map.region_of(addr);
        let Some(rule) = policy::classify(kind, region, mmio) else {
            return false;
        };
        let mut g = self.inner.lock();
        let thread = g.race.thread_name(tid);
        g.policy.record(PolicyViolation {
            thread,
            thread_kind: kind,
            addr,
            region,
            is_write,
            mmio,
            rule,
            file: site.file(),
            line: site.line(),
            column: site.column(),
            at,
        });
        true
    }

    /// Forget all per-cell race state in `[addr, addr + bytes)`. Called by
    /// the arenas on `free` so that block reuse does not manufacture false
    /// races between the old and new owner of the memory.
    pub fn reset_range(&self, addr: Addr, bytes: u32) {
        self.inner.lock().race.reset_range(addr, bytes);
    }

    /// Total racy access pairs observed so far.
    pub fn race_count(&self) -> u64 {
        self.inner.lock().race.total()
    }

    /// Total policy-violating accesses observed so far.
    pub fn policy_count(&self) -> u64 {
        self.inner.lock().policy.total()
    }

    /// Snapshot the current findings.
    pub fn report(&self) -> Report {
        let g = self.inner.lock();
        Report {
            races: g.race.reports().to_vec(),
            races_total: g.race.total(),
            policy_violations: g.policy.violations().to_vec(),
            policy_total: g.policy.total(),
        }
    }
}
