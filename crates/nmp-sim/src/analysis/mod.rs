//! Engine-integrated correctness checkers (the `analysis` cargo feature).
//!
//! The deterministic engine runs exactly one logical thread at a time and
//! every timed memory operation passes through a single serialization point
//! ([`crate::engine::ThreadCtx`]). This module instruments that point and
//! feeds three checkers:
//!
//! 1. **Race detector** ([`race`]): a vector-clock happens-before checker
//!    over simulated addresses. Synchronization operations — simulated CAS,
//!    acquire/release-annotated accesses, and the publication-slot handoff —
//!    establish happens-before edges; conflicting unordered plain accesses
//!    are reported with both access sites, thread kinds, and the address's
//!    [`Region`](crate::mem::Region).
//! 2. **Region-policy lint** ([`policy`]): flags host threads touching
//!    `Region::Part(p)` memory, NMP cores touching foreign partitions or
//!    scratchpads, and non-MMIO host scratchpad access. With an [`Analysis`]
//!    attached these are recorded (and the access charged a fallback
//!    latency) instead of panicking, so negative fixtures run to completion.
//! 3. **Linearizability checker** ([`history`]): records completed index
//!    operations and verifies the concurrent history against a sequential
//!    map oracle with a Wing & Gong search.
//! 4. **Spec-conformance mode** ([`conformance`]): checks every observed
//!    access against the running structures' declared memory-effect plans
//!    ([`effects::EffectSpec`]), producing declared-vs-observed blame
//!    reports. Opt-in via [`Analysis::enable_conformance`].
//!
//! The [`effects`] module itself — the declaration vocabulary and its
//! static verifier [`effects::verify_specs`] — is compiled unconditionally
//! (no cargo feature needed): specs are validated at structure-registration
//! time with zero simulation cycles, in every build configuration.
//!
//! Attach an [`Analysis`] with [`crate::Machine::attach_analysis`]; without
//! one the simulator behaves exactly as before (wild region accesses
//! panic, nothing is recorded). Results are surfaced through
//! [`Analysis::report`] and the `races_detected` / `policy_violations`
//! fields of [`crate::stats::StatsSnapshot`].

pub mod effects;

#[cfg(feature = "analysis")]
pub mod conformance;
#[cfg(feature = "analysis")]
pub mod history;
#[cfg(feature = "analysis")]
pub mod policy;
#[cfg(feature = "analysis")]
pub mod race;

#[cfg(feature = "analysis")]
use std::fmt;
#[cfg(feature = "analysis")]
use std::panic::Location;
#[cfg(feature = "analysis")]
use std::sync::Arc;

#[cfg(feature = "analysis")]
use parking_lot::Mutex;

#[cfg(feature = "analysis")]
use crate::engine::ThreadKind;
#[cfg(feature = "analysis")]
use crate::mem::{Addr, MemMap};

#[cfg(feature = "analysis")]
pub use conformance::ConformanceViolation;
pub use effects::{
    verify_spec, verify_specs, AccessDecl, Channel, Dir, EffectSpec, OpSpec, OrderClass,
    RegionClass, SpecError, ThreadClass, Topology,
};
#[cfg(feature = "analysis")]
pub use history::{HistEvent, HistOp, HistoryRecorder, LinearizabilityError};
#[cfg(feature = "analysis")]
pub use policy::{PolicyRule, PolicyViolation};
#[cfg(feature = "analysis")]
pub use race::{AccessSite, RaceKind, RaceReport};

/// How a timed memory operation participates in the happens-before model.
#[cfg(feature = "analysis")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Plain load: race-checked unless the cell is a sync cell (then it is
    /// treated as an atomic acquire load).
    Read,
    /// Plain store: race-checked unless the cell is a sync cell (then it is
    /// treated as an atomic release store).
    Write,
    /// Acquire load: marks the cell as a sync cell and joins its clock.
    ReadAcquire,
    /// Release store: marks the cell as a sync cell and publishes the
    /// thread's clock through it.
    WriteRelease,
    /// Compare-and-swap: always a sync operation — acquire, plus release on
    /// success.
    Cas {
        /// Whether the CAS succeeded (successful CAS also releases).
        success: bool,
    },
    /// Optimistic (seqlock-protected) load: never race-checked and
    /// establishes no ordering; validation happens through the seq word.
    ReadSpeculative,
}

/// Aggregated results of the engine-integrated checkers.
#[cfg(feature = "analysis")]
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Deduplicated race reports (capped at [`race::MAX_STORED_REPORTS`]).
    pub races: Vec<RaceReport>,
    /// Total number of racy access pairs observed (uncapped).
    pub races_total: u64,
    /// Deduplicated region-policy violations (capped).
    pub policy_violations: Vec<PolicyViolation>,
    /// Total number of policy-violating accesses observed (uncapped).
    pub policy_total: u64,
    /// Deduplicated spec-conformance violations (capped); empty unless
    /// conformance mode is enabled ([`Analysis::enable_conformance`]).
    pub conformance: Vec<ConformanceViolation>,
    /// Total number of undeclared accesses observed (uncapped).
    pub conformance_total: u64,
}

#[cfg(feature = "analysis")]
impl Report {
    /// True when no races, policy violations, or conformance violations
    /// were observed.
    pub fn is_clean(&self) -> bool {
        self.races_total == 0 && self.policy_total == 0 && self.conformance_total == 0
    }

    /// Panic with a readable listing if the report is not clean.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "analysis report is not clean:\n{self}");
    }
}

#[cfg(feature = "analysis")]
impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} race(s), {} policy violation(s), {} conformance violation(s)",
            self.races_total, self.policy_total, self.conformance_total
        )?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        for v in &self.policy_violations {
            writeln!(f, "  {v}")?;
        }
        for v in &self.conformance {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// A deferred analysis side effect. Under the sharded engine, each logical
/// thread logs these instead of applying them live; the shard runner merges
/// the logs in global `(cycle, spawn id, seq)` order after the run and
/// replays them through [`Analysis::replay`], reproducing exactly the feed
/// order of the legacy single-loop engine.
#[cfg(feature = "analysis")]
#[derive(Clone)]
pub(crate) enum AnalysisEv {
    /// One timed access observed at the serialization point.
    Access {
        /// Spawn id of the accessing thread.
        tid: usize,
        /// Completion cycle.
        at: u64,
        /// Accessed address.
        addr: Addr,
        /// Access width in bytes.
        bytes: u32,
        /// Happens-before participation.
        op: MemOp,
        /// Whether the access went over the MMIO window.
        mmio: bool,
        /// Source location of the access.
        site: &'static Location<'static>,
    },
    /// Conformance op-scope change ([`Analysis::set_current_op`]).
    SetOp {
        /// Spawn id of the scoped thread.
        tid: usize,
        /// Declared op id, or `None` to clear.
        op: Option<u8>,
    },
    /// Arena free forgetting per-cell race state
    /// ([`Analysis::reset_range`]).
    ResetRange {
        /// First address of the freed block.
        addr: Addr,
        /// Length of the freed block.
        bytes: u32,
    },
    /// A region-policy violation, fully built at issue time (thread name
    /// resolution needs the roster lock, which is cheap there).
    Violation(PolicyViolation),
}

#[cfg(feature = "analysis")]
struct Inner {
    race: race::RaceDetector,
    policy: policy::PolicyChecker,
    conf: conformance::ConformanceChecker,
}

/// The attached checker state of one simulated machine. One logical thread
/// executes at a time, so the mutex is uncontended; it exists because
/// logical threads live on distinct OS threads.
#[cfg(feature = "analysis")]
pub struct Analysis {
    map: MemMap,
    inner: Mutex<Inner>,
}

#[cfg(feature = "analysis")]
impl Analysis {
    /// Build an analysis over the given address map.
    pub fn new(map: MemMap) -> Arc<Self> {
        Arc::new(Analysis {
            map,
            inner: Mutex::new(Inner {
                race: race::RaceDetector::new(),
                policy: policy::PolicyChecker::new(),
                conf: conformance::ConformanceChecker::new(),
            }),
        })
    }

    /// Register the logical threads of a simulation about to run. Called by
    /// the engine; joins all prior clocks so that sequential simulations on
    /// one machine are ordered before the new threads.
    pub(crate) fn on_sim_start(&self, roster: &[(String, ThreadKind)]) {
        let mut g = self.inner.lock();
        g.race.on_sim_start(roster);
        g.conf.on_sim_start(roster.len());
    }

    /// Record one timed memory access (the engine's serialization point).
    /// Under the sharded engine the access is deferred to the calling
    /// thread's log and replayed in global key order after the run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_access(
        &self,
        tid: usize,
        at: u64,
        addr: Addr,
        bytes: u32,
        op: MemOp,
        mmio: bool,
        site: &'static Location<'static>,
    ) {
        if crate::engine::defer_analysis(AnalysisEv::Access {
            tid,
            at,
            addr,
            bytes,
            op,
            mmio,
            site,
        }) {
            return;
        }
        self.apply_access(tid, at, addr, bytes, op, mmio, site);
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_access(
        &self,
        tid: usize,
        at: u64,
        addr: Addr,
        bytes: u32,
        op: MemOp,
        mmio: bool,
        site: &'static Location<'static>,
    ) {
        let mut g = self.inner.lock();
        g.race.on_access(&self.map, tid, at, addr, bytes, op, site);
        let kind = g.race.thread_kind(tid);
        let region = self.map.region_of(addr);
        let Inner { race, conf, .. } = &mut *g;
        conf.check(
            tid,
            || race.thread_name(tid),
            kind,
            addr,
            region,
            op,
            mmio,
            at,
            site.file(),
            site.line(),
            site.column(),
        );
    }

    /// Install a structure's declared [`EffectSpec`] for conformance
    /// checking. Re-installing a spec with the same structure name replaces
    /// the previous one. Inert until [`Analysis::enable_conformance`].
    pub fn install_spec(&self, spec: EffectSpec) {
        self.inner.lock().conf.install(spec);
    }

    /// Turn on spec-conformance mode: every subsequent observed access is
    /// checked against the installed specs.
    pub fn enable_conformance(&self) {
        self.inner.lock().conf.enable();
    }

    /// Scope thread `tid`'s subsequent accesses to declared operation `op`
    /// (`None` clears the scope). NMP combiners call this around request
    /// execution so blame reports name the op being served.
    pub fn set_current_op(&self, tid: usize, op: Option<u8>) {
        if crate::engine::defer_analysis(AnalysisEv::SetOp { tid, op }) {
            return;
        }
        self.inner.lock().conf.set_current_op(tid, op);
    }

    /// Check the region policy for an access about to be routed. Returns
    /// `true` (and records a violation) when the access breaks the policy;
    /// the engine then charges a fallback latency instead of panicking.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check_policy(
        &self,
        tid: usize,
        kind: ThreadKind,
        addr: Addr,
        is_write: bool,
        mmio: bool,
        at: u64,
        site: &'static Location<'static>,
    ) -> bool {
        let region = self.map.region_of(addr);
        let Some(rule) = policy::classify(kind, region, mmio) else {
            return false;
        };
        let v = {
            let g = self.inner.lock();
            let thread = g.race.thread_name(tid);
            PolicyViolation {
                thread,
                thread_kind: kind,
                addr,
                region,
                is_write,
                mmio,
                rule,
                file: site.file(),
                line: site.line(),
                column: site.column(),
                at,
            }
        };
        if !crate::engine::defer_analysis(AnalysisEv::Violation(v.clone())) {
            self.inner.lock().policy.record(v);
        }
        true
    }

    /// Apply one deferred event after a sharded run (see [`AnalysisEv`]).
    pub(crate) fn replay(&self, ev: AnalysisEv) {
        match ev {
            AnalysisEv::Access { tid, at, addr, bytes, op, mmio, site } => {
                self.apply_access(tid, at, addr, bytes, op, mmio, site)
            }
            AnalysisEv::SetOp { tid, op } => self.inner.lock().conf.set_current_op(tid, op),
            AnalysisEv::ResetRange { addr, bytes } => {
                self.inner.lock().race.reset_range(addr, bytes)
            }
            AnalysisEv::Violation(v) => self.inner.lock().policy.record(v),
        }
    }

    /// Forget all per-cell race state in `[addr, addr + bytes)`. Called by
    /// the arenas on `free` so that block reuse does not manufacture false
    /// races between the old and new owner of the memory.
    pub fn reset_range(&self, addr: Addr, bytes: u32) {
        if crate::engine::defer_analysis(AnalysisEv::ResetRange { addr, bytes }) {
            return;
        }
        self.inner.lock().race.reset_range(addr, bytes);
    }

    /// Total racy access pairs observed so far.
    pub fn race_count(&self) -> u64 {
        self.inner.lock().race.total()
    }

    /// Total policy-violating accesses observed so far.
    pub fn policy_count(&self) -> u64 {
        self.inner.lock().policy.total()
    }

    /// Total undeclared (spec-nonconforming) accesses observed so far.
    pub fn conformance_count(&self) -> u64 {
        self.inner.lock().conf.total()
    }

    /// Snapshot the current findings.
    pub fn report(&self) -> Report {
        let g = self.inner.lock();
        Report {
            races: g.race.reports().to_vec(),
            races_total: g.race.total(),
            policy_violations: g.policy.violations().to_vec(),
            policy_total: g.policy.total(),
            conformance: g.conf.violations().to_vec(),
            conformance_total: g.conf.total(),
        }
    }
}
