//! Spec-conformance mode: every observed timed access is checked against
//! the running structures' declared [`EffectSpec`]s.
//!
//! Where the race detector reports "two clocks conflicted", conformance
//! mode reports *declared-vs-observed* blame: the access is rendered in the
//! spec vocabulary ([`AccessDecl`]) and compared against the plans
//! installed via [`super::Analysis::install_spec`]. NMP combiners scope
//! their execution to the operation code being served
//! ([`super::Analysis::set_current_op`]), so an executor that strays
//! outside its declared plan is blamed with the exact op, site, and the
//! observed access shape.
//!
//! The mode is opt-in ([`super::Analysis::enable_conformance`]): installed
//! specs are inert until enabled, so machines that intermix spec'd
//! structures with bare harness code (cross-structure tests) keep their
//! existing behavior.

use std::fmt;

use crate::analysis::effects::{
    AccessDecl, Channel, Dir, EffectSpec, OrderClass, RegionClass, ThreadClass,
};
use crate::analysis::MemOp;
use crate::engine::ThreadKind;
use crate::mem::{Addr, Region};

/// At most this many distinct violations are stored (the total count keeps
/// counting past the cap).
pub const MAX_STORED_VIOLATIONS: usize = 64;

/// One observed access that no installed spec declares.
#[derive(Debug, Clone)]
pub struct ConformanceViolation {
    /// Logical thread name.
    pub thread: String,
    /// Host core or NMP core identity of the thread.
    pub thread_kind: ThreadKind,
    /// Operation scope at the time of the access: `(code, name)` when an
    /// NMP combiner had scoped itself to a published request.
    pub op: Option<(u8, &'static str)>,
    /// The offending simulated address.
    pub addr: Addr,
    /// The region that address falls in.
    pub region: Region,
    /// The observed access, rendered in the spec vocabulary.
    pub observed: AccessDecl,
    /// Structures whose specs were consulted.
    pub consulted: Vec<&'static str>,
    /// Source file of the access.
    pub file: &'static str,
    /// Source line of the access.
    pub line: u32,
    /// Source column of the access.
    pub column: u32,
    /// Simulated completion time of the access, in cycles.
    pub at: u64,
}

impl fmt::Display for ConformanceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "undeclared access: {} of {:#x} ({:?}) by '{}' ({:?})",
            self.observed, self.addr, self.region, self.thread, self.thread_kind,
        )?;
        match self.op {
            Some((code, name)) => write!(f, " while serving op {name} ({code})")?,
            None => write!(f, " outside any op scope")?,
        }
        write!(
            f,
            " at {}:{}:{} (cycle {}); specs consulted: {}",
            self.file,
            self.line,
            self.column,
            self.at,
            if self.consulted.is_empty() {
                "<none>".to_string()
            } else {
                self.consulted.join(", ")
            },
        )
    }
}

/// Express one observed access in the declaration vocabulary, relative to
/// the accessing thread. Foreign regions map to [`RegionClass::Foreign`],
/// which no valid spec contains — such accesses are always blamed.
pub fn observed_decl(kind: ThreadKind, region: Region, op: MemOp, mmio: bool) -> AccessDecl {
    let region = match (kind, region) {
        (ThreadKind::Host { .. }, Region::Host) => RegionClass::Host,
        (ThreadKind::Host { .. }, Region::Spad(_)) => RegionClass::Spad,
        (ThreadKind::Host { .. }, Region::Part(_)) => RegionClass::Part,
        (ThreadKind::Nmp { part }, Region::Part(p)) => {
            if p == part {
                RegionClass::Part
            } else {
                RegionClass::Foreign
            }
        }
        (ThreadKind::Nmp { part }, Region::Spad(p)) => {
            if p == part {
                RegionClass::Spad
            } else {
                RegionClass::Foreign
            }
        }
        (ThreadKind::Nmp { .. }, Region::Host) => RegionClass::Host,
    };
    let (dir, order) = match op {
        MemOp::Read => (Dir::Read, OrderClass::Plain),
        MemOp::Write => (Dir::Write, OrderClass::Plain),
        MemOp::ReadAcquire => (Dir::Read, OrderClass::Acquire),
        MemOp::WriteRelease => (Dir::Write, OrderClass::Release),
        MemOp::Cas { .. } => (Dir::Write, OrderClass::Cas),
        MemOp::ReadSpeculative => (Dir::Read, OrderClass::Speculative),
    };
    AccessDecl {
        region,
        dir,
        order,
        channel: if mmio { Channel::Mmio } else { Channel::Timed },
        sync: "",
    }
}

fn decl_matches(decl: &AccessDecl, obs: &AccessDecl) -> bool {
    decl.region == obs.region
        && decl.channel == obs.channel
        && decl.dir == obs.dir
        && decl.order == obs.order
}

pub(crate) struct ConformanceChecker {
    enabled: bool,
    specs: Vec<EffectSpec>,
    /// Per-tid operation scope (spawn order, reset each simulation).
    current_op: Vec<Option<u8>>,
    violations: Vec<ConformanceViolation>,
    seen: Vec<(&'static str, u32, u32)>,
    total: u64,
}

impl ConformanceChecker {
    pub(crate) fn new() -> Self {
        ConformanceChecker {
            enabled: false,
            specs: Vec::new(),
            current_op: Vec::new(),
            violations: Vec::new(),
            seen: Vec::new(),
            total: 0,
        }
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    pub(crate) fn install(&mut self, spec: EffectSpec) {
        // Re-registering one structure (fresh simulation on the same
        // machine) replaces its previous spec.
        self.specs.retain(|s| s.structure != spec.structure);
        self.specs.push(spec);
    }

    pub(crate) fn on_sim_start(&mut self, threads: usize) {
        self.current_op.clear();
        self.current_op.resize(threads, None);
    }

    pub(crate) fn set_current_op(&mut self, tid: usize, op: Option<u8>) {
        if tid >= self.current_op.len() {
            self.current_op.resize(tid + 1, None);
        }
        self.current_op[tid] = op;
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    pub(crate) fn violations(&self) -> &[ConformanceViolation] {
        &self.violations
    }

    /// Check one observed access; records (and returns) a violation when no
    /// installed declaration covers it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check(
        &mut self,
        tid: usize,
        thread: impl FnOnce() -> String,
        kind: ThreadKind,
        addr: Addr,
        region: Region,
        op: MemOp,
        mmio: bool,
        at: u64,
        file: &'static str,
        line: u32,
        column: u32,
    ) {
        if !self.enabled || self.specs.is_empty() {
            return;
        }
        let obs = observed_decl(kind, region, op, mmio);
        let class = match kind {
            ThreadKind::Host { .. } => ThreadClass::Host,
            ThreadKind::Nmp { .. } => ThreadClass::Nmp,
        };
        let scoped = self.current_op.get(tid).copied().flatten();
        let mut op_name: Option<(u8, &'static str)> = None;
        let mut matched = false;
        if let Some(code) = scoped {
            // Check against every installed plan for this op code; fall
            // back to the full union only if no spec declares the code.
            let mut any_plan = false;
            for spec in &self.specs {
                if let Some(plan) = spec.op_spec(code) {
                    any_plan = true;
                    op_name = Some((code, plan.name));
                    let decls = match class {
                        ThreadClass::Host => &plan.host,
                        ThreadClass::Nmp => &plan.nmp,
                    };
                    if decls.iter().any(|d| decl_matches(d, &obs)) {
                        matched = true;
                        break;
                    }
                }
            }
            if !any_plan {
                matched =
                    self.specs.iter().any(|s| s.all_decls(class).any(|d| decl_matches(d, &obs)));
            }
        } else {
            matched = self.specs.iter().any(|s| s.all_decls(class).any(|d| decl_matches(d, &obs)));
        }
        if matched {
            return;
        }
        self.total += 1;
        let key = (file, line, column);
        if self.seen.contains(&key) || self.violations.len() >= MAX_STORED_VIOLATIONS {
            return;
        }
        self.seen.push(key);
        self.violations.push(ConformanceViolation {
            thread: thread(),
            thread_kind: kind,
            op: op_name,
            addr,
            region,
            observed: obs,
            consulted: self.specs.iter().map(|s| s.structure).collect(),
            file,
            line,
            column,
            at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::effects::OpSpec;

    fn spec() -> EffectSpec {
        EffectSpec::new("s").op(OpSpec::new(2, "Insert")
            .host(AccessDecl::read(RegionClass::Host))
            .nmp(AccessDecl::read(RegionClass::Part))
            .nmp(AccessDecl::write(RegionClass::Part)))
    }

    fn check(
        c: &mut ConformanceChecker,
        tid: usize,
        kind: ThreadKind,
        region: Region,
        op: MemOp,
        mmio: bool,
    ) {
        c.check(tid, || "t".into(), kind, 0x100, region, op, mmio, 0, "f.rs", 1, 1);
    }

    #[test]
    fn disabled_checker_is_silent() {
        let mut c = ConformanceChecker::new();
        c.install(spec());
        check(&mut c, 0, ThreadKind::Host { core: 0 }, Region::Part(0), MemOp::Write, false);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn declared_access_passes_and_undeclared_is_blamed() {
        let mut c = ConformanceChecker::new();
        c.install(spec());
        c.enable();
        c.on_sim_start(2);
        let host = ThreadKind::Host { core: 0 };
        check(&mut c, 0, host, Region::Host, MemOp::Read, false);
        assert_eq!(c.total(), 0, "{:?}", c.violations());
        // Host write is not declared (only reads are).
        check(&mut c, 0, host, Region::Host, MemOp::Write, false);
        assert_eq!(c.total(), 1);
        assert_eq!(c.violations()[0].observed.dir, Dir::Write);
    }

    #[test]
    fn op_scope_narrows_the_plan() {
        let wide = EffectSpec::new("s")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Part)))
            .op(OpSpec::new(2, "Insert").nmp(AccessDecl::write(RegionClass::Part)));
        let mut c = ConformanceChecker::new();
        c.install(wide);
        c.enable();
        c.on_sim_start(1);
        let nmp = ThreadKind::Nmp { part: 0 };
        // Unscoped: the union allows both reads and writes.
        check(&mut c, 0, nmp, Region::Part(0), MemOp::Write, false);
        assert_eq!(c.total(), 0);
        // Scoped to Read: a partition write is outside the plan.
        c.set_current_op(0, Some(0));
        check(&mut c, 0, nmp, Region::Part(0), MemOp::Write, false);
        assert_eq!(c.total(), 1);
        let v = &c.violations()[0];
        assert_eq!(v.op, Some((0, "Read")));
    }

    #[test]
    fn foreign_partition_never_matches() {
        let mut c = ConformanceChecker::new();
        c.install(spec());
        c.enable();
        c.on_sim_start(1);
        check(&mut c, 0, ThreadKind::Nmp { part: 1 }, Region::Part(0), MemOp::Read, false);
        assert_eq!(c.total(), 1);
        assert_eq!(c.violations()[0].observed.region, RegionClass::Foreign);
    }

    #[test]
    fn reinstall_replaces_previous_spec() {
        let mut c = ConformanceChecker::new();
        c.install(spec());
        c.install(spec());
        assert_eq!(c.specs.len(), 1);
    }
}
