//! Vector-clock happens-before race detection over simulated addresses.
//!
//! State is tracked per 4-byte *cell* (`addr >> 2`); a 64-bit access covers
//! two cells. A cell becomes a **sync cell** the first time it is targeted
//! by a CAS or an acquire/release-annotated access; from then on every
//! access to it is modeled as an atomic:
//!
//! * release store (or any plain store to a sync cell): the cell's clock
//!   joins the thread's clock, and the thread's own component is bumped,
//! * acquire load (or any plain load of a sync cell): the thread's clock
//!   joins the cell's clock,
//! * CAS: acquire, plus release when it succeeds.
//!
//! Plain accesses to ordinary (data) cells are race-checked: a pair of
//! accesses to the same cell from different threads, at least one a write,
//! with neither happening-before the other, is a race. Speculative
//! (seqlock-optimistic) loads are neither checked nor ordering-relevant.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::Location;

use crate::engine::ThreadKind;
use crate::mem::{Addr, MemMap, Region};

use super::MemOp;

/// At most this many distinct race reports are stored (the total count keeps
/// counting past the cap).
pub const MAX_STORED_REPORTS: usize = 64;

/// Which conflict shape a race report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered writes.
    WriteWrite,
    /// An unordered read (first) and write (second).
    ReadWrite,
    /// An unordered write (first) and read (second).
    WriteRead,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
            RaceKind::WriteRead => "write-read",
        })
    }
}

/// One side of a race: who accessed, from where in the source, and when.
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// Logical thread name (as passed to `Simulation::spawn`).
    pub thread: String,
    /// Host core or NMP core identity of the thread.
    pub thread_kind: ThreadKind,
    /// Source file of the access.
    pub file: &'static str,
    /// Source line of the access.
    pub line: u32,
    /// Source column of the access.
    pub column: u32,
    /// Simulated completion time of the access, in cycles.
    pub at: u64,
    /// Whether this side was a store.
    pub is_write: bool,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by '{}' ({:?}) at {}:{}:{} (cycle {})",
            if self.is_write { "write" } else { "read" },
            self.thread,
            self.thread_kind,
            self.file,
            self.line,
            self.column,
            self.at,
        )
    }
}

/// A detected data race on one simulated cell.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Cell-aligned simulated address the conflict is on.
    pub addr: Addr,
    /// Architectural region the address falls in.
    pub region: Region,
    /// Conflict shape.
    pub kind: RaceKind,
    /// The earlier access of the unordered pair.
    pub first: AccessSite,
    /// The later access of the unordered pair.
    pub second: AccessSite,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {:#x} ({:?}): {} vs {}",
            self.kind, self.addr, self.region, self.first, self.second
        )
    }
}

type Cell = u32;
type SitePos = (&'static str, u32, u32);

/// A recorded prior access, compressed to (thread, scalar clock component).
#[derive(Debug, Clone, Copy)]
struct Access {
    tid: usize,
    epoch: u32,
    site: &'static Location<'static>,
    at: u64,
}

#[derive(Default)]
struct CellState {
    last_write: Option<Access>,
    /// Reads since the last write, at most one per thread.
    reads: Vec<Access>,
}

struct ThreadState {
    name: String,
    kind: ThreadKind,
    vc: Vec<u32>,
}

pub(crate) struct RaceDetector {
    threads: Vec<ThreadState>,
    cells: HashMap<Cell, CellState>,
    /// Sync cells and their clocks. Presence in this map *is* the sync mark.
    sync: HashMap<Cell, Vec<u32>>,
    reports: Vec<RaceReport>,
    seen: HashSet<(SitePos, SitePos)>,
    total: u64,
}

fn join(into: &mut Vec<u32>, other: &[u32]) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

impl RaceDetector {
    pub(crate) fn new() -> Self {
        RaceDetector {
            threads: Vec::new(),
            cells: HashMap::new(),
            sync: HashMap::new(),
            reports: Vec::new(),
            seen: HashSet::new(),
            total: 0,
        }
    }

    pub(crate) fn thread_name(&self, tid: usize) -> String {
        self.threads.get(tid).map_or_else(|| format!("thread-{tid}"), |t| t.name.clone())
    }

    pub(crate) fn thread_kind(&self, tid: usize) -> ThreadKind {
        self.threads.get(tid).map_or(ThreadKind::Host { core: 0 }, |t| t.kind)
    }

    /// Register the threads of a simulation about to run. Everything that
    /// happened in earlier simulations on this machine happens-before the
    /// new threads: each starts from the join of all prior clocks.
    pub(crate) fn on_sim_start(&mut self, roster: &[(String, ThreadKind)]) {
        let mut g: Vec<u32> = Vec::new();
        for t in &self.threads {
            join(&mut g, &t.vc);
        }
        let n = roster.len().max(self.threads.len());
        for (tid, (name, kind)) in roster.iter().enumerate() {
            let mut vc = g.clone();
            if vc.len() < n {
                vc.resize(n, 0);
            }
            vc[tid] += 1;
            let st = ThreadState { name: name.clone(), kind: *kind, vc };
            if tid < self.threads.len() {
                self.threads[tid] = st;
            } else {
                self.threads.push(st);
            }
        }
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    pub(crate) fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    pub(crate) fn reset_range(&mut self, addr: Addr, bytes: u32) {
        for cell in (addr >> 2)..((addr + bytes).div_ceil(4)) {
            self.cells.remove(&cell);
            self.sync.remove(&cell);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_access(
        &mut self,
        map: &MemMap,
        tid: usize,
        at: u64,
        addr: Addr,
        bytes: u32,
        op: MemOp,
        site: &'static Location<'static>,
    ) {
        if matches!(op, MemOp::ReadSpeculative) {
            return;
        }
        if tid >= self.threads.len() {
            // Access before on_sim_start (cannot happen through the engine);
            // be defensive rather than panic inside the checker.
            return;
        }
        let first = addr >> 2;
        let cells = first..(first + bytes.div_ceil(4));

        // Promote cells to sync cells for annotated sync operations.
        if matches!(op, MemOp::ReadAcquire | MemOp::WriteRelease | MemOp::Cas { .. }) {
            for c in cells.clone() {
                if !self.sync.contains_key(&c) {
                    self.cells.remove(&c);
                    self.sync.insert(c, Vec::new());
                }
            }
        }

        // Sync cells model atomics: loads acquire, stores release, CAS does
        // both (release only on success). Plain accesses to data cells fall
        // through to the happens-before race check.
        let mut released = false;
        for c in cells {
            if let Some(svc) = self.sync.get_mut(&c) {
                match op {
                    MemOp::Read | MemOp::ReadAcquire => {
                        join(&mut self.threads[tid].vc, svc);
                    }
                    MemOp::Write | MemOp::WriteRelease => {
                        join(svc, &self.threads[tid].vc);
                        released = true;
                    }
                    MemOp::Cas { success } => {
                        join(&mut self.threads[tid].vc, svc);
                        if success {
                            join(svc, &self.threads[tid].vc);
                            released = true;
                        }
                    }
                    MemOp::ReadSpeculative => unreachable!(),
                }
                continue;
            }
            // Plain access to a data cell: happens-before race check.
            let is_write = matches!(op, MemOp::Write);
            let vc = &self.threads[tid].vc;
            let epoch = vc[tid];
            let acc = Access { tid, epoch, site, at };
            let st = self.cells.entry(c).or_default();
            let mut found: Vec<(Access, RaceKind)> = Vec::new();
            if let Some(w) = st.last_write {
                if w.tid != tid && vc.get(w.tid).copied().unwrap_or(0) < w.epoch {
                    found.push((
                        w,
                        if is_write { RaceKind::WriteWrite } else { RaceKind::WriteRead },
                    ));
                }
            }
            if is_write {
                for r in &st.reads {
                    if r.tid != tid && vc.get(r.tid).copied().unwrap_or(0) < r.epoch {
                        found.push((*r, RaceKind::ReadWrite));
                    }
                }
                st.last_write = Some(acc);
                st.reads.clear();
            } else if let Some(slot) = st.reads.iter_mut().find(|r| r.tid == tid) {
                *slot = acc;
            } else {
                st.reads.push(acc);
            }
            for (prior, kind) in found {
                self.report(map, c, kind, prior, acc, is_write);
            }
        }
        if released {
            self.threads[tid].vc[tid] += 1;
        }
    }

    fn report(
        &mut self,
        map: &MemMap,
        cell: Cell,
        kind: RaceKind,
        prior: Access,
        cur: Access,
        cur_is_write: bool,
    ) {
        self.total += 1;
        let key = (
            (prior.site.file(), prior.site.line(), prior.site.column()),
            (cur.site.file(), cur.site.line(), cur.site.column()),
        );
        if !self.seen.insert(key) || self.reports.len() >= MAX_STORED_REPORTS {
            return;
        }
        let addr = cell << 2;
        let side = |a: &Access, is_write: bool| AccessSite {
            thread: self.threads[a.tid].name.clone(),
            thread_kind: self.threads[a.tid].kind,
            file: a.site.file(),
            line: a.site.line(),
            column: a.site.column(),
            at: a.at,
            is_write,
        };
        let prior_is_write = !matches!(kind, RaceKind::ReadWrite);
        self.reports.push(RaceReport {
            addr,
            region: map.region_of(addr),
            kind,
            first: side(&prior, prior_is_write),
            second: side(&cur, cur_is_write),
        });
    }
}
