//! Declared memory-effect specifications ([`EffectSpec`]) and their static
//! verifier ([`verify_specs`]).
//!
//! HybriDS' correctness rests on a strict ownership discipline: host threads
//! touch only host main memory plus scratchpads via MMIO; NMP core `p`
//! touches only partition `p` and scratchpad `p`. This module makes that
//! discipline *declarative*: every structure exports, per operation code, a
//! plan of the regions it may read and write, with what ordering and via
//! which channel. The plans are validated **before any simulation cycle
//! executes** — at structure-registration time — against the machine
//! topology and the publication-list protocol:
//!
//! * a host-side declaration naming a partition data region is rejected
//!   ([`SpecError::HostPartAccess`]);
//! * any declaration naming a foreign partition or foreign scratchpad is
//!   rejected ([`SpecError::ForeignAccess`]) — the vocabulary can only
//!   express it so that mis-ported specs are caught, never accepted;
//! * channel discipline: host↔scratchpad must be MMIO, nothing else may be
//!   ([`SpecError::ChannelMismatch`]);
//! * a release-store on a synchronized cell must be paired with an
//!   acquire-load on the reader's side of that cell
//!   ([`SpecError::UnpairedRelease`] / [`SpecError::UnpairedAcquire`]), so
//!   torn publication protocols are caught without running anything.
//!
//! With the `analysis` cargo feature, the same declarations additionally
//! feed a **conformance mode** of the dynamic checkers: every observed
//! timed access is checked against the running structure's declared plan,
//! turning a violation into a precise declared-vs-observed blame report
//! (see [`ConformanceViolation`](super::ConformanceViolation)).
//!
//! Declarations are region-granular, not cell-granular. Where one region
//! holds several independently-synchronized protocol words (the
//! publication slot's control word, the pqueue's minima cells), a *sync
//! tag* ([`AccessDecl::sync`]) names the cell so release/acquire pairing is
//! checked per protocol word rather than per region.

use std::fmt;

/// Which processor class an access declaration applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadClass {
    /// A host core (cache hierarchy, MMIO window onto scratchpads).
    Host,
    /// An NMP core (cache-less, bound to one partition).
    Nmp,
}

impl fmt::Display for ThreadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadClass::Host => "host",
            ThreadClass::Nmp => "nmp",
        })
    }
}

/// Region vocabulary of a declaration, relative to the accessing thread.
///
/// Concrete partition indices never appear in a spec: an NMP core's own
/// partition is [`RegionClass::Part`], anything else is
/// [`RegionClass::Foreign`]. `Foreign` exists only so that the verifier can
/// reject it — no valid spec contains it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionClass {
    /// Host main memory (LLC-resident upper layers, sync cells).
    Host,
    /// The partition the operation targets / the NMP core owns.
    Part,
    /// A scratchpad: the host reaches the target partition's scratchpad via
    /// MMIO; an NMP core reaches its own directly.
    Spad,
    /// A foreign partition or foreign scratchpad. Always rejected.
    Foreign,
}

impl fmt::Display for RegionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegionClass::Host => "host-mem",
            RegionClass::Part => "partition",
            RegionClass::Spad => "scratchpad",
            RegionClass::Foreign => "foreign",
        })
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Ordering class of a declared access, mirroring
/// [`MemOp`](super::MemOp)'s vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderClass {
    /// Plain access, race-checked.
    Plain,
    /// Acquire load.
    Acquire,
    /// Release store.
    Release,
    /// Compare-and-swap (acquire + release on success).
    Cas,
    /// Optimistic seqlock-protected load.
    Speculative,
}

impl fmt::Display for OrderClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrderClass::Plain => "plain",
            OrderClass::Acquire => "acquire",
            OrderClass::Release => "release",
            OrderClass::Cas => "cas",
            OrderClass::Speculative => "speculative",
        })
    }
}

/// Access channel of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// A timed access through the cache/DRAM model.
    Timed,
    /// A timed host MMIO access to a scratchpad.
    Mmio,
    /// An untimed data-plane access (population, invariant checks, stats).
    /// Never observed by the dynamic checkers; the `xtask` source lint
    /// confines these to annotated layout modules.
    Untimed,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Channel::Timed => "timed",
            Channel::Mmio => "mmio",
            Channel::Untimed => "untimed",
        })
    }
}

/// One declared access: region × direction × ordering × channel, plus an
/// optional sync tag naming the protocol word for release/acquire pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessDecl {
    /// Region the access may target.
    pub region: RegionClass,
    /// Load or store.
    pub dir: Dir,
    /// Ordering annotation.
    pub order: OrderClass,
    /// Channel the access travels on.
    pub channel: Channel,
    /// Sync-cell tag (`""` = untagged). Tagged release/acquire declarations
    /// pair per tag; see [`verify_spec`].
    pub sync: &'static str,
}

impl AccessDecl {
    /// A plain timed load from `region`.
    pub const fn read(region: RegionClass) -> Self {
        AccessDecl {
            region,
            dir: Dir::Read,
            order: OrderClass::Plain,
            channel: Channel::Timed,
            sync: "",
        }
    }

    /// A plain timed store to `region`.
    pub const fn write(region: RegionClass) -> Self {
        AccessDecl {
            region,
            dir: Dir::Write,
            order: OrderClass::Plain,
            channel: Channel::Timed,
            sync: "",
        }
    }

    /// Annotate as an acquire load.
    pub const fn acquire(mut self) -> Self {
        self.order = OrderClass::Acquire;
        self
    }

    /// Annotate as a release store.
    pub const fn release(mut self) -> Self {
        self.order = OrderClass::Release;
        self
    }

    /// Annotate as a compare-and-swap.
    pub const fn cas(mut self) -> Self {
        self.order = OrderClass::Cas;
        self
    }

    /// Annotate as a speculative (seqlock-protected) load.
    pub const fn speculative(mut self) -> Self {
        self.order = OrderClass::Speculative;
        self
    }

    /// Route over the host MMIO channel.
    pub const fn mmio(mut self) -> Self {
        self.channel = Channel::Mmio;
        self
    }

    /// Mark as an untimed data-plane access.
    pub const fn untimed(mut self) -> Self {
        self.channel = Channel::Untimed;
        self
    }

    /// Name the synchronized protocol word this declaration touches.
    pub const fn sync(mut self, tag: &'static str) -> Self {
        self.sync = tag;
        self
    }
}

impl fmt::Display for AccessDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} of {} ({})",
            self.order,
            match self.dir {
                Dir::Read => "read",
                Dir::Write => "write",
            },
            self.region,
            self.channel,
        )?;
        if !self.sync.is_empty() {
            write!(f, " [sync:{}]", self.sync)?;
        }
        Ok(())
    }
}

/// The declared access plan of one operation code: what the host-side phase
/// may touch and what the NMP-side executor may touch.
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// Operation code (the publication-list `OpCode` byte).
    pub code: u8,
    /// Human-readable operation name for reports.
    pub name: &'static str,
    /// Declarations for host threads running this operation.
    pub host: Vec<AccessDecl>,
    /// Declarations for the NMP core executing this operation.
    pub nmp: Vec<AccessDecl>,
}

impl OpSpec {
    /// Start an empty plan for operation `code` named `name`.
    pub fn new(code: u8, name: &'static str) -> Self {
        OpSpec { code, name, host: Vec::new(), nmp: Vec::new() }
    }

    /// Add a host-side declaration.
    pub fn host(mut self, d: AccessDecl) -> Self {
        self.host.push(d);
        self
    }

    /// Add several host-side declarations.
    pub fn host_all(mut self, ds: &[AccessDecl]) -> Self {
        self.host.extend_from_slice(ds);
        self
    }

    /// Add an NMP-side declaration.
    pub fn nmp(mut self, d: AccessDecl) -> Self {
        self.nmp.push(d);
        self
    }

    /// Add several NMP-side declarations.
    pub fn nmp_all(mut self, ds: &[AccessDecl]) -> Self {
        self.nmp.extend_from_slice(ds);
        self
    }

    fn decls(&self, class: ThreadClass) -> &[AccessDecl] {
        match class {
            ThreadClass::Host => &self.host,
            ThreadClass::Nmp => &self.nmp,
        }
    }
}

/// The complete declared memory-effect specification of one structure.
#[derive(Debug, Clone, Default)]
pub struct EffectSpec {
    /// Structure name for reports ("hybrid-btree", ...).
    pub structure: &'static str,
    /// Per-operation plans, keyed by `OpSpec::code`.
    pub ops: Vec<OpSpec>,
}

impl EffectSpec {
    /// Start an empty spec for `structure`.
    pub fn new(structure: &'static str) -> Self {
        EffectSpec { structure, ops: Vec::new() }
    }

    /// Add one operation's plan.
    pub fn op(mut self, op: OpSpec) -> Self {
        self.ops.push(op);
        self
    }

    /// The plan for operation `code`, if declared.
    pub fn op_spec(&self, code: u8) -> Option<&OpSpec> {
        self.ops.iter().find(|o| o.code == code)
    }

    /// Merge `other` into `self` (host/NMP halves of one structure declared
    /// separately): plans for the same code are unioned.
    pub fn merged(mut self, other: EffectSpec) -> Self {
        if self.structure.is_empty() {
            self.structure = other.structure;
        }
        for op in other.ops {
            if let Some(mine) = self.ops.iter_mut().find(|o| o.code == op.code) {
                for d in op.host {
                    if !mine.host.contains(&d) {
                        mine.host.push(d);
                    }
                }
                for d in op.nmp {
                    if !mine.nmp.contains(&d) {
                        mine.nmp.push(d);
                    }
                }
            } else {
                self.ops.push(op);
            }
        }
        self
    }

    /// Iterate every declaration of `class` across all operations.
    pub fn all_decls(&self, class: ThreadClass) -> impl Iterator<Item = &AccessDecl> {
        self.ops.iter().flat_map(move |o| o.decls(class).iter())
    }
}

/// Machine shape a spec is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of NMP partitions (and NMP cores).
    pub parts: usize,
    /// Number of host cores.
    pub host_cores: usize,
}

/// One static spec-verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec declares no operations at all.
    EmptySpec {
        /// Offending structure.
        structure: &'static str,
    },
    /// Two `OpSpec`s carry the same operation code.
    DuplicateOp {
        /// Offending structure.
        structure: &'static str,
        /// The duplicated code.
        code: u8,
    },
    /// A host-side declaration names a partition data region: the host may
    /// never touch NMP-owned memory, not even by declaration.
    HostPartAccess {
        /// Offending structure.
        structure: &'static str,
        /// Operation whose plan is invalid.
        op: &'static str,
        /// The offending declaration.
        decl: AccessDecl,
    },
    /// A declaration names a foreign partition or scratchpad.
    ForeignAccess {
        /// Offending structure.
        structure: &'static str,
        /// Operation whose plan is invalid.
        op: &'static str,
        /// Which side declared it.
        class: ThreadClass,
        /// The offending declaration.
        decl: AccessDecl,
    },
    /// The declaration's channel is impossible for its (thread, region)
    /// pair: host↔scratchpad must be MMIO; host↔host-mem and everything
    /// NMP-side must not be.
    ChannelMismatch {
        /// Offending structure.
        structure: &'static str,
        /// Operation whose plan is invalid.
        op: &'static str,
        /// Which side declared it.
        class: ThreadClass,
        /// The offending declaration.
        decl: AccessDecl,
    },
    /// A release-store declaration has no matching acquire-load (or CAS) on
    /// the reader's side of its cell — the publication would never be
    /// safely observed.
    UnpairedRelease {
        /// Offending structure.
        structure: &'static str,
        /// Operation whose plan is invalid.
        op: &'static str,
        /// Which side declared the release.
        class: ThreadClass,
        /// The offending declaration.
        decl: AccessDecl,
    },
    /// An acquire-load declaration has no matching release-store (or CAS)
    /// on the writer's side of its cell — it would never observe a
    /// publication.
    UnpairedAcquire {
        /// Offending structure.
        structure: &'static str,
        /// Operation whose plan is invalid.
        op: &'static str,
        /// Which side declared the acquire.
        class: ThreadClass,
        /// The offending declaration.
        decl: AccessDecl,
    },
    /// The topology cannot host the structure (no partitions for a spec
    /// that declares partition or scratchpad work).
    NoPartitions {
        /// Offending structure.
        structure: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptySpec { structure } => {
                write!(f, "{structure}: spec declares no operations")
            }
            SpecError::DuplicateOp { structure, code } => {
                write!(f, "{structure}: duplicate op code {code}")
            }
            SpecError::HostPartAccess { structure, op, decl } => {
                write!(
                    f,
                    "{structure}/{op}: host-side declaration touches an NMP partition: {decl}"
                )
            }
            SpecError::ForeignAccess { structure, op, class, decl } => {
                write!(
                    f,
                    "{structure}/{op}: {class}-side declaration touches a foreign region: {decl}"
                )
            }
            SpecError::ChannelMismatch { structure, op, class, decl } => {
                write!(
                    f,
                    "{structure}/{op}: {class}-side declaration uses the wrong channel: {decl}"
                )
            }
            SpecError::UnpairedRelease { structure, op, class, decl } => {
                write!(
                    f,
                    "{structure}/{op}: {class}-side release has no matching acquire on the reader side: {decl}"
                )
            }
            SpecError::UnpairedAcquire { structure, op, class, decl } => {
                write!(
                    f,
                    "{structure}/{op}: {class}-side acquire has no matching release on the writer side: {decl}"
                )
            }
            SpecError::NoPartitions { structure } => {
                write!(f, "{structure}: spec declares partition/scratchpad work but topology has no partitions")
            }
        }
    }
}

/// Which thread classes can legally read (or write) region `r`, given the
/// declarer's class. For scratchpads the interesting counterpart is the
/// *opposite* side of the MMIO channel; host memory and partitions are
/// single-class regions.
fn counterpart_classes(class: ThreadClass, region: RegionClass) -> &'static [ThreadClass] {
    match region {
        RegionClass::Host => &[ThreadClass::Host],
        RegionClass::Part => &[ThreadClass::Nmp],
        RegionClass::Spad => match class {
            ThreadClass::Host => &[ThreadClass::Nmp],
            ThreadClass::Nmp => &[ThreadClass::Host],
        },
        RegionClass::Foreign => &[],
    }
}

fn pairing_exists(
    spec: &EffectSpec,
    classes: &[ThreadClass],
    region: RegionClass,
    tag: &str,
    want: OrderClass,
) -> bool {
    classes.iter().any(|&c| {
        spec.all_decls(c).any(|d| {
            d.region == region && d.sync == tag && (d.order == want || d.order == OrderClass::Cas)
        })
    })
}

/// Statically verify one spec against `topo`. Returns every failure, not
/// just the first. Runs zero simulation cycles — this is pure plan
/// inspection, usable before a machine even exists.
pub fn verify_spec(spec: &EffectSpec, topo: Topology) -> Vec<SpecError> {
    let mut errs = Vec::new();
    let s = spec.structure;
    if spec.ops.is_empty() {
        errs.push(SpecError::EmptySpec { structure: s });
        return errs;
    }
    for (i, op) in spec.ops.iter().enumerate() {
        if spec.ops[..i].iter().any(|o| o.code == op.code) {
            errs.push(SpecError::DuplicateOp { structure: s, code: op.code });
        }
    }
    let mut needs_parts = false;
    for op in &spec.ops {
        for class in [ThreadClass::Host, ThreadClass::Nmp] {
            for d in op.decls(class) {
                match (class, d.region) {
                    (_, RegionClass::Foreign) => {
                        errs.push(SpecError::ForeignAccess {
                            structure: s,
                            op: op.name,
                            class,
                            decl: *d,
                        });
                        continue;
                    }
                    (ThreadClass::Host, RegionClass::Part) => {
                        errs.push(SpecError::HostPartAccess {
                            structure: s,
                            op: op.name,
                            decl: *d,
                        });
                        continue;
                    }
                    (ThreadClass::Nmp, RegionClass::Host) => {
                        // NMP cores cannot reach host main memory at all.
                        errs.push(SpecError::ForeignAccess {
                            structure: s,
                            op: op.name,
                            class,
                            decl: *d,
                        });
                        continue;
                    }
                    _ => {}
                }
                if matches!(d.region, RegionClass::Part | RegionClass::Spad) {
                    needs_parts = true;
                }
                // Channel discipline (untimed accesses travel no channel).
                if d.channel != Channel::Untimed {
                    let want_mmio = class == ThreadClass::Host && d.region == RegionClass::Spad;
                    if want_mmio != (d.channel == Channel::Mmio) {
                        errs.push(SpecError::ChannelMismatch {
                            structure: s,
                            op: op.name,
                            class,
                            decl: *d,
                        });
                    }
                }
            }
        }
    }
    // Release/acquire pairing across the whole spec. Partition regions are
    // single-core (one NMP core per partition): ordering annotations there
    // are same-thread no-ops, so pairing is not demanded.
    for op in &spec.ops {
        for class in [ThreadClass::Host, ThreadClass::Nmp] {
            for d in op.decls(class) {
                if d.region != RegionClass::Host && d.region != RegionClass::Spad {
                    continue;
                }
                let readers = counterpart_classes(class, d.region);
                match d.order {
                    OrderClass::Release
                        if !pairing_exists(
                            spec,
                            readers,
                            d.region,
                            d.sync,
                            OrderClass::Acquire,
                        ) =>
                    {
                        errs.push(SpecError::UnpairedRelease {
                            structure: s,
                            op: op.name,
                            class,
                            decl: *d,
                        });
                    }
                    OrderClass::Acquire
                        if !pairing_exists(
                            spec,
                            readers,
                            d.region,
                            d.sync,
                            OrderClass::Release,
                        ) =>
                    {
                        errs.push(SpecError::UnpairedAcquire {
                            structure: s,
                            op: op.name,
                            class,
                            decl: *d,
                        });
                    }
                    _ => {}
                }
            }
        }
    }
    if needs_parts && topo.parts == 0 {
        errs.push(SpecError::NoPartitions { structure: s });
    }
    errs.dedup();
    errs
}

/// Verify several specs; returns all failures across all of them.
pub fn verify_specs(specs: &[&EffectSpec], topo: Topology) -> Vec<SpecError> {
    specs.iter().flat_map(|s| verify_spec(s, topo)).collect()
}

/// Verify `spec` against `topo` and panic with a full listing on failure.
/// The panic happens at registration time — before any simulation runs.
pub fn assert_verified(spec: &EffectSpec, topo: Topology) {
    let errs = verify_spec(spec, topo);
    if !errs.is_empty() {
        let mut msg = format!("effect spec for '{}' failed static verification:\n", spec.structure);
        for e in &errs {
            msg.push_str(&format!("  {e}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use RegionClass as R;

    const TOPO: Topology = Topology { parts: 4, host_cores: 4 };

    fn publist_like() -> EffectSpec {
        EffectSpec::new("fixture").op(OpSpec::new(0, "Read")
            .host(AccessDecl::write(R::Spad).mmio())
            .host(AccessDecl::write(R::Spad).mmio().release().sync("ctrl"))
            .host(AccessDecl::read(R::Spad).mmio().acquire().sync("ctrl"))
            .host(AccessDecl::read(R::Spad).mmio())
            .nmp(AccessDecl::read(R::Spad).acquire().sync("ctrl"))
            .nmp(AccessDecl::read(R::Spad))
            .nmp(AccessDecl::write(R::Spad))
            .nmp(AccessDecl::write(R::Spad).release().sync("ctrl"))
            .nmp(AccessDecl::read(R::Part)))
    }

    #[test]
    fn valid_protocol_spec_passes() {
        assert_eq!(verify_spec(&publist_like(), TOPO), vec![]);
    }

    #[test]
    fn host_part_access_rejected() {
        let spec =
            EffectSpec::new("bad").op(OpSpec::new(0, "Read").host(AccessDecl::write(R::Part)));
        let errs = verify_spec(&spec, TOPO);
        assert!(errs.iter().any(|e| matches!(e, SpecError::HostPartAccess { .. })), "{errs:?}");
    }

    #[test]
    fn foreign_access_rejected() {
        let spec =
            EffectSpec::new("bad").op(OpSpec::new(0, "Read").nmp(AccessDecl::read(R::Foreign)));
        let errs = verify_spec(&spec, TOPO);
        assert!(errs.iter().any(|e| matches!(e, SpecError::ForeignAccess { .. })), "{errs:?}");
    }

    #[test]
    fn nmp_host_region_rejected() {
        let spec = EffectSpec::new("bad").op(OpSpec::new(0, "Read").nmp(AccessDecl::read(R::Host)));
        let errs = verify_spec(&spec, TOPO);
        assert!(errs.iter().any(|e| matches!(e, SpecError::ForeignAccess { .. })), "{errs:?}");
    }

    #[test]
    fn unpaired_release_rejected() {
        let mut spec = publist_like();
        // Drop the NMP acquire of the ctrl word: the host release is torn.
        spec.ops[0].nmp.retain(|d| !(d.order == OrderClass::Acquire && d.sync == "ctrl"));
        let errs = verify_spec(&spec, TOPO);
        assert!(errs.iter().any(|e| matches!(e, SpecError::UnpairedRelease { .. })), "{errs:?}");
    }

    #[test]
    fn unpaired_acquire_rejected() {
        let mut spec = publist_like();
        // Drop the NMP release of the ctrl word: the host poll never fires.
        spec.ops[0].nmp.retain(|d| !(d.order == OrderClass::Release && d.sync == "ctrl"));
        let errs = verify_spec(&spec, TOPO);
        assert!(errs.iter().any(|e| matches!(e, SpecError::UnpairedAcquire { .. })), "{errs:?}");
    }

    #[test]
    fn channel_mismatch_rejected() {
        // Host touching a scratchpad without MMIO, and MMIO to host memory.
        let spec = EffectSpec::new("bad").op(OpSpec::new(0, "Read")
            .host(AccessDecl::read(R::Spad))
            .host(AccessDecl::read(R::Host).mmio()));
        let errs = verify_spec(&spec, TOPO);
        assert_eq!(
            errs.iter().filter(|e| matches!(e, SpecError::ChannelMismatch { .. })).count(),
            2,
            "{errs:?}"
        );
    }

    #[test]
    fn cas_satisfies_both_pairings() {
        // Host-memory cell synchronized by CAS alone (lock-free list style):
        // a plain-read + CAS spec needs no explicit acquire/release.
        let spec = EffectSpec::new("lockfree").op(OpSpec::new(0, "Insert")
            .host(AccessDecl::read(R::Host))
            .host(AccessDecl::write(R::Host).cas())
            .host(AccessDecl::write(R::Host).release()));
        assert_eq!(verify_spec(&spec, TOPO), vec![]);
    }

    #[test]
    fn duplicate_and_empty_rejected() {
        let empty = EffectSpec::new("empty");
        assert!(matches!(verify_spec(&empty, TOPO)[0], SpecError::EmptySpec { .. }));
        let dup = EffectSpec::new("dup")
            .op(OpSpec::new(1, "A").host(AccessDecl::read(R::Host)))
            .op(OpSpec::new(1, "B").host(AccessDecl::read(R::Host)));
        assert!(verify_spec(&dup, TOPO)
            .iter()
            .any(|e| matches!(e, SpecError::DuplicateOp { code: 1, .. })));
    }

    #[test]
    fn no_partitions_rejected() {
        let spec = publist_like();
        let errs = verify_spec(&spec, Topology { parts: 0, host_cores: 1 });
        assert!(errs.iter().any(|e| matches!(e, SpecError::NoPartitions { .. })), "{errs:?}");
    }

    #[test]
    fn merged_unions_by_code() {
        let host_half =
            EffectSpec::new("s").op(OpSpec::new(0, "Read").host(AccessDecl::read(R::Host)));
        let nmp_half = EffectSpec::new("s")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(R::Part)))
            .op(OpSpec::new(2, "Insert").nmp(AccessDecl::write(R::Part)));
        let m = host_half.merged(nmp_half);
        assert_eq!(m.ops.len(), 2);
        let read = m.op_spec(0).unwrap();
        assert_eq!(read.host.len(), 1);
        assert_eq!(read.nmp.len(), 1);
    }
}
