//! Operation-history recording and linearizability checking.
//!
//! Drivers record every *completed* index operation — kind, key, result,
//! and the simulated invocation/response timestamps — into a
//! [`HistoryRecorder`]. [`HistoryRecorder::check_linearizable`] then
//! verifies the concurrent history against a sequential map oracle: is
//! there a total order of the operations, consistent with real time
//! (an operation that responded before another was invoked must come
//! first), under which every result matches what a sequential map would
//! have returned?
//!
//! Because every recorded operation touches a single key and the map
//! specification is independent per key, the history is linearizable iff
//! each per-key subhistory is; the checker decomposes by key and runs the
//! Wing & Gong backtracking search per key with memoization on
//! (completed-set, map state). Range scans are *not* recorded — their
//! footprint spans keys, which breaks the per-key decomposition — so scan
//! consistency must be checked by other means.

use std::collections::{HashMap, HashSet};
use std::fmt;

use parking_lot::Mutex;

/// The operation kinds the checker models (single-key map operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistOp {
    /// Lookup: `ok` means found, `value` the value read.
    Read,
    /// Insert-if-absent: `ok` means the key was absent and is now bound to
    /// `value`.
    Insert,
    /// Remove: `ok` means the key was present.
    Remove,
    /// Update-if-present: `ok` means the key was present and is now bound
    /// to `value`.
    Update,
}

/// One completed operation.
#[derive(Debug, Clone, Copy)]
pub struct HistEvent {
    /// Issuing logical thread id.
    pub thread: usize,
    /// Operation kind.
    pub op: HistOp,
    /// Key operated on.
    pub key: u32,
    /// Success bit as reported by the structure.
    pub ok: bool,
    /// Value read (reads) or written (inserts/updates).
    pub value: u32,
    /// Simulated invocation time.
    pub inv: u64,
    /// Simulated response time.
    pub resp: u64,
}

/// A witness that the recorded history is not linearizable.
#[derive(Debug, Clone)]
pub struct LinearizabilityError {
    /// The key whose subhistory admits no valid linearization.
    pub key: u32,
    /// That key's complete subhistory, sorted by invocation time.
    pub events: Vec<HistEvent>,
}

impl fmt::Display for LinearizabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "history for key {} is not linearizable ({} events):",
            self.key,
            self.events.len()
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  t{} {:?} -> ok={} value={} [{}..{}]",
                e.thread, e.op, e.ok, e.value, e.inv, e.resp
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for LinearizabilityError {}

/// Thread-safe collector of completed operations.
#[derive(Default)]
pub struct HistoryRecorder {
    events: Mutex<Vec<HistEvent>>,
}

impl HistoryRecorder {
    /// New, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one completed operation.
    pub fn record(&self, ev: HistEvent) {
        debug_assert!(ev.inv <= ev.resp, "response before invocation");
        self.events.lock().push(ev);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// A copy of all recorded events.
    pub fn events(&self) -> Vec<HistEvent> {
        self.events.lock().clone()
    }

    /// Check the recorded history against a sequential map oracle.
    /// `initial` gives the pre-simulation binding of each key (the
    /// structure's contents before the recorded operations started).
    pub fn check_linearizable(
        &self,
        initial: impl Fn(u32) -> Option<u32>,
    ) -> Result<(), LinearizabilityError> {
        let mut by_key: HashMap<u32, Vec<HistEvent>> = HashMap::new();
        for ev in self.events.lock().iter() {
            by_key.entry(ev.key).or_default().push(*ev);
        }
        for (key, mut events) in by_key {
            events.sort_by_key(|e| (e.inv, e.resp, e.thread));
            if !linearize_key(&events, initial(key)) {
                return Err(LinearizabilityError { key, events });
            }
        }
        Ok(())
    }
}

/// Apply `ev` to the sequential map state for its key; `None` means the
/// observed result is impossible from this state.
fn apply(ev: &HistEvent, state: Option<u32>) -> Option<Option<u32>> {
    match (ev.op, ev.ok) {
        (HistOp::Read, true) => (state == Some(ev.value)).then_some(state),
        (HistOp::Read, false) => state.is_none().then_some(state),
        (HistOp::Insert, true) => state.is_none().then_some(Some(ev.value)),
        (HistOp::Insert, false) => state.is_some().then_some(state),
        (HistOp::Remove, true) => state.is_some().then_some(None),
        (HistOp::Remove, false) => state.is_none().then_some(state),
        (HistOp::Update, true) => state.is_some().then_some(Some(ev.value)),
        (HistOp::Update, false) => state.is_none().then_some(state),
    }
}

/// Wing & Gong search over one key's subhistory: repeatedly pick a
/// minimal pending operation (one invoked no later than every pending
/// response) whose result is explainable from the current state.
fn linearize_key(events: &[HistEvent], initial: Option<u32>) -> bool {
    let n = events.len();
    let mut done = vec![false; n];
    let mut seen: HashSet<(Vec<u64>, Option<u32>)> = HashSet::new();
    search(events, &mut done, 0, initial, &mut seen)
}

fn pack(done: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; done.len().div_ceil(64)];
    for (i, &d) in done.iter().enumerate() {
        if d {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

fn search(
    events: &[HistEvent],
    done: &mut [bool],
    ndone: usize,
    state: Option<u32>,
    seen: &mut HashSet<(Vec<u64>, Option<u32>)>,
) -> bool {
    if ndone == events.len() {
        return true;
    }
    let min_resp = events
        .iter()
        .zip(done.iter())
        .filter(|(_, d)| !**d)
        .map(|(e, _)| e.resp)
        .min()
        .expect("pending events exist");
    for i in 0..events.len() {
        if done[i] || events[i].inv > min_resp {
            continue;
        }
        let Some(next) = apply(&events[i], state) else { continue };
        done[i] = true;
        if seen.insert((pack(done), next)) && search(events, done, ndone + 1, next, seen) {
            return true;
        }
        done[i] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        thread: usize,
        op: HistOp,
        key: u32,
        ok: bool,
        value: u32,
        inv: u64,
        resp: u64,
    ) -> HistEvent {
        HistEvent { thread, op, key, ok, value, inv, resp }
    }

    #[test]
    fn sequential_history_linearizes() {
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Insert, 1, true, 10, 0, 5));
        h.record(ev(0, HistOp::Read, 1, true, 10, 6, 9));
        h.record(ev(0, HistOp::Remove, 1, true, 0, 10, 15));
        h.record(ev(0, HistOp::Read, 1, false, 0, 16, 20));
        assert!(h.check_linearizable(|_| None).is_ok());
    }

    #[test]
    fn respects_initial_contents() {
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Read, 7, true, 42, 0, 5));
        assert!(h.check_linearizable(|k| (k == 7).then_some(42)).is_ok());
        assert!(h.check_linearizable(|_| None).is_err());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // Read overlaps the insert: it may linearize before it (miss) even
        // though its response comes later.
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Insert, 1, true, 10, 0, 100));
        h.record(ev(1, HistOp::Read, 1, false, 0, 50, 120));
        assert!(h.check_linearizable(|_| None).is_ok());
    }

    #[test]
    fn non_overlapping_ops_must_not_reorder() {
        // Read begins strictly after the insert responded, yet misses.
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Insert, 1, true, 10, 0, 20));
        h.record(ev(1, HistOp::Read, 1, false, 0, 30, 40));
        let err = h.check_linearizable(|_| None).unwrap_err();
        assert_eq!(err.key, 1);
        assert_eq!(err.events.len(), 2);
    }

    #[test]
    fn stale_read_after_update_rejected() {
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Update, 3, true, 9, 0, 10));
        h.record(ev(1, HistOp::Read, 3, true, 5, 20, 30)); // old value
        assert!(h.check_linearizable(|k| (k == 3).then_some(5)).is_err());
    }

    #[test]
    fn duplicate_insert_needs_a_winner() {
        // Two overlapping inserts both claiming success is impossible.
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Insert, 1, true, 1, 0, 100));
        h.record(ev(1, HistOp::Insert, 1, true, 2, 0, 100));
        assert!(h.check_linearizable(|_| None).is_err());
        // One success + one duplicate failure is fine.
        let h2 = HistoryRecorder::new();
        h2.record(ev(0, HistOp::Insert, 1, true, 1, 0, 100));
        h2.record(ev(1, HistOp::Insert, 1, false, 2, 0, 100));
        assert!(h2.check_linearizable(|_| None).is_ok());
    }

    #[test]
    fn concurrent_update_read_any_order() {
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Update, 1, true, 8, 0, 100));
        h.record(ev(1, HistOp::Read, 1, true, 3, 10, 90)); // old value: ok, overlaps
        h.record(ev(2, HistOp::Read, 1, true, 8, 110, 120)); // new value after
        assert!(h.check_linearizable(|k| (k == 1).then_some(3)).is_ok());
    }

    #[test]
    fn keys_check_independently() {
        let h = HistoryRecorder::new();
        h.record(ev(0, HistOp::Insert, 1, true, 1, 0, 10));
        h.record(ev(1, HistOp::Insert, 2, true, 2, 0, 10));
        h.record(ev(0, HistOp::Read, 2, true, 2, 20, 30));
        h.record(ev(1, HistOp::Read, 1, true, 1, 20, 30));
        assert!(h.check_linearizable(|_| None).is_ok());
    }

    #[test]
    fn deep_contended_history_terminates() {
        // Many overlapping successful updates + consistent final reads:
        // exercises the memoized search on a wide window.
        let h = HistoryRecorder::new();
        for t in 0..12usize {
            h.record(ev(t, HistOp::Update, 1, true, t as u32, 0, 1000));
        }
        h.record(ev(12, HistOp::Read, 1, true, 11, 2000, 2100));
        assert!(h.check_linearizable(|k| (k == 1).then_some(99)).is_ok());
    }
}
