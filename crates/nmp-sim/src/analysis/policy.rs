//! Region-policy lint: which processor may touch which [`Region`].
//!
//! The HybriDS machine model (§2 of the paper) partitions physical memory:
//! host cores may only touch host main memory directly and reach
//! scratchpads exclusively through MMIO; NMP core `p` may only touch its
//! own partition and its own scratchpad. Without an attached
//! [`super::Analysis`] the memory system enforces this by panicking; with
//! one attached, violations are recorded here instead so negative fixtures
//! (and future structure bugs) surface as a report, not an abort.

use std::fmt;

use crate::engine::ThreadKind;
use crate::mem::{Addr, Region};

/// At most this many distinct violations are stored (the total count keeps
/// counting past the cap).
pub const MAX_STORED_VIOLATIONS: usize = 64;

/// Which architectural rule an access broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyRule {
    /// A host thread directly touched an NMP partition.
    HostTouchedPartition,
    /// A host thread touched a scratchpad without going through MMIO.
    HostDirectScratchpad,
    /// An NMP core touched a foreign partition, foreign scratchpad, or
    /// host main memory.
    NmpTouchedForeign,
    /// An MMIO access targeted a non-scratchpad region.
    MmioToNonScratchpad,
}

impl fmt::Display for PolicyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PolicyRule::HostTouchedPartition => "host touched an NMP partition",
            PolicyRule::HostDirectScratchpad => "host touched a scratchpad without MMIO",
            PolicyRule::NmpTouchedForeign => "NMP core touched a foreign region",
            PolicyRule::MmioToNonScratchpad => "MMIO to a non-scratchpad region",
        })
    }
}

/// One recorded region-policy violation.
#[derive(Debug, Clone)]
pub struct PolicyViolation {
    /// Logical thread name.
    pub thread: String,
    /// Host core or NMP core identity of the thread.
    pub thread_kind: ThreadKind,
    /// The offending simulated address.
    pub addr: Addr,
    /// The region that address falls in.
    pub region: Region,
    /// Whether the access was a store.
    pub is_write: bool,
    /// Whether the access went through the MMIO path.
    pub mmio: bool,
    /// Which rule was broken.
    pub rule: PolicyRule,
    /// Source file of the access.
    pub file: &'static str,
    /// Source line of the access.
    pub line: u32,
    /// Source column of the access.
    pub column: u32,
    /// Simulated issue time of the access, in cycles.
    pub at: u64,
}

impl fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}{} of {:#x} ({:?}) by '{}' ({:?}) at {}:{}:{} (cycle {})",
            self.rule,
            if self.mmio { "MMIO " } else { "" },
            if self.is_write { "write" } else { "read" },
            self.addr,
            self.region,
            self.thread,
            self.thread_kind,
            self.file,
            self.line,
            self.column,
            self.at,
        )
    }
}

/// Classify an access against the region policy. `None` means allowed.
pub fn classify(kind: ThreadKind, region: Region, mmio: bool) -> Option<PolicyRule> {
    if mmio {
        return match region {
            Region::Spad(_) => None,
            _ => Some(PolicyRule::MmioToNonScratchpad),
        };
    }
    match (kind, region) {
        (ThreadKind::Host { .. }, Region::Host) => None,
        (ThreadKind::Host { .. }, Region::Part(_)) => Some(PolicyRule::HostTouchedPartition),
        (ThreadKind::Host { .. }, Region::Spad(_)) => Some(PolicyRule::HostDirectScratchpad),
        (ThreadKind::Nmp { part }, Region::Part(p))
        | (ThreadKind::Nmp { part }, Region::Spad(p)) => {
            (p != part).then_some(PolicyRule::NmpTouchedForeign)
        }
        (ThreadKind::Nmp { .. }, Region::Host) => Some(PolicyRule::NmpTouchedForeign),
    }
}

pub(crate) struct PolicyChecker {
    violations: Vec<PolicyViolation>,
    seen: Vec<(&'static str, u32, u32, PolicyRule)>,
    total: u64,
}

impl PolicyChecker {
    pub(crate) fn new() -> Self {
        PolicyChecker { violations: Vec::new(), seen: Vec::new(), total: 0 }
    }

    pub(crate) fn record(&mut self, v: PolicyViolation) {
        self.total += 1;
        let key = (v.file, v.line, v.column, v.rule);
        if self.seen.contains(&key) || self.violations.len() >= MAX_STORED_VIOLATIONS {
            return;
        }
        self.seen.push(key);
        self.violations.push(v);
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    pub(crate) fn violations(&self) -> &[PolicyViolation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_rules() {
        let host = ThreadKind::Host { core: 0 };
        assert_eq!(classify(host, Region::Host, false), None);
        assert_eq!(classify(host, Region::Part(1), false), Some(PolicyRule::HostTouchedPartition));
        assert_eq!(classify(host, Region::Spad(0), false), Some(PolicyRule::HostDirectScratchpad));
        assert_eq!(classify(host, Region::Spad(0), true), None);
        assert_eq!(classify(host, Region::Host, true), Some(PolicyRule::MmioToNonScratchpad));
        assert_eq!(classify(host, Region::Part(0), true), Some(PolicyRule::MmioToNonScratchpad));
    }

    #[test]
    fn nmp_rules() {
        let nmp = ThreadKind::Nmp { part: 1 };
        assert_eq!(classify(nmp, Region::Part(1), false), None);
        assert_eq!(classify(nmp, Region::Spad(1), false), None);
        assert_eq!(classify(nmp, Region::Part(0), false), Some(PolicyRule::NmpTouchedForeign));
        assert_eq!(classify(nmp, Region::Spad(2), false), Some(PolicyRule::NmpTouchedForeign));
        assert_eq!(classify(nmp, Region::Host, false), Some(PolicyRule::NmpTouchedForeign));
    }

    #[test]
    fn dedup_keeps_counting() {
        let mut c = PolicyChecker::new();
        let v = PolicyViolation {
            thread: "h0".into(),
            thread_kind: ThreadKind::Host { core: 0 },
            addr: 0x100,
            region: Region::Part(0),
            is_write: false,
            mmio: false,
            rule: PolicyRule::HostTouchedPartition,
            file: "x.rs",
            line: 1,
            column: 1,
            at: 10,
        };
        c.record(v.clone());
        c.record(v);
        assert_eq!(c.total(), 2);
        assert_eq!(c.violations().len(), 1);
    }
}
