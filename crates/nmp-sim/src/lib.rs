//! # nmp-sim — a deterministic near-memory-processing architecture simulator
//!
//! This crate is the evaluation substrate for the HybriDS reproduction: a
//! cycle-approximate model of the machine in Table 1 of *HybriDS:
//! Cache-Conscious Concurrent Data Structures for Near-Memory Processing
//! Architectures* (SPAA '22):
//!
//! * 8 host cores with private L1 caches and a shared L2 (the LLC),
//! * an HMC-style memory device with 16 vaults (8 host main-memory vaults,
//!   8 NMP vaults) and per-bank open-row DRAM timing,
//! * one in-order, cache-less NMP core per NMP vault, equipped with a single
//!   node-size register buffer and a scratchpad that is memory-mapped into
//!   the host address space (the publication-list channel),
//! * a deterministic discrete-event engine that interleaves logical host /
//!   NMP threads at memory-access granularity.
//!
//! See `DESIGN.md` at the repository root for the fidelity argument and the
//! list of deliberate simplifications relative to gem5/SMCSim.
//!
//! ## The `analysis` feature
//!
//! With the `analysis` cargo feature (on by default; disable with
//! `default-features = false` for release benchmarking), the crate ships
//! three engine-integrated correctness checkers in the [`analysis`] module:
//!
//! * a vector-clock happens-before **race detector** over simulated
//!   addresses, where simulated CAS and acquire/release-annotated accesses
//!   are the synchronization operations,
//! * a **region-policy lint** that records (instead of panicking on) host
//!   accesses to NMP partitions, NMP accesses to foreign regions, and
//!   non-MMIO scratchpad accesses,
//! * a **linearizability checker** over recorded operation histories,
//!   verified against a sequential map oracle.
//!
//! The checkers are opt-in at runtime: call [`Machine::attach_analysis`]
//! before running simulations, then inspect [`analysis::Report`] (or the
//! `races_detected` / `policy_violations` counters in a
//! [`StatsSnapshot`]). When nothing is attached the per-access overhead is
//! a single atomic load, and benchmarks simply never attach.
//!
//! ## The `trace` feature
//!
//! With the `trace` cargo feature (also on by default), the [`trace`] module
//! provides a cycle-level event tracer: op-lifecycle spans (host phase, MMIO
//! post, combiner batch, NMP execution, response drain, retries), DRAM vault
//! occupancy events, per-op-kind latency histograms, and a Perfetto /
//! Chrome-trace JSON exporter ([`trace::TraceSink::chrome_json`]). Like
//! `analysis` it is opt-in at runtime ([`Machine::attach_tracer`]) and
//! untimed: attaching a tracer never changes simulated cycle counts, and the
//! exported trace is byte-identical across runs of the same seed/config.
//! Feature matrix: `analysis` and `trace` are independent — each adds its
//! own `OnceLock` hook on [`MemorySystem`]; any of the four combinations
//! builds and runs, with identical simulated timing in all of them.
//!
//! ## Quick tour
//!
//! ```
//! use nmp_sim::{Config, Machine, ThreadKind};
//!
//! let machine = Machine::new(Config::tiny());
//! let addr = machine.host_arena().alloc(8);
//! machine.ram().write_u64(addr, 1); // untimed population
//!
//! let mut sim = machine.simulation();
//! sim.spawn("host-0", ThreadKind::Host { core: 0 }, move |ctx| {
//!     let v = ctx.read_u64(addr); // timed: caches + DRAM model
//!     ctx.write_u64(addr, v + 1);
//! });
//! let outcome = sim.run();
//! assert_eq!(machine.ram().read_u64(addr), 2);
//! assert!(outcome.makespan() > 0);
//! ```
#![warn(missing_docs)]

pub mod alloc;
pub mod analysis;
pub mod backend;
pub mod cache;
pub mod config;
pub mod dram;
pub mod engine;
pub mod machine;
pub mod mem;
pub mod stats;
#[cfg(feature = "trace")]
pub mod trace;

pub use alloc::Arena;
pub use analysis::{AccessDecl, EffectSpec, OpSpec, SpecError, Topology};
#[cfg(feature = "analysis")]
pub use analysis::{Analysis, HistEvent, HistOp, HistoryRecorder, Report};
pub use backend::{BackendKind, MemBackend, NativeRam};
pub use config::{CacheConfig, Config, Policy};
pub use engine::{NativeRun, SimOutcome, Simulation, Spawner, ThreadCtx, ThreadFn, ThreadKind};
pub use machine::Machine;
pub use mem::{
    Addr, MemMap, MemorySystem, Region, SimRam, NULL, OFFLOAD_HIST_BUCKETS, OFFLOAD_LANE_CAP,
};
pub use stats::{CacheStats, OffloadStats, StatsSnapshot, VaultStats};
#[cfg(feature = "trace")]
pub use trace::{LatencyHist, TraceSink, Tracer};
