//! Region allocators for simulated memory.
//!
//! Each region (host heap, each NMP partition) gets an [`Arena`]: a bump
//! allocator with size-binned free lists. Allocation itself is untimed (the
//! cost that matters — initializing and later traversing node memory — is
//! charged when the structure reads/writes the node through the timed
//! access paths).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::mem::Addr;

struct ArenaInner {
    next: Addr,
    /// Free lists binned by exact (size_bytes, align) pairs. Structures
    /// allocate a small number of distinct shapes, so exact binning is both
    /// simple and fragmentation-free.
    free: HashMap<(u32, u32), Vec<Addr>>,
    live_bytes: u64,
    peak_bytes: u64,
    allocs: u64,
}

/// A bump allocator over `[base, end)` of simulated memory.
pub struct Arena {
    name: &'static str,
    base: Addr,
    end: Addr,
    inner: Mutex<ArenaInner>,
    /// When attached, [`Arena::free`] resets the race detector's per-cell
    /// state for the freed block, so freelist reuse does not manufacture
    /// false races between the block's old and new owners.
    #[cfg(feature = "analysis")]
    analysis: std::sync::OnceLock<std::sync::Arc<crate::analysis::Analysis>>,
}

impl Arena {
    /// Build an arena covering `[base, base + size)`; `name` labels
    /// out-of-memory panics.
    pub fn new(name: &'static str, base: Addr, size: u32) -> Self {
        assert_eq!(base % 8, 0, "arena base must be 8-aligned");
        Arena {
            name,
            base,
            end: base + size,
            inner: Mutex::new(ArenaInner {
                next: base,
                free: HashMap::new(),
                live_bytes: 0,
                peak_bytes: 0,
                allocs: 0,
            }),
            #[cfg(feature = "analysis")]
            analysis: std::sync::OnceLock::new(),
        }
    }

    /// Hook the attached correctness checkers into this arena's `free`
    /// path (first attach wins).
    #[cfg(feature = "analysis")]
    pub(crate) fn attach_analysis(&self, a: std::sync::Arc<crate::analysis::Analysis>) {
        let _ = self.analysis.set(a);
    }

    /// Allocate `bytes` with 8-byte alignment.
    pub fn alloc(&self, bytes: u32) -> Addr {
        self.alloc_aligned(bytes, 8)
    }

    /// Allocate `bytes` aligned to `align` (power of two, >= 8).
    /// Panics on exhaustion — simulated OOM is a configuration bug.
    pub fn alloc_aligned(&self, bytes: u32, align: u32) -> Addr {
        assert!(align.is_power_of_two() && align >= 8);
        assert!(bytes > 0);
        let bytes = bytes.div_ceil(8) * 8;
        let mut g = self.inner.lock();
        if let Some(list) = g.free.get_mut(&(bytes, align)) {
            if let Some(addr) = list.pop() {
                g.live_bytes += bytes as u64;
                g.peak_bytes = g.peak_bytes.max(g.live_bytes);
                g.allocs += 1;
                return addr;
            }
        }
        let addr = g.next.div_ceil(align) * align;
        let new_next = addr.saturating_add(bytes);
        assert!(
            new_next <= self.end,
            "simulated arena '{}' exhausted: capacity {} bytes, requested {} more \
             (raise the corresponding heap size in Config)",
            self.name,
            self.end - self.base,
            bytes
        );
        g.next = new_next;
        g.live_bytes += bytes as u64;
        g.peak_bytes = g.peak_bytes.max(g.live_bytes);
        g.allocs += 1;
        addr
    }

    /// Return a block to the arena. `bytes` and `align` must match the
    /// allocation. (Structures that rely on reading freed nodes for
    /// logical-deletion checks simply never call this — see DESIGN.md.)
    pub fn free(&self, addr: Addr, bytes: u32, align: u32) {
        let bytes = bytes.div_ceil(8) * 8;
        debug_assert!(addr >= self.base && addr + bytes <= self.end);
        debug_assert_eq!(addr % align, 0);
        #[cfg(feature = "analysis")]
        if let Some(a) = self.analysis.get() {
            a.reset_range(addr, bytes);
        }
        let mut g = self.inner.lock();
        g.live_bytes -= bytes as u64;
        g.free.entry((bytes, align)).or_default().push(addr);
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak_bytes
    }

    /// Total allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.inner.lock().allocs
    }

    /// Bytes remaining for fresh (non-freelist) allocation.
    pub fn remaining_bytes(&self) -> u32 {
        self.end - self.inner.lock().next
    }

    /// First address of the arena's range.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// One past the last address of the arena's range.
    pub fn end(&self) -> Addr {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotonic_and_disjoint() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc(24);
        let y = a.alloc(24);
        assert_eq!(x, 64);
        assert_eq!(y, 88);
    }

    #[test]
    fn rounds_to_words() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc(1);
        let y = a.alloc(1);
        assert_eq!(y - x, 8);
    }

    #[test]
    fn alignment_honored() {
        let a = Arena::new("t", 64, 65536);
        let _ = a.alloc(8);
        let x = a.alloc_aligned(128, 128);
        assert_eq!(x % 128, 0);
    }

    #[test]
    fn free_list_reuses_exact_shape() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc_aligned(128, 128);
        a.free(x, 128, 128);
        let y = a.alloc_aligned(128, 128);
        assert_eq!(x, y);
    }

    #[test]
    fn live_and_peak_tracking() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc(16);
        let _y = a.alloc(16);
        assert_eq!(a.live_bytes(), 32);
        a.free(x, 16, 8);
        assert_eq!(a.live_bytes(), 16);
        assert_eq!(a.peak_bytes(), 32);
        assert_eq!(a.alloc_count(), 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn oom_panics_with_arena_name() {
        let a = Arena::new("t", 64, 64);
        let _ = a.alloc(128);
    }

    #[test]
    fn remaining_shrinks() {
        let a = Arena::new("t", 64, 1024);
        let before = a.remaining_bytes();
        let _ = a.alloc(64);
        assert_eq!(a.remaining_bytes(), before - 64);
    }
}

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized tests (deterministic xorshift stand-in for the
    //! property tests the crate had when proptest was available).
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Live allocations never overlap and stay in-bounds.
    #[test]
    fn allocations_disjoint() {
        for seed in 1..=16u64 {
            let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15);
            let a = Arena::new("p", 64, 1 << 20);
            let mut spans: Vec<(u32, u32)> = Vec::new();
            let count = 1 + (xorshift(&mut rng) % 63) as usize;
            for _ in 0..count {
                let s = 1 + (xorshift(&mut rng) % 255) as u32;
                let addr = a.alloc(s);
                let len = s.div_ceil(8) * 8;
                assert!(addr >= 64 && addr + len <= a.end());
                for &(b, l) in &spans {
                    assert!(addr + len <= b || b + l <= addr, "overlap at seed {seed}");
                }
                spans.push((addr, len));
            }
        }
    }

    /// Free + realloc of the same shape never hands out overlapping
    /// blocks among live allocations.
    #[test]
    fn freelist_reuse_sound() {
        for seed in 1..=16u64 {
            let mut rng = seed.wrapping_mul(0xD1B54A32D192ED03);
            let a = Arena::new("p", 64, 1 << 20);
            let mut live: Vec<u32> = Vec::new();
            let count = 1 + (xorshift(&mut rng) % 199) as usize;
            for _ in 0..count {
                let free_one = xorshift(&mut rng) & 1 == 1;
                if free_one && !live.is_empty() {
                    let addr = live.swap_remove(live.len() / 2);
                    a.free(addr, 48, 8);
                } else {
                    let addr = a.alloc(48);
                    assert!(!live.contains(&addr), "duplicate live block at seed {seed}");
                    live.push(addr);
                }
            }
        }
    }
}
