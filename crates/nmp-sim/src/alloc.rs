//! Region allocators for simulated memory.
//!
//! Each region (host heap, each NMP partition) gets an [`Arena`]: a bump
//! allocator with size-binned free lists. Allocation itself is untimed (the
//! cost that matters — initializing and later traversing node memory — is
//! charged when the structure reads/writes the node through the timed
//! access paths).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::mem::Addr;

struct ArenaInner {
    next: Addr,
    /// Free lists binned by exact (size_bytes, align) pairs. Structures
    /// allocate a small number of distinct shapes, so exact binning is both
    /// simple and fragmentation-free.
    free: HashMap<(u32, u32), Vec<Addr>>,
    live_bytes: u64,
    peak_bytes: u64,
    allocs: u64,
}

/// A bump allocator over `[base, end)` of simulated memory.
pub struct Arena {
    name: &'static str,
    base: Addr,
    end: Addr,
    inner: Mutex<ArenaInner>,
}

impl Arena {
    pub fn new(name: &'static str, base: Addr, size: u32) -> Self {
        assert_eq!(base % 8, 0, "arena base must be 8-aligned");
        Arena {
            name,
            base,
            end: base + size,
            inner: Mutex::new(ArenaInner {
                next: base,
                free: HashMap::new(),
                live_bytes: 0,
                peak_bytes: 0,
                allocs: 0,
            }),
        }
    }

    /// Allocate `bytes` with 8-byte alignment.
    pub fn alloc(&self, bytes: u32) -> Addr {
        self.alloc_aligned(bytes, 8)
    }

    /// Allocate `bytes` aligned to `align` (power of two, >= 8).
    /// Panics on exhaustion — simulated OOM is a configuration bug.
    pub fn alloc_aligned(&self, bytes: u32, align: u32) -> Addr {
        assert!(align.is_power_of_two() && align >= 8);
        assert!(bytes > 0);
        let bytes = bytes.div_ceil(8) * 8;
        let mut g = self.inner.lock();
        if let Some(list) = g.free.get_mut(&(bytes, align)) {
            if let Some(addr) = list.pop() {
                g.live_bytes += bytes as u64;
                g.peak_bytes = g.peak_bytes.max(g.live_bytes);
                g.allocs += 1;
                return addr;
            }
        }
        let addr = g.next.div_ceil(align) * align;
        let new_next = addr.checked_add(bytes).unwrap_or(u32::MAX);
        assert!(
            new_next <= self.end,
            "simulated arena '{}' exhausted: capacity {} bytes, requested {} more \
             (raise the corresponding heap size in Config)",
            self.name,
            self.end - self.base,
            bytes
        );
        g.next = new_next;
        g.live_bytes += bytes as u64;
        g.peak_bytes = g.peak_bytes.max(g.live_bytes);
        g.allocs += 1;
        addr
    }

    /// Return a block to the arena. `bytes` and `align` must match the
    /// allocation. (Structures that rely on reading freed nodes for
    /// logical-deletion checks simply never call this — see DESIGN.md.)
    pub fn free(&self, addr: Addr, bytes: u32, align: u32) {
        let bytes = bytes.div_ceil(8) * 8;
        debug_assert!(addr >= self.base && addr + bytes <= self.end);
        debug_assert_eq!(addr % align, 0);
        let mut g = self.inner.lock();
        g.live_bytes -= bytes as u64;
        g.free.entry((bytes, align)).or_default().push(addr);
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak_bytes
    }

    /// Total allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.inner.lock().allocs
    }

    /// Bytes remaining for fresh (non-freelist) allocation.
    pub fn remaining_bytes(&self) -> u32 {
        self.end - self.inner.lock().next
    }

    pub fn base(&self) -> Addr {
        self.base
    }

    pub fn end(&self) -> Addr {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotonic_and_disjoint() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc(24);
        let y = a.alloc(24);
        assert_eq!(x, 64);
        assert_eq!(y, 88);
    }

    #[test]
    fn rounds_to_words() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc(1);
        let y = a.alloc(1);
        assert_eq!(y - x, 8);
    }

    #[test]
    fn alignment_honored() {
        let a = Arena::new("t", 64, 65536);
        let _ = a.alloc(8);
        let x = a.alloc_aligned(128, 128);
        assert_eq!(x % 128, 0);
    }

    #[test]
    fn free_list_reuses_exact_shape() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc_aligned(128, 128);
        a.free(x, 128, 128);
        let y = a.alloc_aligned(128, 128);
        assert_eq!(x, y);
    }

    #[test]
    fn live_and_peak_tracking() {
        let a = Arena::new("t", 64, 4096);
        let x = a.alloc(16);
        let _y = a.alloc(16);
        assert_eq!(a.live_bytes(), 32);
        a.free(x, 16, 8);
        assert_eq!(a.live_bytes(), 16);
        assert_eq!(a.peak_bytes(), 32);
        assert_eq!(a.alloc_count(), 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn oom_panics_with_arena_name() {
        let a = Arena::new("t", 64, 64);
        let _ = a.alloc(128);
    }

    #[test]
    fn remaining_shrinks() {
        let a = Arena::new("t", 64, 1024);
        let before = a.remaining_bytes();
        let _ = a.alloc(64);
        assert_eq!(a.remaining_bytes(), before - 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Live allocations never overlap and stay in-bounds.
        #[test]
        fn allocations_disjoint(sizes in proptest::collection::vec(1u32..256, 1..64)) {
            let a = Arena::new("p", 64, 1 << 20);
            let mut spans: Vec<(u32, u32)> = Vec::new();
            for s in sizes {
                let addr = a.alloc(s);
                let len = s.div_ceil(8) * 8;
                prop_assert!(addr >= 64 && addr + len <= a.end());
                for &(b, l) in &spans {
                    prop_assert!(addr + len <= b || b + l <= addr, "overlap");
                }
                spans.push((addr, len));
            }
        }

        /// Free + realloc of the same shape never hands out overlapping
        /// blocks among live allocations.
        #[test]
        fn freelist_reuse_sound(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
            let a = Arena::new("p", 64, 1 << 20);
            let mut live: Vec<u32> = Vec::new();
            for free_one in ops {
                if free_one && !live.is_empty() {
                    let addr = live.swap_remove(live.len() / 2);
                    a.free(addr, 48, 8);
                } else {
                    let addr = a.alloc(48);
                    prop_assert!(!live.contains(&addr));
                    live.push(addr);
                }
            }
        }
    }
}
