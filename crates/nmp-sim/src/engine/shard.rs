//! Per-vault shard loops with peer-to-peer scheduling.
//!
//! Topology: shard 0 (the *host shard*) owns every `ThreadKind::Host`
//! thread plus the host-side timing state; vault shards `1..=V` own the NMP
//! partitions round-robin (`partition p → shard 1 + p % V`) together with
//! their DRAM timing state. Each shard runs its own minimum-key event loop
//! over the threads it owns.
//!
//! There is no scheduler thread: the shard's *scheduling token* is carried
//! by whichever worker is currently executing. At a yield the worker runs
//! [`ShardedRt::sched_step`] itself — picking the shard's next minimum-key
//! thread, publishing the shard frontier, gating on foreign frontiers when
//! the next effect crosses shards, and waking the chosen thread directly.
//! When the yielding thread's own new key is still the shard minimum it
//! simply keeps running: a vault-local event burst (the common case for a
//! combiner pass) advances with no OS interaction at all, which is where
//! the sharded engine's speedup comes from on small machines.
//!
//! Determinism: every cross-shard effect is gated until the peer shard's
//! frontier passes the effect's key, so effects on shared words apply in
//! global `(cycle, spawn id)` order — exactly the legacy loop's order — and
//! trace/analysis streams are deferred per thread and replayed in merged
//! key order after the run drains (see `engine/inbox.rs` and `DESIGN.md`
//! §4.9).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::mem::MemorySystem;

use super::barrier::{pack, ShardCtl, MAX_THREADS};
use super::core::{
    await_announcements, join_and_finish, spawn_workers, unpark, EngineShared, SimOutcome,
    ThreadFn, ThreadKind, ThreadShared, ST_DONE, ST_GO, ST_YIELD,
};
#[cfg(any(feature = "trace", feature = "analysis"))]
use super::inbox;

/// Index of the shard owning all host threads and host timing state.
pub(super) const HOST_SHARD: usize = 0;

/// Shared runtime of one sharded simulation run.
pub(super) struct ShardedRt {
    vault_shards: usize,
    ctl: Arc<ShardCtl>,
    threads: Vec<Arc<ThreadShared>>,
    /// Spawn ids owned by each shard, in spawn order.
    members: Vec<Vec<usize>>,
}

impl ShardedRt {
    /// Which shard owns NMP partition `p`.
    pub(super) fn shard_of_part(&self, p: usize) -> usize {
        1 + p % self.vault_shards
    }

    /// Which shard owns a thread of kind `kind`.
    pub(super) fn shard_of(&self, kind: ThreadKind) -> usize {
        match kind {
            ThreadKind::Host { .. } => HOST_SHARD,
            ThreadKind::Nmp { part } => self.shard_of_part(part),
        }
    }

    pub(super) fn ctl(&self) -> &ShardCtl {
        &self.ctl
    }

    pub(super) fn ctl_arc(&self) -> Arc<ShardCtl> {
        Arc::clone(&self.ctl)
    }

    /// One scheduling step of shard `s`, run by the current token holder
    /// (`me`, or the main thread injecting the initial token): pick the
    /// minimum-key pending thread, publish the shard's frontiers, wait out
    /// the chosen effect's cross-shard gate, and resume the thread. Returns
    /// the chosen spawn id (`None` when the shard has drained).
    ///
    /// Exactly one entity per shard executes this at a time — the token
    /// holder — so the scan is race-free: every other member thread is
    /// parked in `ST_YIELD` or finished.
    pub(super) fn sched_step(&self, s: usize, me: Option<usize>) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        let mut nd_best = u64::MAX;
        for &i in &self.members[s] {
            let ts = &self.threads[i];
            match ts.state.load(Ordering::Acquire) {
                ST_YIELD => {
                    let key = pack(ts.clock.load(Ordering::Acquire), i);
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, i));
                    }
                    if !ts.daemon && key < nd_best {
                        nd_best = key;
                    }
                }
                ST_DONE => {}
                other => unreachable!("shard {s} saw thread {i} in state {other}"),
            }
        }
        let Some((key, i)) = best else {
            self.ctl.publish(s, u64::MAX, u64::MAX);
            return None;
        };
        // Publish before gating: the frontier must be visible to peers
        // while we wait, or two mutually gated shards would deadlock.
        self.ctl.publish(s, key, nd_best);
        let gate = self.threads[i].gate.load(Ordering::Relaxed);
        self.ctl.gate_wait(s, key, gate);
        if self.ctl.all_non_daemons_done() {
            self.ctl.count_after_stop();
        }
        let ts = &self.threads[i];
        ts.state.store(ST_GO, Ordering::Release);
        if me != Some(i) {
            unpark(&ts.handle);
        }
        Some(i)
    }
}

/// Run the simulation on `1 + vault_shards` peer-scheduled shard loops.
/// Byte-identical outcome to [`super::core`]'s legacy loop.
pub(super) fn run_sharded(
    mem: Arc<MemorySystem>,
    eng: Arc<EngineShared>,
    threads: Vec<Arc<ThreadShared>>,
    bodies: Vec<ThreadFn>,
    cpu_step: u64,
    vault_shards: usize,
) -> SimOutcome {
    assert!(
        threads.len() < MAX_THREADS,
        "sharded engine supports at most {MAX_THREADS} logical threads"
    );
    let shards = 1 + vault_shards;
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, ts) in threads.iter().enumerate() {
        let s = match ts.kind {
            ThreadKind::Host { .. } => HOST_SHARD,
            ThreadKind::Nmp { part } => 1 + part % vault_shards,
        };
        members[s].push(i);
    }
    let non_daemons = threads.iter().filter(|t| !t.daemon).count();
    let rt = Arc::new(ShardedRt {
        vault_shards,
        ctl: Arc::new(ShardCtl::new(shards, non_daemons)),
        threads: threads.clone(),
        members,
    });

    let joins = spawn_workers(&mem, &eng, &threads, bodies, cpu_step, Some(Arc::clone(&rt)));
    await_announcements(&threads);

    // Inject each shard's scheduling token: publish all frontiers and wake
    // each shard's minimum-key thread. First turns are never gated (no
    // effect is pending yet), so these steps cannot block.
    for s in 0..shards {
        rt.sched_step(s, None);
    }

    for j in joins {
        let _ = j.join();
    }

    // Replay the deferred trace/analysis streams in merged key order — the
    // sequential engine's feed order — into the real consumers.
    #[cfg(feature = "trace")]
    if let Some(t) = mem.tracer() {
        let mut streams = Vec::new();
        let mut early_dropped = 0u64;
        for ts in &threads {
            if let Some(log) = ts.deferred.lock().as_mut() {
                early_dropped += log.trace_dropped;
                streams.push((log.tid, log.trace.drain(..).collect()));
            }
        }
        t.replay(inbox::merge(streams), early_dropped);
    }
    #[cfg(feature = "analysis")]
    if let Some(a) = mem.analysis() {
        let mut streams = Vec::new();
        for ts in &threads {
            if let Some(log) = ts.deferred.lock().as_mut() {
                streams.push((log.tid, std::mem::take(&mut log.analysis)));
            }
        }
        for ev in inbox::merge(streams) {
            a.replay(ev);
        }
    }
    #[cfg(not(any(feature = "trace", feature = "analysis")))]
    let _ = &mem;

    // Panic propagation and outcome construction (workers already joined).
    join_and_finish(&threads, Vec::new())
}
