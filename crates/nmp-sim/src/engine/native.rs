//! Native (real-thread) execution over a [`crate::backend::NativeRam`]
//! machine.
//!
//! A [`NativeRun`] mirrors the [`Simulation`] spawning surface — host
//! threads, NMP combiner daemons, the same [`ThreadCtx`] handed to each
//! body — but every logical thread is a free-running OS thread. There is no
//! scheduler, no cycle accounting, and no region-policy interception: the
//! [`ThreadCtx`] accessors route straight to the data-plane backend, where
//! the acquire/release annotations of the publication-list ctrl-word
//! protocol become real hardware orderings (see [`crate::backend`]). The
//! simulator remains the correctness oracle; a native run serves the same
//! structure code at hardware speed.
//!
//! [`Spawner`] is the object-safe common denominator of both run types, so
//! service-spawning code (e.g. flat-combining daemons) can be written once
//! and attached to either.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use parking_lot::Mutex;

use crate::backend::BackendKind;
use crate::mem::MemorySystem;

use super::barrier;
use super::core::{
    panic_message, EngineShared, Simulation, ThreadCtx, ThreadFn, ThreadKind, ThreadShared, ST_INIT,
};

/// Object-safe spawning surface shared by [`Simulation`] and [`NativeRun`]:
/// code that installs service threads (combiner daemons, worker pools) can
/// take `&mut impl Spawner` and run unchanged on either engine.
pub trait Spawner {
    /// Add a logical worker thread; the run ends when all workers return.
    fn spawn_boxed(&mut self, name: String, kind: ThreadKind, f: ThreadFn);

    /// Add a daemon thread: it must poll [`ThreadCtx::stop_requested`] and
    /// return promptly once all workers have finished.
    fn spawn_daemon_boxed(&mut self, name: String, kind: ThreadKind, f: ThreadFn);
}

impl Spawner for Simulation {
    fn spawn_boxed(&mut self, name: String, kind: ThreadKind, f: ThreadFn) {
        self.spawn(name, kind, f);
    }

    fn spawn_daemon_boxed(&mut self, name: String, kind: ThreadKind, f: ThreadFn) {
        self.spawn_daemon(name, kind, f);
    }
}

/// A native run: real OS threads over a native-backend machine.
///
/// Threads start executing the moment they are spawned (there is no
/// deferred `run()`); [`NativeRun::finish`] joins the workers, signals stop
/// to the daemons, joins them, and propagates the first panic.
pub struct NativeRun {
    mem: Arc<MemorySystem>,
    eng: Arc<EngineShared>,
    cpu_step: u64,
    next_id: usize,
    workers: Vec<JoinHandle<()>>,
    daemons: Vec<JoinHandle<()>>,
    panics: Arc<Mutex<Vec<String>>>,
}

impl NativeRun {
    /// Start a run over `mem`. Panics unless the memory system is built on
    /// the native backend — real concurrent threads need the real atomic
    /// orderings only [`crate::backend::NativeRam`] provides.
    pub fn new(mem: Arc<MemorySystem>) -> Self {
        assert_eq!(
            mem.backend_kind(),
            BackendKind::Native,
            "NativeRun needs a native-backend machine (Machine::new_native)"
        );
        let cpu_step = mem.config().cpu_step_cycles;
        NativeRun {
            mem,
            eng: Arc::new(EngineShared {
                engine_thread: Mutex::new(None),
                stop: AtomicBool::new(false),
            }),
            cpu_step,
            next_id: 0,
            workers: Vec::new(),
            daemons: Vec::new(),
            panics: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The memory system this run's threads access.
    pub fn mem(&self) -> Arc<MemorySystem> {
        Arc::clone(&self.mem)
    }

    /// Add (and immediately start) a worker thread.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        kind: ThreadKind,
        f: impl FnOnce(&mut ThreadCtx) + Send + 'static,
    ) {
        self.spawn_inner(name.into(), kind, false, Box::new(f));
    }

    /// Add (and immediately start) a daemon thread; it must poll
    /// [`ThreadCtx::stop_requested`] and return promptly once it is set.
    pub fn spawn_daemon(
        &mut self,
        name: impl Into<String>,
        kind: ThreadKind,
        f: impl FnOnce(&mut ThreadCtx) + Send + 'static,
    ) {
        self.spawn_inner(name.into(), kind, true, Box::new(f));
    }

    fn spawn_inner(&mut self, name: String, kind: ThreadKind, daemon: bool, f: ThreadFn) {
        if let ThreadKind::Host { core } = kind {
            assert!(core < self.mem.config().host_cores, "core {core} out of range");
        }
        if let ThreadKind::Nmp { part } = kind {
            assert!(part < self.mem.config().nmp_partitions(), "partition {part} out of range");
        }
        let id = self.next_id;
        self.next_id += 1;
        let ts = Arc::new(ThreadShared {
            name: name.clone(),
            kind,
            daemon,
            state: AtomicU32::new(ST_INIT),
            clock: AtomicU64::new(0),
            handle: Mutex::new(None),
            panicked: AtomicBool::new(false),
            panic_note: Mutex::new(None),
            gate: AtomicU32::new(barrier::GATE_NONE),
            deferred: Mutex::new(None),
        });
        let eng = Arc::clone(&self.eng);
        let mem = Arc::clone(&self.mem);
        let cpu_step = self.cpu_step;
        let panics = Arc::clone(&self.panics);
        let join = thread::Builder::new()
            .name(format!("native-{name}"))
            .spawn(move || {
                let mut ctx = ThreadCtx {
                    kind,
                    id,
                    ts,
                    eng: Arc::clone(&eng),
                    mem,
                    clock: 0,
                    pending: 0,
                    cpu_step,
                    sharded: None,
                    my_shard: 0,
                    next_gate: barrier::GATE_NONE,
                    native: true,
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
                if let Err(p) = result {
                    let msg = panic_message(p.as_ref());
                    panics.lock().push(format!("'{name}' panicked: {msg}"));
                    // Release daemons (and any worker polling stop) so the
                    // run can be joined instead of hanging.
                    eng.stop.store(true, Ordering::Release);
                }
            })
            .expect("spawn native thread");
        if daemon {
            self.daemons.push(join);
        } else {
            self.workers.push(join);
        }
    }

    /// Join all workers, signal stop, join the daemons, and propagate the
    /// first panic raised in any thread.
    pub fn finish(self) {
        let NativeRun { eng, workers, daemons, panics, .. } = self;
        for j in workers {
            let _ = j.join();
        }
        eng.stop.store(true, Ordering::Release);
        for j in daemons {
            let _ = j.join();
        }
        let notes = std::mem::take(&mut *panics.lock());
        if !notes.is_empty() {
            panic!("native thread(s) panicked: {}", notes.join("; "));
        }
    }
}

impl Spawner for NativeRun {
    fn spawn_boxed(&mut self, name: String, kind: ThreadKind, f: ThreadFn) {
        self.spawn_inner(name, kind, false, f);
    }

    fn spawn_daemon_boxed(&mut self, name: String, kind: ThreadKind, f: ThreadFn) {
        self.spawn_inner(name, kind, true, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::machine::Machine;

    #[test]
    fn native_threads_share_memory() {
        let m = Machine::new_native(Config::tiny());
        let addr = m.host_arena().alloc(8);
        m.ram().write_u64(addr, 41);
        let mut run = m.native_run();
        run.spawn("t", ThreadKind::Host { core: 0 }, move |ctx| {
            let v = ctx.read_u64(addr);
            ctx.write_u64(addr, v + 1);
        });
        run.finish();
        assert_eq!(m.ram().read_u64(addr), 42);
    }

    #[test]
    fn native_daemon_exits_on_stop() {
        let m = Machine::new_native(Config::tiny());
        let spad = m.map().spad_base(0);
        let mut run = m.native_run();
        run.spawn_daemon("nmp0", ThreadKind::Nmp { part: 0 }, move |ctx| {
            while !ctx.stop_requested() {
                let v = ctx.read_u64_acquire(spad);
                if v != 0 {
                    ctx.write_u64_release(spad + 8, v + 1);
                }
                ctx.idle(16);
            }
        });
        run.spawn("host", ThreadKind::Host { core: 0 }, move |ctx| {
            ctx.mmio_write_u64_release(spad, 7);
            while ctx.mmio_read_u64_acquire(spad + 8) != 8 {
                ctx.idle(16);
            }
        });
        run.finish();
        assert_eq!(m.ram().read_u64(spad + 8), 8);
    }

    #[test]
    fn native_cas_is_atomic_across_threads() {
        let m = Machine::new_native(Config::tiny());
        let addr = m.host_arena().alloc(8);
        let mut run = m.native_run();
        for core in 0..4 {
            run.spawn(format!("t{core}"), ThreadKind::Host { core }, move |ctx| {
                for _ in 0..10_000 {
                    loop {
                        let cur = ctx.read_u64(addr);
                        if ctx.cas_u64(addr, cur, cur + 1).is_ok() {
                            break;
                        }
                    }
                }
            });
        }
        run.finish();
        assert_eq!(m.ram().read_u64(addr), 40_000);
    }

    #[test]
    #[should_panic(expected = "native thread(s) panicked")]
    fn native_panic_propagates() {
        let m = Machine::new_native(Config::tiny());
        let mut run = m.native_run();
        run.spawn_daemon("d", ThreadKind::Nmp { part: 0 }, |ctx| {
            while !ctx.stop_requested() {
                ctx.idle(16);
            }
        });
        run.spawn("bad", ThreadKind::Host { core: 0 }, |_ctx| panic!("boom"));
        run.finish();
    }

    #[test]
    #[should_panic(expected = "needs a native-backend machine")]
    fn native_run_rejects_sim_machine() {
        let m = Machine::new(Config::tiny());
        let _ = m.native_run();
    }

    #[test]
    #[should_panic(expected = "need a simulated-backend machine")]
    fn simulation_rejects_native_machine() {
        let m = Machine::new_native(Config::tiny());
        let _ = m.simulation();
    }
}
