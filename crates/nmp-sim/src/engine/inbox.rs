//! Per-shard deferred-effect inboxes.
//!
//! The sharded loop lets shards run ahead of each other inside the
//! conservative window, so side effects that feed *global* in-order
//! consumers — the trace event ring and the analysis passes — cannot be
//! applied live without scrambling their order relative to the sequential
//! engine. Instead, every logical thread appends those effects to a private
//! log tagged `(completion cycle, spawn id, per-thread seq)`. After the run
//! drains, the logs are merged by that key — which is globally unique and
//! equals the sequential engine's feed order — and replayed into the real
//! consumers, making the exported trace and analysis reports byte-identical
//! to the legacy loop's (`DESIGN.md` §4.9).
//!
//! The turn state lives in a thread-local installed by the sharded worker
//! wrapper; when no turn is active (legacy loop, or calls from outside a
//! simulation) `defer_*` decline and the caller applies the effect live.

use std::cell::RefCell;
#[cfg(feature = "trace")]
use std::collections::VecDeque;
use std::sync::Arc;

use super::barrier::{pack, ShardCtl};

#[cfg(feature = "analysis")]
use crate::analysis::AnalysisEv;
#[cfg(feature = "trace")]
use crate::trace::TraceEvent;

/// One logical thread's deferred effects, handed to the merge step when the
/// worker finishes.
#[derive(Default)]
pub(crate) struct ThreadLog {
    /// Spawn id of the owning logical thread.
    pub(crate) tid: usize,
    /// Deferred trace events keyed `(clock, seq)`; bounded to the tracer's
    /// ring capacity — the global ring keeps only the newest `cap` events,
    /// and any thread's contribution to that tail is its own newest `cap`,
    /// so older entries can be dropped early (counted, not lost silently).
    #[cfg(feature = "trace")]
    pub(crate) trace: VecDeque<(u64, u32, TraceEvent)>,
    /// Events dropped from the front of `trace` by the early bound.
    #[cfg(feature = "trace")]
    pub(crate) trace_dropped: u64,
    /// Deferred analysis events keyed `(clock, seq)`.
    #[cfg(feature = "analysis")]
    pub(crate) analysis: Vec<(u64, u32, AnalysisEv)>,
}

struct Turn {
    active: bool,
    clock: u64,
    tid: usize,
    shard: usize,
    ctl: Option<Arc<ShardCtl>>,
    /// Program-order counter within the owning thread; monotone across
    /// turns, so `(clock, tid, seq)` is unique and sorts in feed order.
    #[cfg_attr(not(any(feature = "trace", feature = "analysis")), allow(dead_code))]
    seq: u32,
    log: ThreadLog,
}

impl Turn {
    const fn idle() -> Self {
        Turn {
            active: false,
            clock: 0,
            tid: 0,
            shard: 0,
            ctl: None,
            seq: 0,
            log: ThreadLog {
                tid: 0,
                #[cfg(feature = "trace")]
                trace: VecDeque::new(),
                #[cfg(feature = "trace")]
                trace_dropped: 0,
                #[cfg(feature = "analysis")]
                analysis: Vec::new(),
            },
        }
    }
}

thread_local! {
    static TURN: RefCell<Turn> = const { RefCell::new(Turn::idle()) };
}

/// Install the deferral context on the current OS thread. Called by the
/// sharded worker wrapper before the logical thread's body runs.
pub(super) fn begin_thread(tid: usize, shard: usize, ctl: Arc<ShardCtl>) {
    TURN.with(|t| {
        let mut t = t.borrow_mut();
        *t = Turn::idle();
        t.active = true;
        t.tid = tid;
        t.shard = shard;
        t.ctl = Some(ctl);
        t.log.tid = tid;
    });
}

/// Advance the turn clock: called after every wake so deferred effects carry
/// the completion cycle of the turn that produced them.
pub(super) fn set_clock(clock: u64) {
    TURN.with(|t| t.borrow_mut().clock = clock);
}

/// Tear down the deferral context and return the accumulated log.
pub(super) fn end_thread() -> ThreadLog {
    TURN.with(|t| {
        let mut t = t.borrow_mut();
        t.active = false;
        t.ctl = None;
        std::mem::take(&mut t.log)
    })
}

/// Defer a trace event if a sharded turn is active. Returns `false` when the
/// caller should apply the event live (legacy loop or outside a simulation).
#[cfg(feature = "trace")]
pub(crate) fn defer_trace(ev: TraceEvent, cap: usize) -> bool {
    TURN.with(|t| {
        let mut t = t.borrow_mut();
        if !t.active {
            return false;
        }
        let key = (t.clock, t.seq);
        t.seq += 1;
        if t.log.trace.len() >= cap.max(1) {
            t.log.trace.pop_front();
            t.log.trace_dropped += 1;
        }
        t.log.trace.push_back((key.0, key.1, ev));
        true
    })
}

/// Defer an analysis event if a sharded turn is active. Returns `false` when
/// the caller should apply the event live.
#[cfg(feature = "analysis")]
pub(crate) fn defer_analysis(ev: AnalysisEv) -> bool {
    TURN.with(|t| {
        let mut t = t.borrow_mut();
        if !t.active {
            return false;
        }
        let key = (t.clock, t.seq);
        t.seq += 1;
        t.log.analysis.push((key.0, key.1, ev));
        true
    })
}

/// Block until every other shard's frontier has passed the caller's current
/// turn key, then return — the caller may then mutate cross-shard state
/// (e.g. `MemorySystem::reset_stats` from the driver's measurement barrier)
/// with the same outcome as the sequential engine. No-op outside a sharded
/// turn. Only sound at quiescent call sites; see `ShardCtl::quiesce`.
pub(crate) fn quiesce_for_global_mutation() {
    TURN.with(|t| {
        let t = t.borrow();
        if t.active {
            if let Some(ctl) = &t.ctl {
                ctl.quiesce(t.shard, pack(t.clock, t.tid));
            }
        }
    });
}

/// One thread's deferred log: `(spawn id, [(clock, seq, event)])`.
#[cfg(any(feature = "trace", feature = "analysis"))]
pub(super) type DeferredStream<T> = (usize, Vec<(u64, u32, T)>);

/// Merge per-thread logs into one stream ordered by `(clock, tid, seq)` —
/// the sequential engine's feed order. Used by the shard runner's replay
/// step; generic over the payload so trace and analysis share it.
#[cfg(any(feature = "trace", feature = "analysis"))]
pub(super) fn merge<T>(mut streams: Vec<DeferredStream<T>>) -> Vec<T> {
    let mut keyed: Vec<((u64, usize, u32), T)> = Vec::new();
    for (tid, items) in streams.drain(..) {
        for (clock, seq, ev) in items {
            keyed.push(((clock, tid, seq), ev));
        }
    }
    keyed.sort_by_key(|(k, _)| *k);
    keyed.into_iter().map(|(_, ev)| ev).collect()
}
