//! Conservative time-window barriers for the sharded engine.
//!
//! Each shard publishes a *frontier*: the packed `(cycle, spawn id)` key of
//! the earliest event it could still execute. Frontiers are monotonically
//! non-decreasing, so once a shard observes `frontier(other) > k` it knows
//! *every* future effect of `other` carries a key greater than `k` — the
//! conservative lookahead window that makes cross-shard effect delivery
//! deterministic (see `DESIGN.md` §4.9 for the full argument).
//!
//! Keys pack a 48-bit cycle count and a 16-bit spawn id into one `u64`, so a
//! frontier is a single atomic word and the global event order is exactly
//! integer order on keys.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Bits of a packed key reserved for the spawn id.
const ID_BITS: u32 = 16;

/// Largest representable cycle in a packed key (48 bits ≈ 78 hours of
/// simulated time at 1 GHz — far beyond any experiment in this repo).
pub(super) const MAX_CLOCK: u64 = (1 << (64 - ID_BITS)) - 1;

/// Largest spawn id a sharded simulation may use.
pub(super) const MAX_THREADS: usize = 1 << ID_BITS;

/// Pack `(cycle, spawn id)` into a totally ordered `u64` key.
#[inline]
pub(super) fn pack(clock: u64, id: usize) -> u64 {
    debug_assert!(clock <= MAX_CLOCK, "simulated clock overflows packed key");
    debug_assert!(id < MAX_THREADS);
    (clock << ID_BITS) | id as u64
}

/// Gate code: the pending effect is shard-local (no cross-shard wait).
pub(super) const GATE_NONE: u32 = 0;
/// Gate code: wait for *every* other shard (policy-violating accesses whose
/// target region is unknown territory; memory-safe but see the determinism
/// caveat in `DESIGN.md` §4.9).
pub(super) const GATE_ALL: u32 = u32::MAX;

/// Gate code for an effect shared with `shard` (the publication-list
/// scratchpads are the only architecturally shared region, so this is the
/// owning vault shard for host MMIO, or the host shard for NMP-side
/// scratchpad accesses).
#[inline]
pub(super) fn gate_on(shard: usize) -> u32 {
    shard as u32 + 1
}

/// Spin-then-yield wait. Unlike the engine's park-based `spin_wait`, gate
/// conditions become true as a side effect of *other shards running*, not of
/// a matching unpark — so the waiter must stay schedulable.
#[inline]
fn spin_until<F: Fn() -> bool>(cond: F) {
    let budget = super::core::spin_budget().min(64);
    let mut n = 0u32;
    while !cond() {
        n += 1;
        if n < budget {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Shared synchronization state of one sharded run: per-shard frontiers and
/// the keyed stop protocol.
pub(super) struct ShardCtl {
    /// Packed min pending key per shard (`u64::MAX` once a shard drained).
    frontiers: Vec<AtomicU64>,
    /// Packed min pending key over each shard's *live non-daemon* threads.
    nd_frontiers: Vec<AtomicU64>,
    /// Non-daemon threads that have not yet returned.
    nd_live: AtomicUsize,
    /// Max final-turn key over finished non-daemons (stop-flag edge).
    nd_last_key: AtomicU64,
    /// A logical thread panicked: every gate opens so the run can drain.
    panic: AtomicBool,
    /// Scheduling steps taken after the last non-daemon finished (safety
    /// valve against daemons that ignore `stop_requested`).
    after_stop: AtomicU64,
}

impl ShardCtl {
    pub(super) fn new(shards: usize, non_daemons: usize) -> Self {
        let zeros = |v: u64| {
            let mut f = Vec::with_capacity(shards);
            f.resize_with(shards, || AtomicU64::new(v));
            f
        };
        ShardCtl {
            frontiers: zeros(0),
            nd_frontiers: zeros(0),
            nd_live: AtomicUsize::new(non_daemons),
            nd_last_key: AtomicU64::new(0),
            panic: AtomicBool::new(false),
            after_stop: AtomicU64::new(0),
        }
    }

    /// Publish shard `s`'s frontier and non-daemon frontier.
    pub(super) fn publish(&self, s: usize, frontier: u64, nd_frontier: u64) {
        self.nd_frontiers[s].store(nd_frontier, Ordering::Release);
        self.frontiers[s].store(frontier, Ordering::Release);
    }

    /// Flag a worker panic: opens every gate and the stop query.
    pub(super) fn flag_panic(&self) {
        self.panic.store(true, Ordering::Release);
    }

    pub(super) fn panicked(&self) -> bool {
        self.panic.load(Ordering::Acquire)
    }

    /// Block until the gated event `key` may execute: every shard named by
    /// `gate` must have advanced its frontier strictly past `key`. The
    /// globally minimum pending event always passes immediately (all other
    /// frontiers exceed it), which is the progress guarantee.
    pub(super) fn gate_wait(&self, my_shard: usize, key: u64, gate: u32) {
        let past = |s: usize| self.frontiers[s].load(Ordering::Acquire) > key;
        match gate {
            GATE_NONE => {}
            GATE_ALL => {
                for s in 0..self.frontiers.len() {
                    if s != my_shard {
                        spin_until(|| past(s) || self.panicked());
                    }
                }
            }
            g => {
                let s = (g - 1) as usize;
                debug_assert_ne!(s, my_shard, "a shard never gates on itself");
                spin_until(|| past(s) || self.panicked());
            }
        }
    }

    /// The keyed stop query: would the sequential engine's stop flag be set
    /// when the turn at `key` is scheduled? True exactly when every
    /// non-daemon has finished *and* did so at a turn key below `key`.
    /// Waits until every shard's non-daemon frontier passes `key` first, so
    /// a daemon that ran ahead cannot observe the flag early.
    pub(super) fn stop_query(&self, key: u64) -> bool {
        // `>= key`: the caller itself holds `key`; all *other* live
        // non-daemons hold strictly larger keys once the frontier reaches it.
        for f in &self.nd_frontiers {
            spin_until(|| f.load(Ordering::Acquire) >= key || self.panicked());
        }
        if self.panicked() {
            return true;
        }
        self.nd_live.load(Ordering::Acquire) == 0 && self.nd_last_key.load(Ordering::Acquire) < key
    }

    /// A non-daemon finished its body during the turn at `key`.
    pub(super) fn non_daemon_done(&self, key: u64) {
        self.nd_last_key.fetch_max(key, Ordering::AcqRel);
        self.nd_live.fetch_sub(1, Ordering::AcqRel);
    }

    pub(super) fn all_non_daemons_done(&self) -> bool {
        self.nd_live.load(Ordering::Acquire) == 0
    }

    /// Safety valve mirroring the legacy loop's `schedules_after_stop`.
    pub(super) fn count_after_stop(&self) {
        let n = self.after_stop.fetch_add(1, Ordering::Relaxed);
        assert!(n < 10_000_000, "daemon threads are not honoring stop_requested()");
    }

    /// Block until every *other* shard's frontier is strictly past `key`:
    /// the caller may then mutate cross-shard state (e.g. a global stats
    /// reset at a measurement barrier) exactly as the sequential engine
    /// would. Only valid at quiescence — when the other shards' events in
    /// `(key, frontier)` are effect-free polls — which the driver's
    /// measurement barrier guarantees (no offload is in flight).
    pub(super) fn quiesce(&self, my_shard: usize, key: u64) {
        for s in 0..self.frontiers.len() {
            if s != my_shard {
                spin_until(|| self.frontiers[s].load(Ordering::Acquire) > key || self.panicked());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_order_by_clock_then_id() {
        assert!(pack(1, 0) > pack(0, 65_535));
        assert!(pack(7, 3) < pack(7, 4));
        assert!(pack(7, 4) < pack(8, 0));
    }

    #[test]
    fn stop_query_matches_sequential_edge() {
        let c = ShardCtl::new(2, 1);
        c.publish(0, u64::MAX, u64::MAX);
        c.publish(1, u64::MAX, u64::MAX);
        // Non-daemon still live: never stopped.
        assert!(!c.stop_query(pack(100, 0)));
        c.non_daemon_done(pack(50, 1));
        // Daemon turns before the non-daemon's last turn do not see the stop.
        assert!(!c.stop_query(pack(50, 0)));
        assert!(c.stop_query(pack(50, 2)));
        assert!(c.stop_query(pack(51, 0)));
    }

    #[test]
    fn gate_passes_once_frontier_moves() {
        let c = ShardCtl::new(2, 0);
        c.publish(1, pack(10, 0), u64::MAX);
        // key below the foreign frontier: passes immediately.
        c.gate_wait(0, pack(5, 1), gate_on(1));
        c.publish(1, pack(20, 0), u64::MAX);
        c.gate_wait(0, pack(15, 1), GATE_ALL);
    }
}
