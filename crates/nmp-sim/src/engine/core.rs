//! Deterministic discrete-event engine with logical threads.
//!
//! Each logical thread (a host hardware thread or an NMP core) runs real
//! Rust code on its own OS thread, but **exactly one logical thread executes
//! at a time**: the engine always resumes the runnable thread with the
//! smallest `(local clock, spawn id)`. Every timed memory operation is a
//! yield point, so threads interleave at memory-access granularity — the
//! granularity at which concurrent data-structure races actually occur —
//! and, because all latencies are deterministic functions of simulator
//! state, an entire simulation is bit-for-bit reproducible.
//!
//! Memory operations take effect at their *completion* time: the issuing
//! thread charges the latency, sleeps, and applies the data-plane effect
//! when it is next scheduled (at which point it is again the minimum-clock
//! thread, so effects are applied in global simulated-time order — a
//! sequentially-consistent execution).

use std::panic::{self, AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{self, Thread};

use parking_lot::Mutex;

#[cfg(feature = "analysis")]
use crate::analysis::MemOp;
use crate::config::Config;
use crate::mem::{Addr, MemorySystem, Region};

use super::barrier;
use super::inbox;
use super::shard::{self, ShardedRt};

/// Latency charged to an access that violates the region policy while an
/// analysis is attached (the real machine path does not exist; this keeps
/// negative fixtures making simulated-time progress).
#[cfg(feature = "analysis")]
const POLICY_FALLBACK_LAT: u64 = 100;

pub(super) const ST_INIT: u32 = 0;
pub(super) const ST_GO: u32 = 1;
pub(super) const ST_YIELD: u32 = 2;
pub(super) const ST_DONE: u32 = 3;

/// What kind of processor a logical thread models; decides how its memory
/// accesses are routed and priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadKind {
    /// A host hardware thread pinned to `core` (owns that core's L1).
    Host {
        /// Index of the host core this thread is pinned to.
        core: usize,
    },
    /// The NMP core coupled to partition `part`.
    Nmp {
        /// Index of the partition (and NMP core) this thread runs on.
        part: usize,
    },
}

pub(super) struct ThreadShared {
    pub(super) name: String,
    pub(super) kind: ThreadKind,
    pub(super) daemon: bool,
    pub(super) state: AtomicU32,
    pub(super) clock: AtomicU64,
    pub(super) handle: Mutex<Option<Thread>>,
    pub(super) panicked: AtomicBool,
    /// "'name' panicked at simulated cycle N: message", captured by the
    /// worker wrapper for the engine to surface in its own panic.
    pub(super) panic_note: Mutex<Option<String>>,
    /// Cross-shard gate of the pending (yet-to-apply) effect; read by the
    /// shard scheduler before resuming this thread. Unused by the legacy
    /// loop.
    pub(super) gate: AtomicU32,
    /// Deferred trace/analysis log, stashed by the sharded worker wrapper
    /// and merged after the run drains.
    pub(super) deferred: Mutex<Option<inbox::ThreadLog>>,
}

pub(super) struct EngineShared {
    pub(super) engine_thread: Mutex<Option<Thread>>,
    pub(super) stop: AtomicBool,
}

/// How long to busy-spin before parking/yielding. On a single-CPU machine a
/// spin can never observe the other thread's store, so spinning is pure
/// waste — park immediately instead.
pub(super) fn spin_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        if thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            128
        } else {
            0
        }
    })
}

pub(super) fn spin_wait<F: Fn() -> bool>(cond: F) {
    let budget = spin_budget();
    let mut spins = 0u32;
    while !cond() {
        spins += 1;
        if spins < budget {
            std::hint::spin_loop();
        } else {
            thread::park();
        }
    }
}

pub(super) fn unpark(slot: &Mutex<Option<Thread>>) {
    if let Some(t) = slot.lock().as_ref() {
        t.unpark();
    }
}

/// Best-effort extraction of a panic payload's message (the payload itself
/// cannot cross the engine boundary usefully, but its text can).
pub(super) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Execution context handed to each logical thread's closure. All timed
/// memory operations go through here.
pub struct ThreadCtx {
    pub(super) kind: ThreadKind,
    pub(super) id: usize,
    pub(super) ts: Arc<ThreadShared>,
    pub(super) eng: Arc<EngineShared>,
    pub(super) mem: Arc<MemorySystem>,
    pub(super) clock: u64,
    pub(super) pending: u64,
    pub(super) cpu_step: u64,
    /// Sharded-run context (`None` under the legacy loop).
    pub(super) sharded: Option<Arc<ShardedRt>>,
    /// Index of the shard that owns this thread (0 under the legacy loop).
    pub(super) my_shard: usize,
    /// Gate of the effect the next `sleep` leaves pending; consumed by the
    /// yield and handed to the shard scheduler through `ThreadShared::gate`.
    pub(super) next_gate: u32,
    /// Native mode (see [`crate::engine::NativeRun`]): the thread is a free
    /// running OS thread, every accessor goes straight to the data-plane
    /// backend (real atomics, no timing, no engine yield), and `idle` is an
    /// OS-level yield. `false` under both simulation engines.
    pub(super) native: bool,
}

impl ThreadCtx {
    /// Current simulated time of this thread in cycles (including any
    /// accrued-but-uncommitted compute time).
    pub fn now(&self) -> u64 {
        self.clock + self.pending
    }

    /// What kind of processor this thread models (host core or NMP core).
    pub fn kind(&self) -> ThreadKind {
        self.kind
    }

    /// Engine-assigned thread id (spawn order, daemons included).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The memory system this thread's accesses are routed through.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Accrue `cycles` of local compute time. Cheap (no scheduler
    /// round-trip); committed at the next timed operation.
    pub fn advance(&mut self, cycles: u64) {
        self.pending += cycles;
    }

    /// Accrue one configured CPU step (e.g. a key comparison).
    pub fn step(&mut self) {
        self.pending += self.cpu_step;
    }

    /// Commit accrued time plus `extra_lat` and hand control back to the
    /// scheduler; returns when this thread is next due to run.
    fn sleep(&mut self, extra_lat: u64) {
        debug_assert!(extra_lat >= 1, "timed ops must advance time");
        self.clock += self.pending + extra_lat;
        self.pending = 0;
        let gate = std::mem::replace(&mut self.next_gate, barrier::GATE_NONE);
        self.ts.clock.store(self.clock, Ordering::Release);
        if let Some(rt) = &self.sharded {
            // Sharded path: peer-to-peer handoff. The yielding thread runs
            // its shard's scheduling step itself — when its own new key is
            // still the shard minimum it resumes immediately with no OS
            // round-trip at all (the common case for vault-local bursts).
            self.ts.gate.store(gate, Ordering::Relaxed);
            self.ts.state.store(ST_YIELD, Ordering::Release);
            let rt = Arc::clone(rt);
            if rt.sched_step(self.my_shard, Some(self.id)) != Some(self.id) {
                let ts = Arc::clone(&self.ts);
                spin_wait(move || ts.state.load(Ordering::Acquire) == ST_GO);
            }
            inbox::set_clock(self.clock);
        } else {
            self.ts.state.store(ST_YIELD, Ordering::Release);
            unpark(&self.eng.engine_thread);
            let ts = Arc::clone(&self.ts);
            spin_wait(move || ts.state.load(Ordering::Acquire) == ST_GO);
        }
    }

    /// Yield a full poll interval (used by spin/poll loops so they always
    /// make simulated-time progress). In native mode there is no simulated
    /// time to burn; the poll loop yields the OS thread instead (and the
    /// local clock still advances so `now`-based heuristics stay monotone).
    pub fn idle(&mut self, cycles: u64) {
        if self.native {
            self.clock += self.pending + cycles.max(1);
            self.pending = 0;
            thread::yield_now();
            return;
        }
        self.sleep(cycles.max(1));
    }

    /// True once every non-daemon thread has finished; daemon loops (NMP
    /// cores) should exit promptly when they observe this.
    pub fn stop_requested(&self) -> bool {
        if self.eng.stop.load(Ordering::Acquire) {
            return true;
        }
        match &self.sharded {
            // Sharded path: the keyed stop query answers "would the legacy
            // loop's stop flag be set when this turn was scheduled?".
            Some(rt) => rt.ctl().stop_query(barrier::pack(self.clock, self.id)),
            None => false,
        }
    }

    /// Cross-shard gate for a policy-clean access about to be issued. The
    /// scratchpads are the only region shared between shards (host MMIO on
    /// one side, the owning NMP core on the other); everything else is
    /// shard-local.
    fn gate_for(&self, rt: &ShardedRt, addr: Addr) -> u32 {
        match (self.kind, self.mem.map().region_of(addr)) {
            (ThreadKind::Host { .. }, Region::Spad(p)) => barrier::gate_on(rt.shard_of_part(p)),
            (ThreadKind::Nmp { .. }, Region::Spad(_)) => barrier::gate_on(shard::HOST_SHARD),
            _ => barrier::GATE_NONE,
        }
    }

    /// Route a direct (non-MMIO) access: with an analysis attached,
    /// region-policy violations are recorded and charged a fallback latency
    /// instead of panicking inside the memory system.
    fn route(&mut self, addr: Addr, is_write: bool, _site: &'static Location<'static>) -> u64 {
        let now = self.now();
        #[cfg(feature = "analysis")]
        if let Some(a) = self.mem.analysis() {
            if a.check_policy(self.id, self.kind, addr, is_write, false, now, _site) {
                // The access escapes the ownership map; gate on every shard
                // so the effect is still applied in global key order.
                self.next_gate = barrier::GATE_ALL;
                return POLICY_FALLBACK_LAT;
            }
        }
        let lat = match self.kind {
            ThreadKind::Host { core } => self.mem.host_access(core, now, addr, is_write),
            ThreadKind::Nmp { part } => self.mem.nmp_access(part, now, addr, is_write),
        };
        if let Some(rt) = &self.sharded {
            self.next_gate = self.gate_for(rt, addr);
        }
        lat
    }

    /// Route an MMIO access, with the same policy interception as [`route`].
    fn mmio_route(&mut self, addr: Addr, is_write: bool, _site: &'static Location<'static>) -> u64 {
        assert!(matches!(self.kind, ThreadKind::Host { .. }), "MMIO is a host-side path");
        let now = self.now();
        #[cfg(feature = "analysis")]
        if let Some(a) = self.mem.analysis() {
            if a.check_policy(self.id, self.kind, addr, is_write, true, now, _site) {
                self.next_gate = barrier::GATE_ALL;
                return POLICY_FALLBACK_LAT;
            }
        }
        let lat = self.mem.mmio_access(now, addr, is_write);
        if let Some(rt) = &self.sharded {
            self.next_gate = self.gate_for(rt, addr);
        }
        lat
    }

    /// Feed one completed access to the attached analysis. Fires at the
    /// access's completion time — the engine's single serialization point —
    /// so the race detector sees the global sequentially-consistent order.
    #[cfg(feature = "analysis")]
    fn trace(
        &self,
        addr: Addr,
        bytes: u32,
        op: MemOp,
        mmio: bool,
        site: &'static Location<'static>,
    ) {
        if let Some(a) = self.mem.analysis() {
            a.on_access(self.id, self.clock, addr, bytes, op, mmio, site);
        }
    }

    /// Timed 64-bit load.
    #[track_caller]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        if self.native {
            return self.mem.ram().read_u64(addr);
        }
        let site = Location::caller();
        let lat = self.route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::Read, false, site);
        self.mem.ram().read_u64(addr)
    }

    /// Timed 64-bit store.
    #[track_caller]
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        if self.native {
            return self.mem.ram().write_u64(addr, value);
        }
        let site = Location::caller();
        let lat = self.route(addr, true, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::Write, false, site);
        self.mem.ram().write_u64(addr, value);
    }

    /// Timed 32-bit load.
    #[track_caller]
    pub fn read_u32(&mut self, addr: Addr) -> u32 {
        if self.native {
            return self.mem.ram().read_u32(addr);
        }
        let site = Location::caller();
        let lat = self.route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 4, MemOp::Read, false, site);
        self.mem.ram().read_u32(addr)
    }

    /// Timed 32-bit store.
    #[track_caller]
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        if self.native {
            return self.mem.ram().write_u32(addr, value);
        }
        let site = Location::caller();
        let lat = self.route(addr, true, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 4, MemOp::Write, false, site);
        self.mem.ram().write_u32(addr, value);
    }

    /// Timed 64-bit load with *acquire* ordering: everything the releasing
    /// thread did before its matching release-store happens-before the code
    /// after this load. Identical timing to [`ThreadCtx::read_u64`]; the
    /// annotation only informs the race detector.
    #[track_caller]
    pub fn read_u64_acquire(&mut self, addr: Addr) -> u64 {
        if self.native {
            return self.mem.ram().read_u64_acquire(addr);
        }
        let site = Location::caller();
        let lat = self.route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::ReadAcquire, false, site);
        self.mem.ram().read_u64(addr)
    }

    /// Timed 64-bit store with *release* ordering (see
    /// [`ThreadCtx::read_u64_acquire`]).
    #[track_caller]
    pub fn write_u64_release(&mut self, addr: Addr, value: u64) {
        if self.native {
            return self.mem.ram().write_u64_release(addr, value);
        }
        let site = Location::caller();
        let lat = self.route(addr, true, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::WriteRelease, false, site);
        self.mem.ram().write_u64(addr, value);
    }

    /// Timed 32-bit acquire load (see [`ThreadCtx::read_u64_acquire`]).
    #[track_caller]
    pub fn read_u32_acquire(&mut self, addr: Addr) -> u32 {
        if self.native {
            return self.mem.ram().read_u32_acquire(addr);
        }
        let site = Location::caller();
        let lat = self.route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 4, MemOp::ReadAcquire, false, site);
        self.mem.ram().read_u32(addr)
    }

    /// Timed 32-bit release store (see [`ThreadCtx::read_u64_acquire`]).
    #[track_caller]
    pub fn write_u32_release(&mut self, addr: Addr, value: u32) {
        if self.native {
            return self.mem.ram().write_u32_release(addr, value);
        }
        let site = Location::caller();
        let lat = self.route(addr, true, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 4, MemOp::WriteRelease, false, site);
        self.mem.ram().write_u32(addr, value);
    }

    /// Timed *speculative* 64-bit load: an optimistic read under a seqlock
    /// whose value is validated (and discarded on conflict) by re-reading
    /// the sequence word. The race detector neither checks nor orders it.
    #[track_caller]
    pub fn read_u64_speculative(&mut self, addr: Addr) -> u64 {
        if self.native {
            return self.mem.ram().read_u64(addr);
        }
        let site = Location::caller();
        let lat = self.route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::ReadSpeculative, false, site);
        self.mem.ram().read_u64(addr)
    }

    /// Timed speculative 32-bit load (see
    /// [`ThreadCtx::read_u64_speculative`]).
    #[track_caller]
    pub fn read_u32_speculative(&mut self, addr: Addr) -> u32 {
        if self.native {
            return self.mem.ram().read_u32(addr);
        }
        let site = Location::caller();
        let lat = self.route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 4, MemOp::ReadSpeculative, false, site);
        self.mem.ram().read_u32(addr)
    }

    /// Timed atomic compare-and-swap on a 64-bit word. Returns `Ok(())` on
    /// success, `Err(actual)` on mismatch. Applied instantaneously at the
    /// operation's completion time. A CAS is always a synchronization
    /// operation for the race detector: acquire, plus release on success.
    #[track_caller]
    pub fn cas_u64(&mut self, addr: Addr, expect: u64, new: u64) -> Result<(), u64> {
        if self.native {
            return self.mem.ram().cas_u64(addr, expect, new);
        }
        let site = Location::caller();
        let lat = self.route(addr, true, site);
        self.sleep(lat);
        let result = self.mem.ram().cas_u64(addr, expect, new);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::Cas { success: result.is_ok() }, false, site);
        result
    }

    /// Timed atomic compare-and-swap on a 32-bit word.
    #[track_caller]
    pub fn cas_u32(&mut self, addr: Addr, expect: u32, new: u32) -> Result<(), u32> {
        if self.native {
            return self.mem.ram().cas_u32(addr, expect, new);
        }
        let site = Location::caller();
        let lat = self.route(addr, true, site);
        self.sleep(lat);
        let result = self.mem.ram().cas_u32(addr, expect, new);
        #[cfg(feature = "analysis")]
        self.trace(addr, 4, MemOp::Cas { success: result.is_ok() }, false, site);
        result
    }

    /// Timed host MMIO load from a scratchpad word (host threads only).
    #[track_caller]
    pub fn mmio_read_u64(&mut self, addr: Addr) -> u64 {
        if self.native {
            return self.mem.ram().read_u64(addr);
        }
        let site = Location::caller();
        let lat = self.mmio_route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::Read, true, site);
        self.mem.ram().read_u64(addr)
    }

    /// Timed host MMIO store to a scratchpad word (host threads only).
    #[track_caller]
    pub fn mmio_write_u64(&mut self, addr: Addr, value: u64) {
        if self.native {
            return self.mem.ram().write_u64(addr, value);
        }
        let site = Location::caller();
        let lat = self.mmio_route(addr, true, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::Write, true, site);
        self.mem.ram().write_u64(addr, value);
    }

    /// Timed MMIO acquire load (the host side of the publication-slot
    /// control-word handoff; see [`ThreadCtx::read_u64_acquire`]).
    #[track_caller]
    pub fn mmio_read_u64_acquire(&mut self, addr: Addr) -> u64 {
        if self.native {
            return self.mem.ram().read_u64_acquire(addr);
        }
        let site = Location::caller();
        let lat = self.mmio_route(addr, false, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::ReadAcquire, true, site);
        self.mem.ram().read_u64(addr)
    }

    /// Timed MMIO release store (publishes a publication-slot request; see
    /// [`ThreadCtx::read_u64_acquire`]).
    #[track_caller]
    pub fn mmio_write_u64_release(&mut self, addr: Addr, value: u64) {
        if self.native {
            return self.mem.ram().write_u64_release(addr, value);
        }
        let site = Location::caller();
        let lat = self.mmio_route(addr, true, site);
        self.sleep(lat);
        #[cfg(feature = "analysis")]
        self.trace(addr, 8, MemOp::WriteRelease, true, site);
        self.mem.ram().write_u64(addr, value);
    }
}

/// A boxed logical-thread body, as accepted by the object-safe spawning
/// surface ([`crate::engine::Spawner`]) shared by simulated and native runs.
pub type ThreadFn = Box<dyn FnOnce(&mut ThreadCtx) + Send + 'static>;

/// Outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Final clock of each logical thread, in spawn order.
    pub clocks: Vec<u64>,
    /// Thread names, in spawn order.
    pub names: Vec<String>,
    /// Whether each thread was a daemon.
    pub daemons: Vec<bool>,
}

impl SimOutcome {
    /// Largest final clock among non-daemon threads: the makespan of the
    /// measured work.
    pub fn makespan(&self) -> u64 {
        self.clocks
            .iter()
            .zip(&self.daemons)
            .filter(|(_, d)| !**d)
            .map(|(c, _)| *c)
            .max()
            .unwrap_or(0)
    }
}

/// A configured simulation: a memory system plus logical threads to run.
pub struct Simulation {
    mem: Arc<MemorySystem>,
    eng: Arc<EngineShared>,
    threads: Vec<Arc<ThreadShared>>,
    bodies: Vec<ThreadFn>,
    cpu_step: u64,
}

impl Simulation {
    /// Build a simulation with a fresh memory system for `cfg`.
    pub fn new(cfg: Config) -> Self {
        let cpu_step = cfg.cpu_step_cycles;
        Simulation {
            mem: Arc::new(MemorySystem::new(cfg)),
            eng: Arc::new(EngineShared {
                engine_thread: Mutex::new(None),
                stop: AtomicBool::new(false),
            }),
            threads: Vec::new(),
            bodies: Vec::new(),
            cpu_step,
        }
    }

    /// Build a simulation around an existing memory system (lets callers
    /// pre-populate structures through the untimed data plane first).
    pub fn with_memory(mem: Arc<MemorySystem>) -> Self {
        let cpu_step = mem.config().cpu_step_cycles;
        Simulation {
            mem,
            eng: Arc::new(EngineShared {
                engine_thread: Mutex::new(None),
                stop: AtomicBool::new(false),
            }),
            threads: Vec::new(),
            bodies: Vec::new(),
            cpu_step,
        }
    }

    /// Shared handle to the simulation's memory system.
    pub fn mem(&self) -> Arc<MemorySystem> {
        Arc::clone(&self.mem)
    }

    /// Add a logical thread. The simulation ends when all non-daemon
    /// threads return.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        kind: ThreadKind,
        f: impl FnOnce(&mut ThreadCtx) + Send + 'static,
    ) {
        self.spawn_inner(name.into(), kind, false, Box::new(f));
    }

    /// Add a daemon thread (an NMP core service loop): it must poll
    /// [`ThreadCtx::stop_requested`] and return promptly once it is set.
    pub fn spawn_daemon(
        &mut self,
        name: impl Into<String>,
        kind: ThreadKind,
        f: impl FnOnce(&mut ThreadCtx) + Send + 'static,
    ) {
        self.spawn_inner(name.into(), kind, true, Box::new(f));
    }

    fn spawn_inner(&mut self, name: String, kind: ThreadKind, daemon: bool, f: ThreadFn) {
        if let ThreadKind::Host { core } = kind {
            assert!(core < self.mem.config().host_cores, "core {core} out of range");
        }
        if let ThreadKind::Nmp { part } = kind {
            assert!(part < self.mem.config().nmp_partitions(), "partition {part} out of range");
        }
        self.threads.push(Arc::new(ThreadShared {
            name,
            kind,
            daemon,
            state: AtomicU32::new(ST_INIT),
            clock: AtomicU64::new(0),
            handle: Mutex::new(None),
            panicked: AtomicBool::new(false),
            panic_note: Mutex::new(None),
            gate: AtomicU32::new(barrier::GATE_NONE),
            deferred: Mutex::new(None),
        }));
        self.bodies.push(f);
    }

    /// Resolve how many vault shards this run uses: the config knob (or the
    /// `NMP_SIM_SHARDS` environment override), clamped to the partition
    /// count, with `0` meaning one shard per partition. `1` selects the
    /// legacy single-loop engine.
    fn resolved_vault_shards(&self) -> usize {
        self.mem.config().resolved_vault_shards()
    }

    /// Run to completion on the calling thread; returns per-thread clocks.
    /// Propagates the first panic raised inside any logical thread.
    ///
    /// Dispatches to the legacy single-loop engine (`shards == 1`) or the
    /// sharded per-vault loops (`shards != 1`); both produce byte-identical
    /// results (see `DESIGN.md` §4.9).
    pub fn run(self) -> SimOutcome {
        let vault_shards = self.resolved_vault_shards();
        let Simulation { mem, eng, threads, bodies, cpu_step } = self;
        assert!(!threads.is_empty(), "no threads spawned");
        *eng.engine_thread.lock() = Some(thread::current());

        #[cfg(feature = "analysis")]
        if let Some(a) = mem.analysis() {
            let roster: Vec<(String, ThreadKind)> =
                threads.iter().map(|t| (t.name.clone(), t.kind)).collect();
            a.on_sim_start(&roster);
        }

        #[cfg(feature = "trace")]
        if let Some(t) = mem.tracer() {
            let roster: Vec<(String, ThreadKind)> =
                threads.iter().map(|t| (t.name.clone(), t.kind)).collect();
            t.on_sim_start(&roster);
        }

        if vault_shards > 1 {
            return shard::run_sharded(mem, eng, threads, bodies, cpu_step, vault_shards);
        }
        run_legacy(mem, eng, threads, bodies, cpu_step)
    }
}

/// Spawn one OS thread per logical thread. Shared by both engines; `rt`
/// selects the sharded worker protocol (deferral context, peer-to-peer
/// handoff on exit) when present.
pub(super) fn spawn_workers(
    mem: &Arc<MemorySystem>,
    eng: &Arc<EngineShared>,
    threads: &[Arc<ThreadShared>],
    bodies: Vec<ThreadFn>,
    cpu_step: u64,
    rt: Option<Arc<ShardedRt>>,
) -> Vec<thread::JoinHandle<()>> {
    let mut joins = Vec::with_capacity(bodies.len());
    for (id, (ts, body)) in threads.iter().cloned().zip(bodies).enumerate() {
        let eng2 = Arc::clone(eng);
        let mem2 = Arc::clone(mem);
        let rt2 = rt.clone();
        joins.push(
            thread::Builder::new()
                .name(format!("sim-{}", ts.name))
                .spawn(move || {
                    *ts.handle.lock() = Some(thread::current());
                    // Announce readiness and wait for the first GO.
                    ts.state.store(ST_YIELD, Ordering::Release);
                    unpark(&eng2.engine_thread);
                    {
                        let ts2 = Arc::clone(&ts);
                        spin_wait(move || ts2.state.load(Ordering::Acquire) == ST_GO);
                    }
                    let my_shard = rt2.as_ref().map_or(0, |rt| rt.shard_of(ts.kind));
                    if let Some(rt) = &rt2 {
                        inbox::begin_thread(id, my_shard, rt.ctl_arc());
                    }
                    let mut ctx = ThreadCtx {
                        kind: ts.kind,
                        id,
                        ts: Arc::clone(&ts),
                        eng: Arc::clone(&eng2),
                        mem: mem2,
                        clock: ts.clock.load(Ordering::Acquire),
                        pending: 0,
                        cpu_step,
                        sharded: rt2.clone(),
                        my_shard,
                        next_gate: barrier::GATE_NONE,
                        native: false,
                    };
                    if rt2.is_some() {
                        inbox::set_clock(ctx.clock);
                    }
                    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                    // Start cycle of the turn the body returned in: the key
                    // at which the legacy scheduler would observe ST_DONE.
                    let final_turn = ctx.clock;
                    let final_clock = ctx.clock + ctx.pending;
                    ctx.ts.clock.store(final_clock, Ordering::Release);
                    if let Err(p) = result {
                        let msg = panic_message(p.as_ref());
                        *ts.panic_note.lock() = Some(format!(
                            "'{}' panicked at simulated cycle {final_clock}: {msg}",
                            ts.name
                        ));
                        ts.panicked.store(true, Ordering::Release);
                        if let Some(rt) = &rt2 {
                            rt.ctl().flag_panic();
                        }
                    }
                    if let Some(rt) = &rt2 {
                        if !ts.daemon {
                            rt.ctl().non_daemon_done(barrier::pack(final_turn, id));
                        }
                        ts.state.store(ST_DONE, Ordering::Release);
                        // Hand the shard's scheduling token to the next
                        // pending thread (and republish the frontiers).
                        rt.sched_step(my_shard, Some(id));
                        *ts.deferred.lock() = Some(inbox::end_thread());
                    } else {
                        ts.state.store(ST_DONE, Ordering::Release);
                        unpark(&eng2.engine_thread);
                    }
                })
                .expect("spawn sim thread"),
        );
    }
    joins
}

/// Wait until every worker has announced readiness (left `ST_INIT`).
pub(super) fn await_announcements(threads: &[Arc<ThreadShared>]) {
    for ts in threads {
        let ts2 = Arc::clone(ts);
        spin_wait(move || ts2.state.load(Ordering::Acquire) != ST_INIT);
    }
}

/// Join all workers, propagate the first panic, and build the outcome.
/// Shared by both engines.
pub(super) fn join_and_finish(
    threads: &[Arc<ThreadShared>],
    joins: Vec<thread::JoinHandle<()>>,
) -> SimOutcome {
    for j in joins {
        let _ = j.join();
    }
    if threads.iter().any(|t| t.panicked.load(Ordering::Acquire)) {
        let notes: Vec<String> = threads
            .iter()
            .filter(|t| t.panicked.load(Ordering::Acquire))
            .map(|t| {
                t.panic_note.lock().take().unwrap_or_else(|| format!("'{}' (message lost)", t.name))
            })
            .collect();
        panic!("simulated thread(s) panicked: {}", notes.join("; "));
    }
    SimOutcome {
        clocks: threads.iter().map(|t| t.clock.load(Ordering::Acquire)).collect(),
        names: threads.iter().map(|t| t.name.clone()).collect(),
        daemons: threads.iter().map(|t| t.daemon).collect(),
    }
}

/// The original single-scheduler event loop: one engine thread resumes the
/// globally minimum-key logical thread, one at a time.
fn run_legacy(
    mem: Arc<MemorySystem>,
    eng: Arc<EngineShared>,
    threads: Vec<Arc<ThreadShared>>,
    bodies: Vec<ThreadFn>,
    cpu_step: u64,
) -> SimOutcome {
    let joins = spawn_workers(&mem, &eng, &threads, bodies, cpu_step, None);
    await_announcements(&threads);

    let mut schedules_after_stop = 0u64;
    loop {
        let mut best: Option<(u64, usize)> = None;
        let mut all_workers_done = true;
        let mut live_panic = false;
        for (i, ts) in threads.iter().enumerate() {
            match ts.state.load(Ordering::Acquire) {
                ST_YIELD => {
                    all_workers_done = false;
                    let c = ts.clock.load(Ordering::Acquire);
                    if best.is_none_or(|(bc, bi)| (c, i) < (bc, bi)) {
                        best = Some((c, i));
                    }
                }
                ST_DONE => {
                    if ts.panicked.load(Ordering::Acquire) {
                        live_panic = true;
                    }
                }
                _ => all_workers_done = false,
            }
        }
        if live_panic {
            // Release everything so remaining threads can be joined.
            eng.stop.store(true, Ordering::Release);
        }
        let non_daemons_done = threads
            .iter()
            .filter(|t| !t.daemon)
            .all(|t| t.state.load(Ordering::Acquire) == ST_DONE);
        if non_daemons_done {
            eng.stop.store(true, Ordering::Release);
        }
        if all_workers_done {
            break;
        }
        let Some((_, i)) = best else {
            // Threads exist that are neither YIELD nor DONE: still
            // starting up; give them a moment.
            thread::yield_now();
            continue;
        };
        if eng.stop.load(Ordering::Acquire) {
            schedules_after_stop += 1;
            assert!(
                schedules_after_stop < 1_000_000,
                "daemon threads are not honoring stop_requested()"
            );
        }
        let ts = &threads[i];
        ts.state.store(ST_GO, Ordering::Release);
        unpark(&ts.handle);
        let ts2 = Arc::clone(ts);
        spin_wait(move || ts2.state.load(Ordering::Acquire) != ST_GO);
    }

    join_and_finish(&threads, joins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn tiny_sim() -> Simulation {
        Simulation::new(Config::tiny())
    }

    #[test]
    fn single_thread_reads_what_it_wrote() {
        let mut sim = tiny_sim();
        let base = sim.mem().map().host_base;
        sim.spawn("t0", ThreadKind::Host { core: 0 }, move |ctx| {
            ctx.write_u64(base, 42);
            assert_eq!(ctx.read_u64(base), 42);
        });
        let out = sim.run();
        assert!(out.makespan() > 0);
    }

    #[test]
    fn clock_advances_by_latency() {
        let mut sim = tiny_sim();
        let base = sim.mem().map().host_base;
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        sim.spawn("t0", ThreadKind::Host { core: 0 }, move |ctx| {
            let t0 = ctx.now();
            let _ = ctx.read_u64(base); // cold: L1+L2+DRAM
            seen2.store(ctx.now() - t0, Ordering::Relaxed);
        });
        sim.run();
        let lat = seen.load(Ordering::Relaxed);
        assert!(lat > 22, "cold read should cost more than L1+L2 ({lat})");
    }

    #[test]
    fn min_clock_scheduling_orders_effects() {
        // Thread A writes at t=10 (after a cheap advance); thread B writes
        // at t=1000. Final value must be B's.
        let mut sim = tiny_sim();
        let base = sim.mem().map().host_base;
        sim.spawn("a", ThreadKind::Host { core: 0 }, move |ctx| {
            ctx.advance(10);
            ctx.write_u64(base, 1);
        });
        sim.spawn("b", ThreadKind::Host { core: 1 }, move |ctx| {
            ctx.advance(1000);
            ctx.write_u64(base, 2);
        });
        let mem = sim.mem();
        sim.run();
        assert_eq!(mem.ram().read_u64(base), 2);
    }

    #[test]
    fn cas_succeeds_once_across_threads() {
        let mut sim = tiny_sim();
        let base = sim.mem().map().host_base;
        let wins = Arc::new(AtomicUsize::new(0));
        for core in 0..4 {
            let wins = Arc::clone(&wins);
            sim.spawn(format!("t{core}"), ThreadKind::Host { core }, move |ctx| {
                if ctx.cas_u64(base, 0, core as u64 + 1).is_ok() {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        sim.run();
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn deterministic_makespan() {
        let run = || {
            let mut sim = tiny_sim();
            let base = sim.mem().map().host_base;
            for core in 0..4 {
                sim.spawn(format!("t{core}"), ThreadKind::Host { core }, move |ctx| {
                    for i in 0..50u32 {
                        let a = base + ((i * 7919 + core as u32 * 104729) % 1024) * 8;
                        if i % 3 == 0 {
                            ctx.write_u64(a, i as u64);
                        } else {
                            let _ = ctx.read_u64(a);
                        }
                        ctx.step();
                    }
                });
            }
            sim.run().makespan()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn daemon_exits_on_stop() {
        let mut sim = tiny_sim();
        let polls = Arc::new(AtomicUsize::new(0));
        let polls2 = Arc::clone(&polls);
        sim.spawn_daemon("nmp0", ThreadKind::Nmp { part: 0 }, move |ctx| {
            while !ctx.stop_requested() {
                polls2.fetch_add(1, Ordering::Relaxed);
                ctx.idle(16);
            }
        });
        let base = sim.mem().map().host_base;
        sim.spawn("host", ThreadKind::Host { core: 0 }, move |ctx| {
            for i in 0..20 {
                let _ = ctx.read_u64(base + i * 8);
            }
        });
        let out = sim.run();
        assert!(polls.load(Ordering::Relaxed) > 0);
        assert!(out.makespan() > 0);
    }

    #[test]
    fn makespan_ignores_daemons() {
        let mut sim = tiny_sim();
        sim.spawn_daemon("nmp0", ThreadKind::Nmp { part: 0 }, |ctx| {
            while !ctx.stop_requested() {
                ctx.idle(1000);
            }
        });
        let base = sim.mem().map().host_base;
        sim.spawn("host", ThreadKind::Host { core: 0 }, move |ctx| {
            let _ = ctx.read_u64(base);
        });
        let out = sim.run();
        // daemon clock may be far past host's; makespan must track host.
        let host_clock = out.clocks[1];
        assert_eq!(out.makespan(), host_clock);
    }

    #[test]
    #[should_panic(expected = "simulated thread(s) panicked")]
    fn worker_panic_propagates() {
        let mut sim = tiny_sim();
        sim.spawn("bad", ThreadKind::Host { core: 0 }, |_ctx| {
            panic!("boom");
        });
        sim.spawn("good", ThreadKind::Host { core: 1 }, |ctx| {
            ctx.idle(5);
        });
        sim.run();
    }

    #[test]
    fn worker_panic_carries_name_clock_and_message() {
        let mut sim = tiny_sim();
        sim.spawn("exploder", ThreadKind::Host { core: 0 }, |ctx| {
            ctx.advance(123);
            ctx.idle(7);
            panic!("kaboom {}", 42);
        });
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("simulated thread(s) panicked"), "{msg}");
        assert!(msg.contains("'exploder'"), "missing thread name: {msg}");
        assert!(msg.contains("simulated cycle 130"), "missing clock: {msg}");
        assert!(msg.contains("kaboom 42"), "missing payload message: {msg}");
    }

    #[test]
    fn nmp_thread_accesses_its_partition() {
        let mut sim = tiny_sim();
        let part0 = sim.mem().map().part_base(0);
        sim.spawn("nmp0", ThreadKind::Nmp { part: 0 }, move |ctx| {
            ctx.write_u64(part0, 7);
            assert_eq!(ctx.read_u64(part0), 7);
        });
        sim.run();
    }

    #[test]
    fn mmio_visible_between_host_and_nmp() {
        let mut sim = tiny_sim();
        let spad = sim.mem().map().spad_base(0);
        sim.spawn_daemon("nmp0", ThreadKind::Nmp { part: 0 }, move |ctx| {
            loop {
                let v = ctx.read_u64(spad);
                if v == 1 {
                    ctx.write_u64(spad + 8, 99);
                    break;
                }
                if ctx.stop_requested() {
                    return;
                }
                ctx.idle(16);
            }
            while !ctx.stop_requested() {
                ctx.idle(16);
            }
        });
        sim.spawn("host", ThreadKind::Host { core: 0 }, move |ctx| {
            ctx.mmio_write_u64(spad, 1);
            loop {
                if ctx.mmio_read_u64(spad + 8) == 99 {
                    break;
                }
                ctx.idle(40);
            }
        });
        sim.run();
    }

    #[test]
    fn advance_is_lazy_but_counted() {
        let mut sim = tiny_sim();
        let base = sim.mem().map().host_base;
        let end = Arc::new(AtomicU64::new(0));
        let end2 = Arc::clone(&end);
        sim.spawn("t", ThreadKind::Host { core: 0 }, move |ctx| {
            ctx.advance(500);
            let _ = ctx.read_u64(base);
            end2.store(ctx.now(), Ordering::Relaxed);
        });
        sim.run();
        assert!(end.load(Ordering::Relaxed) >= 500);
    }
}
