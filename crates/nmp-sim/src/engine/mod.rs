//! The deterministic simulation engine.
//!
//! The engine has two execution strategies that produce byte-identical
//! results (same final memory image, same [`SimOutcome`], same analysis and
//! trace streams) for the same program and configuration:
//!
//! * **Legacy single loop** (`core`): one scheduler thread resumes the
//!   globally minimum-key logical thread, one at a time. Selected with
//!   `Config::shards == 1` (or `NMP_SIM_SHARDS=1`).
//! * **Sharded loops** (`shard`, `inbox`, `barrier`): a host shard
//!   plus one shard per vault/partition group, each running its own
//!   minimum-key loop over the threads it owns. Cross-shard effects are
//!   gated by conservative time-window barriers on the other shards' clock
//!   frontiers, and trace/analysis side effects are deferred to per-shard
//!   buffers merged in `(cycle, spawn id, seq)` order at the serialization
//!   point — reproducing exactly the `(completion cycle, spawn id)` order
//!   the legacy loop serializes.
//!
//! See `DESIGN.md` §4.9 for the shard topology and the determinism
//! argument.

mod barrier;
mod core;
mod inbox;
mod native;
mod shard;

#[cfg(feature = "analysis")]
pub(crate) use self::inbox::defer_analysis;
#[cfg(feature = "trace")]
pub(crate) use self::inbox::defer_trace;
pub(crate) use self::inbox::quiesce_for_global_mutation;

pub use self::core::{SimOutcome, Simulation, ThreadCtx, ThreadFn, ThreadKind};
pub use self::native::{NativeRun, Spawner};
