//! Cycle-level tracing and latency observability (cargo feature `trace`).
//!
//! A [`Tracer`] is attached to a [`crate::Machine`] (via
//! `Machine::attach_tracer`, mirroring the `analysis` subsystem) and records
//! cycle-stamped events for the full offloaded-op lifecycle:
//!
//! - **op umbrellas** — async begin/end pairs spanning each op's invocation
//!   to completion on its host thread's track (overlapping in lane-pipelined
//!   mode);
//! - **phase spans** — MMIO `post` spans on host tracks, `exec` and `batch`
//!   spans on NMP combiner tracks, plus `retry` instants on re-issue;
//! - **memory events** — per-access DRAM vault `busy` spans and host
//!   `llc-miss` instants, recorded by [`crate::MemorySystem`] at the engine's
//!   serialization point;
//! - **counter tracks** — e.g. the pqueue minima-cache stale-empty probe
//!   counter.
//!
//! Everything is *untimed*: recording happens as a side effect of timed
//! accesses that already exist, never adds simulated cycles, and is a no-op
//! when no tracer is attached — simulated cycle counts are identical with
//! and without the feature. Events land in a bounded drop-oldest ring
//! ([`Config::trace_buffer_events`](crate::Config::trace_buffer_events)), so
//! memory stays bounded on long runs.
//!
//! Determinism: every recording call happens while its logical thread is the
//! single running thread of the deterministic engine, op ids are assigned
//! from a counter under the tracer lock at those serialized points, and no
//! wall-clock data is recorded — so the full event sequence, and therefore
//! the exported Chrome-trace JSON ([`TraceSink::chrome_json`]), is
//! byte-identical across runs of the same seed and config.
//!
//! Span accounting invariant (checked by `tests/trace_export.rs`): for every
//! completed op, `host + post + wait == end - start` exactly, and
//! `wait == queue + exec + drain` summed over the op's publication-list legs
//! — the host-side cursor marks and NMP-side exec windows tile an op's
//! lifetime with no gaps or overlaps.

mod buffer;
mod chrome;
mod hist;

pub use buffer::{TraceEvent, Track};
pub use chrome::TraceSink;
pub use hist::LatencyHist;

use crate::engine::ThreadKind;
use buffer::EventRing;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Number of distinct op kinds the tracer aggregates over.
pub const OP_KINDS: usize = 7;

/// Human-readable label for an op kind byte (see `hybrids::offload::op_kind`
/// for the mapping from workload ops).
pub fn kind_label(kind: u8) -> &'static str {
    match kind {
        0 => "read",
        1 => "insert",
        2 => "remove",
        3 => "update",
        4 => "scan",
        5 => "extract_min",
        _ => "other",
    }
}

/// Cycle attribution of one completed op, reported by the offload runtime at
/// op completion.
///
/// `host + post + wait == end - start` exactly; `queue + exec + drain ==
/// wait` when every publication-list leg's NMP exec window was correlated
/// (always, in-engine — see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Tracer-assigned op id (matches the op's umbrella events).
    pub op: u64,
    /// Op kind (see [`kind_label`]).
    pub kind: u8,
    /// Invocation cycle.
    pub start: u64,
    /// Completion cycle.
    pub end: u64,
    /// Cycles spent running host-side client code (advance/complete phases,
    /// stall idles, pipelined gaps while unposted).
    pub host: u64,
    /// Cycles spent writing MMIO publication slots.
    pub post: u64,
    /// Cycles from each post's completion to the host observing its
    /// response, summed over legs.
    pub wait: u64,
    /// Portion of `wait` before the NMP combiner began executing the request.
    pub queue: u64,
    /// Portion of `wait` inside the combiner's execute+complete window.
    pub exec: u64,
    /// Portion of `wait` from the combiner's release-store of the response to
    /// the host's observing acquire read (includes the response MMIO reads).
    pub drain: u64,
    /// Number of publication-list legs (posts) the op performed.
    pub legs: u32,
}

/// Aggregate phase totals over completed ops (per kind or overall).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Completed ops aggregated.
    pub ops: u64,
    /// Σ end-to-end latency.
    pub total: u64,
    /// Σ host phase cycles.
    pub host: u64,
    /// Σ MMIO post cycles.
    pub post: u64,
    /// Σ wait cycles (= queue + exec + drain).
    pub wait: u64,
    /// Σ pre-exec queueing cycles.
    pub queue: u64,
    /// Σ NMP execution-window cycles.
    pub exec: u64,
    /// Σ response-drain cycles.
    pub drain: u64,
    /// Σ publication-list legs.
    pub legs: u64,
}

impl PhaseTotals {
    fn add(&mut self, r: &OpRecord) {
        self.ops += 1;
        self.total += r.end - r.start;
        self.host += r.host;
        self.post += r.post;
        self.wait += r.wait;
        self.queue += r.queue;
        self.exec += r.exec;
        self.drain += r.drain;
        self.legs += u64::from(r.legs);
    }
}

/// Lifecycle counters for cross-checking span accounting at quiescence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Ops that recorded an umbrella begin.
    pub ops_begun: u64,
    /// Ops that recorded an umbrella end (== begun at quiescence).
    pub ops_completed: u64,
    /// Publication-list legs posted by host clients.
    pub legs_posted: u64,
    /// Legs executed by NMP combiners (== posted at quiescence).
    pub legs_executed: u64,
    /// Legs whose response the host observed (== posted at quiescence).
    pub legs_observed: u64,
    /// Events currently held in the ring.
    pub events: u64,
    /// Events evicted from the ring (oldest-first).
    pub events_dropped: u64,
}

/// An open publication-list leg, keyed by `(partition, slot)`.
#[derive(Debug, Clone, Copy)]
struct Leg {
    op: u64,
    posted: u64,
    exec_start: u64,
    exec_end: u64,
    executed: bool,
}

#[derive(Debug)]
struct Inner {
    events: EventRing,
    roster: Vec<(String, ThreadKind)>,
    next_op: u64,
    legs: BTreeMap<(usize, usize), Leg>,
    records: Vec<OpRecord>,
    totals: [PhaseTotals; OP_KINDS],
    hist: [LatencyHist; OP_KINDS],
    ops_begun: u64,
    ops_completed: u64,
    legs_posted: u64,
    legs_executed: u64,
    legs_observed: u64,
}

/// The structured event tracer. One per [`crate::Machine`]; see module docs.
#[derive(Debug)]
pub struct Tracer {
    cap: usize,
    inner: Mutex<Inner>,
}

impl Tracer {
    /// New tracer with an event-ring (and op-record) capacity of `cap`.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            inner: Mutex::new(Inner {
                events: EventRing::new(cap),
                roster: Vec::new(),
                next_op: 0,
                legs: BTreeMap::new(),
                records: Vec::new(),
                totals: [PhaseTotals::default(); OP_KINDS],
                hist: std::array::from_fn(|_| LatencyHist::new()),
                ops_begun: 0,
                ops_completed: 0,
                legs_posted: 0,
                legs_executed: 0,
                legs_observed: 0,
            }),
        }
    }

    /// Called by [`crate::Simulation::run`] with the spawned thread roster;
    /// names the exporter's per-thread tracks.
    pub fn on_sim_start(&self, roster: &[(String, ThreadKind)]) {
        self.inner.lock().roster = roster.to_vec();
    }

    /// Route an event into the ring — or, under the sharded engine, into the
    /// calling logical thread's deferred log, to be merged and replayed in
    /// global key order after the run (keeps the exported stream
    /// byte-identical to the legacy loop's).
    fn emit(&self, g: &mut Inner, ev: TraceEvent) {
        if !crate::engine::defer_trace(ev, self.cap) {
            g.events.push(ev);
        }
    }

    /// Feed the merged deferred event stream back into the ring after a
    /// sharded run; `early_dropped` counts events already evicted from the
    /// per-thread logs by the same drop-oldest bound the ring applies.
    pub(crate) fn replay(&self, events: Vec<TraceEvent>, early_dropped: u64) {
        let mut g = self.inner.lock();
        for ev in events {
            g.events.push(ev);
        }
        g.events.add_dropped(early_dropped);
    }

    /// Begin an op umbrella on `core`'s track; returns the op id.
    pub fn op_begin(&self, core: usize, kind: u8, now: u64) -> u64 {
        let mut g = self.inner.lock();
        let op = g.next_op;
        g.next_op += 1;
        g.ops_begun += 1;
        self.emit(&mut g, TraceEvent::OpBegin { core, kind, op, ts: now });
        op
    }

    /// Complete an op: emits the umbrella end, records latency into the
    /// per-kind histogram, and folds the record into phase totals.
    pub fn op_end(&self, core: usize, rec: OpRecord) {
        let mut g = self.inner.lock();
        let kind = (rec.kind as usize).min(OP_KINDS - 1);
        g.ops_completed += 1;
        g.totals[kind].add(&rec);
        g.hist[kind].record(rec.end - rec.start);
        if g.records.len() < self.cap {
            g.records.push(rec);
        }
        self.emit(&mut g, TraceEvent::OpEnd { core, kind: rec.kind, op: rec.op, ts: rec.end });
    }

    /// Record a publication post: a `post` span on the host track and an open
    /// leg on `(part, slot)` awaiting its NMP exec window and host observe.
    pub fn note_post(&self, core: usize, part: usize, slot: usize, op: u64, start: u64, end: u64) {
        let mut g = self.inner.lock();
        g.legs_posted += 1;
        self.emit(
            &mut g,
            TraceEvent::Span { track: Track::Host(core), name: "post", start, end, arg: op },
        );
        g.legs.insert(
            (part, slot),
            Leg { op, posted: end, exec_start: 0, exec_end: 0, executed: false },
        );
    }

    /// Record an NMP combiner's execute+complete window for `(part, slot)`;
    /// emits an `exec` span on the partition's NMP track.
    pub fn note_exec(&self, part: usize, slot: usize, start: u64, end: u64) {
        let mut g = self.inner.lock();
        g.legs_executed += 1;
        let op = if let Some(leg) = g.legs.get_mut(&(part, slot)) {
            leg.exec_start = start;
            leg.exec_end = end;
            leg.executed = true;
            leg.op
        } else {
            0
        };
        self.emit(
            &mut g,
            TraceEvent::Span { track: Track::Nmp(part), name: "exec", start, end, arg: op },
        );
    }

    /// Record a combiner batch pass over `part` that executed `n` requests.
    pub fn note_batch(&self, part: usize, start: u64, end: u64, n: u64) {
        let mut g = self.inner.lock();
        self.emit(
            &mut g,
            TraceEvent::Span { track: Track::Nmp(part), name: "batch", start, end, arg: n },
        );
    }

    /// The host observed the response for `(part, slot)` at cycle `now`:
    /// closes the leg and returns its `(queue, exec, drain)` decomposition,
    /// or `None` if no executed leg was open (never happens in-engine; see
    /// module docs).
    pub fn leg_observed(&self, part: usize, slot: usize, now: u64) -> Option<(u64, u64, u64)> {
        let mut g = self.inner.lock();
        let leg = g.legs.remove(&(part, slot))?;
        if !leg.executed || leg.exec_start < leg.posted || now < leg.exec_end {
            return None;
        }
        g.legs_observed += 1;
        Some((leg.exec_start - leg.posted, leg.exec_end - leg.exec_start, now - leg.exec_end))
    }

    /// Emit a zero-duration marker on `track`.
    pub fn instant(&self, track: Track, name: &'static str, ts: u64) {
        let mut g = self.inner.lock();
        self.emit(&mut g, TraceEvent::Instant { track, name, ts });
    }

    /// Emit a counter-track sample.
    pub fn counter(&self, name: &'static str, ts: u64, value: u64) {
        let mut g = self.inner.lock();
        self.emit(&mut g, TraceEvent::Counter { name, ts, value });
    }

    /// Record a DRAM vault busy window (one per vault access).
    pub fn vault_busy(&self, vault: usize, start: u64, end: u64) {
        let mut g = self.inner.lock();
        self.emit(
            &mut g,
            TraceEvent::Span { track: Track::Vault(vault), name: "busy", start, end, arg: 0 },
        );
    }

    /// Record a host last-level-cache miss on `core` at cycle `ts`.
    pub fn llc_miss(&self, core: usize, ts: u64) {
        self.instant(Track::Host(core), "llc-miss", ts);
    }

    /// Lifecycle counters (see [`TraceSummary`]).
    pub fn summary(&self) -> TraceSummary {
        let g = self.inner.lock();
        TraceSummary {
            ops_begun: g.ops_begun,
            ops_completed: g.ops_completed,
            legs_posted: g.legs_posted,
            legs_executed: g.legs_executed,
            legs_observed: g.legs_observed,
            events: g.events.len() as u64,
            events_dropped: g.events.dropped(),
        }
    }

    /// Per-op cycle-attribution records (bounded by the ring capacity; the
    /// first `cap` completed ops are kept).
    pub fn op_records(&self) -> Vec<OpRecord> {
        self.inner.lock().records.clone()
    }

    /// Phase totals per op kind, only for kinds that completed ops.
    pub fn phase_totals(&self) -> Vec<(u8, PhaseTotals)> {
        let g = self.inner.lock();
        (0..OP_KINDS as u8)
            .filter(|&k| g.totals[k as usize].ops > 0)
            .map(|k| (k, g.totals[k as usize]))
            .collect()
    }

    /// Phase totals summed across all op kinds.
    pub fn phase_totals_all(&self) -> PhaseTotals {
        let g = self.inner.lock();
        let mut all = PhaseTotals::default();
        for t in &g.totals {
            all.ops += t.ops;
            all.total += t.total;
            all.host += t.host;
            all.post += t.post;
            all.wait += t.wait;
            all.queue += t.queue;
            all.exec += t.exec;
            all.drain += t.drain;
            all.legs += t.legs;
        }
        all
    }

    /// End-to-end latency histogram for one op kind (`None` if no ops of that
    /// kind completed).
    pub fn latency_hist(&self, kind: u8) -> Option<LatencyHist> {
        let g = self.inner.lock();
        let h = g.hist.get(kind as usize)?;
        if h.count() == 0 {
            None
        } else {
            Some(h.clone())
        }
    }

    /// Snapshot of the surviving ring events, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().copied().collect()
    }

    /// The thread roster captured at the last `Simulation::run`.
    pub fn roster(&self) -> Vec<(String, ThreadKind)> {
        self.inner.lock().roster.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_lifecycle_and_leg_decomposition() {
        let t = Tracer::new(64);
        let op = t.op_begin(0, 0, 100);
        t.note_post(0, 1, 3, op, 110, 120);
        t.note_exec(1, 3, 150, 170);
        let (q, e, d) = t.leg_observed(1, 3, 200).expect("leg closes");
        assert_eq!((q, e, d), (30, 20, 30));
        t.op_end(
            0,
            OpRecord {
                op,
                kind: 0,
                start: 100,
                end: 210,
                host: 20,
                post: 10,
                wait: 80,
                queue: q,
                exec: e,
                drain: d,
                legs: 1,
            },
        );
        let s = t.summary();
        assert_eq!(s.ops_begun, 1);
        assert_eq!(s.ops_completed, 1);
        assert_eq!(s.legs_posted, 1);
        assert_eq!(s.legs_executed, 1);
        assert_eq!(s.legs_observed, 1);
        let all = t.phase_totals_all();
        assert_eq!(all.total, 110);
        assert_eq!(all.host + all.post + all.wait, all.total);
        assert_eq!(all.queue + all.exec + all.drain, all.wait);
        let rec = t.op_records();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].end - rec[0].start, 110);
    }

    #[test]
    fn observe_without_leg_is_none() {
        let t = Tracer::new(8);
        assert_eq!(t.leg_observed(0, 0, 5), None);
    }
}
