//! Chrome-trace / Perfetto JSON export.
//!
//! Produces the Trace Event Format JSON (`{"traceEvents":[...]}`) that both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev) load
//! directly. Tracks map to `(pid, tid)` pairs:
//!
//! | pid | process  | tid                       |
//! |-----|----------|---------------------------|
//! | 1   | `host`   | host core index           |
//! | 2   | `nmp`    | partition index           |
//! | 3   | `vaults` | global DRAM vault index   |
//!
//! Timestamps are raw simulated cycles written as integers (Perfetto renders
//! them as microseconds: 1 cycle displays as 1 µs). The export is built by
//! string formatting of integers only, so identical event sequences yield
//! byte-identical JSON — the property the determinism test pins down.

use super::buffer::{TraceEvent, Track};
use super::{kind_label, Tracer};
use crate::engine::ThreadKind;
use std::collections::BTreeSet;
use std::fmt::Write as _;

const PID_HOST: u32 = 1;
const PID_NMP: u32 = 2;
const PID_VAULT: u32 = 3;

fn pid_tid(track: Track) -> (u32, usize) {
    match track {
        Track::Host(core) => (PID_HOST, core),
        Track::Nmp(part) => (PID_NMP, part),
        Track::Vault(v) => (PID_VAULT, v),
    }
}

/// Escape a thread name for embedding in a JSON string literal.
fn esc(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Exporter for recorded traces. Stateless; see [`TraceSink::chrome_json`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSink;

impl TraceSink {
    /// Serialize `tracer`'s surviving events as Chrome-trace JSON.
    ///
    /// Emits `process_name`/`thread_name` metadata first (host threads and
    /// NMP combiners named from the simulation roster, vault tracks from the
    /// vault ids that actually appear in events), then the events in record
    /// order. Deterministic: byte-identical across runs of the same
    /// seed/config.
    pub fn chrome_json(tracer: &Tracer) -> String {
        let events = tracer.events();
        let roster = tracer.roster();
        let mut out = String::with_capacity(events.len() * 96 + 1024);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, line: &str| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(line);
        };

        for (pid, name) in [(PID_HOST, "host"), (PID_NMP, "nmp"), (PID_VAULT, "vaults")] {
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
        for (name, kind) in &roster {
            let (pid, tid) = match kind {
                ThreadKind::Host { core } => (PID_HOST, *core),
                ThreadKind::Nmp { part } => (PID_NMP, *part),
            };
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                    esc(name)
                ),
            );
        }
        let vaults: BTreeSet<usize> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { track: Track::Vault(v), .. }
                | TraceEvent::Instant { track: Track::Vault(v), .. } => Some(*v),
                _ => None,
            })
            .collect();
        for v in vaults {
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_VAULT},\"tid\":{v},\"args\":{{\"name\":\"vault-{v}\"}}}}"
                ),
            );
        }

        let mut line = String::new();
        for ev in &events {
            line.clear();
            match *ev {
                TraceEvent::Span { track, name, start, end, arg } => {
                    let (pid, tid) = pid_tid(track);
                    let dur = end.saturating_sub(start);
                    let _ = write!(
                        line,
                        "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{start},\"dur\":{dur},\"args\":{{\"v\":{arg}}}}}"
                    );
                }
                TraceEvent::OpBegin { core, kind, op, ts } => {
                    let _ = write!(
                        line,
                        "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"b\",\"id\":{op},\"pid\":{PID_HOST},\"tid\":{core},\"ts\":{ts}}}",
                        kind_label(kind)
                    );
                }
                TraceEvent::OpEnd { core, kind, op, ts } => {
                    let _ = write!(
                        line,
                        "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"e\",\"id\":{op},\"pid\":{PID_HOST},\"tid\":{core},\"ts\":{ts}}}",
                        kind_label(kind)
                    );
                }
                TraceEvent::Instant { track, name, ts } => {
                    let (pid, tid) = pid_tid(track);
                    let _ = write!(
                        line,
                        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
                    );
                }
                TraceEvent::Counter { name, ts, value } => {
                    let _ = write!(
                        line,
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{PID_HOST},\"tid\":0,\"ts\":{ts},\"args\":{{\"value\":{value}}}}}"
                    );
                }
            }
            push(&mut out, &line);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_valid_json_and_deterministic() {
        let make = || {
            let t = Tracer::new(32);
            t.on_sim_start(&[
                ("host-0".to_string(), ThreadKind::Host { core: 0 }),
                ("combiner-0".to_string(), ThreadKind::Nmp { part: 0 }),
            ]);
            let op = t.op_begin(0, 1, 5);
            t.note_post(0, 0, 0, op, 6, 9);
            t.note_exec(0, 0, 12, 20);
            t.leg_observed(0, 0, 25);
            t.op_end(
                0,
                super::super::OpRecord {
                    op,
                    kind: 1,
                    start: 5,
                    end: 25,
                    host: 1,
                    post: 3,
                    wait: 16,
                    queue: 3,
                    exec: 8,
                    drain: 5,
                    legs: 1,
                },
            );
            t.vault_busy(2, 13, 18);
            t.counter("pq_stale_probes", 22, 1);
            TraceSink::chrome_json(&t)
        };
        let a = make();
        let b = make();
        assert_eq!(a, b, "export must be byte-identical");
        let v = serde_json::parse_value_str(&a).expect("valid JSON");
        let evs = v.field("traceEvents").expect("traceEvents field");
        match evs {
            serde::Value::Array(items) => {
                assert!(items.len() >= 8, "expected metadata + events, got {}", items.len())
            }
            other => panic!("traceEvents is {}", other.kind()),
        }
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c d");
    }
}
