//! Bounded ring buffer of trace events.
//!
//! The tracer never allocates proportionally to run length: once the ring is
//! full the oldest event is dropped (and counted), so attaching a tracer to
//! an arbitrarily long simulation has bounded memory. Eviction is purely a
//! function of push order, which is itself deterministic (pushes happen from
//! engine-serialized logical threads), so the surviving event sequence is
//! bit-for-bit reproducible across runs.

use std::collections::VecDeque;

/// A logical track (row) a trace event belongs to.
///
/// Tracks map 1:1 onto Chrome-trace `(pid, tid)` pairs in the exporter: host
/// threads under one process, NMP combiner cores under another, DRAM vaults
/// under a third.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// A logical host thread, identified by its host core index.
    Host(usize),
    /// An NMP combiner core, identified by its partition index.
    Nmp(usize),
    /// A DRAM vault, identified by its global vault index.
    Vault(usize),
}

/// One cycle-stamped trace event.
///
/// All payloads are plain integers or `'static` names: no wall-clock data
/// ever enters the trace, which is what makes exports byte-identical across
/// runs of the same seed/config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed duration span on a track (`ph:"X"` in Chrome trace).
    /// `arg` carries the op id for op-lifecycle spans and the batch size for
    /// combiner-pass spans.
    Span {
        /// Track the span is drawn on.
        track: Track,
        /// Static span name (`"post"`, `"exec"`, `"batch"`, `"busy"`, ...).
        name: &'static str,
        /// Start cycle.
        start: u64,
        /// End cycle (inclusive of the last timed access's completion).
        end: u64,
        /// Span argument (op id or batch size, depending on `name`).
        arg: u64,
    },
    /// Start of an op's end-to-end umbrella (async `ph:"b"`); umbrellas may
    /// overlap on one host track in lane-pipelined mode.
    OpBegin {
        /// Issuing host core.
        core: usize,
        /// Op kind (see [`super::kind_label`]).
        kind: u8,
        /// Globally unique (per tracer) op id.
        op: u64,
        /// Invocation cycle.
        ts: u64,
    },
    /// End of an op's umbrella (async `ph:"e"`).
    OpEnd {
        /// Issuing host core.
        core: usize,
        /// Op kind (see [`super::kind_label`]).
        kind: u8,
        /// Op id matching the corresponding [`TraceEvent::OpBegin`].
        op: u64,
        /// Completion cycle.
        ts: u64,
    },
    /// A zero-duration marker (`ph:"i"`), e.g. a retry re-issue or LLC miss.
    Instant {
        /// Track the marker is drawn on.
        track: Track,
        /// Static marker name.
        name: &'static str,
        /// Cycle the marker is stamped at.
        ts: u64,
    },
    /// A counter-track sample (`ph:"C"`), e.g. pqueue stale-empty probes.
    Counter {
        /// Counter-track name.
        name: &'static str,
        /// Cycle of the sample.
        ts: u64,
        /// Counter value at `ts`.
        value: u64,
    },
}

/// Fixed-capacity drop-oldest ring of [`TraceEvent`]s.
#[derive(Debug)]
pub(crate) struct EventRing {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    pub(crate) fn new(cap: usize) -> Self {
        Self { buf: VecDeque::with_capacity(cap.min(4096)), cap: cap.max(1), dropped: 0 }
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Account for events dropped upstream (the sharded engine's per-thread
    /// deferred logs apply the same drop-oldest bound before the merge).
    pub(crate) fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = EventRing::new(2);
        for i in 0..5u64 {
            r.push(TraceEvent::Counter { name: "c", ts: i, value: i });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let ts: Vec<u64> = r
            .iter()
            .map(|e| match e {
                TraceEvent::Counter { ts, .. } => *ts,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts, vec![3, 4]);
    }
}
