//! Log-bucketed latency histogram.
//!
//! Power-of-two buckets over `u64` cycle counts: bucket `0` covers `[0, 2)`,
//! bucket `b >= 1` covers `[2^b, 2^(b+1))`. Recording is O(1) and allocation
//! free; percentile queries linearly interpolate inside the winning bucket,
//! so results are deterministic (pure integer/f64 arithmetic, no sampling).

/// Number of power-of-two buckets; covers the full `u64` range.
const BUCKETS: usize = 64;

/// Log-bucketed histogram of per-op latencies in cycles.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket(v: u64) -> usize {
        (63 - v.max(1).leading_zeros()) as usize
    }

    /// Bucket bounds `[lo, hi)` for bucket `b`.
    fn bounds(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 2)
        } else {
            (1u64 << b, (1u64 << b).saturating_mul(2))
        }
    }

    /// Record one latency sample (cycles).
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), interpolated linearly within
    /// the winning log bucket and clamped to the observed min/max. 0.0 when
    /// the histogram is empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().clamp(1.0, self.count as f64) as u64;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let (lo, hi) = Self::bounds(b);
                let frac = (target - cum) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hist_is_zeroes() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentiles_bracket_samples() {
        let mut h = LatencyHist::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!((10.0..=1000.0).contains(&p50), "p50={p50}");
        assert!(p99 >= p50, "p99={p99} < p50={p50}");
        assert!(p99 <= 1000.0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 10);
    }

    #[test]
    fn merge_matches_recording_all() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut all = LatencyHist::new();
        for v in [3u64, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.percentile(0.95), all.percentile(0.95));
        assert_eq!(a.mean(), all.mean());
    }
}
