//! Set-associative, write-back, write-allocate LRU cache model.
//!
//! A [`Cache`] tracks tags only (data lives in the simulated RAM); the
//! hierarchy logic in [`crate::mem`] composes per-core L1 caches with a
//! shared L2 and routes misses to the DRAM vaults.

use crate::config::CacheConfig;
use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line was present.
    Hit,
    /// Line was not present; it has been allocated. If allocation evicted a
    /// dirty line, `writeback` holds that line's block base address.
    Miss {
        /// Block base address of an evicted dirty line, if any.
        writeback: Option<u32>,
    },
}

/// One cache (an L1 instance or the shared L2).
#[derive(Debug)]
pub struct Cache {
    /// Lines per set, most-recently-used first.
    sets: Vec<Vec<Line>>,
    ways: usize,
    block_bits: u32,
    set_bits: u32,
    /// Access latency of this cache level in cycles.
    pub latency: u64,
    /// Hit/miss counters for this cache.
    pub stats: CacheStats,
}

impl Cache {
    /// Build an empty cache shaped by `cfg`.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(cfg.ways as usize)).collect(),
            ways: cfg.ways as usize,
            block_bits: cfg.block_bytes.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
            latency: cfg.latency_cycles,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn split(&self, addr: u32) -> (usize, u32) {
        let block = addr >> self.block_bits;
        let set = (block & ((1 << self.set_bits) - 1)) as usize;
        let tag = block >> self.set_bits;
        (set, tag)
    }

    /// Base address of the block containing `addr`.
    #[inline]
    pub fn block_base(&self, addr: u32) -> u32 {
        addr & !((1u32 << self.block_bits) - 1)
    }

    /// Access `addr`; on a miss the line is allocated (write-allocate).
    /// Writes mark the line dirty (write-back).
    pub fn access(&mut self, addr: u32, is_write: bool) -> Access {
        let (set, tag) = self.split(addr);
        let set_bits = self.set_bits;
        let block_bits = self.block_bits;
        let line_addr = |tag: u32| ((tag << set_bits) | set as u32) << block_bits;
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|l| l.tag == tag) {
            let mut line = lines.remove(pos);
            line.dirty |= is_write;
            lines.insert(0, line);
            self.stats.hits += 1;
            return Access::Hit;
        }
        self.stats.misses += 1;
        let mut writeback = None;
        if lines.len() == self.ways {
            let victim = lines.pop().expect("full set has a victim");
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = Some(line_addr(victim.tag));
            }
        }
        lines.insert(0, Line { tag, dirty: is_write });
        Access::Miss { writeback }
    }

    /// True if the block containing `addr` is present (no LRU update, no
    /// counter update).
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.split(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Remove the block containing `addr` if present; returns whether the
    /// removed line was dirty. Used for coherence invalidations.
    pub fn invalidate(&mut self, addr: u32) -> Option<bool> {
        let (set, tag) = self.split(addr);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|l| l.tag == tag)?;
        let line = lines.remove(pos);
        self.stats.invalidations += 1;
        Some(line.dirty)
    }

    /// Number of resident lines (for tests / occupancy reporting).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 ways x 4 sets x 64B blocks = 512B
        Cache::new(&CacheConfig { size_bytes: 512, ways: 2, block_bytes: 64, latency_cycles: 2 })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x100, false), Access::Miss { writeback: None });
        assert_eq!(c.access(0x100, false), Access::Hit);
        assert_eq!(c.access(0x13f, false), Access::Hit, "same block");
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // set index = (addr>>6) & 3. Addresses 0x000, 0x100, 0x200 all map to set 0.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // refresh 0x000
        c.access(0x200, false); // evicts 0x100
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true);
        c.access(0x100, false);
        let r = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(r, Access::Miss { writeback: Some(0x000) });
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x100, false);
        assert_eq!(c.access(0x200, false), Access::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, true); // dirty now
        c.access(0x100, false);
        let r = c.access(0x200, false);
        assert_eq!(r, Access::Miss { writeback: Some(0x000) });
    }

    #[test]
    fn invalidate_removes_and_reports_dirtiness() {
        let mut c = small();
        c.access(0x000, true);
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x000), None);
        assert!(!c.probe(0x000));
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn block_base_masks_offset() {
        let c = small();
        assert_eq!(c.block_base(0x13f), 0x100);
        assert_eq!(c.block_base(0x140), 0x140);
    }

    #[test]
    fn writeback_address_reconstruction() {
        let mut c = small();
        // Address with non-zero set bits: set = (0x1c0>>6)&3 = 3.
        c.access(0x1c0, true);
        c.access(0x3c0, false);
        let r = c.access(0x5c0, false);
        assert_eq!(r, Access::Miss { writeback: Some(0x1c0) });
    }

    #[test]
    fn occupancy_tracks_capacity() {
        let mut c = small();
        assert_eq!(c.capacity(), 8);
        for i in 0..16 {
            c.access(i * 64, false);
        }
        assert_eq!(c.occupancy(), 8, "never exceeds capacity");
    }
}
